#!/bin/bash
cd /root/repo
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt
echo TEST_DONE > results/TEST_DONE
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt
echo BENCH_DONE2 > results/BENCH_DONE2
