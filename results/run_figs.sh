#!/bin/bash
cd /root/repo
target/release/fig1_example > results/fig1.txt 2>&1
target/release/fig2_competitive_ratio --json results/fig2.json > results/fig2.txt 2> results/fig2.log
target/release/fig3_workloads --json results/fig3.json > results/fig3.txt 2> results/fig3.log
target/release/fig4_sweeps --json results/fig4.json > results/fig4.txt 2> results/fig4.log
target/release/static_vs_online --json results/static.json > results/static.txt 2> results/static.log
target/release/fig5_random_walk --json results/fig5.json > results/fig5.txt 2> results/fig5.log
echo ALL_FIGURES_DONE > results/DONE
