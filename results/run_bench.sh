#!/bin/bash
cd /root/repo
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt
echo BENCH_DONE > results/BENCH_DONE
