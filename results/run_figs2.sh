#!/bin/bash
cd /root/repo
target/release/fig3_workloads --users 24 --slots 20 --reps 2 --json results/fig3.json > results/fig3.txt 2> results/fig3.log
target/release/fig4_sweeps --users 20 --slots 16 --reps 2 --json results/fig4.json > results/fig4.txt 2> results/fig4.log
target/release/static_vs_online --json results/static.json > results/static.txt 2> results/static.log
target/release/ablation_correlation --json results/ablation_corr.json > results/ablation_corr.txt 2> results/ablation_corr.log
target/release/fig5_random_walk --max-users 140 --json results/fig5.json > results/fig5.txt 2> results/fig5.log
echo ALL_DONE > results/DONE
