//! Retry policies for solver breakdowns.
//!
//! The online pipeline must produce a decision every slot, so a solver
//! giving up on [`Error::MaxIterations`] or [`Error::Numerical`] is not an
//! acceptable terminal state there. This module wraps the barrier and LP
//! solvers in a [`RetryPolicy`] that re-solves with escalating relaxations
//! — looser tolerances, larger iteration budgets, stronger regularization,
//! and (for the barrier) warm-start perturbation toward a fresh interior
//! point — and reports what happened in a structured [`SolveReport`].
//!
//! Proven-structural failures ([`Error::Infeasible`], [`Error::Unbounded`],
//! [`Error::Dimension`], [`Error::InvalidInput`]) are *not* retried: no
//! amount of relaxation fixes those, and the caller's degradation ladder
//! (see the `edgealloc` crate) must take over instead.
//!
//! # Budgets
//!
//! When the caller's options carry a [`SolveBudget`] deadline, the retry
//! drivers *split* it: attempt `k` of a chain with `K` attempts left runs
//! under `remaining / K` of the wall-clock budget, so the first attempt can
//! never eat the whole slot and every relaxation level still gets a shot.
//! An attempt cut off by its slice does not abort the chain while overall
//! time remains; when the whole budget is gone the drivers return
//! [`Error::DeadlineExceeded`] carrying the best salvage point any attempt
//! reached. A budget that is already exhausted on entry returns immediately
//! with **zero** attempts made.

use crate::convex::{BarrierOptions, BarrierSolution, BarrierSolver};
use crate::lp::{IpmOptions, LpProblem, LpSolution};
use crate::{Error, Result, Salvage};
use std::time::Instant;

/// How aggressively to retry a failed solve.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 disables retries).
    pub max_attempts: usize,
    /// Factor applied to convergence tolerances per relaxation level.
    pub tol_relax: f64,
    /// Factor applied to iteration limits per relaxation level.
    pub iter_growth: f64,
    /// Factor applied to the interior-point regularization per level.
    pub reg_growth: f64,
    /// Blend weight pulling a rejected warm start toward a freshly computed
    /// interior point on the first barrier retry (`0` keeps the start,
    /// `1` discards it).
    pub start_blend: f64,
    /// Whether LP retries may finish with the dense simplex as a last rung
    /// (exact but `O(rows·cols)` per pivot — keep off for huge LPs).
    pub simplex_fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            tol_relax: 100.0,
            iter_growth: 2.0,
            reg_growth: 100.0,
            start_blend: 0.5,
            simplex_fallback: true,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no simplex rung).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            simplex_fallback: false,
            ..RetryPolicy::default()
        }
    }
}

/// What a retried solve did, whether it succeeded or not.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SolveReport {
    /// Solve attempts made (1 = the primary options sufficed).
    pub attempts: usize,
    /// Relaxation level of the attempt that produced the returned result
    /// (0 = primary options; for LPs the simplex rung counts one past the
    /// last interior-point level).
    pub fallback_level: usize,
    /// Residual reported by the last attempt: the certified duality gap on
    /// success, the error's residual on iteration-limit failures, NaN when
    /// no residual applies.
    pub final_residual: f64,
    /// Total wall time across all attempts, in milliseconds.
    pub wall_time_ms: f64,
    /// Whether a solution was returned.
    pub converged: bool,
    /// Description of the final error when `converged` is false.
    pub error: Option<String>,
}

impl SolveReport {
    fn start() -> Self {
        SolveReport {
            attempts: 0,
            fallback_level: 0,
            final_residual: f64::NAN,
            wall_time_ms: 0.0,
            converged: false,
            error: None,
        }
    }

    /// Whether the solve needed any relaxation at all.
    pub fn degraded(&self) -> bool {
        self.fallback_level > 0 || !self.converged
    }
}

/// Whether relaxing options could plausibly fix this failure. Structural
/// verdicts (infeasible, unbounded, malformed input) are final; iteration
/// limits, numerical breakdowns, and rejected starting points are worth
/// another attempt with different options. [`Error::DeadlineExceeded`] is
/// *not* retryable — time, not numerics, ran out, and retrying with relaxed
/// options cannot manufacture more of it (the budget-splitting drivers in
/// this module handle slice expiry themselves). Callers building their own
/// degradation ladders (see the `edgealloc` crate) use this to decide
/// whether to keep escalating or to jump straight to the next rung.
pub fn retryable(err: &Error) -> bool {
    matches!(
        err,
        Error::MaxIterations { .. } | Error::Numerical(_) | Error::BadStartingPoint(_)
    )
}

fn residual_of(err: &Error) -> f64 {
    match err {
        Error::MaxIterations { residual, .. } => *residual,
        Error::DeadlineExceeded { best, .. } => best.as_ref().map_or(f64::NAN, |s| s.residual),
        _ => f64::NAN,
    }
}

/// Keeps whichever salvage point certifies the smaller residual (an
/// incumbent with a NaN residual always loses).
fn better_salvage(
    incumbent: Option<Box<Salvage>>,
    candidate: Option<Box<Salvage>>,
) -> Option<Box<Salvage>> {
    match (incumbent, candidate) {
        (Some(a), Some(b)) => {
            if a.residual <= b.residual {
                Some(a)
            } else {
                Some(b)
            }
        }
        (a, None) => a,
        (None, b) => b,
    }
}

/// The barrier options at relaxation level `k`: looser tolerances, larger
/// Newton/outer budgets, and a gentler barrier growth factor (smaller `mu`
/// keeps Newton centering well-conditioned when the primary schedule broke
/// down).
pub fn relaxed_barrier_options(
    base: &BarrierOptions,
    policy: &RetryPolicy,
    k: usize,
) -> BarrierOptions {
    let relax = policy.tol_relax.powi(k as i32);
    let growth = policy.iter_growth.powi(k as i32);
    BarrierOptions {
        t0: base.t0,
        mu: if k == 0 {
            base.mu
        } else {
            (base.mu / 2f64.powi(k as i32)).max(2.0)
        },
        tol: (base.tol * relax).min(1e-2),
        inner_tol: (base.inner_tol * relax).min(1e-4),
        max_newton: ((base.max_newton as f64) * growth).ceil() as usize,
        max_outer: ((base.max_outer as f64) * growth).ceil() as usize,
        budget: base.budget,
    }
}

/// The interior-point options at relaxation level `k`: looser tolerance,
/// more iterations, stronger regularization, shorter steps.
pub fn relaxed_ipm_options(base: &IpmOptions, policy: &RetryPolicy, k: usize) -> IpmOptions {
    let ki = k as i32;
    IpmOptions {
        tol: (base.tol * policy.tol_relax.powi(ki)).min(1e-3),
        max_iters: ((base.max_iters as f64) * policy.iter_growth.powi(ki)).ceil() as usize,
        reg: base.reg * policy.reg_growth.powi(ki),
        step_scale: (base.step_scale * 0.99f64.powi(ki)).max(0.9),
        use_ordering: base.use_ordering,
        budget: base.budget,
    }
}

/// Solves a barrier program under a retry policy.
///
/// Attempt 0 uses `opts` and `x0` as given. Each later attempt relaxes the
/// options one level ([`relaxed_barrier_options`]); the first retry also
/// blends the warm start toward a freshly computed interior point (both are
/// strictly feasible and the feasible set is convex, so the blend is too),
/// and subsequent retries drop the warm start entirely.
///
/// # Errors
///
/// Returns the last attempt's error when every attempt fails, or
/// immediately on non-retryable failures (infeasibility etc.). The
/// [`SolveReport`] describes the outcome either way.
pub fn solve_barrier_with_retry(
    solver: &BarrierSolver,
    x0: Option<&[f64]>,
    opts: &BarrierOptions,
    policy: &RetryPolicy,
) -> (Result<BarrierSolution>, SolveReport) {
    let clock = Instant::now();
    let mut report = SolveReport::start();
    let attempts = policy.max_attempts.max(1);
    if opts.budget.exhausted(0) {
        let err = Error::DeadlineExceeded {
            iterations: 0,
            best: None,
        };
        report.error = Some(err.to_string());
        report.wall_time_ms = clock.elapsed().as_secs_f64() * 1e3;
        return (Err(err), report);
    }
    let mut blended: Option<Vec<f64>>;
    let mut last_err = Error::Numerical("no attempts made".into());
    let mut salvage: Option<Box<Salvage>> = None;
    let mut deadline_iters = 0;
    for k in 0..attempts {
        if k > 0 && opts.budget.exhausted(0) {
            last_err = Error::DeadlineExceeded {
                iterations: deadline_iters,
                best: salvage.take(),
            };
            break;
        }
        let mut level_opts = relaxed_barrier_options(opts, policy, k);
        level_opts.budget = opts.budget.slice(attempts - k);
        let start: Option<&[f64]> = match k {
            0 => x0,
            1 => {
                // Pull the warm start toward a fresh interior point; if
                // phase I cannot produce one the problem is infeasible and
                // retrying is pointless.
                blended = match (x0, solver.strictly_feasible_start()) {
                    (Some(x), Ok(interior)) => Some(
                        x.iter()
                            .zip(&interior)
                            .map(|(&a, &b)| (1.0 - policy.start_blend) * a + policy.start_blend * b)
                            .collect(),
                    ),
                    _ => None,
                };
                blended.as_deref()
            }
            _ => None,
        };
        report.attempts = k + 1;
        report.fallback_level = k;
        match solver.solve(start, &level_opts) {
            Ok(sol) => {
                report.converged = true;
                report.final_residual = sol.stats.gap;
                report.wall_time_ms = clock.elapsed().as_secs_f64() * 1e3;
                return (Ok(sol), report);
            }
            Err(Error::DeadlineExceeded { iterations, best }) => {
                // This level's *slice* ran out. Keep the best salvage point
                // seen so far and move on to the next level while overall
                // time remains; the slot budget, not numerics, decides.
                deadline_iters += iterations;
                salvage = better_salvage(salvage, best);
                report.final_residual = salvage.as_ref().map_or(f64::NAN, |s| s.residual);
                last_err = Error::DeadlineExceeded {
                    iterations: deadline_iters,
                    best: salvage.clone(),
                };
            }
            Err(err) => {
                report.final_residual = residual_of(&err);
                let fatal = !retryable(&err);
                last_err = err;
                if fatal {
                    break;
                }
            }
        }
    }
    // If the whole budget is gone, make sure the caller hears "deadline"
    // (with salvage) rather than the incidental last numerical error.
    if opts.budget.exhausted(0) && !matches!(last_err, Error::DeadlineExceeded { .. }) {
        last_err = Error::DeadlineExceeded {
            iterations: deadline_iters,
            best: salvage.take(),
        };
    }
    report.error = Some(last_err.to_string());
    report.wall_time_ms = clock.elapsed().as_secs_f64() * 1e3;
    (Err(last_err), report)
}

/// Solves an LP under a retry policy.
///
/// Interior-point attempts escalate through [`relaxed_ipm_options`]; if all
/// of them fail and the policy allows it, the dense simplex runs as a final
/// exact rung (counted one level past the last interior-point attempt).
///
/// # Errors
///
/// Returns the last attempt's error when every rung fails, or immediately
/// on non-retryable failures. The [`SolveReport`] describes the outcome
/// either way.
pub fn solve_lp_with_retry(
    lp: &LpProblem,
    opts: &IpmOptions,
    policy: &RetryPolicy,
) -> (Result<LpSolution>, SolveReport) {
    let clock = Instant::now();
    let mut report = SolveReport::start();
    let attempts = policy.max_attempts.max(1);
    if opts.budget.exhausted(0) {
        let err = Error::DeadlineExceeded {
            iterations: 0,
            best: None,
        };
        report.error = Some(err.to_string());
        report.wall_time_ms = clock.elapsed().as_secs_f64() * 1e3;
        return (Err(err), report);
    }
    let mut last_err = Error::Numerical("no attempts made".into());
    let mut salvage: Option<Box<Salvage>> = None;
    let mut deadline_iters = 0;
    for k in 0..attempts {
        if k > 0 && opts.budget.exhausted(0) {
            last_err = Error::DeadlineExceeded {
                iterations: deadline_iters,
                best: salvage.take(),
            };
            break;
        }
        report.attempts = k + 1;
        report.fallback_level = k;
        let mut level_opts = relaxed_ipm_options(opts, policy, k);
        level_opts.budget = opts.budget.slice(attempts - k);
        match lp.solve_with(&level_opts) {
            Ok(sol) => {
                report.converged = true;
                report.final_residual = lp.max_violation(&sol.x);
                report.wall_time_ms = clock.elapsed().as_secs_f64() * 1e3;
                return (Ok(sol), report);
            }
            Err(Error::DeadlineExceeded { iterations, best }) => {
                deadline_iters += iterations;
                salvage = better_salvage(salvage, best);
                report.final_residual = salvage.as_ref().map_or(f64::NAN, |s| s.residual);
                last_err = Error::DeadlineExceeded {
                    iterations: deadline_iters,
                    best: salvage.clone(),
                };
            }
            Err(err) => {
                report.final_residual = residual_of(&err);
                let fatal = !retryable(&err);
                last_err = err;
                if fatal {
                    break;
                }
            }
        }
    }
    // The simplex rung cannot be cancelled mid-pivot, so it only runs when
    // no deadline pressure exists: never after a DeadlineExceeded (not
    // `retryable`), and never once the overall budget is spent.
    if policy.simplex_fallback && retryable(&last_err) && !opts.budget.exhausted(0) {
        report.attempts += 1;
        report.fallback_level = attempts;
        match lp.solve_simplex() {
            Ok(sol) => {
                report.converged = true;
                report.final_residual = lp.max_violation(&sol.x);
                report.wall_time_ms = clock.elapsed().as_secs_f64() * 1e3;
                return (Ok(sol), report);
            }
            Err(err) => last_err = err,
        }
    }
    if opts.budget.exhausted(0) && !matches!(last_err, Error::DeadlineExceeded { .. }) {
        last_err = Error::DeadlineExceeded {
            iterations: deadline_iters,
            best: salvage.take(),
        };
    }
    report.error = Some(last_err.to_string());
    report.wall_time_ms = clock.elapsed().as_secs_f64() * 1e3;
    (Err(last_err), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::SolveBudget;
    use crate::convex::{ScalarTerm, SeparableObjective};
    use crate::lp::ConstraintSense;
    use crate::sparse::Triplets;

    fn toy_lp() -> LpProblem {
        // min x + 2y s.t. x + y ≥ 3, y ≤ 2 → optimum 3 at (3, 0).
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(2.0);
        lp.add_row(ConstraintSense::Ge, 3.0, &[(x, 1.0), (y, 1.0)]);
        lp.add_row(ConstraintSense::Le, 2.0, &[(y, 1.0)]);
        lp
    }

    fn toy_barrier() -> BarrierSolver {
        // min x² + y² s.t. x + y ≥ 2 → (1, 1).
        let mut f = SeparableObjective::new(2);
        f.add_term(0, ScalarTerm::Quadratic { q: 2.0 });
        f.add_term(1, ScalarTerm::Quadratic { q: 2.0 });
        let mut a = Triplets::new(1, 2);
        a.push(0, 0, 1.0);
        a.push(0, 1, 1.0);
        BarrierSolver::new(f, a.to_csc(), vec![2.0]).unwrap()
    }

    #[test]
    fn healthy_lp_solves_on_first_attempt() {
        let (result, report) =
            solve_lp_with_retry(&toy_lp(), &IpmOptions::default(), &RetryPolicy::default());
        let sol = result.unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.fallback_level, 0);
        assert!(report.converged);
        assert!(!report.degraded());
        assert!(report.final_residual < 1e-6);
        assert!(report.error.is_none());
    }

    #[test]
    fn crippled_lp_recovers_through_escalation() {
        let opts = IpmOptions {
            max_iters: 1,
            ..IpmOptions::default()
        };
        let (result, report) = solve_lp_with_retry(&toy_lp(), &opts, &RetryPolicy::default());
        let sol = result.unwrap();
        // Degraded rungs trade accuracy for survival: the relaxed tolerance
        // caps at 1e-3 relative, so only percent-level accuracy is promised.
        assert!((sol.objective - 3.0).abs() < 1e-2, "obj {}", sol.objective);
        assert!(report.converged);
        assert!(report.fallback_level > 0, "report {report:?}");
        assert!(report.degraded());
    }

    #[test]
    fn crippled_lp_without_retries_fails_honestly() {
        let opts = IpmOptions {
            max_iters: 1,
            ..IpmOptions::default()
        };
        let (result, report) = solve_lp_with_retry(&toy_lp(), &opts, &RetryPolicy::none());
        assert!(matches!(result, Err(Error::MaxIterations { .. })));
        assert_eq!(report.attempts, 1);
        assert!(!report.converged);
        assert!(report.error.is_some());
    }

    #[test]
    fn crippled_barrier_recovers_through_escalation() {
        let opts = BarrierOptions {
            max_outer: 1,
            ..BarrierOptions::default()
        };
        let (result, report) =
            solve_barrier_with_retry(&toy_barrier(), None, &opts, &RetryPolicy::default());
        let sol = result.unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-2, "x {:?}", sol.x);
        assert!(report.converged);
        assert!(report.fallback_level > 0, "report {report:?}");
    }

    #[test]
    fn warm_started_barrier_retry_accepts_blended_start() {
        let opts = BarrierOptions {
            max_outer: 1,
            ..BarrierOptions::default()
        };
        let start = [1.5, 1.5];
        let (result, report) =
            solve_barrier_with_retry(&toy_barrier(), Some(&start), &opts, &RetryPolicy::default());
        assert!(result.is_ok());
        assert!(report.fallback_level > 0);
    }

    #[test]
    fn infeasible_program_is_not_retried() {
        // x ≥ 0 with row −x ≥ 1 → infeasible.
        let f = SeparableObjective::new(1);
        let mut a = Triplets::new(1, 1);
        a.push(0, 0, -1.0);
        let solver = BarrierSolver::new(f, a.to_csc(), vec![1.0]).unwrap();
        let (result, report) = solve_barrier_with_retry(
            &solver,
            None,
            &BarrierOptions::default(),
            &RetryPolicy::default(),
        );
        assert!(matches!(result, Err(Error::Infeasible)));
        assert_eq!(report.attempts, 1, "structural failure must not retry");
        assert!(!report.converged);
    }

    #[test]
    fn relaxation_schedules_escalate_monotonically() {
        let policy = RetryPolicy::default();
        let base_b = BarrierOptions::default();
        let base_i = IpmOptions::default();
        for k in 1..4 {
            let b = relaxed_barrier_options(&base_b, &policy, k);
            let prev = relaxed_barrier_options(&base_b, &policy, k - 1);
            assert!(b.tol >= prev.tol);
            assert!(b.max_outer >= prev.max_outer);
            assert!(b.mu <= prev.mu);
            let i = relaxed_ipm_options(&base_i, &policy, k);
            let prev_i = relaxed_ipm_options(&base_i, &policy, k - 1);
            assert!(i.tol >= prev_i.tol);
            assert!(i.max_iters >= prev_i.max_iters);
            assert!(i.reg >= prev_i.reg);
            assert!(i.step_scale <= prev_i.step_scale);
        }
    }

    #[test]
    fn expired_budget_returns_immediately_without_attempting() {
        use std::time::{Duration, Instant};
        let dead = SolveBudget::until(Instant::now() - Duration::from_millis(1));
        let opts = BarrierOptions {
            budget: dead,
            ..BarrierOptions::default()
        };
        let (result, report) =
            solve_barrier_with_retry(&toy_barrier(), None, &opts, &RetryPolicy::default());
        assert!(matches!(
            result,
            Err(Error::DeadlineExceeded {
                iterations: 0,
                best: None
            })
        ));
        assert_eq!(report.attempts, 0, "no solve may run on an expired budget");
        assert!(!report.converged);

        let lp_opts = IpmOptions {
            budget: dead,
            ..IpmOptions::default()
        };
        let (result, report) = solve_lp_with_retry(&toy_lp(), &lp_opts, &RetryPolicy::default());
        assert!(matches!(
            result,
            Err(Error::DeadlineExceeded {
                iterations: 0,
                best: None
            })
        ));
        assert_eq!(report.attempts, 0);
    }

    #[test]
    fn relaxation_levels_never_exceed_the_remaining_budget() {
        use std::time::Instant;
        // Each level's slice deadline must sit at or before the overall
        // deadline, for every level in the chain.
        let policy = RetryPolicy::default();
        let overall = SolveBudget::from_millis(200.0);
        let base = BarrierOptions {
            budget: overall,
            ..BarrierOptions::default()
        };
        let attempts = policy.max_attempts;
        for k in 0..attempts {
            let mut level = relaxed_barrier_options(&base, &policy, k);
            level.budget = base.budget.slice(attempts - k);
            let level_deadline = level.budget.deadline.expect("slice keeps a deadline");
            assert!(
                level_deadline <= overall.deadline.unwrap(),
                "level {k} slice extends past the overall deadline"
            );
            assert!(level_deadline >= Instant::now() - std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn budgeted_solve_salvages_an_iterate_under_deadline_pressure() {
        // A one-iteration ceiling per solve forces DeadlineExceeded from
        // every rung deterministically (no wall-clock flakiness), while the
        // generous wall deadline keeps the overall chain alive so every
        // level gets visited.
        let opts = BarrierOptions {
            budget: SolveBudget::from_millis(60_000.0).with_max_iters(1),
            ..BarrierOptions::default()
        };
        let policy = RetryPolicy::default();
        let start = [1.5, 1.5];
        let (result, report) =
            solve_barrier_with_retry(&toy_barrier(), Some(&start), &opts, &policy);
        match result {
            Err(Error::DeadlineExceeded { best, .. }) => {
                let s = best.expect("barrier deadline carries a salvage iterate");
                assert_eq!(s.x.len(), 2);
                // Barrier iterates are strictly feasible: x + y > 2.
                assert!(s.x[0] + s.x[1] > 2.0, "salvage not interior: {:?}", s.x);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(
            report.attempts, policy.max_attempts,
            "slice expiry must not abort the chain while overall time remains"
        );
        assert!(!report.converged);
    }

    #[test]
    fn deadline_skips_the_simplex_rung() {
        // One-iteration budget: every IPM rung dies on its ceiling. The
        // simplex rung cannot be cancelled, so it must not run, and the
        // final error must be DeadlineExceeded rather than MaxIterations.
        let opts = IpmOptions {
            budget: SolveBudget::from_millis(60_000.0).with_max_iters(1),
            ..IpmOptions::default()
        };
        let policy = RetryPolicy {
            simplex_fallback: true,
            ..RetryPolicy::default()
        };
        let (result, report) = solve_lp_with_retry(&toy_lp(), &opts, &policy);
        assert!(matches!(result, Err(Error::DeadlineExceeded { .. })));
        assert_eq!(
            report.attempts, policy.max_attempts,
            "simplex rung must not run under deadline pressure"
        );
    }

    #[test]
    fn report_round_trips_through_serde() {
        let report = SolveReport {
            attempts: 3,
            fallback_level: 2,
            final_residual: 1e-5,
            wall_time_ms: 12.5,
            converged: true,
            error: None,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: SolveReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.attempts, 3);
        assert_eq!(back.fallback_level, 2);
        assert!(back.converged);
    }
}
