//! A small LP modeling layer ("Pyomo-lite").
//!
//! Build linear programs from named variables and natural expression syntax,
//! then solve with the interior-point method or the simplex oracle:
//!
//! ```
//! use optim::model::Model;
//!
//! # fn main() -> Result<(), optim::Error> {
//! let mut m = Model::new();
//! let x = m.var("x");
//! let y = m.var("y");
//! m.minimize(2.0 * x + 3.0 * y);
//! m.geq(1.0 * x + 1.0 * y, 4.0);
//! m.leq(1.0 * x, 3.0);
//! let sol = m.solve()?;
//! assert!((sol.objective() - 9.0).abs() < 1e-6); // x=3, y=1
//! # Ok(())
//! # }
//! ```

mod builder;
mod expr;

pub use builder::{Model, Solution};
pub use expr::{LinExpr, Var};
