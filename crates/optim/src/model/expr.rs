//! Linear expressions over model variables.

use std::ops::{Add, Mul, Neg, Sub};

/// A handle to a nonnegative decision variable created by
/// [`crate::model::Model::var`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The variable's column index in the underlying LP.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A linear expression `Σ coefᵢ·xᵢ + constant`.
///
/// Built with ordinary arithmetic: `2.0 * x + 3.0 * y - 1.0`.
#[derive(Debug, Clone, Default)]
pub struct LinExpr {
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Adds `coef · var` to the expression (builder style).
    pub fn add_term(&mut self, var: Var, coef: f64) -> &mut Self {
        if coef != 0.0 {
            self.terms.push((var.0, coef));
        }
        self
    }

    /// The constant offset.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// The variable terms as `(column, coefficient)` pairs (not combined).
    pub fn terms(&self) -> &[(usize, f64)] {
        &self.terms
    }

    /// Collapses duplicate variables, returning combined `(col, coef)` pairs.
    pub fn combined_terms(&self) -> Vec<(usize, f64)> {
        let mut sorted = self.terms.clone();
        sorted.sort_unstable_by_key(|&(c, _)| c);
        let mut out: Vec<(usize, f64)> = Vec::with_capacity(sorted.len());
        for (c, v) in sorted {
            match out.last_mut() {
                Some((lc, lv)) if *lc == c => *lv += v,
                _ => out.push((c, v)),
            }
        }
        out.retain(|&(_, v)| v != 0.0);
        out
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        LinExpr {
            terms: vec![(v.0, 1.0)],
            constant: 0.0,
        }
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, v: Var) -> LinExpr {
        LinExpr {
            terms: vec![(v.0, self)],
            constant: 0.0,
        }
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, e: LinExpr) -> LinExpr {
        e * self
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl Add<Var> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, v: Var) -> LinExpr {
        self.terms.push((v.0, 1.0));
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, k: f64) -> LinExpr {
        self.constant += k;
        self
    }
}

impl Add<LinExpr> for Var {
    type Output = LinExpr;
    fn add(self, e: LinExpr) -> LinExpr {
        e + self
    }
}

impl Add<Var> for Var {
    type Output = LinExpr;
    fn add(self, other: Var) -> LinExpr {
        LinExpr {
            terms: vec![(self.0, 1.0), (other.0, 1.0)],
            constant: 0.0,
        }
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self * -1.0
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Sub<Var> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, v: Var) -> LinExpr {
        self.terms.push((v.0, -1.0));
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, k: f64) -> LinExpr {
        self.constant -= k;
        self
    }
}

impl Sub<Var> for Var {
    type Output = LinExpr;
    fn sub(self, other: Var) -> LinExpr {
        LinExpr {
            terms: vec![(self.0, 1.0), (other.0, -1.0)],
            constant: 0.0,
        }
    }
}

impl std::iter::Sum for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        iter.fold(LinExpr::zero(), |acc, e| acc + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_builds_expected_terms() {
        let x = Var(0);
        let y = Var(1);
        let e = 2.0 * x + 3.0 * y - 1.0;
        assert_eq!(e.combined_terms(), vec![(0, 2.0), (1, 3.0)]);
        assert_eq!(e.constant_part(), -1.0);
    }

    #[test]
    fn duplicates_are_combined() {
        let x = Var(0);
        let e = 2.0 * x + 3.0 * x;
        assert_eq!(e.combined_terms(), vec![(0, 5.0)]);
    }

    #[test]
    fn cancellation_drops_terms() {
        let x = Var(0);
        let e = 2.0 * x - 2.0 * x;
        assert!(e.combined_terms().is_empty());
    }

    #[test]
    fn sum_of_expressions() {
        let vars = [Var(0), Var(1), Var(2)];
        let e: LinExpr = vars.iter().map(|&v| 1.0 * v).sum();
        assert_eq!(e.combined_terms().len(), 3);
    }

    #[test]
    fn scaling_affects_constant() {
        let x = Var(0);
        let e = (1.0 * x + 4.0) * 0.5;
        assert_eq!(e.constant_part(), 2.0);
        assert_eq!(e.combined_terms(), vec![(0, 0.5)]);
    }
}
