//! The [`Model`] builder and its [`Solution`].

use crate::lp::{ConstraintSense, IpmOptions, LpProblem};
use crate::model::{LinExpr, Var};
use crate::Result;
use std::ops::Index;

/// An LP model under construction: nonnegative variables, a linear
/// objective, and `≤ / ≥ / =` constraints built from [`LinExpr`]s.
///
/// See the [module docs](crate::model) for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct Model {
    lp: LpProblem,
    names: Vec<String>,
    objective_constant: f64,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a nonnegative variable with the given debug name.
    pub fn var(&mut self, name: impl Into<String>) -> Var {
        let idx = self.lp.add_var(0.0);
        self.names.push(name.into());
        Var(idx)
    }

    /// Adds `n` nonnegative variables named `prefix[0..n)`.
    pub fn vars(&mut self, n: usize, prefix: &str) -> Vec<Var> {
        (0..n).map(|i| self.var(format!("{prefix}[{i}]"))).collect()
    }

    /// Sets the objective to `min expr`. Constant parts are carried through
    /// to [`Solution::objective`]. Replaces any previous objective.
    pub fn minimize(&mut self, expr: LinExpr) {
        for j in 0..self.lp.num_vars() {
            self.lp.set_cost(j, 0.0);
        }
        for (c, v) in expr.combined_terms() {
            self.lp.set_cost(c, v);
        }
        self.objective_constant = expr.constant_part();
    }

    /// Sets the objective to `max expr` (minimizes the negation).
    pub fn maximize(&mut self, expr: LinExpr) {
        self.minimize(-expr);
        // Note: Solution::objective reports the *minimized* value; callers
        // maximizing should negate. Documented on `maximize`.
    }

    /// Adds `expr ≤ rhs`. Returns the row index.
    pub fn leq(&mut self, expr: LinExpr, rhs: f64) -> usize {
        self.add(ConstraintSense::Le, expr, rhs)
    }

    /// Adds `expr ≥ rhs`. Returns the row index.
    pub fn geq(&mut self, expr: LinExpr, rhs: f64) -> usize {
        self.add(ConstraintSense::Ge, expr, rhs)
    }

    /// Adds `expr = rhs`. Returns the row index.
    pub fn eq(&mut self, expr: LinExpr, rhs: f64) -> usize {
        self.add(ConstraintSense::Eq, expr, rhs)
    }

    fn add(&mut self, sense: ConstraintSense, expr: LinExpr, rhs: f64) -> usize {
        let terms = expr.combined_terms();
        self.lp.add_row(sense, rhs - expr.constant_part(), &terms)
    }

    /// Name of a variable (for diagnostics).
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.0]
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.lp.num_vars()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.lp.num_rows()
    }

    /// Access to the underlying row-form problem.
    pub fn problem(&self) -> &LpProblem {
        &self.lp
    }

    /// Solves with the interior-point method.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (infeasibility, unboundedness, limits).
    pub fn solve(&self) -> Result<Solution> {
        self.solve_with(&IpmOptions::default())
    }

    /// Solves with explicit interior-point options.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn solve_with(&self, opts: &IpmOptions) -> Result<Solution> {
        let s = self.lp.solve_with(opts)?;
        Ok(Solution {
            values: s.x,
            objective: s.objective + self.objective_constant,
            duals: s.duals,
        })
    }

    /// Solves with the dense simplex oracle (small models only).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn solve_simplex(&self) -> Result<Solution> {
        let s = self.lp.solve_simplex()?;
        Ok(Solution {
            values: s.x,
            objective: s.objective + self.objective_constant,
            duals: s.duals,
        })
    }
}

/// A solved model: index it with a [`Var`] to read values.
#[derive(Debug, Clone)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
    duals: Vec<f64>,
}

impl Solution {
    /// The objective value (including any constant part of the expression).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// All variable values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Row duals (see [`crate::lp::LpSolution::duals`] for the convention).
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }
}

impl Index<Var> for Solution {
    type Output = f64;
    fn index(&self, v: Var) -> &f64 {
        &self.values[v.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_solves_and_indexes() {
        let mut m = Model::new();
        let x = m.var("x");
        let y = m.var("y");
        m.minimize(1.0 * x + 1.0 * y + 10.0);
        m.geq(1.0 * x + 2.0 * y, 4.0);
        let sol = m.solve().unwrap();
        // Cheapest way to satisfy x + 2y >= 4 at unit costs: y = 2.
        assert!((sol[y] - 2.0).abs() < 1e-5);
        assert!((sol.objective() - 12.0).abs() < 1e-5);
    }

    #[test]
    fn constants_in_constraints_are_moved_to_rhs() {
        let mut m = Model::new();
        let x = m.var("x");
        m.minimize(1.0 * x);
        // x + 1 >= 3  ⇔  x >= 2
        m.geq(1.0 * x + 1.0, 3.0);
        let sol = m.solve().unwrap();
        assert!((sol[x] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn simplex_and_ipm_agree() {
        let mut m = Model::new();
        let v = m.vars(4, "v");
        m.minimize(1.0 * v[0] + 2.0 * v[1] + 3.0 * v[2] + 4.0 * v[3]);
        m.geq(1.0 * v[0] + 1.0 * v[1] + 1.0 * v[2] + 1.0 * v[3], 10.0);
        m.leq(1.0 * v[0], 4.0);
        let a = m.solve().unwrap();
        let b = m.solve_simplex().unwrap();
        assert!((a.objective() - b.objective()).abs() < 1e-5);
    }

    #[test]
    fn names_are_tracked() {
        let mut m = Model::new();
        let x = m.var("hello");
        assert_eq!(m.name(x), "hello");
        let vs = m.vars(2, "w");
        assert_eq!(m.name(vs[1]), "w[1]");
    }
}
