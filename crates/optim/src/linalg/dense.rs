//! Dense column-major matrices with Cholesky and LU factorizations.

use crate::{Error, Result};

/// A dense column-major matrix of `f64`.
///
/// Used for the small dense Schur-complement systems in the barrier solver
/// and as a reference implementation in tests.
///
/// # Example
///
/// ```
/// use optim::linalg::DenseMatrix;
///
/// # fn main() -> Result<(), optim::Error> {
/// let mut a = DenseMatrix::zeros(2, 2);
/// a.set(0, 0, 4.0);
/// a.set(1, 1, 9.0);
/// let chol = a.cholesky()?;
/// let x = chol.solve(&[8.0, 18.0]);
/// assert_eq!(x, vec![2.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    /// Column-major storage: entry (i, j) lives at `data[j * nrows + i]`.
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from a row-major nested slice (for tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        let mut m = DenseMatrix::zeros(nrows, ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "ragged rows");
            for (j, &v) in r.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Entry (i, j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i]
    }

    /// Sets entry (i, j).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i] = v;
    }

    /// Adds `v` to entry (i, j).
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i] += v;
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn column(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let col = self.column(j);
            for i in 0..self.nrows {
                y[i] += col[i] * xj;
            }
        }
        y
    }

    /// Reshapes to `nrows × ncols` and zeroes every entry, reusing the
    /// existing storage when its capacity suffices. The workhorse of the
    /// allocation-free Schur-complement path: after the first Newton step
    /// sized a scratch matrix, subsequent steps reshape for free.
    pub fn resize_reset(&mut self, nrows: usize, ncols: usize) {
        self.nrows = nrows;
        self.ncols = ncols;
        self.data.clear();
        self.data.resize(nrows * ncols, 0.0);
    }

    /// Copies another matrix's values into this one, reshaping as needed
    /// (storage is reused when capacity suffices).
    pub fn copy_values_from(&mut self, other: &DenseMatrix) {
        self.nrows = other.nrows;
        self.ncols = other.ncols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Adds another matrix of the same shape into this one, entrywise.
    /// Allocation-free; used to merge per-worker partial accumulations.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_from(&mut self, other: &DenseMatrix) {
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place Cholesky factorization `A = L Lᵀ` of a symmetric positive
    /// definite matrix (only the lower triangle is read).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if a non-positive pivot is encountered
    /// (the matrix is not positive definite to working precision).
    pub fn cholesky(&self) -> Result<DenseCholesky> {
        let mut l = self.clone();
        l.cholesky_in_place()?;
        Ok(DenseCholesky { l })
    }

    /// Factorizes `self = L Lᵀ` in place, leaving `L` in the lower triangle
    /// (strict upper triangle zeroed). Allocation-free counterpart of
    /// [`DenseMatrix::cholesky`]; solve against the factor with
    /// [`DenseMatrix::chol_solve_in_place`]. On error the contents are
    /// partially overwritten and must be rebuilt before retrying.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] on a non-positive pivot and
    /// [`Error::Dimension`] for a non-square matrix.
    pub fn cholesky_in_place(&mut self) -> Result<()> {
        if self.nrows != self.ncols {
            return Err(Error::Dimension("cholesky requires a square matrix".into()));
        }
        let n = self.nrows;
        for j in 0..n {
            // d = A[j,j] - sum_k L[j,k]^2
            let mut d = self.get(j, j);
            for k in 0..j {
                let ljk = self.get(j, k);
                d -= ljk * ljk;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(Error::Numerical(format!(
                    "non-positive pivot {d:.3e} at column {j} in dense Cholesky"
                )));
            }
            let dj = d.sqrt();
            self.set(j, j, dj);
            for i in (j + 1)..n {
                let mut s = self.get(i, j);
                for k in 0..j {
                    s -= self.get(i, k) * self.get(j, k);
                }
                self.set(i, j, s / dj);
            }
        }
        // Zero the strict upper triangle for cleanliness.
        for j in 0..n {
            for i in 0..j {
                self.set(i, j, 0.0);
            }
        }
        Ok(())
    }

    /// Solves `L Lᵀ x = b` in place, treating `self` as the lower-triangular
    /// factor produced by [`DenseMatrix::cholesky_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the factor dimension.
    pub fn chol_solve_in_place(&self, x: &mut [f64]) {
        let n = self.nrows;
        assert_eq!(x.len(), n, "dimension mismatch in chol_solve_in_place");
        // Forward: L y = b
        for j in 0..n {
            x[j] /= self.get(j, j);
            let xj = x[j];
            let col = self.column(j);
            for i in (j + 1)..n {
                x[i] -= col[i] * xj;
            }
        }
        // Backward: Lᵀ x = y
        for j in (0..n).rev() {
            let col = self.column(j);
            let mut s = x[j];
            for i in (j + 1)..n {
                s -= col[i] * x[i];
            }
            x[j] = s / col[j];
        }
    }

    /// LU factorization with partial pivoting, `P A = L U`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if the matrix is singular to working
    /// precision.
    pub fn lu(&self) -> Result<DenseLu> {
        if self.nrows != self.ncols {
            return Err(Error::Dimension("lu requires a square matrix".into()));
        }
        let n = self.nrows;
        let mut a = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot search.
            let mut p = k;
            let mut best = a.get(k, k).abs();
            for i in (k + 1)..n {
                let v = a.get(i, k).abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 || !best.is_finite() {
                return Err(Error::Numerical(format!(
                    "singular matrix at pivot {k} in dense LU"
                )));
            }
            if p != k {
                perm.swap(p, k);
                for j in 0..n {
                    let t = a.get(k, j);
                    a.set(k, j, a.get(p, j));
                    a.set(p, j, t);
                }
            }
            let pivot = a.get(k, k);
            for i in (k + 1)..n {
                let m = a.get(i, k) / pivot;
                a.set(i, k, m);
                if m != 0.0 {
                    for j in (k + 1)..n {
                        a.add(i, j, -m * a.get(k, j));
                    }
                }
            }
        }
        Ok(DenseLu { lu: a, perm })
    }
}

/// A dense Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct DenseCholesky {
    l: DenseMatrix,
}

impl DenseCholesky {
    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factor dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.l.chol_solve_in_place(&mut x);
        x
    }

    /// The factor `L` (lower triangular).
    pub fn factor(&self) -> &DenseMatrix {
        &self.l
    }
}

/// A dense LU factorization with partial pivoting, `P A = L U`.
#[derive(Debug, Clone)]
pub struct DenseLu {
    lu: DenseMatrix,
    perm: Vec<usize>,
}

impl DenseLu {
    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factor dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.nrows();
        assert_eq!(b.len(), n, "dimension mismatch in solve");
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward: L y = Pb (unit diagonal).
        for j in 0..n {
            let xj = x[j];
            if xj != 0.0 {
                for i in (j + 1)..n {
                    x[i] -= self.lu.get(i, j) * xj;
                }
            }
        }
        // Backward: U x = y.
        for j in (0..n).rev() {
            x[j] /= self.lu.get(j, j);
            let xj = x[j];
            if xj != 0.0 {
                for i in 0..j {
                    x[i] -= self.lu.get(i, j) * xj;
                }
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_solves_spd_system() {
        let a = DenseMatrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]);
        let chol = a.cholesky().unwrap();
        let b = [6.0, 8.0, 4.0];
        let x = chol.solve(&b);
        let ax = a.mul_vec(&x);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(a.cholesky(), Err(Error::Numerical(_))));
    }

    #[test]
    fn lu_solves_general_system() {
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -1.0, 0.0], &[3.0, 0.0, -2.0]]);
        let lu = a.lu().unwrap();
        let b = [3.0, 0.0, 1.0];
        let x = lu.solve(&b);
        let ax = a.mul_vec(&x);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_rejects_singular() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.lu().is_err());
    }

    #[test]
    fn in_place_cholesky_matches_cloning_api() {
        let a = DenseMatrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]);
        let mut l = DenseMatrix::zeros(1, 1);
        l.copy_values_from(&a);
        l.cholesky_in_place().unwrap();
        assert_eq!(&l, a.cholesky().unwrap().factor());
        let b = [6.0, 8.0, 4.0];
        let mut x = b.to_vec();
        l.chol_solve_in_place(&mut x);
        let ax = a.mul_vec(&x);
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn resize_reset_reuses_storage_and_zeroes() {
        let mut m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.resize_reset(2, 2);
        assert_eq!(m, DenseMatrix::zeros(2, 2));
        m.set(1, 1, 7.0);
        m.resize_reset(1, 1);
        assert_eq!(m.nrows(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn identity_solves_trivially() {
        let i3 = DenseMatrix::identity(3);
        let chol = i3.cholesky().unwrap();
        assert_eq!(chol.solve(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }
}
