//! Elimination trees and symbolic Cholesky column counts.

use crate::sparse::CscMatrix;

/// Computes the elimination tree of a symmetric matrix given by its **upper
/// triangle** in CSC form (column `k` holds row indices `i <= k`).
///
/// `parent[k]` is the parent of node `k` in the tree, or `usize::MAX` for
/// roots. The elimination tree governs the dependency structure of sparse
/// Cholesky/LDLᵀ factorization.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn elimination_tree(upper: &CscMatrix) -> Vec<usize> {
    assert_eq!(upper.nrows(), upper.ncols(), "matrix must be square");
    let n = upper.ncols();
    let mut parent = vec![usize::MAX; n];
    let mut ancestor = vec![usize::MAX; n];
    for k in 0..n {
        let (rows, _) = upper.col(k);
        for &i in rows {
            // Traverse from i up to the root of its subtree, path-compressing
            // through `ancestor`.
            let mut i = i;
            while i < k {
                let next = ancestor[i];
                ancestor[i] = k;
                if next == usize::MAX {
                    parent[i] = k;
                    break;
                }
                i = next;
            }
        }
    }
    parent
}

/// Postorders a forest given by `parent` pointers (roots have parent
/// `usize::MAX`). Returns `post` such that `post[k]` is the k-th node in
/// postorder.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    // Build child lists (reversed so that the natural order pops first).
    let mut head = vec![usize::MAX; n];
    let mut next = vec![usize::MAX; n];
    for j in (0..n).rev() {
        let p = parent[j];
        if p != usize::MAX {
            next[j] = head[p];
            head[p] = j;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for root in 0..n {
        if parent[root] != usize::MAX {
            continue;
        }
        stack.push(root);
        while let Some(&node) = stack.last() {
            let child = head[node];
            if child == usize::MAX {
                post.push(node);
                stack.pop();
            } else {
                head[node] = next[child];
                stack.push(child);
            }
        }
    }
    post
}

/// Counts the number of nonzeros in each column of the Cholesky factor `L`
/// (excluding the diagonal) of the symmetric matrix whose **upper triangle**
/// is given, using the row-subtree characterization.
///
/// This quadratic-free implementation walks each row's subtree, which is
/// `O(|L|)` total — fast enough for the problem sizes in this crate and
/// simpler than the skeleton-matrix algorithm.
pub fn column_counts(upper: &CscMatrix, parent: &[usize]) -> Vec<usize> {
    let n = upper.ncols();
    let mut counts = vec![0usize; n];
    let mut mark = vec![usize::MAX; n];
    for k in 0..n {
        mark[k] = k;
        let (rows, _) = upper.col(k);
        for &i in rows {
            let mut i = i;
            while i < k && mark[i] != k {
                mark[i] = k;
                counts[i] += 1;
                i = parent[i];
                if i == usize::MAX {
                    break;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    /// Upper triangle of the arrowhead matrix with dense last row/col.
    fn arrowhead(n: usize) -> CscMatrix {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
        }
        for i in 0..n - 1 {
            t.push(i, n - 1, 1.0);
        }
        t.to_csc()
    }

    #[test]
    fn etree_of_arrowhead_is_star() {
        let a = arrowhead(5);
        let parent = elimination_tree(&a);
        assert_eq!(parent, vec![4, 4, 4, 4, usize::MAX]);
    }

    #[test]
    fn etree_of_tridiagonal_is_path() {
        let n = 6;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let parent = elimination_tree(&t.to_csc());
        for i in 0..n - 1 {
            assert_eq!(parent[i], i + 1);
        }
        assert_eq!(parent[n - 1], usize::MAX);
    }

    #[test]
    fn postorder_visits_children_before_parents() {
        let a = arrowhead(5);
        let parent = elimination_tree(&a);
        let post = postorder(&parent);
        assert_eq!(post.len(), 5);
        let pos: Vec<usize> = {
            let mut pos = vec![0; 5];
            for (idx, &node) in post.iter().enumerate() {
                pos[node] = idx;
            }
            pos
        };
        for k in 0..5 {
            if parent[k] != usize::MAX {
                assert!(pos[k] < pos[parent[k]], "child {k} after parent");
            }
        }
    }

    #[test]
    fn column_counts_arrowhead() {
        // For the arrowhead, every column except the last has exactly one
        // below-diagonal entry in L (the last row), with no fill.
        let a = arrowhead(5);
        let parent = elimination_tree(&a);
        let counts = column_counts(&a, &parent);
        assert_eq!(counts, vec![1, 1, 1, 1, 0]);
    }

    #[test]
    fn column_counts_dense_block() {
        // Fully dense 4x4: column k of L has n-1-k below-diagonal entries.
        let n = 4;
        let mut t = Triplets::new(n, n);
        for j in 0..n {
            for i in 0..=j {
                t.push(i, j, 1.0 + (i == j) as i32 as f64 * 3.0);
            }
        }
        let u = t.to_csc();
        let parent = elimination_tree(&u);
        let counts = column_counts(&u, &parent);
        assert_eq!(counts, vec![3, 2, 1, 0]);
    }
}
