//! Sparse LDLᵀ factorization with separate symbolic and numeric phases.
//!
//! This is the factorization behind the interior-point normal equations
//! `A·D·Aᵀ Δy = r`. The algorithm follows the classic up-looking LDLᵀ
//! (Davis, *Direct Methods for Sparse Linear Systems*): a one-pass symbolic
//! analysis computes the elimination tree and exact column counts, and the
//! numeric phase computes one row of `L` per step by walking row subtrees.

use crate::sparse::CscMatrix;
use crate::{Error, Result};

/// Computes the **upper triangle** of the symmetrically permuted matrix
/// `C = P·A·Pᵀ` from the **lower triangle** of `A`, together with a mapping
/// from entries of `lower` to entries of `C` so the permutation can be
/// re-applied to new values with the same pattern in O(nnz).
///
/// `pinv[old] = new` is the inverse permutation.
///
/// # Panics
///
/// Panics if `lower` is not square or `pinv` has the wrong length.
pub fn symperm_upper(lower: &CscMatrix, pinv: &[usize]) -> (CscMatrix, Vec<usize>) {
    let n = lower.ncols();
    assert_eq!(lower.nrows(), n, "matrix must be square");
    assert_eq!(pinv.len(), n, "permutation length mismatch");
    let nnz = lower.nnz();
    // First pass: count entries per destination column.
    let mut colcount = vec![0usize; n];
    for j in 0..n {
        let (rows, _) = lower.col(j);
        for &i in rows {
            let (ni, nj) = (pinv[i], pinv[j]);
            let col = ni.max(nj);
            colcount[col] += 1;
        }
    }
    let mut colptr = vec![0usize; n + 1];
    for c in 0..n {
        colptr[c + 1] = colptr[c] + colcount[c];
    }
    // Second pass: scatter (row, source-index) pairs.
    let mut entries: Vec<(usize, usize)> = vec![(0, 0); nnz]; // (row, src idx)
    let mut next = colptr.clone();
    let mut p = 0usize;
    for j in 0..n {
        let (rows, _) = lower.col(j);
        for &i in rows {
            let (ni, nj) = (pinv[i], pinv[j]);
            let (row, col) = if ni <= nj { (ni, nj) } else { (nj, ni) };
            let q = next[col];
            entries[q] = (row, p);
            next[col] += 1;
            p += 1;
        }
    }
    // Sort rows within each column; build the source→destination map.
    let mut rowind = vec![0usize; nnz];
    let mut map = vec![0usize; nnz];
    for c in 0..n {
        let range = colptr[c]..colptr[c + 1];
        entries[range.clone()].sort_unstable_by_key(|&(r, _)| r);
        for (dst, &(r, src)) in range.clone().zip(entries[range.clone()].iter()) {
            rowind[dst] = r;
            map[src] = dst;
        }
    }
    // Values: apply the map once for the caller's convenience.
    let mut values = vec![0.0; nnz];
    apply_symperm_values(lower.values(), &map, &mut values);
    let upper = CscMatrix::from_raw_parts(n, n, colptr, rowind, values);
    (upper, map)
}

/// Re-applies a [`symperm_upper`] value mapping to fresh `lower` values.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn apply_symperm_values(lower_values: &[f64], map: &[usize], out: &mut [f64]) {
    assert_eq!(lower_values.len(), map.len(), "map length mismatch");
    assert_eq!(out.len(), map.len(), "output length mismatch");
    for (src, &dst) in map.iter().enumerate() {
        out[dst] = lower_values[src];
    }
}

/// Symbolic analysis of an LDLᵀ factorization: elimination tree, column
/// counts, and the (optional) fill-reducing permutation, computed once for a
/// sparsity pattern and reused across numeric refactorizations.
///
/// # Example
///
/// ```
/// use optim::sparse::Triplets;
/// use optim::linalg::LdlSymbolic;
///
/// # fn main() -> Result<(), optim::Error> {
/// // Lower triangle of a tridiagonal SPD matrix.
/// let n = 4;
/// let mut t = Triplets::new(n, n);
/// for i in 0..n {
///     t.push(i, i, 2.0);
///     if i + 1 < n { t.push(i + 1, i, -1.0); }
/// }
/// let a = t.to_csc();
/// let sym = LdlSymbolic::new(&a, None);
/// let f = sym.factor(&a)?;
/// let x = f.solve(&[1.0, 0.0, 0.0, 1.0]);
/// // Verify A x = b.
/// assert!((2.0 * x[0] - x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LdlSymbolic {
    n: usize,
    /// perm[new] = old.
    perm: Vec<usize>,
    /// Upper triangle of the permuted matrix (pattern + scratch values).
    upper: CscMatrix,
    /// Map from `lower` entry index to `upper` entry index.
    map: Vec<usize>,
    /// Elimination tree of the permuted matrix.
    parent: Vec<usize>,
    /// Column pointers of L (length n+1), from exact column counts.
    lcolptr: Vec<usize>,
}

impl LdlSymbolic {
    /// Analyzes the pattern of the **lower triangle** `lower` under an
    /// optional fill-reducing permutation `perm` (`perm[new] = old`; pass
    /// `None` for the natural order).
    ///
    /// # Panics
    ///
    /// Panics if `lower` is not square or `perm` is not a permutation of
    /// `0..n`.
    pub fn new(lower: &CscMatrix, perm: Option<Vec<usize>>) -> Self {
        let n = lower.ncols();
        assert_eq!(lower.nrows(), n, "matrix must be square");
        let perm = perm.unwrap_or_else(|| (0..n).collect());
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut pinv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < n && pinv[old] == usize::MAX, "invalid permutation");
            pinv[old] = new;
        }
        let (upper, map) = symperm_upper(lower, &pinv);
        let _ = pinv;
        // LDL symbolic: etree + column counts in one sweep.
        let mut parent = vec![usize::MAX; n];
        let mut lnz = vec![0usize; n];
        let mut flag = vec![usize::MAX; n];
        for k in 0..n {
            flag[k] = k;
            let (rows, _) = upper.col(k);
            for &ri in rows {
                let mut i = ri;
                while i < k && flag[i] != k {
                    if parent[i] == usize::MAX {
                        parent[i] = k;
                    }
                    lnz[i] += 1;
                    flag[i] = k;
                    i = parent[i];
                }
            }
        }
        let mut lcolptr = vec![0usize; n + 1];
        for k in 0..n {
            lcolptr[k + 1] = lcolptr[k] + lnz[k];
        }
        LdlSymbolic {
            n,
            perm,
            upper,
            map,
            parent,
            lcolptr,
        }
    }

    /// Dimension of the matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of below-diagonal nonzeros the factor `L` will have.
    pub fn factor_nnz(&self) -> usize {
        *self.lcolptr.last().unwrap()
    }

    /// Numerically factors `lower` (same pattern as analyzed) into `L·D·Lᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if a non-positive pivot appears — the
    /// matrix is not positive definite to working precision. (The interior
    /// point solvers guarantee positive definiteness via diagonal
    /// regularization.)
    ///
    /// # Panics
    ///
    /// Panics if `lower` has a different nonzero count than the analyzed
    /// pattern.
    pub fn factor(&self, lower: &CscMatrix) -> Result<LdlFactor> {
        let n = self.n;
        // Refresh permuted values.
        let mut upper = self.upper.clone();
        apply_symperm_values(lower.values(), &self.map, upper.values_mut());

        let lnz_total = self.factor_nnz();
        let mut li = vec![0usize; lnz_total];
        let mut lx = vec![0.0f64; lnz_total];
        let mut d = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut pattern = vec![0usize; n];
        let mut flag = vec![usize::MAX; n];
        let mut lfill = self.lcolptr[..n].to_vec(); // next insert position per column

        for k in 0..n {
            let mut top = n;
            flag[k] = k;
            let (rows, vals) = upper.col(k);
            let mut dk = 0.0;
            for (idx, &i0) in rows.iter().enumerate() {
                if i0 == k {
                    dk = vals[idx];
                    continue;
                }
                debug_assert!(i0 < k);
                y[i0] += vals[idx];
                // Walk up the etree, pushing the path (it will be reversed
                // into topological order in `pattern`).
                let mut len = 0usize;
                let mut i = i0;
                // Reuse the tail of `pattern` as a scratch stack via a local
                // buffer to keep the standard LDL structure.
                let mut stack = [0usize; 0];
                let _ = &mut stack;
                let mut path = Vec::with_capacity(8);
                while flag[i] != k {
                    path.push(i);
                    flag[i] = k;
                    len += 1;
                    i = self.parent[i];
                    if i == usize::MAX {
                        break;
                    }
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    pattern[top] = path[len];
                }
            }
            d[k] = dk;
            for &i in &pattern[top..n] {
                let yi = y[i];
                y[i] = 0.0;
                let p2 = lfill[i];
                for p in self.lcolptr[i]..p2 {
                    y[li[p]] -= lx[p] * yi;
                }
                let lki = yi / d[i];
                d[k] -= lki * yi;
                li[p2] = k;
                lx[p2] = lki;
                lfill[i] += 1;
            }
            if !(d[k] > 0.0) || !d[k].is_finite() {
                return Err(Error::Numerical(format!(
                    "non-positive pivot {:.3e} at column {k} in sparse LDL",
                    d[k]
                )));
            }
        }
        Ok(LdlFactor {
            n,
            lcolptr: self.lcolptr.clone(),
            li,
            lx,
            d,
            perm: self.perm.clone(),
        })
    }
}

/// A numeric LDLᵀ factorization produced by [`LdlSymbolic::factor`].
#[derive(Debug, Clone)]
pub struct LdlFactor {
    n: usize,
    lcolptr: Vec<usize>,
    li: Vec<usize>,
    lx: Vec<f64>,
    d: Vec<f64>,
    /// perm[new] = old.
    perm: Vec<usize>,
}

impl LdlFactor {
    /// Solves `A x = b` using the factorization of `P·A·Pᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factor dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "dimension mismatch in solve");
        let n = self.n;
        // y = P b.
        let mut y: Vec<f64> = self.perm.iter().map(|&old| b[old]).collect();
        // Forward solve L y' = y (unit diagonal).
        for j in 0..n {
            let yj = y[j];
            if yj != 0.0 {
                for p in self.lcolptr[j]..self.lcolptr[j + 1] {
                    y[self.li[p]] -= self.lx[p] * yj;
                }
            }
        }
        // Diagonal.
        for j in 0..n {
            y[j] /= self.d[j];
        }
        // Backward solve Lᵀ x = y.
        for j in (0..n).rev() {
            let mut s = y[j];
            for p in self.lcolptr[j]..self.lcolptr[j + 1] {
                s -= self.lx[p] * y[self.li[p]];
            }
            y[j] = s;
        }
        // x = Pᵀ y.
        let mut x = vec![0.0; n];
        for (new, &old) in self.perm.iter().enumerate() {
            x[old] = y[new];
        }
        x
    }

    /// The diagonal `D` of the factorization (in permuted order).
    pub fn diagonal(&self) -> &[f64] {
        &self.d
    }

    /// Below-diagonal nonzero count of `L`.
    pub fn nnz(&self) -> usize {
        self.lx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    /// Lower triangle of a random-ish SPD matrix built as B·Bᵀ + n·I.
    fn spd_lower(n: usize, seed: u64) -> CscMatrix {
        // Simple xorshift for deterministic pseudo-random entries.
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 - 0.5
        };
        let mut dense = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..n {
                if (i + 3 * j) % 4 == 0 {
                    dense[i][j] = next();
                }
            }
        }
        // S = B Bᵀ + n I.
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..n {
                    s += dense[i][k] * dense[j][k];
                }
                if i == j {
                    s += n as f64;
                }
                if s != 0.0 {
                    t.push(i, j, s);
                }
            }
        }
        t.to_csc()
    }

    fn full_from_lower(lower: &CscMatrix) -> Vec<Vec<f64>> {
        let n = lower.ncols();
        let mut f = vec![vec![0.0; n]; n];
        for j in 0..n {
            let (rows, vals) = lower.col(j);
            for (p, &i) in rows.iter().enumerate() {
                f[i][j] = vals[p];
                f[j][i] = vals[p];
            }
        }
        f
    }

    #[test]
    fn factor_and_solve_natural_order() {
        let a = spd_lower(20, 42);
        let sym = LdlSymbolic::new(&a, None);
        let f = sym.factor(&a).unwrap();
        let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let x = f.solve(&b);
        let full = full_from_lower(&a);
        for i in 0..20 {
            let mut ax = 0.0;
            for j in 0..20 {
                ax += full[i][j] * x[j];
            }
            assert!((ax - b[i]).abs() < 1e-8, "row {i}: {ax} vs {}", b[i]);
        }
    }

    #[test]
    fn factor_and_solve_with_permutation() {
        let a = spd_lower(15, 7);
        let n = 15;
        // Reverse permutation.
        let perm: Vec<usize> = (0..n).rev().collect();
        let sym = LdlSymbolic::new(&a, Some(perm));
        let f = sym.factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let x = f.solve(&b);
        let full = full_from_lower(&a);
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| full[i][j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn refactor_with_new_values_same_pattern() {
        let a = spd_lower(12, 3);
        let sym = LdlSymbolic::new(&a, None);
        let f1 = sym.factor(&a).unwrap();
        // Scale values by 2: solution should halve.
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 2.0;
        }
        let f2 = sym.factor(&a2).unwrap();
        let b = vec![1.0; 12];
        let x1 = f1.solve(&b);
        let x2 = f2.solve(&b);
        for i in 0..12 {
            assert!((x1[i] - 2.0 * x2[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 1.0); // eigenvalues 3, -1
        let a = t.to_csc();
        let sym = LdlSymbolic::new(&a, None);
        assert!(sym.factor(&a).is_err());
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let n = 50;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.to_csc();
        let sym = LdlSymbolic::new(&a, None);
        assert_eq!(sym.factor_nnz(), n - 1);
    }

    #[test]
    fn symperm_identity_is_transpose_to_upper() {
        let a = spd_lower(8, 5);
        let pinv: Vec<usize> = (0..8).collect();
        let (upper, _) = symperm_upper(&a, &pinv);
        assert_eq!(upper, a.transpose());
    }
}
