//! Fill-reducing symmetric orderings.

use crate::sparse::CscMatrix;
use std::collections::BTreeSet;

/// Computes a minimum-degree ordering of the symmetric matrix whose **lower
/// triangle** is given. Returns `perm` with `perm[new] = old`, suitable for
/// [`crate::linalg::LdlSymbolic::new`].
///
/// This is a straightforward elimination-graph minimum-degree (no quotient
/// graph, no supernode detection). Adjacency lists are kept as sorted vectors
/// and merged on elimination; a `BTreeSet<(degree, node)>` serves as the
/// priority queue. It is not as fast as AMD but is dependable and more than
/// adequate for the normal-equation matrices this crate produces (tens of
/// thousands of rows with short cliques).
///
/// # Panics
///
/// Panics if the matrix is not square.
///
/// # Example
///
/// ```
/// use optim::sparse::Triplets;
/// use optim::linalg::{min_degree_ordering, LdlSymbolic};
///
/// // Arrowhead matrix: natural order fills in completely, minimum degree
/// // keeps the factor as sparse as the matrix.
/// let n = 30;
/// let mut t = Triplets::new(n, n);
/// for i in 0..n {
///     t.push(i, i, 10.0);
///     if i > 0 { t.push(i, 0, 1.0); }
/// }
/// let a = t.to_csc();
/// let natural = LdlSymbolic::new(&a, None);
/// let ordered = LdlSymbolic::new(&a, Some(min_degree_ordering(&a)));
/// assert!(ordered.factor_nnz() < natural.factor_nnz());
/// ```
pub fn min_degree_ordering(lower: &CscMatrix) -> Vec<usize> {
    let n = lower.ncols();
    assert_eq!(lower.nrows(), n, "matrix must be square");

    // Build symmetric adjacency (no self loops), sorted.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        let (rows, _) = lower.col(j);
        for &i in rows {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }

    let mut alive = vec![true; n];
    let mut queue: BTreeSet<(usize, usize)> = (0..n).map(|v| (adj[v].len(), v)).collect();
    let mut perm = Vec::with_capacity(n);
    let mut scratch: Vec<usize> = Vec::new();

    while let Some(&(_, v)) = queue.iter().next() {
        queue.remove(&(adj[v].len(), v));
        alive[v] = false;
        perm.push(v);
        // Clique = alive neighbors of v.
        let clique: Vec<usize> = adj[v].iter().copied().filter(|&u| alive[u]).collect();
        for &u in &clique {
            let old_deg = adj[u].len();
            // adj[u] := (alive(adj[u]) ∪ clique) \ {u, v}, merged sorted.
            scratch.clear();
            {
                let a = &adj[u];
                let b = &clique;
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() || j < b.len() {
                    let pick_a = match (a.get(i), b.get(j)) {
                        (Some(&x), Some(&y)) => {
                            if x == y {
                                j += 1;
                                true
                            } else {
                                x < y
                            }
                        }
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => break,
                    };
                    let w = if pick_a {
                        let w = a[i];
                        i += 1;
                        w
                    } else {
                        let w = b[j];
                        j += 1;
                        w
                    };
                    if w != u && w != v && alive[w] {
                        scratch.push(w);
                    }
                }
            }
            queue.remove(&(old_deg, u));
            std::mem::swap(&mut adj[u], &mut scratch);
            queue.insert((adj[u].len(), u));
        }
        adj[v] = Vec::new(); // free memory for the eliminated node
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::LdlSymbolic;
    use crate::sparse::Triplets;

    fn is_permutation(p: &[usize]) -> bool {
        let mut seen = vec![false; p.len()];
        for &x in p {
            if x >= p.len() || seen[x] {
                return false;
            }
            seen[x] = true;
        }
        true
    }

    #[test]
    fn returns_a_valid_permutation() {
        let mut t = Triplets::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        t.push(4, 0, 1.0);
        t.push(3, 1, 1.0);
        let a = t.to_csc();
        let p = min_degree_ordering(&a);
        assert!(is_permutation(&p));
    }

    #[test]
    fn diagonal_matrix_any_order_ok() {
        let mut t = Triplets::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        let p = min_degree_ordering(&t.to_csc());
        assert!(is_permutation(&p));
    }

    #[test]
    fn arrowhead_reordering_eliminates_fill() {
        // Arrowhead with the hub FIRST in natural order -> full fill.
        let n = 20;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 10.0);
            if i > 0 {
                t.push(i, 0, 1.0);
            }
        }
        let a = t.to_csc();
        let natural = LdlSymbolic::new(&a, None);
        assert_eq!(natural.factor_nnz(), n * (n - 1) / 2); // dense factor
        let perm = min_degree_ordering(&a);
        let ordered = LdlSymbolic::new(&a, Some(perm));
        assert_eq!(ordered.factor_nnz(), n - 1); // hub eliminated last
    }

    #[test]
    fn grid_graph_fill_is_reduced() {
        // 2-D 8x8 grid Laplacian (+4I): min-degree should beat natural order.
        let side = 8;
        let n = side * side;
        let mut t = Triplets::new(n, n);
        let idx = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                t.push(idx(r, c), idx(r, c), 8.0);
                if r + 1 < side {
                    t.push(idx(r + 1, c), idx(r, c), -1.0);
                }
                if c + 1 < side {
                    t.push(idx(r, c + 1), idx(r, c), -1.0);
                }
            }
        }
        let a = t.to_csc();
        let natural = LdlSymbolic::new(&a, None).factor_nnz();
        let ordered = LdlSymbolic::new(&a, Some(min_degree_ordering(&a))).factor_nnz();
        assert!(
            ordered <= natural,
            "min-degree ({ordered}) should not exceed natural ({natural})"
        );
    }

    #[test]
    fn solve_after_min_degree_matches_natural() {
        let n = 12;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(i, i - 1, 1.0);
            }
            if i >= 5 {
                t.push(i, i - 5, 0.5);
            }
        }
        let a = t.to_csc();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let x_nat = LdlSymbolic::new(&a, None).factor(&a).unwrap().solve(&b);
        let perm = min_degree_ordering(&a);
        let x_ord = LdlSymbolic::new(&a, Some(perm))
            .factor(&a)
            .unwrap()
            .solve(&b);
        for i in 0..n {
            assert!((x_nat[i] - x_ord[i]).abs() < 1e-9);
        }
    }
}
