//! Dense and sparse factorizations.
//!
//! * [`DenseMatrix`] with Cholesky and LU factorizations for the small dense
//!   Schur-complement systems of the convex barrier solver.
//! * [`LdlSymbolic`]/[`LdlFactor`] — sparse LDLᵀ with a separate symbolic
//!   analysis (elimination tree + column counts) reused across the numeric
//!   refactorizations of an interior-point run.
//! * [`min_degree_ordering`] — a fill-reducing symmetric ordering.

mod dense;
mod etree;
mod ldl;
mod ordering;

pub use dense::{DenseCholesky, DenseLu, DenseMatrix};
pub use etree::{column_counts, elimination_tree, postorder};
pub use ldl::{symperm_upper, LdlFactor, LdlSymbolic};
pub use ordering::min_degree_ordering;
