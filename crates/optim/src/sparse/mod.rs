//! Sparse matrix types and kernels.
//!
//! The interior-point solvers in this crate work with matrices in
//! compressed-sparse-column ([`CscMatrix`]) form. Matrices are assembled
//! incrementally in coordinate form with [`Triplets`] and converted once.
//! [`ops`] provides the symmetric products (`A·D·Aᵀ`) that dominate
//! interior-point iteration cost.

mod csc;
pub mod ops;
mod triplet;

pub use csc::CscMatrix;
pub use triplet::Triplets;
