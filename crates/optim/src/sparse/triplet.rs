//! Coordinate-form (COO) matrix assembly.

use crate::sparse::CscMatrix;

/// An incrementally built sparse matrix in coordinate form.
///
/// Duplicate entries are allowed and are summed when converting to CSC with
/// [`Triplets::to_csc`], matching the convention of most sparse toolkits.
///
/// # Example
///
/// ```
/// use optim::sparse::Triplets;
///
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(1, 1, 2.0);
/// t.push(1, 1, 3.0); // duplicates are summed
/// let a = t.to_csc();
/// assert_eq!(a.get(1, 1), 5.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl Triplets {
    /// Creates an empty assembler for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Triplets {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an assembler with preallocated capacity for `nnz` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        Triplets {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows of the assembled matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the assembled matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of entries pushed so far (duplicates counted individually).
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Returns `true` when no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Records `value` at `(row, col)`. Zero values are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "triplet ({row},{col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        if value != 0.0 {
            self.rows.push(row);
            self.cols.push(col);
            self.vals.push(value);
        }
    }

    /// Converts to compressed-sparse-column form, summing duplicates.
    pub fn to_csc(&self) -> CscMatrix {
        // Count entries per column.
        let mut colptr = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            colptr[c + 1] += 1;
        }
        for c in 0..self.ncols {
            colptr[c + 1] += colptr[c];
        }
        // Scatter.
        let nnz = self.vals.len();
        let mut rowind = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut next = colptr.clone();
        for k in 0..nnz {
            let c = self.cols[k];
            let p = next[c];
            rowind[p] = self.rows[k];
            values[p] = self.vals[k];
            next[c] += 1;
        }
        // Sort rows within each column and sum duplicates.
        let mut out_colptr = vec![0usize; self.ncols + 1];
        let mut out_rowind = Vec::with_capacity(nnz);
        let mut out_values = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for c in 0..self.ncols {
            scratch.clear();
            for p in colptr[c]..colptr[c + 1] {
                scratch.push((rowind[p], values[p]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == r {
                    v += scratch[j].1;
                    j += 1;
                }
                if v != 0.0 {
                    out_rowind.push(r);
                    out_values.push(v);
                }
                i = j;
            }
            out_colptr[c + 1] = out_rowind.len();
        }
        CscMatrix::from_raw_parts(self.nrows, self.ncols, out_colptr, out_rowind, out_values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let t = Triplets::new(3, 4);
        assert!(t.is_empty());
        let a = t.to_csc();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 4);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 1.5);
        t.push(0, 1, 2.5);
        t.push(1, 0, -1.0);
        let a = t.to_csc();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 1), 4.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn zeros_are_dropped() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 0.0);
        t.push(1, 1, 1.0);
        t.push(1, 1, -1.0); // cancels to zero
        let a = t.to_csc();
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut t = Triplets::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn rows_sorted_within_columns() {
        let mut t = Triplets::new(4, 1);
        t.push(3, 0, 3.0);
        t.push(1, 0, 1.0);
        t.push(2, 0, 2.0);
        let a = t.to_csc();
        let (rows, vals) = a.col(0);
        assert_eq!(rows, &[1, 2, 3]);
        assert_eq!(vals, &[1.0, 2.0, 3.0]);
    }
}
