//! Compressed-sparse-column matrices.

use std::fmt;

/// An immutable sparse matrix in compressed-sparse-column (CSC) format.
///
/// Row indices within each column are sorted and unique. Construct via
/// [`crate::sparse::Triplets`] or [`CscMatrix::from_raw_parts`].
///
/// # Example
///
/// ```
/// use optim::sparse::Triplets;
///
/// let mut t = Triplets::new(2, 3);
/// t.push(0, 0, 1.0);
/// t.push(1, 1, 2.0);
/// t.push(0, 2, 3.0);
/// let a = t.to_csc();
/// let y = a.mul_vec(&[1.0, 1.0, 1.0]);
/// assert_eq!(y, vec![4.0, 2.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowind: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a matrix from raw CSC arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are structurally inconsistent (wrong `colptr`
    /// length, non-monotone `colptr`, row index out of range, or unsorted /
    /// duplicate rows within a column).
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowind: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(colptr.len(), ncols + 1, "colptr must have ncols+1 entries");
        assert_eq!(colptr[0], 0, "colptr must start at 0");
        assert_eq!(
            *colptr.last().unwrap(),
            rowind.len(),
            "colptr must end at nnz"
        );
        assert_eq!(rowind.len(), values.len(), "rowind/values length mismatch");
        for c in 0..ncols {
            assert!(colptr[c] <= colptr[c + 1], "colptr must be non-decreasing");
            let mut prev = usize::MAX;
            for p in colptr[c]..colptr[c + 1] {
                let r = rowind[p];
                assert!(r < nrows, "row index {r} out of bounds");
                assert!(
                    prev == usize::MAX || r > prev,
                    "rows must be strictly increasing within a column"
                );
                prev = r;
            }
        }
        CscMatrix {
            nrows,
            ncols,
            colptr,
            rowind,
            values,
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowind: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column pointer array (`ncols + 1` entries).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row indices, column-major.
    pub fn rowind(&self) -> &[usize] {
        &self.rowind
    }

    /// Stored values, column-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (pattern is immutable).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of stored entries in each row (length `nrows`). One pass over
    /// the row indices; used to classify row sparsity without materializing
    /// a row-major copy.
    pub fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nrows];
        for &r in &self.rowind {
            counts[r] += 1;
        }
        counts
    }

    /// The (row indices, values) slices of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= ncols`.
    pub fn col(&self, c: usize) -> (&[usize], &[f64]) {
        let range = self.colptr[c]..self.colptr[c + 1];
        (&self.rowind[range.clone()], &self.values[range])
    }

    /// Value at `(row, col)`, 0.0 if not stored. O(log nnz-in-column).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        let (rows, vals) = self.col(col);
        match rows.binary_search(&row) {
            Ok(p) => vals[p],
            Err(_) => 0.0,
        }
    }

    /// Dense matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "dimension mismatch in mul_vec");
        let mut y = vec![0.0; self.nrows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// `y += A x` accumulated into a caller-provided buffer (not cleared).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec_acc(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "dimension mismatch in mul_vec_acc");
        assert_eq!(y.len(), self.nrows, "dimension mismatch in mul_vec_acc");
        for c in 0..self.ncols {
            let xc = x[c];
            if xc == 0.0 {
                continue;
            }
            for p in self.colptr[c]..self.colptr[c + 1] {
                y[self.rowind[p]] += self.values[p] * xc;
            }
        }
    }

    /// `y = A x` into a caller-provided buffer (cleared first).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        self.mul_vec_acc(x, y);
    }

    /// Dense product with the transpose: `y = Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn mul_transpose_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.ncols];
        self.mul_transpose_vec_into(x, &mut y);
        y
    }

    /// `y = Aᵀ x` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_transpose_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.nrows,
            "dimension mismatch in mul_transpose_vec"
        );
        assert_eq!(
            y.len(),
            self.ncols,
            "dimension mismatch in mul_transpose_vec"
        );
        for c in 0..self.ncols {
            let mut acc = 0.0;
            for p in self.colptr[c]..self.colptr[c + 1] {
                acc += self.values[p] * x[self.rowind[p]];
            }
            y[c] = acc;
        }
    }

    /// The transpose as a new CSC matrix.
    pub fn transpose(&self) -> CscMatrix {
        let mut colptr = vec![0usize; self.nrows + 1];
        for &r in &self.rowind {
            colptr[r + 1] += 1;
        }
        for r in 0..self.nrows {
            colptr[r + 1] += colptr[r];
        }
        let mut rowind = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = colptr.clone();
        for c in 0..self.ncols {
            for p in self.colptr[c]..self.colptr[c + 1] {
                let r = self.rowind[p];
                let q = next[r];
                rowind[q] = c;
                values[q] = self.values[p];
                next[r] += 1;
            }
        }
        // Row indices of the transpose are automatically sorted because we
        // sweep source columns in increasing order.
        CscMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            colptr,
            rowind,
            values,
        }
    }

    /// Converts to a dense row-major `Vec<Vec<f64>>` (for tests/debugging).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for c in 0..self.ncols {
            for p in self.colptr[c]..self.colptr[c + 1] {
                d[self.rowind[p]][c] = self.values[p];
            }
        }
        d
    }

    /// Maximum absolute value of stored entries (0.0 when empty).
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

impl fmt::Debug for CscMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CscMatrix {}x{} ({} nnz)",
            self.nrows,
            self.ncols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    fn sample() -> CscMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(2, 0, 4.0);
        t.push(1, 1, 3.0);
        t.push(0, 2, 2.0);
        t.push(2, 2, 5.0);
        t.to_csc()
    }

    #[test]
    fn identity() {
        let i = CscMatrix::identity(3);
        assert_eq!(i.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn mul_vec() {
        let a = sample();
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn mul_transpose_vec() {
        let a = sample();
        assert_eq!(a.mul_transpose_vec(&[1.0, 1.0, 1.0]), vec![5.0, 3.0, 7.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_matches_dense() {
        let a = sample();
        let at = a.transpose();
        let d = a.to_dense();
        let dt = at.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(d[i][j], dt[j][i]);
            }
        }
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let a = sample();
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn max_abs() {
        let a = sample();
        assert_eq!(a.max_abs(), 5.0);
    }
}
