//! Symmetric sparse products for interior-point normal equations.

use crate::sparse::CscMatrix;

/// Precomputed symbolic structure for the product `S = A·D·Aᵀ + δI`
/// (lower triangle, including the diagonal), where `D` is a changing
/// diagonal matrix and the pattern of `A` is fixed.
///
/// Interior-point methods recompute this product at every iteration with a
/// new `D`; splitting the symbolic analysis (pattern union) from the numeric
/// fill makes the per-iteration cost proportional to the flop count only.
///
/// # Example
///
/// ```
/// use optim::sparse::{Triplets, ops::NormalEqProduct};
///
/// let mut t = Triplets::new(2, 3);
/// t.push(0, 0, 1.0);
/// t.push(0, 1, 1.0);
/// t.push(1, 1, 1.0);
/// t.push(1, 2, 2.0);
/// let a = t.to_csc();
/// let mut p = NormalEqProduct::new(&a);
/// let s = p.compute(&[1.0, 1.0, 1.0], 0.0);
/// // S = A Aᵀ = [[2, 1], [1, 5]] (lower triangle stored)
/// assert_eq!(s.get(0, 0), 2.0);
/// assert_eq!(s.get(1, 0), 1.0);
/// assert_eq!(s.get(1, 1), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct NormalEqProduct {
    /// Aᵀ in CSC form: column j holds row j of A.
    at: CscMatrix,
    /// A itself (columns used for scatter).
    a: CscMatrix,
    /// Lower-triangular pattern of S with a value buffer reused across calls.
    s: CscMatrix,
}

impl NormalEqProduct {
    /// Performs the symbolic analysis of `A·Aᵀ` for matrix `a`.
    ///
    /// The diagonal is always structurally present so that the `δI`
    /// regularizer can be added even for empty rows.
    pub fn new(a: &CscMatrix) -> Self {
        let m = a.nrows();
        let at = a.transpose();
        let mut colptr = vec![0usize; m + 1];
        let mut rowind: Vec<usize> = Vec::new();
        let mut mark = vec![usize::MAX; m];
        // Column j of S (lower triangle): union over k in nz(row j of A) of
        // { i in nz(A[:,k]) : i >= j }.
        for j in 0..m {
            // Diagonal always present.
            mark[j] = j;
            let col_start = rowind.len();
            rowind.push(j);
            let (ks, _) = at.col(j);
            for &k in ks {
                let (is, _) = a.col(k);
                // Rows are sorted; skip those < j.
                let lo = is.partition_point(|&i| i < j);
                for &i in &is[lo..] {
                    if mark[i] != j {
                        mark[i] = j;
                        rowind.push(i);
                    }
                }
            }
            rowind[col_start..].sort_unstable();
            colptr[j + 1] = rowind.len();
        }
        let values = vec![0.0; rowind.len()];
        let s = CscMatrix::from_raw_parts(m, m, colptr, rowind, values);
        NormalEqProduct {
            at,
            a: a.clone(),
            s,
        }
    }

    /// Number of rows/cols of the product matrix.
    pub fn dim(&self) -> usize {
        self.s.nrows()
    }

    /// The lower-triangular pattern of `S` (values from the latest
    /// [`NormalEqProduct::compute`] call, or zeros).
    pub fn pattern(&self) -> &CscMatrix {
        &self.s
    }

    /// Computes `S = A·diag(d)·Aᵀ + reg·I` numerically, returning the
    /// lower-triangular result. The returned reference borrows an internal
    /// buffer that is overwritten by the next call.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != A.ncols()`.
    pub fn compute(&mut self, d: &[f64], reg: f64) -> &CscMatrix {
        assert_eq!(d.len(), self.a.ncols(), "diagonal length mismatch");
        let m = self.s.nrows();
        let mut work = vec![0.0f64; m];
        // Zero all values first.
        self.s.values_mut().fill(0.0);
        for j in 0..m {
            // Accumulate column j of S into the dense workspace.
            let (ks, ajk) = self.at.col(j);
            for (idx, &k) in ks.iter().enumerate() {
                let scale = ajk[idx] * d[k];
                if scale == 0.0 {
                    continue;
                }
                let (is, aik) = self.a.col(k);
                let lo = is.partition_point(|&i| i < j);
                for (off, &i) in is[lo..].iter().enumerate() {
                    work[i] += scale * aik[lo + off];
                }
            }
            work[j] += reg;
            // Gather into the fixed pattern.
            let start = self.s.colptr()[j];
            let end = self.s.colptr()[j + 1];
            for p in start..end {
                let i = self.s.rowind()[p];
                self.s.values_mut()[p] = work[i];
                work[i] = 0.0;
            }
        }
        &self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    fn dense_adat(a: &CscMatrix, d: &[f64], reg: f64) -> Vec<Vec<f64>> {
        let m = a.nrows();
        let n = a.ncols();
        let ad = a.to_dense();
        let mut s = vec![vec![0.0; m]; m];
        for i in 0..m {
            for j in 0..m {
                for k in 0..n {
                    s[i][j] += ad[i][k] * d[k] * ad[j][k];
                }
            }
            s[i][i] += reg;
        }
        s
    }

    #[test]
    fn matches_dense_reference() {
        let mut t = Triplets::new(3, 4);
        t.push(0, 0, 1.0);
        t.push(0, 2, -2.0);
        t.push(1, 1, 3.0);
        t.push(1, 2, 1.0);
        t.push(2, 3, 4.0);
        t.push(2, 0, 0.5);
        let a = t.to_csc();
        let d = [2.0, 1.0, 0.5, 3.0];
        let mut p = NormalEqProduct::new(&a);
        let s = p.compute(&d, 0.25);
        let reference = dense_adat(&a, &d, 0.25);
        for i in 0..3 {
            for j in 0..=i {
                assert!(
                    (s.get(i, j) - reference[i][j]).abs() < 1e-12,
                    "mismatch at ({i},{j}): {} vs {}",
                    s.get(i, j),
                    reference[i][j]
                );
            }
        }
    }

    #[test]
    fn recompute_with_new_diagonal() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0);
        let a = t.to_csc();
        let mut p = NormalEqProduct::new(&a);
        let s1 = p.compute(&[1.0, 1.0], 0.0);
        assert_eq!(s1.get(1, 1), 2.0);
        let s2 = p.compute(&[2.0, 3.0], 0.0);
        assert_eq!(s2.get(0, 0), 2.0);
        assert_eq!(s2.get(1, 0), 2.0);
        assert_eq!(s2.get(1, 1), 5.0);
    }

    #[test]
    fn empty_row_gets_regularizer() {
        // Row 1 of A is empty; diagonal must still exist for the regularizer.
        let mut t = Triplets::new(2, 1);
        t.push(0, 0, 1.0);
        let a = t.to_csc();
        let mut p = NormalEqProduct::new(&a);
        let s = p.compute(&[1.0], 1e-8);
        assert!(s.get(1, 1) > 0.0);
    }
}
