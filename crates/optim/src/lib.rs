//! `optim` — a self-contained convex-optimization substrate.
//!
//! This crate replaces the Pyomo + IPOPT/GLPK stack used by the ICDCS 2017
//! paper *Online Resource Allocation for Arbitrary User Mobility in
//! Distributed Edge Clouds*. It provides everything needed to solve the
//! paper's per-slot convex program ℙ₂, the per-slot greedy LPs, and the
//! horizon-wide offline LP, built from scratch:
//!
//! * [`sparse`] — compressed sparse column matrices and symmetric products.
//! * [`linalg`] — dense Cholesky/LU, sparse LDLᵀ factorization with
//!   elimination trees and a fill-reducing minimum-degree ordering.
//! * [`lp`] — a sparse Mehrotra predictor-corrector interior-point solver
//!   and an independent dense two-phase simplex used as a cross-check oracle.
//! * [`convex`] — a log-barrier path-following Newton solver for separable
//!   convex objectives (plus "group" terms `φ(Σ xᵢ)`) over linear
//!   inequality constraints, exploiting diagonal-plus-low-rank Hessian
//!   structure via a dense Schur complement.
//! * [`model`] — a small modeling layer ("Pyomo-lite") for building linear
//!   programs from named variables and linear expressions.
//! * [`resilience`] — retry policies that re-solve with escalating
//!   relaxations on iteration-limit or numerical breakdown and report what
//!   happened in a structured [`resilience::SolveReport`].
//! * [`parallel`] — scoped work-queue parallel maps sized by a shared
//!   process-global [`parallel::WorkerBudget`], so nested fan-outs (sweep
//!   points × repetitions × solver threads) never oversubscribe cores.
//! * [`budget`] — cooperative wall-clock/iteration budgets
//!   ([`budget::SolveBudget`]) checked at the top of every Newton /
//!   predictor-corrector iteration, so a hanging solve surrenders at its
//!   deadline with the best iterate it reached instead of stalling the
//!   caller.
//! * [`dual`] — the projected-subgradient dual-ascent driver
//!   ([`dual::DualAscent`]) behind price-coordinated decompositions:
//!   step-size schedule, best-round salvage bookkeeping, and per-round
//!   budget slicing for deadline-bounded coordination loops.
//!
//! # Example
//!
//! Solve `min -x - 2y  s.t. x + y <= 4, x <= 3, x,y >= 0`:
//!
//! ```
//! use optim::model::Model;
//!
//! # fn main() -> Result<(), optim::Error> {
//! let mut m = Model::new();
//! let x = m.var("x");
//! let y = m.var("y");
//! m.minimize(-1.0 * x - 2.0 * y);
//! m.leq(1.0 * x + 1.0 * y, 4.0);
//! m.leq(1.0 * x, 3.0);
//! let sol = m.solve()?;
//! assert!((sol.objective() - (-8.0)).abs() < 1e-6);
//! assert!((sol[y] - 4.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod budget;
pub mod convex;
pub mod dual;
pub mod linalg;
pub mod lp;
pub mod model;
pub mod parallel;
pub mod resilience;
pub mod sparse;

use std::fmt;

/// Errors produced by the solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The problem was proven (primal) infeasible.
    Infeasible,
    /// The problem was proven unbounded below.
    Unbounded,
    /// Dimensions of the supplied data are inconsistent.
    Dimension(String),
    /// The iteration limit was reached before convergence.
    MaxIterations { iterations: usize, residual: f64 },
    /// A factorization or line search broke down numerically.
    Numerical(String),
    /// The supplied starting point is not strictly feasible.
    BadStartingPoint(String),
    /// The problem description itself is invalid (NaN coefficient, …).
    InvalidInput(String),
    /// The solve's [`budget::SolveBudget`] ran out before convergence. The
    /// best iterate reached so far rides along (boxed — it is by far the
    /// largest variant) so callers can salvage a feasible-enough point
    /// instead of getting nothing; `None` when the budget expired before
    /// any iterate existed.
    DeadlineExceeded {
        /// Iterations completed before the budget ran out.
        iterations: usize,
        /// The best iterate reached, if any.
        best: Option<Box<Salvage>>,
    },
}

/// The best iterate a deadline-interrupted solve reached (see
/// [`Error::DeadlineExceeded`]).
///
/// For the barrier solver `x` is always **strictly feasible** (interior
/// methods never leave the feasible region), so a salvaged point can be
/// used as a degraded-but-valid decision; `residual` is the duality-gap
/// bound certified at interruption. For the LP solver the iterate is
/// generally infeasible until convergence — `residual` then reports the
/// worst relative KKT residual and callers should treat `x` as a warm
/// start, not a solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Salvage {
    /// The iterate.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Accuracy bound at interruption (duality gap for the barrier, worst
    /// relative residual for the LP solver).
    pub residual: f64,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Infeasible => write!(f, "problem is infeasible"),
            Error::Unbounded => write!(f, "problem is unbounded"),
            Error::Dimension(s) => write!(f, "dimension mismatch: {s}"),
            Error::MaxIterations {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            Error::Numerical(s) => write!(f, "numerical failure: {s}"),
            Error::BadStartingPoint(s) => write!(f, "starting point not strictly feasible: {s}"),
            Error::InvalidInput(s) => write!(f, "invalid input: {s}"),
            Error::DeadlineExceeded { iterations, best } => write!(
                f,
                "solve budget exhausted after {iterations} iterations ({})",
                match best {
                    Some(s) => format!("best iterate salvaged, residual {:.3e}", s.residual),
                    None => "no iterate to salvage".into(),
                }
            ),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
