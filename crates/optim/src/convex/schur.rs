//! Diagonal-plus-low-rank linear solves via the Woodbury identity, with a
//! user-blocked nested-Schur kernel for arrow-structured coupling matrices.
//!
//! Two kernels solve the same system `(D + Uᵀ E U) dx = r`:
//!
//! * **Dense Woodbury** — forms the full `q × q` Schur complement
//!   `S = E⁻¹ + U D⁻¹ Uᵀ` over the `q` active rows and factors it with one
//!   dense Cholesky. Cost Θ(q³) per solve; right when `q` is small.
//! * **Blocked nested Schur** — exploits *arrow structure*: when a large
//!   subset of rows ("local" rows, e.g. ℙ₂'s per-user demand constraints)
//!   have pairwise-disjoint column supports, the `S_LL` block is diagonal
//!   and those rows can be eliminated in closed form, each a rank-1
//!   downdate of the small coupling block. One solve costs
//!   O(nnz + J·c²) + one c³ Cholesky where `J` is the local-row count and
//!   `c ≤ 2I` the coupling-row count — linear in users instead of cubic.
//!
//! [`SchurKernel::Auto`] (the default) sniffs the pattern at construction
//! and picks the blocked kernel only when the local block is large enough
//! to pay off, so small programs keep the exact dense behavior.

use crate::linalg::DenseMatrix;
use crate::parallel::WorkerBudget;
use crate::sparse::CscMatrix;
use crate::{Error, Result};

/// Rows with `E_i` at or below this are inert: their reciprocal would
/// overflow toward infinity and poison the Schur complement.
const ACTIVE_EPS: f64 = 1e-300;

/// Minimum local-row count before [`SchurKernel::Auto`] switches to the
/// blocked kernel. Below this the dense q³ Cholesky is already cheap and
/// the dense path stays bit-identical with prior releases.
const AUTO_MIN_LOCAL_ROWS: usize = 48;

/// Which factorization kernel a [`DiagPlusLowRank`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchurKernel {
    /// Pick automatically from the coupling pattern: blocked when at least
    /// [`AUTO_MIN_LOCAL_ROWS`] pairwise-disjoint rows exist and they
    /// outnumber the coupling rows; dense otherwise.
    #[default]
    Auto,
    /// Always the dense Woodbury Schur complement.
    Dense,
    /// Always the user-blocked nested-Schur elimination (valid for any
    /// pattern; degenerates gracefully when few rows are local).
    Blocked,
}

/// Solves systems `(D + Uᵀ E U) dx = r` where `D ≻ 0` and `E ⪰ 0` are
/// diagonal and `U` is a fixed `p × n` coupling matrix with `p ≪ n`.
///
/// The barrier solver's Newton matrix has exactly this shape: `D` collects
/// the separable Hessian and the `x ≥ 0` barrier curvature, while `U` stacks
/// the group-indicator rows and the constraint rows of `A`.
///
/// Uses the Woodbury identity
/// `(D + UᵀEU)⁻¹ = D⁻¹ − D⁻¹Uᵀ (E⁻¹ + U D⁻¹ Uᵀ)⁻¹ U D⁻¹`,
/// restricted to rows with `E_i > 0` (zero-curvature rows contribute
/// nothing). The inner `(E⁻¹ + U D⁻¹ Uᵀ)⁻¹` apply goes through one of two
/// kernels — see the [module docs](self) and [`SchurKernel`].
///
/// # Example
///
/// ```
/// use optim::sparse::Triplets;
/// use optim::convex::DiagPlusLowRank;
///
/// # fn main() -> Result<(), optim::Error> {
/// // U = [1 1], so M = diag(2,2) + 3·[1 1]ᵀ[1 1] = [[5,3],[3,5]].
/// let mut t = Triplets::new(1, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 1, 1.0);
/// let solver = DiagPlusLowRank::new(t.to_csc());
/// let dx = solver.solve(&[2.0, 2.0], &[3.0], &[8.0, 8.0])?;
/// assert!((dx[0] - 1.0).abs() < 1e-12 && (dx[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiagPlusLowRank {
    /// The coupling matrix `U` (p × n).
    u: CscMatrix,
    /// The kernel the caller asked for.
    requested: SchurKernel,
    /// Elimination plan — `Some` exactly when the blocked kernel is active.
    plan: Option<BlockedPlan>,
    /// Worker-thread target for the blocked elimination (1 = sequential).
    threads: usize,
}

impl DiagPlusLowRank {
    /// Wraps a fixed coupling matrix `U` (p × n) with [`SchurKernel::Auto`]
    /// kernel selection.
    pub fn new(u: CscMatrix) -> Self {
        Self::with_kernel(u, SchurKernel::Auto)
    }

    /// Wraps `U` with an explicit kernel choice. The structure analysis for
    /// the blocked kernel runs once, here; per-solve work is pattern-reuse.
    pub fn with_kernel(u: CscMatrix, kernel: SchurKernel) -> Self {
        let plan = match kernel {
            SchurKernel::Dense => None,
            SchurKernel::Blocked => Some(BlockedPlan::detect(&u)),
            SchurKernel::Auto => {
                let plan = BlockedPlan::detect(&u);
                let (locals, coupling) = (plan.locals.len(), plan.coupling.len());
                (locals >= AUTO_MIN_LOCAL_ROWS && coupling <= locals).then_some(plan)
            }
        };
        DiagPlusLowRank {
            u,
            requested: kernel,
            plan,
            threads: 1,
        }
    }

    /// The kernel the caller requested (possibly [`SchurKernel::Auto`]).
    pub fn kernel(&self) -> SchurKernel {
        self.requested
    }

    /// The kernel actually in use after auto-resolution: either
    /// [`SchurKernel::Dense`] or [`SchurKernel::Blocked`].
    pub fn resolved_kernel(&self) -> SchurKernel {
        if self.plan.is_some() {
            SchurKernel::Blocked
        } else {
            SchurKernel::Dense
        }
    }

    /// Sets the worker-thread target for the blocked elimination. Extra
    /// workers beyond the calling thread are leased per solve from the
    /// process-global [`WorkerBudget`] — a drained budget degrades to the
    /// sequential path. `threads <= 1` (the default) never spawns and the
    /// steady-state solve stays allocation-free; with more workers the
    /// merge order of floating-point partial sums depends on the worker
    /// count, so results may differ from the sequential path by round-off.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured worker-thread target.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of coupling rows `p`.
    pub fn rank(&self) -> usize {
        self.u.nrows()
    }

    /// Number of variables `n`.
    pub fn dim(&self) -> usize {
        self.u.ncols()
    }

    /// Solves `(D + Uᵀ E U) dx = r`.
    ///
    /// Convenience wrapper over [`DiagPlusLowRank::solve_into`] that
    /// allocates a fresh workspace; hot loops should hold a
    /// [`DiagPlusLowRankWorkspace`] and call `solve_into` directly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if the Schur complement is not positive
    /// definite (should not happen for `D ≻ 0`, `E ⪰ 0`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive `d`.
    pub fn solve(&self, d: &[f64], e: &[f64], r: &[f64]) -> Result<Vec<f64>> {
        let mut ws = DiagPlusLowRankWorkspace::for_solver(self);
        let mut dx = vec![0.0; self.dim()];
        self.solve_into(d, e, r, &mut ws, &mut dx)?;
        Ok(dx)
    }

    /// Solves `(D + Uᵀ E U) dx = r` into `dx`, reusing `ws` for every
    /// intermediate: the active-row scratch, the Gram accumulation matrix,
    /// and the dense Cholesky storage. After the workspace has warmed up
    /// (first call at a given active-row count), repeat solves perform no
    /// heap allocation — on either kernel, provided the blocked kernel runs
    /// sequentially (`threads <= 1`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if the Schur complement is not positive
    /// definite (should not happen for `D ≻ 0`, `E ⪰ 0`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive `d`.
    pub fn solve_into(
        &self,
        d: &[f64],
        e: &[f64],
        r: &[f64],
        ws: &mut DiagPlusLowRankWorkspace,
        dx: &mut [f64],
    ) -> Result<()> {
        let n = self.dim();
        let p = self.rank();
        assert_eq!(d.len(), n, "diagonal length mismatch");
        assert_eq!(e.len(), p, "low-rank weight length mismatch");
        assert_eq!(r.len(), n, "rhs length mismatch");
        assert_eq!(dx.len(), n, "solution length mismatch");
        assert!(d.iter().all(|&v| v > 0.0), "D must be positive");

        match &self.plan {
            Some(plan) => {
                let workers = if self.threads > 1 {
                    let permits = WorkerBudget::global().acquire(self.threads - 1);
                    1 + permits.count()
                    // permits drop here; the lease only needs to cover the
                    // sizing decision — workers spawn and join inside the
                    // solve, and a slight overlap with a concurrent lease
                    // is harmless by design (budget is advisory).
                } else {
                    1
                };
                self.solve_blocked(plan, d, e, r, ws, dx, workers)
            }
            None => self.solve_dense(d, e, r, ws, dx),
        }
    }

    /// The original dense-Woodbury path: full `q × q` Schur complement over
    /// the active rows, one dense Cholesky.
    fn solve_dense(
        &self,
        d: &[f64],
        e: &[f64],
        r: &[f64],
        ws: &mut DiagPlusLowRankWorkspace,
        dx: &mut [f64],
    ) -> Result<()> {
        let n = self.dim();
        let p = self.rank();
        // Active rows: E_i > 0 (denormals excluded — their reciprocal
        // overflows to infinity and poisons the Schur complement).
        ws.active.clear();
        ws.active.extend((0..p).filter(|&i| e[i] > ACTIVE_EPS));
        ws.z.resize(n, 0.0);
        for k in 0..n {
            ws.z[k] = r[k] / d[k];
        }
        if ws.active.is_empty() {
            dx.copy_from_slice(&ws.z);
            return Ok(());
        }
        let q = ws.active.len();
        ws.row_of.clear();
        ws.row_of.resize(p, usize::MAX);
        for (qi, &i) in ws.active.iter().enumerate() {
            ws.row_of[i] = qi;
        }

        // S = E_active⁻¹ + U_active D⁻¹ U_activeᵀ, built column-by-column of U.
        ws.s.resize_reset(q, q);
        let s = &mut ws.s;
        for (qi, &i) in ws.active.iter().enumerate() {
            s.set(qi, qi, 1.0 / e[i]);
        }
        for k in 0..n {
            let (rows, vals) = self.u.col(k);
            let dk_inv = 1.0 / d[k];
            for (a, &ra) in rows.iter().enumerate() {
                let qa = ws.row_of[ra];
                if qa == usize::MAX {
                    continue;
                }
                let va = vals[a] * dk_inv;
                for (bidx, &rb) in rows.iter().enumerate().skip(a) {
                    let qb = ws.row_of[rb];
                    if qb == usize::MAX {
                        continue;
                    }
                    let contrib = va * vals[bidx];
                    let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
                    s.add(hi, lo, contrib);
                    if lo != hi {
                        // keep full symmetric matrix for the dense Cholesky
                        s.add(lo, hi, contrib);
                    }
                }
            }
        }
        ws.factor_with_ridge(q)?;

        // t = U z restricted to active rows, solved against the factor.
        ws.uz.resize(p, 0.0);
        self.u.mul_vec_into(&ws.z, &mut ws.uz);
        ws.wq.clear();
        ws.wq.extend(ws.active.iter().map(|&i| ws.uz[i]));
        ws.l.chol_solve_in_place(&mut ws.wq);
        // Scatter back to full p.
        ws.w.clear();
        ws.w.resize(p, 0.0);
        for (qi, &i) in ws.active.iter().enumerate() {
            ws.w[i] = ws.wq[qi];
        }
        self.apply_correction(d, ws, dx);
        Ok(())
    }

    /// The blocked nested-Schur path: eliminate every active local row in
    /// closed form (each a rank-1 downdate of the coupling Gram), factor
    /// only the small coupling block, back-substitute.
    #[allow(clippy::too_many_arguments)]
    fn solve_blocked(
        &self,
        plan: &BlockedPlan,
        d: &[f64],
        e: &[f64],
        r: &[f64],
        ws: &mut DiagPlusLowRankWorkspace,
        dx: &mut [f64],
        workers: usize,
    ) -> Result<()> {
        let n = self.dim();
        let p = self.rank();
        ws.z.resize(n, 0.0);
        for k in 0..n {
            ws.z[k] = r[k] / d[k];
        }
        ws.uz.resize(p, 0.0);
        self.u.mul_vec_into(&ws.z, &mut ws.uz);

        // Active coupling rows, with a row → active-index map.
        ws.active.clear();
        ws.active
            .extend(plan.coupling.iter().copied().filter(|&i| e[i] > ACTIVE_EPS));
        ws.row_of.clear();
        ws.row_of.resize(p, usize::MAX);
        for (ci, &i) in ws.active.iter().enumerate() {
            ws.row_of[i] = ci;
        }
        let qc = ws.active.len();
        let nl = plan.locals.len();

        // Per-worker scratch (persisted in the workspace across solves).
        let workers = workers.clamp(1, nl.max(1));
        if ws.workers.len() < workers {
            ws.workers.resize_with(workers, WorkerScratch::default);
        }
        for scratch in ws.workers[..workers].iter_mut() {
            scratch.cmat.resize_reset(qc, qc);
            scratch.radj.clear();
            scratch.radj.resize(qc, 0.0);
        }
        ws.sdd.clear();
        ws.sdd.resize(nl, 0.0);
        ws.sdc.clear();
        ws.sdc.resize(nl * qc, 0.0);

        let job = EliminationJob {
            plan,
            u: &self.u,
            d,
            e,
            uz: &ws.uz,
            coupling_of: &ws.row_of,
            qc,
        };
        if workers <= 1 {
            eliminate_local_rows(&job, 0, &mut ws.sdd, &mut ws.sdc, &mut ws.workers[0]);
        } else {
            let chunk = nl.div_ceil(workers);
            let (first, rest) = ws.workers.split_at_mut(1);
            let (sdd0, sdd_rest) = ws.sdd.split_at_mut(chunk.min(nl));
            let (sdc0, sdc_rest) = ws.sdc.split_at_mut(chunk.min(nl) * qc);
            let job_ref = &job;
            std::thread::scope(|scope| {
                let mut lo = chunk.min(nl);
                let mut sdd_rest = sdd_rest;
                let mut sdc_rest = sdc_rest;
                for scratch in rest[..workers - 1].iter_mut() {
                    let take = chunk.min(sdd_rest.len());
                    if take == 0 {
                        break;
                    }
                    let (sdd_c, tail) = sdd_rest.split_at_mut(take);
                    sdd_rest = tail;
                    let (sdc_c, tail) = sdc_rest.split_at_mut(take * qc);
                    sdc_rest = tail;
                    let my_lo = lo;
                    lo += take;
                    scope
                        .spawn(move || eliminate_local_rows(job_ref, my_lo, sdd_c, sdc_c, scratch));
                }
                // The calling thread is the first worker.
                eliminate_local_rows(job_ref, 0, sdd0, sdc0, &mut first[0]);
            });
        }

        // Assemble the coupling system: S_cc = E_c⁻¹ + (coupling Gram)
        // − Σ_j sdc_j sdc_jᵀ / sdd_j, rhs t_c = (Uz)_c − Σ_j sdc_j uz_j/sdd_j.
        // Lower triangle only — the Cholesky reads nothing else.
        ws.s.resize_reset(qc, qc);
        for (ci, &i) in ws.active.iter().enumerate() {
            ws.s.set(ci, ci, 1.0 / e[i]);
        }
        ws.wq.clear();
        ws.wq.extend(ws.active.iter().map(|&i| ws.uz[i]));
        for scratch in &ws.workers[..workers] {
            ws.s.add_from(&scratch.cmat);
            for (ci, &v) in scratch.radj.iter().enumerate() {
                ws.wq[ci] -= v;
            }
        }
        // Columns owned by no local row contribute coupling-Gram pairs too.
        {
            let scratch = &mut ws.workers[0];
            for &k in &plan.free_cols {
                let (rows, vals) = self.u.col(k);
                let dk_inv = 1.0 / d[k];
                scratch.col_ci.clear();
                scratch.col_cv.clear();
                for (idx, &rr) in rows.iter().enumerate() {
                    let ci = ws.row_of[rr];
                    if ci != usize::MAX {
                        scratch.col_ci.push(ci);
                        scratch.col_cv.push(vals[idx]);
                    }
                }
                for a in 0..scratch.col_ci.len() {
                    let va = scratch.col_cv[a] * dk_inv;
                    let ca = scratch.col_ci[a];
                    for b in a..scratch.col_ci.len() {
                        ws.s.add(scratch.col_ci[b], ca, va * scratch.col_cv[b]);
                    }
                }
            }
        }

        if qc > 0 {
            ws.factor_with_ridge(qc)?;
            ws.l.chol_solve_in_place(&mut ws.wq);
        }

        // Back-substitute: coupling rows from the small solve, active local
        // rows in closed form, inactive rows zero.
        ws.w.clear();
        ws.w.resize(p, 0.0);
        for (ci, &i) in ws.active.iter().enumerate() {
            ws.w[i] = ws.wq[ci];
        }
        for (jl, &row) in plan.locals.iter().enumerate() {
            if e[row] > ACTIVE_EPS {
                let sdc_j = &ws.sdc[jl * qc..(jl + 1) * qc];
                let dot: f64 = sdc_j.iter().zip(&ws.wq).map(|(a, b)| a * b).sum();
                ws.w[row] = (ws.uz[row] - dot) / ws.sdd[jl];
            }
        }
        self.apply_correction(d, ws, dx);
        Ok(())
    }

    /// Shared tail of both kernels: `dx = z − D⁻¹ Uᵀ w`.
    fn apply_correction(&self, d: &[f64], ws: &mut DiagPlusLowRankWorkspace, dx: &mut [f64]) {
        let n = self.dim();
        ws.utw.resize(n, 0.0);
        self.u.mul_transpose_vec_into(&ws.w, &mut ws.utw);
        for k in 0..n {
            dx[k] = ws.z[k] - ws.utw[k] / d[k];
        }
    }
}

/// Structure analysis for the blocked kernel, computed once per coupling
/// matrix: which rows are "local" (pairwise-disjoint column supports —
/// eliminable in closed form) and which remain in the small coupling block.
///
/// Detection is greedy over rows in ascending-sparsity order: a row becomes
/// local if none of its columns are owned by an earlier local row. For ℙ₂
/// this selects exactly the `J` per-user demand rows (each owning user j's
/// `I` columns) and leaves the group/capacity rows — which touch every
/// user — as coupling.
#[derive(Debug, Clone)]
struct BlockedPlan {
    /// Local rows, ascending by row index.
    locals: Vec<usize>,
    /// Coupling rows, ascending by row index.
    coupling: Vec<usize>,
    /// Per-local-row extent into `lcols`/`lvals` (`locals.len() + 1`).
    lptr: Vec<usize>,
    /// Columns owned by each local row, user-major flat layout.
    lcols: Vec<usize>,
    /// `U[row, col]` for each owned column, aligned with `lcols`.
    lvals: Vec<f64>,
    /// Columns owned by no local row.
    free_cols: Vec<usize>,
}

impl BlockedPlan {
    fn detect(u: &CscMatrix) -> BlockedPlan {
        let p = u.nrows();
        let n = u.ncols();
        // Row-major copy of the pattern via counting sort.
        let counts = u.row_counts();
        let mut rptr = vec![0usize; p + 1];
        for i in 0..p {
            rptr[i + 1] = rptr[i] + counts[i];
        }
        let mut rcols = vec![0usize; u.nnz()];
        let mut rvals = vec![0f64; u.nnz()];
        let mut cursor = rptr.clone();
        for k in 0..n {
            let (rows, vals) = u.col(k);
            for (idx, &rr) in rows.iter().enumerate() {
                rcols[cursor[rr]] = k;
                rvals[cursor[rr]] = vals[idx];
                cursor[rr] += 1;
            }
        }
        // Greedy: sparse rows claim columns first (ties broken by row index
        // for determinism), so the J thin demand rows beat the wide
        // group/capacity rows.
        let mut order: Vec<usize> = (0..p).collect();
        order.sort_by_key(|&i| (counts[i], i));
        let mut owner = vec![usize::MAX; n];
        let mut is_local = vec![false; p];
        for &i in &order {
            let cols = &rcols[rptr[i]..rptr[i + 1]];
            if cols.iter().all(|&k| owner[k] == usize::MAX) {
                for &k in cols {
                    owner[k] = i;
                }
                is_local[i] = true;
            }
        }
        let locals: Vec<usize> = (0..p).filter(|&i| is_local[i]).collect();
        let coupling: Vec<usize> = (0..p).filter(|&i| !is_local[i]).collect();
        let mut lptr = Vec::with_capacity(locals.len() + 1);
        let mut lcols = Vec::new();
        let mut lvals = Vec::new();
        lptr.push(0);
        for &i in &locals {
            lcols.extend_from_slice(&rcols[rptr[i]..rptr[i + 1]]);
            lvals.extend_from_slice(&rvals[rptr[i]..rptr[i + 1]]);
            lptr.push(lcols.len());
        }
        let free_cols: Vec<usize> = (0..n).filter(|&k| owner[k] == usize::MAX).collect();
        BlockedPlan {
            locals,
            coupling,
            lptr,
            lcols,
            lvals,
            free_cols,
        }
    }
}

/// Read-only inputs shared by every elimination worker.
struct EliminationJob<'a> {
    plan: &'a BlockedPlan,
    u: &'a CscMatrix,
    d: &'a [f64],
    e: &'a [f64],
    uz: &'a [f64],
    /// Row index → active-coupling index (`usize::MAX` elsewhere).
    coupling_of: &'a [usize],
    qc: usize,
}

/// Per-worker mutable scratch, persisted across solves in the workspace so
/// the sequential steady state allocates nothing.
#[derive(Debug, Clone, Default)]
struct WorkerScratch {
    /// Partial coupling Gram + downdates (lower triangle, qc × qc).
    cmat: DenseMatrix,
    /// Partial rhs adjustment Σ_j sdc_j · uz_j / sdd_j.
    radj: Vec<f64>,
    /// Active-coupling indices of the current column's entries.
    col_ci: Vec<usize>,
    /// Matching raw values.
    col_cv: Vec<f64>,
}

/// Eliminates the local rows `lo .. lo + sdd.len()` (indices into
/// `plan.locals`): accumulates each owned column's coupling-Gram pairs, the
/// row's pivot `sdd_j = 1/e_j + Σ_k u_jk²/d_k`, and its coupling border
/// `sdc_j[c] = Σ_k u_jk u_ck/d_k`, then applies the rank-1 downdate
/// `cmat −= sdc_j sdc_jᵀ / sdd_j` and the rhs adjustment. Inactive local
/// rows skip elimination but still walk their columns — every column must
/// feed the coupling Gram exactly once.
fn eliminate_local_rows(
    job: &EliminationJob<'_>,
    lo: usize,
    sdd: &mut [f64],
    sdc: &mut [f64],
    scratch: &mut WorkerScratch,
) {
    let qc = job.qc;
    let WorkerScratch {
        cmat,
        radj,
        col_ci,
        col_cv,
    } = scratch;
    for (off, sdd_slot) in sdd.iter_mut().enumerate() {
        let jl = lo + off;
        let row = job.plan.locals[jl];
        let span = job.plan.lptr[jl]..job.plan.lptr[jl + 1];
        let cols = &job.plan.lcols[span.clone()];
        let vals = &job.plan.lvals[span];
        let active = job.e[row] > ACTIVE_EPS;
        let sdc_j = &mut sdc[off * qc..(off + 1) * qc];
        sdc_j.fill(0.0);
        let mut pivot = if active { 1.0 / job.e[row] } else { 0.0 };
        for (&k, &ujk) in cols.iter().zip(vals) {
            let dk_inv = 1.0 / job.d[k];
            let (rows, colvals) = job.u.col(k);
            col_ci.clear();
            col_cv.clear();
            for (idx, &rr) in rows.iter().enumerate() {
                let ci = job.coupling_of[rr];
                if ci != usize::MAX {
                    col_ci.push(ci);
                    col_cv.push(colvals[idx]);
                }
            }
            // Coupling-coupling Gram pairs of this column (lower triangle;
            // within-column row order is ascending, so ci is too).
            for a in 0..col_ci.len() {
                let va = col_cv[a] * dk_inv;
                let ca = col_ci[a];
                for b in a..col_ci.len() {
                    cmat.add(col_ci[b], ca, va * col_cv[b]);
                }
            }
            if active {
                let uj = ujk * dk_inv;
                pivot += uj * ujk;
                for (idx, &ci) in col_ci.iter().enumerate() {
                    sdc_j[ci] += uj * col_cv[idx];
                }
            }
        }
        *sdd_slot = pivot;
        if active {
            // Closed-form elimination of row `row`: rank-1 downdate of the
            // coupling block and the matching rhs adjustment.
            let scale = job.uz[row] / pivot;
            for a in 0..qc {
                let sa = sdc_j[a];
                if sa == 0.0 {
                    continue;
                }
                let fa = sa / pivot;
                for b in a..qc {
                    cmat.add(b, a, -(fa * sdc_j[b]));
                }
                radj[a] += sa * scale;
            }
        }
    }
}

/// Reusable scratch for [`DiagPlusLowRank::solve_into`]: active-row
/// bookkeeping, the Gram accumulation matrix `S`, the dense Cholesky factor
/// storage, and (for the blocked kernel) the per-local-row pivots/borders
/// and per-worker partial accumulators. Create once (per solver or per
/// horizon) and reuse across Newton steps *and* across successive solves —
/// the buffers keep their capacity, so steady-state solves allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct DiagPlusLowRankWorkspace {
    /// Active rows (dense kernel: all rows; blocked kernel: coupling rows).
    active: Vec<usize>,
    /// Row index → active index (`usize::MAX` elsewhere).
    row_of: Vec<usize>,
    z: Vec<f64>,
    s: DenseMatrix,
    l: DenseMatrix,
    uz: Vec<f64>,
    wq: Vec<f64>,
    w: Vec<f64>,
    utw: Vec<f64>,
    /// Blocked kernel: pivot `sdd_j` per local row (0 when inactive).
    sdd: Vec<f64>,
    /// Blocked kernel: borders `sdc_j`, flat `locals × qc`.
    sdc: Vec<f64>,
    /// Blocked kernel: per-worker partial accumulators.
    workers: Vec<WorkerScratch>,
}

impl DiagPlusLowRankWorkspace {
    /// A workspace pre-sized for `solver` (all rows active), so even the
    /// first solve performs no further allocation.
    pub fn for_solver(solver: &DiagPlusLowRank) -> Self {
        let n = solver.dim();
        let p = solver.rank();
        let (qc, nl) = match &solver.plan {
            Some(plan) => (plan.coupling.len(), plan.locals.len()),
            None => (0, 0),
        };
        DiagPlusLowRankWorkspace {
            active: Vec::with_capacity(p),
            row_of: vec![usize::MAX; p],
            z: vec![0.0; n],
            s: DenseMatrix::zeros(p, p),
            l: DenseMatrix::zeros(p, p),
            uz: vec![0.0; p],
            wq: Vec::with_capacity(p),
            w: vec![0.0; p],
            utw: vec![0.0; n],
            sdd: vec![0.0; nl],
            sdc: vec![0.0; nl * qc],
            workers: if solver.plan.is_some() {
                let mut scratch = WorkerScratch::default();
                scratch.cmat.resize_reset(qc, qc);
                scratch.radj = vec![0.0; qc];
                scratch.col_ci = Vec::with_capacity(p);
                scratch.col_cv = Vec::with_capacity(p);
                vec![scratch]
            } else {
                Vec::new()
            },
        }
    }

    /// Ridge-retry Cholesky: factor the leading `q × q` of `s` into `l`.
    /// The Schur complement is PSD in exact arithmetic; with extreme
    /// barrier weights it can lose definiteness to round-off, so retry
    /// with an escalating ridge before giving up. The factorization works
    /// on `l`, re-copied from the untouched `s` per attempt.
    fn factor_with_ridge(&mut self, q: usize) -> Result<()> {
        let mut ridge = 0.0f64;
        let base: f64 = (0..q).map(|i| self.s.get(i, i)).fold(1e-300, f64::max);
        loop {
            self.l.copy_values_from(&self.s);
            if ridge > 0.0 {
                for i in 0..q {
                    self.l.add(i, i, ridge);
                }
            }
            match self.l.cholesky_in_place() {
                Ok(()) => return Ok(()),
                Err(_) if ridge < base * 1e-2 => {
                    ridge = if ridge == 0.0 {
                        base * 1e-12
                    } else {
                        ridge * 100.0
                    };
                }
                Err(_) => {
                    return Err(Error::Numerical(
                        "Schur complement not positive definite".into(),
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    /// Dense reference: build M = D + UᵀEU and solve by LU.
    fn dense_solve(u: &CscMatrix, d: &[f64], e: &[f64], r: &[f64]) -> Vec<f64> {
        let n = u.ncols();
        let p = u.nrows();
        let ud = u.to_dense();
        let mut m = DenseMatrix::zeros(n, n);
        for k in 0..n {
            m.set(k, k, d[k]);
        }
        for i in 0..p {
            for a in 0..n {
                for b in 0..n {
                    m.add(a, b, ud[i][a] * e[i] * ud[i][b]);
                }
            }
        }
        m.lu().unwrap().solve(r)
    }

    /// An arrow-structured coupling: `users` local rows of `width` disjoint
    /// columns each, plus `coup` rows touching every column.
    fn arrow_u(users: usize, width: usize, coup: usize) -> CscMatrix {
        let n = users * width;
        let mut t = Triplets::new(users + coup, n);
        for j in 0..users {
            for w in 0..width {
                t.push(j, j * width + w, 1.0 + 0.1 * (w as f64) + 0.01 * (j as f64));
            }
        }
        for c in 0..coup {
            for k in 0..n {
                t.push(users + c, k, 0.5 + 0.05 * ((c + k) % 7) as f64);
            }
        }
        t.to_csc()
    }

    #[test]
    fn matches_dense_reference() {
        let mut t = Triplets::new(3, 5);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 2, 2.0);
        t.push(1, 3, -1.0);
        t.push(2, 0, 0.5);
        t.push(2, 4, 1.5);
        let u = t.to_csc();
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        let e = [2.0, 0.5, 1.0];
        let r = [1.0, -1.0, 2.0, 0.0, 3.0];
        let solver = DiagPlusLowRank::new(u.clone());
        let x = solver.solve(&d, &e, &r).unwrap();
        let xref = dense_solve(&u, &d, &e, &r);
        for k in 0..5 {
            assert!((x[k] - xref[k]).abs() < 1e-9, "{x:?} vs {xref:?}");
        }
    }

    #[test]
    fn zero_curvature_rows_are_skipped() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let u = t.to_csc();
        let d = [2.0, 2.0, 2.0];
        let e = [0.0, 4.0]; // first row inert
        let r = [2.0, 6.0, 2.0];
        let solver = DiagPlusLowRank::new(u.clone());
        let x = solver.solve(&d, &e, &r).unwrap();
        let xref = dense_solve(&u, &d, &e, &r);
        for k in 0..3 {
            assert!((x[k] - xref[k]).abs() < 1e-10);
        }
        // Variable 0 sees only D.
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reused_workspace_matches_fresh_solves() {
        let mut t = Triplets::new(3, 5);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 2, 2.0);
        t.push(1, 3, -1.0);
        t.push(2, 0, 0.5);
        t.push(2, 4, 1.5);
        let solver = DiagPlusLowRank::new(t.to_csc());
        let mut ws = DiagPlusLowRankWorkspace::for_solver(&solver);
        let mut dx = vec![0.0; 5];
        // Successive solves with different data (including a change of the
        // active set) through the same workspace must match the one-shot API.
        let cases: [(&[f64], &[f64], &[f64]); 3] = [
            (
                &[1.0, 2.0, 3.0, 4.0, 5.0],
                &[2.0, 0.5, 1.0],
                &[1.0, -1.0, 2.0, 0.0, 3.0],
            ),
            (
                &[2.0, 1.0, 1.0, 2.0, 1.0],
                &[0.0, 1.5, 2.0],
                &[0.5, 0.5, -1.0, 1.0, 0.0],
            ),
            (
                &[1.0, 1.0, 1.0, 1.0, 1.0],
                &[0.0, 0.0, 0.0],
                &[1.0, 2.0, 3.0, 4.0, 5.0],
            ),
        ];
        for (d, e, r) in cases {
            solver.solve_into(d, e, r, &mut ws, &mut dx).unwrap();
            let fresh = solver.solve(d, e, r).unwrap();
            for k in 0..5 {
                assert!((dx[k] - fresh[k]).abs() < 1e-14, "{dx:?} vs {fresh:?}");
            }
        }
    }

    #[test]
    fn pure_diagonal_when_no_active_rows() {
        let t = Triplets::new(1, 2);
        let solver = DiagPlusLowRank::new(t.to_csc());
        let x = solver.solve(&[4.0, 2.0], &[0.0], &[8.0, 8.0]).unwrap();
        assert_eq!(x, vec![2.0, 4.0]);
    }

    #[test]
    fn plan_detection_finds_arrow_structure() {
        let u = arrow_u(6, 3, 2);
        let plan = BlockedPlan::detect(&u);
        assert_eq!(plan.locals, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(plan.coupling, vec![6, 7]);
        assert!(plan.free_cols.is_empty());
        for j in 0..6 {
            let cols = &plan.lcols[plan.lptr[j]..plan.lptr[j + 1]];
            assert_eq!(cols, &[j * 3, j * 3 + 1, j * 3 + 2]);
        }
    }

    #[test]
    fn auto_keeps_dense_for_small_and_switches_for_large() {
        let small = DiagPlusLowRank::new(arrow_u(6, 3, 2));
        assert_eq!(small.resolved_kernel(), SchurKernel::Dense);
        let large = DiagPlusLowRank::new(arrow_u(64, 3, 2));
        assert_eq!(large.resolved_kernel(), SchurKernel::Blocked);
        let forced = DiagPlusLowRank::with_kernel(arrow_u(6, 3, 2), SchurKernel::Blocked);
        assert_eq!(forced.resolved_kernel(), SchurKernel::Blocked);
    }

    #[test]
    fn blocked_matches_dense_on_arrow_systems() {
        for (users, width, coup) in [(5, 3, 2), (9, 2, 3), (12, 4, 1)] {
            let u = arrow_u(users, width, coup);
            let n = u.ncols();
            let p = u.nrows();
            let d: Vec<f64> = (0..n).map(|k| 0.5 + (k % 9) as f64 * 0.3).collect();
            let mut e: Vec<f64> = (0..p).map(|i| 0.2 + (i % 5) as f64 * 0.7).collect();
            // A degenerate (inactive) local row and coupling row.
            e[1] = 0.0;
            if coup > 1 {
                e[users + 1] = 0.0;
            }
            let r: Vec<f64> = (0..n).map(|k| ((k as f64) * 0.37).sin()).collect();
            let blocked = DiagPlusLowRank::with_kernel(u.clone(), SchurKernel::Blocked);
            let dense = DiagPlusLowRank::with_kernel(u.clone(), SchurKernel::Dense);
            let xb = blocked.solve(&d, &e, &r).unwrap();
            let xd = dense.solve(&d, &e, &r).unwrap();
            let xref = dense_solve(&u, &d, &e, &r);
            for k in 0..n {
                assert!(
                    (xb[k] - xd[k]).abs() < 1e-10,
                    "blocked vs dense at {k}: {} vs {}",
                    xb[k],
                    xd[k]
                );
                assert!((xb[k] - xref[k]).abs() < 1e-8, "blocked vs LU at {k}");
            }
        }
    }

    #[test]
    fn blocked_handles_non_arrow_patterns() {
        // Overlapping rows: only a subset ends up local; result must still
        // match the dense kernel.
        let mut t = Triplets::new(4, 6);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 1, 1.5); // overlaps row 0 → one of them stays coupling
        t.push(1, 2, 1.0);
        t.push(2, 3, 1.0);
        t.push(2, 4, -1.0);
        t.push(3, 0, 0.3);
        t.push(3, 5, 0.7); // column 5 otherwise untouched
        let u = t.to_csc();
        let d = [1.0, 2.0, 1.5, 3.0, 2.5, 1.0];
        let e = [1.0, 2.0, 0.5, 1.5];
        let r = [1.0, -2.0, 0.5, 3.0, -1.0, 2.0];
        let blocked = DiagPlusLowRank::with_kernel(u.clone(), SchurKernel::Blocked);
        let xb = blocked.solve(&d, &e, &r).unwrap();
        let xref = dense_solve(&u, &d, &e, &r);
        for k in 0..6 {
            assert!((xb[k] - xref[k]).abs() < 1e-9, "{xb:?} vs {xref:?}");
        }
    }

    #[test]
    fn blocked_all_rows_inactive_is_pure_diagonal() {
        let u = arrow_u(4, 2, 1);
        let solver = DiagPlusLowRank::with_kernel(u, SchurKernel::Blocked);
        let d = vec![2.0; 8];
        let e = vec![0.0; 5];
        let r = vec![4.0; 8];
        let x = solver.solve(&d, &e, &r).unwrap();
        assert_eq!(x, vec![2.0; 8]);
    }

    #[test]
    fn blocked_parallel_workers_match_sequential() {
        let u = arrow_u(23, 3, 3);
        let n = u.ncols();
        let p = u.nrows();
        let d: Vec<f64> = (0..n).map(|k| 1.0 + (k % 4) as f64).collect();
        let mut e: Vec<f64> = (0..p).map(|i| 0.5 + (i % 3) as f64).collect();
        e[7] = 0.0;
        let r: Vec<f64> = (0..n).map(|k| (k as f64 * 0.11).cos()).collect();
        let solver = DiagPlusLowRank::with_kernel(u.clone(), SchurKernel::Blocked);
        let plan = solver.plan.as_ref().unwrap();
        let mut seq = vec![0.0; n];
        let mut par = vec![0.0; n];
        let mut ws = DiagPlusLowRankWorkspace::for_solver(&solver);
        solver
            .solve_blocked(plan, &d, &e, &r, &mut ws, &mut seq, 1)
            .unwrap();
        for workers in [2, 4, 7] {
            let mut wsp = DiagPlusLowRankWorkspace::for_solver(&solver);
            solver
                .solve_blocked(plan, &d, &e, &r, &mut wsp, &mut par, workers)
                .unwrap();
            for k in 0..n {
                assert!(
                    (seq[k] - par[k]).abs() < 1e-12,
                    "workers={workers} at {k}: {} vs {}",
                    seq[k],
                    par[k]
                );
            }
        }
    }

    #[test]
    fn blocked_reused_workspace_matches_fresh() {
        let u = arrow_u(10, 3, 2);
        let solver = DiagPlusLowRank::with_kernel(u, SchurKernel::Blocked);
        let n = solver.dim();
        let p = solver.rank();
        let mut ws = DiagPlusLowRankWorkspace::for_solver(&solver);
        let mut dx = vec![0.0; n];
        for round in 0..3 {
            let d: Vec<f64> = (0..n).map(|k| 1.0 + ((k + round) % 5) as f64).collect();
            let mut e: Vec<f64> = (0..p).map(|i| 0.1 + (i % 4) as f64).collect();
            if round == 1 {
                e[3] = 0.0; // active set changes between reuses
            }
            let r: Vec<f64> = (0..n).map(|k| (k as f64 - 3.0) * 0.25).collect();
            solver.solve_into(&d, &e, &r, &mut ws, &mut dx).unwrap();
            let fresh = solver.solve(&d, &e, &r).unwrap();
            for k in 0..n {
                assert!((dx[k] - fresh[k]).abs() < 1e-14);
            }
        }
    }
}
