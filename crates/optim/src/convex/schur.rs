//! Diagonal-plus-low-rank linear solves via the Woodbury identity.

use crate::linalg::DenseMatrix;
use crate::sparse::CscMatrix;
use crate::{Error, Result};

/// Solves systems `(D + Uᵀ E U) dx = r` where `D ≻ 0` and `E ⪰ 0` are
/// diagonal and `U` is a fixed `p × n` coupling matrix with `p ≪ n`.
///
/// The barrier solver's Newton matrix has exactly this shape: `D` collects
/// the separable Hessian and the `x ≥ 0` barrier curvature, while `U` stacks
/// the group-indicator rows and the constraint rows of `A`. Each solve costs
/// one dense `p × p` Cholesky — independent of the number of variables.
///
/// Uses the Woodbury identity
/// `(D + UᵀEU)⁻¹ = D⁻¹ − D⁻¹Uᵀ (E⁻¹ + U D⁻¹ Uᵀ)⁻¹ U D⁻¹`,
/// restricted to rows with `E_i > 0` (zero-curvature rows contribute
/// nothing).
///
/// # Example
///
/// ```
/// use optim::sparse::Triplets;
/// use optim::convex::DiagPlusLowRank;
///
/// # fn main() -> Result<(), optim::Error> {
/// // U = [1 1], so M = diag(2,2) + 3·[1 1]ᵀ[1 1] = [[5,3],[3,5]].
/// let mut t = Triplets::new(1, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 1, 1.0);
/// let solver = DiagPlusLowRank::new(t.to_csc());
/// let dx = solver.solve(&[2.0, 2.0], &[3.0], &[8.0, 8.0])?;
/// assert!((dx[0] - 1.0).abs() < 1e-12 && (dx[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiagPlusLowRank {
    /// The coupling matrix `U` (p × n).
    u: CscMatrix,
}

impl DiagPlusLowRank {
    /// Wraps a fixed coupling matrix `U` (p × n).
    pub fn new(u: CscMatrix) -> Self {
        DiagPlusLowRank { u }
    }

    /// Number of coupling rows `p`.
    pub fn rank(&self) -> usize {
        self.u.nrows()
    }

    /// Number of variables `n`.
    pub fn dim(&self) -> usize {
        self.u.ncols()
    }

    /// Solves `(D + Uᵀ E U) dx = r`.
    ///
    /// Convenience wrapper over [`DiagPlusLowRank::solve_into`] that
    /// allocates a fresh workspace; hot loops should hold a
    /// [`DiagPlusLowRankWorkspace`] and call `solve_into` directly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if the Schur complement is not positive
    /// definite (should not happen for `D ≻ 0`, `E ⪰ 0`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive `d`.
    pub fn solve(&self, d: &[f64], e: &[f64], r: &[f64]) -> Result<Vec<f64>> {
        let mut ws = DiagPlusLowRankWorkspace::for_solver(self);
        let mut dx = vec![0.0; self.dim()];
        self.solve_into(d, e, r, &mut ws, &mut dx)?;
        Ok(dx)
    }

    /// Solves `(D + Uᵀ E U) dx = r` into `dx`, reusing `ws` for every
    /// intermediate: the active-row scratch, the Gram accumulation matrix,
    /// and the dense Cholesky storage. After the workspace has warmed up
    /// (first call at a given active-row count), repeat solves perform no
    /// heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if the Schur complement is not positive
    /// definite (should not happen for `D ≻ 0`, `E ⪰ 0`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive `d`.
    pub fn solve_into(
        &self,
        d: &[f64],
        e: &[f64],
        r: &[f64],
        ws: &mut DiagPlusLowRankWorkspace,
        dx: &mut [f64],
    ) -> Result<()> {
        let n = self.dim();
        let p = self.rank();
        assert_eq!(d.len(), n, "diagonal length mismatch");
        assert_eq!(e.len(), p, "low-rank weight length mismatch");
        assert_eq!(r.len(), n, "rhs length mismatch");
        assert_eq!(dx.len(), n, "solution length mismatch");
        assert!(d.iter().all(|&v| v > 0.0), "D must be positive");

        // Active rows: E_i > 0 (denormals excluded — their reciprocal
        // overflows to infinity and poisons the Schur complement).
        ws.active.clear();
        ws.active.extend((0..p).filter(|&i| e[i] > 1e-300));
        ws.z.resize(n, 0.0);
        for k in 0..n {
            ws.z[k] = r[k] / d[k];
        }
        if ws.active.is_empty() {
            dx.copy_from_slice(&ws.z);
            return Ok(());
        }
        let q = ws.active.len();
        ws.row_of.clear();
        ws.row_of.resize(p, usize::MAX);
        for (qi, &i) in ws.active.iter().enumerate() {
            ws.row_of[i] = qi;
        }

        // S = E_active⁻¹ + U_active D⁻¹ U_activeᵀ, built column-by-column of U.
        ws.s.resize_reset(q, q);
        let s = &mut ws.s;
        for (qi, &i) in ws.active.iter().enumerate() {
            s.set(qi, qi, 1.0 / e[i]);
        }
        for k in 0..n {
            let (rows, vals) = self.u.col(k);
            let dk_inv = 1.0 / d[k];
            for (a, &ra) in rows.iter().enumerate() {
                let qa = ws.row_of[ra];
                if qa == usize::MAX {
                    continue;
                }
                let va = vals[a] * dk_inv;
                for (bidx, &rb) in rows.iter().enumerate().skip(a) {
                    let qb = ws.row_of[rb];
                    if qb == usize::MAX {
                        continue;
                    }
                    let contrib = va * vals[bidx];
                    let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
                    s.add(hi, lo, contrib);
                    if lo != hi {
                        // keep full symmetric matrix for the dense Cholesky
                        s.add(lo, hi, contrib);
                    }
                }
            }
        }
        // The Schur complement is PSD in exact arithmetic; with extreme
        // barrier weights it can lose definiteness to round-off. Retry with
        // an escalating ridge before giving up. The factorization works on
        // `ws.l`, re-copied from the untouched `ws.s` per attempt.
        {
            let mut ridge = 0.0f64;
            let base: f64 = (0..q).map(|i| ws.s.get(i, i)).fold(1e-300, f64::max);
            loop {
                ws.l.copy_values_from(&ws.s);
                if ridge > 0.0 {
                    for i in 0..q {
                        ws.l.add(i, i, ridge);
                    }
                }
                match ws.l.cholesky_in_place() {
                    Ok(()) => break,
                    Err(_) if ridge < base * 1e-2 => {
                        ridge = if ridge == 0.0 { base * 1e-12 } else { ridge * 100.0 };
                    }
                    Err(_) => {
                        return Err(Error::Numerical(
                            "Schur complement not positive definite".into(),
                        ))
                    }
                }
            }
        }

        // t = U z restricted to active rows, solved against the factor.
        ws.uz.resize(p, 0.0);
        self.u.mul_vec_into(&ws.z, &mut ws.uz);
        ws.wq.clear();
        ws.wq.extend(ws.active.iter().map(|&i| ws.uz[i]));
        ws.l.chol_solve_in_place(&mut ws.wq);
        // Scatter back to full p.
        ws.w.clear();
        ws.w.resize(p, 0.0);
        for (qi, &i) in ws.active.iter().enumerate() {
            ws.w[i] = ws.wq[qi];
        }
        // dx = z − D⁻¹ Uᵀ w.
        ws.utw.resize(n, 0.0);
        self.u.mul_transpose_vec_into(&ws.w, &mut ws.utw);
        for k in 0..n {
            dx[k] = ws.z[k] - ws.utw[k] / d[k];
        }
        Ok(())
    }
}

/// Reusable scratch for [`DiagPlusLowRank::solve_into`]: active-row
/// bookkeeping, the Gram accumulation matrix `S`, and the dense Cholesky
/// factor storage. Create once (per solver or per horizon) and reuse across
/// Newton steps *and* across successive solves — the buffers keep their
/// capacity, so steady-state solves allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct DiagPlusLowRankWorkspace {
    active: Vec<usize>,
    row_of: Vec<usize>,
    z: Vec<f64>,
    s: DenseMatrix,
    l: DenseMatrix,
    uz: Vec<f64>,
    wq: Vec<f64>,
    w: Vec<f64>,
    utw: Vec<f64>,
}

impl DiagPlusLowRankWorkspace {
    /// A workspace pre-sized for `solver` (all rows active), so even the
    /// first solve performs no further allocation.
    pub fn for_solver(solver: &DiagPlusLowRank) -> Self {
        let n = solver.dim();
        let p = solver.rank();
        DiagPlusLowRankWorkspace {
            active: Vec::with_capacity(p),
            row_of: vec![usize::MAX; p],
            z: vec![0.0; n],
            s: DenseMatrix::zeros(p, p),
            l: DenseMatrix::zeros(p, p),
            uz: vec![0.0; p],
            wq: Vec::with_capacity(p),
            w: vec![0.0; p],
            utw: vec![0.0; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    /// Dense reference: build M = D + UᵀEU and solve by LU.
    fn dense_solve(u: &CscMatrix, d: &[f64], e: &[f64], r: &[f64]) -> Vec<f64> {
        let n = u.ncols();
        let p = u.nrows();
        let ud = u.to_dense();
        let mut m = DenseMatrix::zeros(n, n);
        for k in 0..n {
            m.set(k, k, d[k]);
        }
        for i in 0..p {
            for a in 0..n {
                for b in 0..n {
                    m.add(a, b, ud[i][a] * e[i] * ud[i][b]);
                }
            }
        }
        m.lu().unwrap().solve(r)
    }

    #[test]
    fn matches_dense_reference() {
        let mut t = Triplets::new(3, 5);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 2, 2.0);
        t.push(1, 3, -1.0);
        t.push(2, 0, 0.5);
        t.push(2, 4, 1.5);
        let u = t.to_csc();
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        let e = [2.0, 0.5, 1.0];
        let r = [1.0, -1.0, 2.0, 0.0, 3.0];
        let solver = DiagPlusLowRank::new(u.clone());
        let x = solver.solve(&d, &e, &r).unwrap();
        let xref = dense_solve(&u, &d, &e, &r);
        for k in 0..5 {
            assert!((x[k] - xref[k]).abs() < 1e-9, "{x:?} vs {xref:?}");
        }
    }

    #[test]
    fn zero_curvature_rows_are_skipped() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let u = t.to_csc();
        let d = [2.0, 2.0, 2.0];
        let e = [0.0, 4.0]; // first row inert
        let r = [2.0, 6.0, 2.0];
        let solver = DiagPlusLowRank::new(u.clone());
        let x = solver.solve(&d, &e, &r).unwrap();
        let xref = dense_solve(&u, &d, &e, &r);
        for k in 0..3 {
            assert!((x[k] - xref[k]).abs() < 1e-10);
        }
        // Variable 0 sees only D.
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reused_workspace_matches_fresh_solves() {
        let mut t = Triplets::new(3, 5);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 2, 2.0);
        t.push(1, 3, -1.0);
        t.push(2, 0, 0.5);
        t.push(2, 4, 1.5);
        let solver = DiagPlusLowRank::new(t.to_csc());
        let mut ws = DiagPlusLowRankWorkspace::for_solver(&solver);
        let mut dx = vec![0.0; 5];
        // Successive solves with different data (including a change of the
        // active set) through the same workspace must match the one-shot API.
        let cases: [(&[f64], &[f64], &[f64]); 3] = [
            (
                &[1.0, 2.0, 3.0, 4.0, 5.0],
                &[2.0, 0.5, 1.0],
                &[1.0, -1.0, 2.0, 0.0, 3.0],
            ),
            (
                &[2.0, 1.0, 1.0, 2.0, 1.0],
                &[0.0, 1.5, 2.0],
                &[0.5, 0.5, -1.0, 1.0, 0.0],
            ),
            (
                &[1.0, 1.0, 1.0, 1.0, 1.0],
                &[0.0, 0.0, 0.0],
                &[1.0, 2.0, 3.0, 4.0, 5.0],
            ),
        ];
        for (d, e, r) in cases {
            solver.solve_into(d, e, r, &mut ws, &mut dx).unwrap();
            let fresh = solver.solve(d, e, r).unwrap();
            for k in 0..5 {
                assert!((dx[k] - fresh[k]).abs() < 1e-14, "{dx:?} vs {fresh:?}");
            }
        }
    }

    #[test]
    fn pure_diagonal_when_no_active_rows() {
        let t = Triplets::new(1, 2);
        let solver = DiagPlusLowRank::new(t.to_csc());
        let x = solver.solve(&[4.0, 2.0], &[0.0], &[8.0, 8.0]).unwrap();
        assert_eq!(x, vec![2.0, 4.0]);
    }
}
