//! Diagonal-plus-low-rank linear solves via the Woodbury identity.

use crate::linalg::DenseMatrix;
use crate::sparse::CscMatrix;
use crate::{Error, Result};

/// Solves systems `(D + Uᵀ E U) dx = r` where `D ≻ 0` and `E ⪰ 0` are
/// diagonal and `U` is a fixed `p × n` coupling matrix with `p ≪ n`.
///
/// The barrier solver's Newton matrix has exactly this shape: `D` collects
/// the separable Hessian and the `x ≥ 0` barrier curvature, while `U` stacks
/// the group-indicator rows and the constraint rows of `A`. Each solve costs
/// one dense `p × p` Cholesky — independent of the number of variables.
///
/// Uses the Woodbury identity
/// `(D + UᵀEU)⁻¹ = D⁻¹ − D⁻¹Uᵀ (E⁻¹ + U D⁻¹ Uᵀ)⁻¹ U D⁻¹`,
/// restricted to rows with `E_i > 0` (zero-curvature rows contribute
/// nothing).
///
/// # Example
///
/// ```
/// use optim::sparse::Triplets;
/// use optim::convex::DiagPlusLowRank;
///
/// # fn main() -> Result<(), optim::Error> {
/// // U = [1 1], so M = diag(2,2) + 3·[1 1]ᵀ[1 1] = [[5,3],[3,5]].
/// let mut t = Triplets::new(1, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 1, 1.0);
/// let solver = DiagPlusLowRank::new(t.to_csc());
/// let dx = solver.solve(&[2.0, 2.0], &[3.0], &[8.0, 8.0])?;
/// assert!((dx[0] - 1.0).abs() < 1e-12 && (dx[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiagPlusLowRank {
    /// The coupling matrix `U` (p × n).
    u: CscMatrix,
}

impl DiagPlusLowRank {
    /// Wraps a fixed coupling matrix `U` (p × n).
    pub fn new(u: CscMatrix) -> Self {
        DiagPlusLowRank { u }
    }

    /// Number of coupling rows `p`.
    pub fn rank(&self) -> usize {
        self.u.nrows()
    }

    /// Number of variables `n`.
    pub fn dim(&self) -> usize {
        self.u.ncols()
    }

    /// Solves `(D + Uᵀ E U) dx = r`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if the Schur complement is not positive
    /// definite (should not happen for `D ≻ 0`, `E ⪰ 0`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive `d`.
    pub fn solve(&self, d: &[f64], e: &[f64], r: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        let p = self.rank();
        assert_eq!(d.len(), n, "diagonal length mismatch");
        assert_eq!(e.len(), p, "low-rank weight length mismatch");
        assert_eq!(r.len(), n, "rhs length mismatch");
        assert!(d.iter().all(|&v| v > 0.0), "D must be positive");

        // Active rows: E_i > 0 (denormals excluded — their reciprocal
        // overflows to infinity and poisons the Schur complement).
        let active: Vec<usize> = (0..p).filter(|&i| e[i] > 1e-300).collect();
        let z: Vec<f64> = (0..n).map(|k| r[k] / d[k]).collect();
        if active.is_empty() {
            return Ok(z);
        }
        let q = active.len();
        let mut row_of = vec![usize::MAX; p];
        for (qi, &i) in active.iter().enumerate() {
            row_of[i] = qi;
        }

        // S = E_active⁻¹ + U_active D⁻¹ U_activeᵀ, built column-by-column of U.
        let mut s = DenseMatrix::zeros(q, q);
        for (qi, &i) in active.iter().enumerate() {
            s.set(qi, qi, 1.0 / e[i]);
        }
        for k in 0..n {
            let (rows, vals) = self.u.col(k);
            let dk_inv = 1.0 / d[k];
            for (a, &ra) in rows.iter().enumerate() {
                let qa = row_of[ra];
                if qa == usize::MAX {
                    continue;
                }
                let va = vals[a] * dk_inv;
                for (bidx, &rb) in rows.iter().enumerate().skip(a) {
                    let qb = row_of[rb];
                    if qb == usize::MAX {
                        continue;
                    }
                    let contrib = va * vals[bidx];
                    let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
                    s.add(hi, lo, contrib);
                    if lo != hi {
                        // keep full symmetric matrix for the dense Cholesky
                        s.add(lo, hi, contrib);
                    }
                }
            }
        }
        // The Schur complement is PSD in exact arithmetic; with extreme
        // barrier weights it can lose definiteness to round-off. Retry with
        // an escalating ridge before giving up.
        let chol = {
            let mut ridge = 0.0f64;
            let base: f64 = (0..q).map(|i| s.get(i, i)).fold(1e-300, f64::max);
            loop {
                let mut sr = s.clone();
                if ridge > 0.0 {
                    for i in 0..q {
                        sr.add(i, i, ridge);
                    }
                }
                match sr.cholesky() {
                    Ok(c) => break c,
                    Err(_) if ridge < base * 1e-2 => {
                        ridge = if ridge == 0.0 { base * 1e-12 } else { ridge * 100.0 };
                    }
                    Err(_) => {
                        return Err(Error::Numerical(
                            "Schur complement not positive definite".into(),
                        ))
                    }
                }
            }
        };

        // t = U z restricted to active rows.
        let uz = self.u.mul_vec(&z);
        let t_active: Vec<f64> = active.iter().map(|&i| uz[i]).collect();
        let w_active = chol.solve(&t_active);
        // Scatter back to full p.
        let mut w = vec![0.0; p];
        for (qi, &i) in active.iter().enumerate() {
            w[i] = w_active[qi];
        }
        // dx = z − D⁻¹ Uᵀ w.
        let utw = self.u.mul_transpose_vec(&w);
        Ok((0..n).map(|k| z[k] - utw[k] / d[k]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    /// Dense reference: build M = D + UᵀEU and solve by LU.
    fn dense_solve(u: &CscMatrix, d: &[f64], e: &[f64], r: &[f64]) -> Vec<f64> {
        let n = u.ncols();
        let p = u.nrows();
        let ud = u.to_dense();
        let mut m = DenseMatrix::zeros(n, n);
        for k in 0..n {
            m.set(k, k, d[k]);
        }
        for i in 0..p {
            for a in 0..n {
                for b in 0..n {
                    m.add(a, b, ud[i][a] * e[i] * ud[i][b]);
                }
            }
        }
        m.lu().unwrap().solve(r)
    }

    #[test]
    fn matches_dense_reference() {
        let mut t = Triplets::new(3, 5);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 2, 2.0);
        t.push(1, 3, -1.0);
        t.push(2, 0, 0.5);
        t.push(2, 4, 1.5);
        let u = t.to_csc();
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        let e = [2.0, 0.5, 1.0];
        let r = [1.0, -1.0, 2.0, 0.0, 3.0];
        let solver = DiagPlusLowRank::new(u.clone());
        let x = solver.solve(&d, &e, &r).unwrap();
        let xref = dense_solve(&u, &d, &e, &r);
        for k in 0..5 {
            assert!((x[k] - xref[k]).abs() < 1e-9, "{x:?} vs {xref:?}");
        }
    }

    #[test]
    fn zero_curvature_rows_are_skipped() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let u = t.to_csc();
        let d = [2.0, 2.0, 2.0];
        let e = [0.0, 4.0]; // first row inert
        let r = [2.0, 6.0, 2.0];
        let solver = DiagPlusLowRank::new(u.clone());
        let x = solver.solve(&d, &e, &r).unwrap();
        let xref = dense_solve(&u, &d, &e, &r);
        for k in 0..3 {
            assert!((x[k] - xref[k]).abs() < 1e-10);
        }
        // Variable 0 sees only D.
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pure_diagonal_when_no_active_rows() {
        let t = Triplets::new(1, 2);
        let solver = DiagPlusLowRank::new(t.to_csc());
        let x = solver.solve(&[4.0, 2.0], &[0.0], &[8.0, 8.0]).unwrap();
        assert_eq!(x, vec![2.0, 4.0]);
    }
}
