//! Separable convex programming over linear inequality constraints.
//!
//! Solves problems of the form
//!
//! ```text
//! min  Σ_k f_k(x_k) + Σ_g φ_g(Σ_{k∈g} x_k)
//! s.t. A x ≥ b,   x ≥ 0
//! ```
//!
//! where each `f_k` and `φ_g` is smooth and convex on `x > 0` — exactly the
//! shape of the paper's regularized per-slot program ℙ₂ (linear terms plus
//! relative-entropy terms on both the per-user-per-cloud variables and the
//! per-cloud aggregates).
//!
//! The solver ([`BarrierSolver`]) is a log-barrier path-following Newton
//! method. The Newton matrix is `D + Uᵀ E U` with diagonal `D` (from the
//! separable terms and the `x ≥ 0` barrier) and a low-rank coupling `U`
//! (group indicator rows and the constraint rows of `A`), so each Newton
//! step is solved with a dense Schur complement of size `#groups + #rows` —
//! independent of the number of variables.

mod barrier;
mod schur;
mod separable;

pub use barrier::{BarrierOptions, BarrierSolution, BarrierSolver, BarrierStats, BarrierWorkspace};
pub use schur::{DiagPlusLowRank, DiagPlusLowRankWorkspace};
pub use separable::{GroupTerm, ScalarTerm, SeparableObjective};
