//! Separable convex programming over linear inequality constraints.
//!
//! Solves problems of the form
//!
//! ```text
//! min  Σ_k f_k(x_k) + Σ_g φ_g(Σ_{k∈g} x_k)
//! s.t. A x ≥ b,   x ≥ 0
//! ```
//!
//! where each `f_k` and `φ_g` is smooth and convex on `x > 0` — exactly the
//! shape of the paper's regularized per-slot program ℙ₂ (linear terms plus
//! relative-entropy terms on both the per-user-per-cloud variables and the
//! per-cloud aggregates).
//!
//! The solver ([`BarrierSolver`]) is a log-barrier path-following Newton
//! method. The Newton matrix is `D + Uᵀ E U` with diagonal `D` (from the
//! separable terms and the `x ≥ 0` barrier) and a low-rank coupling `U`
//! (group indicator rows and the constraint rows of `A`), so each Newton
//! step is solved with a Schur complement over the coupling rows —
//! independent of the number of variables. Two Schur kernels exist
//! ([`SchurKernel`]): the dense Woodbury complement, cubic in the coupling
//! row count, and a user-blocked nested-Schur elimination that is *linear*
//! in the number of pairwise-disjoint ("local") rows — for ℙ₂, linear in
//! the number of users. [`SchurKernel::Auto`] picks per pattern.

mod barrier;
mod schur;
mod separable;

pub use barrier::{BarrierOptions, BarrierSolution, BarrierSolver, BarrierStats, BarrierWorkspace};
pub use schur::{DiagPlusLowRank, DiagPlusLowRankWorkspace, SchurKernel};
pub use separable::{GroupTerm, ScalarTerm, SeparableObjective};
