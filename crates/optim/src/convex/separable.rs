//! Separable convex objectives with group (aggregate) terms.
//!
//! The split matters to the Newton solver: per-variable terms contribute
//! only to the diagonal `D` of the Newton matrix `D + Uᵀ E U`, while each
//! group term contributes one *coupling row* to `U` (its indicator row)
//! and one curvature entry to `E`. In ℙ₂ the group rows are wide (one per
//! cloud, spanning all of that cloud's variables) and therefore always
//! land in the coupling block of the blocked nested-Schur kernel — only
//! the thin, pairwise-disjoint constraint rows of `A` are eliminated in
//! closed form (see `convex::schur` and DESIGN.md §12).

/// A smooth convex scalar term, evaluated on `x > -eps` (all variants are
/// well-defined for `x ≥ 0`, which the barrier solver maintains).
///
/// The regularized program ℙ₂ of the paper uses exactly [`ScalarTerm::Linear`]
/// and [`ScalarTerm::RelativeEntropy`]; [`ScalarTerm::Quadratic`] exists for
/// testing the solver against closed-form QP solutions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarTerm {
    /// `coef · x`
    Linear {
        /// The linear coefficient.
        coef: f64,
    },
    /// `(q/2) · x²` with `q ≥ 0`.
    Quadratic {
        /// The curvature `q`.
        q: f64,
    },
    /// `w · ( (x+ε) ln((x+ε)/(x_ref+ε)) − x )` — the paper's regularizer,
    /// a relative-entropy distance to the previous slot's solution `x_ref`.
    RelativeEntropy {
        /// The weight `w` (`c_i/η_i` or `b_i/τ_{i,j}` in the paper).
        weight: f64,
        /// The smoothing parameter `ε > 0`.
        eps: f64,
        /// The reference point (previous slot's allocation), `≥ 0`.
        xref: f64,
    },
}

impl ScalarTerm {
    /// Function value at `x`.
    pub fn value(&self, x: f64) -> f64 {
        match *self {
            ScalarTerm::Linear { coef } => coef * x,
            ScalarTerm::Quadratic { q } => 0.5 * q * x * x,
            ScalarTerm::RelativeEntropy { weight, eps, xref } => {
                weight * ((x + eps) * ((x + eps) / (xref + eps)).ln() - x)
            }
        }
    }

    /// First derivative at `x`.
    pub fn deriv(&self, x: f64) -> f64 {
        match *self {
            ScalarTerm::Linear { coef } => coef,
            ScalarTerm::Quadratic { q } => q * x,
            ScalarTerm::RelativeEntropy { weight, eps, xref } => {
                weight * ((x + eps) / (xref + eps)).ln()
            }
        }
    }

    /// Second derivative at `x`.
    pub fn deriv2(&self, x: f64) -> f64 {
        match *self {
            ScalarTerm::Linear { .. } => 0.0,
            ScalarTerm::Quadratic { q } => q,
            ScalarTerm::RelativeEntropy { weight, eps, .. } => weight / (x + eps),
        }
    }
}

/// A convex term applied to the **sum** of a set of variables:
/// `φ(Σ_{k ∈ members} x_k)`.
///
/// ℙ₂'s reconfiguration regularizer is a [`ScalarTerm::RelativeEntropy`] on
/// the per-cloud aggregate `x_{i,t} = Σ_j x_{i,j,t}`.
#[derive(Debug, Clone)]
pub struct GroupTerm {
    /// Variable indices whose sum the term is applied to.
    pub members: Vec<usize>,
    /// The scalar function φ.
    pub term: ScalarTerm,
}

/// Objective `Σ_k Σ_t f_{k,t}(x_k) + Σ_g φ_g(Σ_{k∈g} x_k)`: a sum of scalar
/// terms per variable plus group terms on aggregates.
///
/// # Example
///
/// ```
/// use optim::convex::{ScalarTerm, SeparableObjective};
///
/// let mut f = SeparableObjective::new(2);
/// f.add_term(0, ScalarTerm::Linear { coef: 3.0 });
/// f.add_term(1, ScalarTerm::Quadratic { q: 2.0 });
/// assert_eq!(f.value(&[1.0, 2.0]), 3.0 + 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct SeparableObjective {
    n: usize,
    terms: Vec<Vec<ScalarTerm>>,
    groups: Vec<GroupTerm>,
}

impl SeparableObjective {
    /// An objective over `n` variables with no terms (identically zero).
    pub fn new(n: usize) -> Self {
        SeparableObjective {
            n,
            terms: vec![Vec::new(); n],
            groups: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The group terms.
    pub fn groups(&self) -> &[GroupTerm] {
        &self.groups
    }

    /// Adds a scalar term on variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n`.
    pub fn add_term(&mut self, var: usize, term: ScalarTerm) {
        assert!(var < self.n, "variable {var} out of range");
        self.terms[var].push(term);
    }

    /// Adds a group term `φ(Σ_{k∈members} x_k)`.
    ///
    /// # Panics
    ///
    /// Panics if any member index is out of range.
    pub fn add_group(&mut self, members: Vec<usize>, term: ScalarTerm) {
        assert!(
            members.iter().all(|&k| k < self.n),
            "group member out of range"
        );
        self.groups.push(GroupTerm { members, term });
    }

    /// Number of scalar terms currently attached to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n`.
    pub fn num_terms(&self, var: usize) -> usize {
        self.terms[var].len()
    }

    /// Overwrites the `idx`-th scalar term on `var` in place — the value
    /// refresh of a persistent solve workspace, where the *shape* of the
    /// objective (which terms exist) is fixed and only coefficients change
    /// between solves.
    ///
    /// # Panics
    ///
    /// Panics if `var` or `idx` is out of range.
    pub fn set_term(&mut self, var: usize, idx: usize, term: ScalarTerm) {
        self.terms[var][idx] = term;
    }

    /// Overwrites group `g`'s scalar function in place (members are fixed:
    /// changing the membership would desync any coupling matrix built from
    /// this objective).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn set_group_term(&mut self, g: usize, term: ScalarTerm) {
        self.groups[g].term = term;
    }

    /// Objective value at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut v = 0.0;
        for (k, ts) in self.terms.iter().enumerate() {
            for t in ts {
                v += t.value(x[k]);
            }
        }
        for g in &self.groups {
            let s: f64 = g.members.iter().map(|&k| x[k]).sum();
            v += g.term.value(s);
        }
        v
    }

    /// Gradient at `x`, written into `grad`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn gradient_into(&self, x: &[f64], grad: &mut [f64]) {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        assert_eq!(grad.len(), self.n, "dimension mismatch");
        grad.fill(0.0);
        for (k, ts) in self.terms.iter().enumerate() {
            for t in ts {
                grad[k] += t.deriv(x[k]);
            }
        }
        for g in &self.groups {
            let s: f64 = g.members.iter().map(|&k| x[k]).sum();
            let d = g.term.deriv(s);
            for &k in &g.members {
                grad[k] += d;
            }
        }
    }

    /// Gradient at `x` as a new vector.
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; self.n];
        self.gradient_into(x, &mut g);
        g
    }

    /// Diagonal (separable) part of the Hessian at `x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn hessian_diag_into(&self, x: &[f64], diag: &mut [f64]) {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        diag.fill(0.0);
        for (k, ts) in self.terms.iter().enumerate() {
            for t in ts {
                diag[k] += t.deriv2(x[k]);
            }
        }
    }

    /// Curvatures `φ''_g(Σ x)` of the group terms at `x`.
    pub fn group_curvatures(&self, x: &[f64]) -> Vec<f64> {
        let mut h = vec![0.0; self.groups.len()];
        self.group_curvatures_into(x, &mut h);
        h
    }

    /// Curvatures `φ''_g(Σ x)` of the group terms at `x`, written into `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h.len()` does not match the number of groups.
    pub fn group_curvatures_into(&self, x: &[f64], h: &mut [f64]) {
        assert_eq!(h.len(), self.groups.len(), "dimension mismatch");
        for (hg, g) in h.iter_mut().zip(&self.groups) {
            let s: f64 = g.members.iter().map(|&k| x[k]).sum();
            *hg = g.term.deriv2(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_term_matches_finite_differences() {
        let t = ScalarTerm::RelativeEntropy {
            weight: 2.5,
            eps: 0.3,
            xref: 1.7,
        };
        let h = 1e-5;
        let h2 = 1e-4; // larger step for the second difference (cancellation)
        for &x in &[0.0, 0.5, 1.7, 10.0] {
            let fd1 = (t.value(x + h) - t.value(x - h)) / (2.0 * h);
            assert!((fd1 - t.deriv(x)).abs() < 1e-5, "deriv at {x}");
            let fd2 = (t.value(x + h2) - 2.0 * t.value(x) + t.value(x - h2)) / (h2 * h2);
            assert!(
                (fd2 - t.deriv2(x)).abs() < 1e-3,
                "deriv2 at {x}: {fd2} vs {}",
                t.deriv2(x)
            );
        }
    }

    #[test]
    fn entropy_is_zero_at_reference() {
        // At x = xref the bregman-style term equals w·(xref+eps)·0 − w·xref.
        let t = ScalarTerm::RelativeEntropy {
            weight: 1.0,
            eps: 0.5,
            xref: 2.0,
        };
        assert!((t.value(2.0) - (-2.0)).abs() < 1e-12);
        assert_eq!(t.deriv(2.0), 0.0);
    }

    #[test]
    fn group_gradient_uses_chain_rule() {
        let mut f = SeparableObjective::new(3);
        f.add_group(
            vec![0, 2],
            ScalarTerm::Quadratic { q: 2.0 }, // φ(s) = s², φ' = 2s
        );
        let x = [1.0, 5.0, 2.0];
        let g = f.gradient(&x);
        // s = 3, φ'(3) = 6, applied to members 0 and 2 only.
        assert_eq!(g, vec![6.0, 0.0, 6.0]);
    }

    #[test]
    fn value_accumulates_multiple_terms() {
        let mut f = SeparableObjective::new(1);
        f.add_term(0, ScalarTerm::Linear { coef: 1.0 });
        f.add_term(0, ScalarTerm::Linear { coef: 2.0 });
        assert_eq!(f.value(&[3.0]), 9.0);
    }

    #[test]
    fn group_curvatures_at_point() {
        let mut f = SeparableObjective::new(2);
        f.add_group(vec![0, 1], ScalarTerm::Quadratic { q: 4.0 });
        assert_eq!(f.group_curvatures(&[1.0, 1.0]), vec![4.0]);
    }
}
