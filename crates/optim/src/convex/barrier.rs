//! Log-barrier path-following solver for separable convex programs.

use crate::budget::SolveBudget;
use crate::convex::{DiagPlusLowRank, DiagPlusLowRankWorkspace, SchurKernel, SeparableObjective};
use crate::lp::{ConstraintSense, IpmOptions, LpProblem};
use crate::sparse::{CscMatrix, Triplets};
use crate::{Error, Result, Salvage};

/// Options for the barrier solver.
#[derive(Debug, Clone)]
pub struct BarrierOptions {
    /// Initial barrier parameter `t₀`.
    pub t0: f64,
    /// Barrier parameter growth factor `μ > 1` per outer iteration.
    pub mu: f64,
    /// Relative duality-gap tolerance: stop when
    /// `(m+n)/t ≤ tol · (1 + |f(x)|)`.
    pub tol: f64,
    /// Newton decrement tolerance for the centering steps (`λ²/2`).
    pub inner_tol: f64,
    /// Newton step limit per centering.
    pub max_newton: usize,
    /// Outer iteration limit.
    pub max_outer: usize,
    /// Cooperative wall-clock/iteration budget, checked at the top of each
    /// Newton step (unlimited by default — the happy path then reads no
    /// clock). On exhaustion the solve returns
    /// [`Error::DeadlineExceeded`] carrying the current (strictly
    /// feasible) iterate as a salvage point.
    pub budget: SolveBudget,
}

impl Default for BarrierOptions {
    fn default() -> Self {
        BarrierOptions {
            t0: 1.0,
            mu: 20.0,
            tol: 1e-8,
            inner_tol: 1e-9,
            max_newton: 200,
            max_outer: 80,
            budget: SolveBudget::unlimited(),
        }
    }
}

/// Statistics of a finished barrier solve.
#[derive(Debug, Clone, Copy)]
pub struct BarrierStats {
    /// Outer (centering) iterations.
    pub outer_iterations: usize,
    /// Total Newton steps across all centerings.
    pub newton_steps: usize,
    /// Final certified duality gap `(m+n)/t`.
    pub gap: f64,
}

/// Solution of a separable convex program.
#[derive(Debug, Clone)]
pub struct BarrierSolution {
    /// Primal solution.
    pub x: Vec<f64>,
    /// Objective value `f(x)`.
    pub objective: f64,
    /// Approximate KKT multipliers of the rows `A x ≥ b`
    /// (`λ_r = 1/(t·slack_r) ≥ 0`).
    pub row_duals: Vec<f64>,
    /// Approximate KKT multipliers of the bounds `x ≥ 0`.
    pub bound_duals: Vec<f64>,
    /// Statistics.
    pub stats: BarrierStats,
}

/// A separable convex program `min f(x) s.t. A x ≥ b, x ≥ 0` solved by a
/// log-barrier path-following Newton method.
///
/// The Newton systems are diagonal-plus-low-rank and solved through a dense
/// Schur complement of size `#groups + #rows` (see [`DiagPlusLowRank`]), so
/// the per-step cost is linear in the number of variables.
///
/// # Example
///
/// Minimize `x² + y²` over `x + y ≥ 2` (optimum at x = y = 1):
///
/// ```
/// use optim::convex::{BarrierOptions, BarrierSolver, ScalarTerm, SeparableObjective};
/// use optim::sparse::Triplets;
///
/// # fn main() -> Result<(), optim::Error> {
/// let mut f = SeparableObjective::new(2);
/// f.add_term(0, ScalarTerm::Quadratic { q: 2.0 });
/// f.add_term(1, ScalarTerm::Quadratic { q: 2.0 });
/// let mut a = Triplets::new(1, 2);
/// a.push(0, 0, 1.0);
/// a.push(0, 1, 1.0);
/// let solver = BarrierSolver::new(f, a.to_csc(), vec![2.0])?;
/// let sol = solver.solve(None, &BarrierOptions::default())?;
/// assert!((sol.x[0] - 1.0).abs() < 1e-5);
/// assert!((sol.x[1] - 1.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BarrierSolver {
    objective: SeparableObjective,
    a: CscMatrix,
    b: Vec<f64>,
    coupling: DiagPlusLowRank,
    num_groups: usize,
}

impl BarrierSolver {
    /// Creates a solver for `min f(x) s.t. a·x ≥ b, x ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] on inconsistent sizes.
    pub fn new(objective: SeparableObjective, a: CscMatrix, b: Vec<f64>) -> Result<Self> {
        Self::new_with_kernel(objective, a, b, SchurKernel::Auto)
    }

    /// [`BarrierSolver::new`] with an explicit Newton-step Schur kernel
    /// (see [`SchurKernel`]); `new` uses [`SchurKernel::Auto`], which keeps
    /// the dense path for small programs and switches to the user-blocked
    /// nested-Schur elimination when the constraint pattern has a large
    /// block of pairwise-disjoint rows (ℙ₂'s per-user demand rows).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Dimension`] on inconsistent sizes.
    pub fn new_with_kernel(
        objective: SeparableObjective,
        a: CscMatrix,
        b: Vec<f64>,
        kernel: SchurKernel,
    ) -> Result<Self> {
        let n = objective.num_vars();
        if a.ncols() != n {
            return Err(Error::Dimension(format!(
                "constraint matrix has {} columns, objective has {} variables",
                a.ncols(),
                n
            )));
        }
        if a.nrows() != b.len() {
            return Err(Error::Dimension(format!(
                "constraint matrix has {} rows, rhs has {}",
                a.nrows(),
                b.len()
            )));
        }
        // Coupling matrix U: group indicator rows stacked over A's rows.
        let g = objective.groups().len();
        let m = a.nrows();
        let mut t = Triplets::with_capacity(g + m, n, a.nnz() + objective.groups().len() * 4);
        for (gi, group) in objective.groups().iter().enumerate() {
            for &k in &group.members {
                t.push(gi, k, 1.0);
            }
        }
        for c in 0..n {
            let (rows, vals) = a.col(c);
            for (p, &r) in rows.iter().enumerate() {
                t.push(g + r, c, vals[p]);
            }
        }
        let coupling = DiagPlusLowRank::with_kernel(t.to_csc(), kernel);
        Ok(BarrierSolver {
            objective,
            a,
            b,
            coupling,
            num_groups: g,
        })
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.num_vars()
    }

    /// The Schur kernel the Newton steps actually use after auto-resolution
    /// ([`SchurKernel::Dense`] or [`SchurKernel::Blocked`]).
    pub fn schur_kernel(&self) -> SchurKernel {
        self.coupling.resolved_kernel()
    }

    /// Short stable name of the active Schur kernel, for health records.
    pub fn schur_kernel_name(&self) -> &'static str {
        match self.coupling.resolved_kernel() {
            SchurKernel::Blocked => "blocked",
            _ => "dense",
        }
    }

    /// Worker-thread target for the blocked kernel's per-user elimination
    /// (leased from the process-global [`crate::parallel::WorkerBudget`]
    /// per Newton step; no-op on the dense kernel). The default of 1 keeps
    /// steady-state solves allocation-free and bit-deterministic.
    pub fn set_schur_threads(&mut self, threads: usize) {
        self.coupling.set_threads(threads);
    }

    /// The configured Schur worker-thread target (1 = sequential).
    pub fn schur_threads(&self) -> usize {
        self.coupling.threads()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.a.nrows()
    }

    /// The objective (for evaluating candidate points).
    pub fn objective(&self) -> &SeparableObjective {
        &self.objective
    }

    /// Mutable access to the objective, for refreshing term *values* in
    /// place between solves (cross-solve reuse: the constraint pattern and
    /// the group/Schur coupling built at construction are kept).
    ///
    /// The structure must not change: do not add variables, terms, or
    /// groups — only overwrite existing ones via
    /// [`SeparableObjective::set_term`] / [`SeparableObjective::set_group_term`].
    /// A changed group count is caught by a debug assertion at the next
    /// solve; a changed membership silently desyncs the cached coupling.
    pub fn objective_mut(&mut self) -> &mut SeparableObjective {
        &mut self.objective
    }

    /// Mutable access to the right-hand side `b`, for refreshing constraint
    /// levels in place between solves (the matrix `A` stays fixed).
    pub fn rhs_mut(&mut self) -> &mut [f64] {
        &mut self.b
    }

    /// Finds a strictly feasible point by solving the phase-I LP
    /// `min t  s.t.  A x + t·1 ≥ b + δ·1,  x + t·1 ≥ δ·1,  x, t ≥ 0`
    /// for a decreasing sequence of target margins `δ`. The LP is always
    /// feasible (take `x = 0` and `t` large); an interior point with margin
    /// `δ − t* > 0` exists whenever `t* < δ`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] if no interior point exists down to the
    /// smallest margin tried.
    pub fn strictly_feasible_start(&self) -> Result<Vec<f64>> {
        self.strictly_feasible_start_budgeted(&SolveBudget::unlimited())
    }

    /// [`BarrierSolver::strictly_feasible_start`] under a budget: the
    /// phase-I interior-point solves inherit the deadline, so a hanging
    /// phase I surrenders cooperatively like the main solve does.
    ///
    /// # Errors
    ///
    /// As [`BarrierSolver::strictly_feasible_start`], plus
    /// [`Error::DeadlineExceeded`] (with nothing to salvage — no interior
    /// point exists yet) when the budget runs out.
    pub fn strictly_feasible_start_budgeted(&self, budget: &SolveBudget) -> Result<Vec<f64>> {
        let n = self.num_vars();
        let m = self.num_rows();
        let scale = 1.0 + self.b.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        let at = self.a.transpose(); // column r of `at` = row r of A
        let mut delta = 1e-3 * scale;
        for _attempt in 0..4 {
            if budget.exhausted(0) {
                return Err(Error::DeadlineExceeded {
                    iterations: 0,
                    best: None,
                });
            }
            let mut lp = LpProblem::new();
            let x0 = lp.add_vars(n, 0.0);
            let t_var = lp.add_var(1.0); // minimize t
            for r in 0..m {
                let (cols, vals) = at.col(r);
                let mut terms: Vec<(usize, f64)> =
                    cols.iter().zip(vals).map(|(&c, &v)| (x0 + c, v)).collect();
                terms.push((t_var, 1.0));
                lp.add_row(ConstraintSense::Ge, self.b[r] + delta, &terms);
            }
            for k in 0..n {
                lp.add_row(ConstraintSense::Ge, delta, &[(x0 + k, 1.0), (t_var, 1.0)]);
            }
            let sol = lp
                .solve_with(&IpmOptions {
                    tol: 1e-9,
                    budget: *budget,
                    ..IpmOptions::default()
                })
                .map_err(|e| match e {
                    // A phase-I iterate lives in the auxiliary LP's variable
                    // space — useless to barrier callers, so don't offer it.
                    Error::DeadlineExceeded { iterations, .. } => Error::DeadlineExceeded {
                        iterations,
                        best: None,
                    },
                    other => other,
                })?;
            let t_opt = sol.x[t_var];
            if t_opt < 0.5 * delta {
                // Strictly interior with margin ≥ δ/2 up to solver tolerance;
                // verify and return.
                let x: Vec<f64> = sol.x[..n].to_vec();
                let slacks = self.slacks(&x);
                if x.iter().all(|&v| v > 0.0) && slacks.iter().all(|&s| s > 0.0) {
                    return Ok(x);
                }
            }
            delta *= 1e-3;
        }
        Err(Error::Infeasible)
    }

    fn barrier_value(&self, t: f64, x: &[f64], slack: &[f64]) -> f64 {
        let mut v = t * self.objective.value(x);
        for &sk in slack {
            v -= sk.ln();
        }
        for &xk in x {
            v -= xk.ln();
        }
        v
    }

    fn slacks(&self, x: &[f64]) -> Vec<f64> {
        let mut s = vec![0.0; self.num_rows()];
        self.slacks_into(x, &mut s);
        s
    }

    /// Constraint slacks `A x − b` written into `out`.
    fn slacks_into(&self, x: &[f64], out: &mut [f64]) {
        self.a.mul_vec_into(x, out);
        for (sr, &br) in out.iter_mut().zip(&self.b) {
            *sr -= br;
        }
    }

    /// Solves the program, optionally from a strictly feasible start `x0`
    /// (found via [`BarrierSolver::strictly_feasible_start`] when `None`).
    ///
    /// Convenience wrapper over [`BarrierSolver::solve_with_workspace`]
    /// that allocates a fresh [`BarrierWorkspace`]; callers solving the
    /// same (or a value-refreshed) program repeatedly should hold a
    /// workspace and reuse it.
    ///
    /// # Errors
    ///
    /// * [`Error::BadStartingPoint`] if `x0` is supplied but not strictly
    ///   feasible.
    /// * [`Error::Infeasible`] if phase I finds no interior point.
    /// * [`Error::MaxIterations`] / [`Error::Numerical`] on breakdown.
    pub fn solve(&self, x0: Option<&[f64]>, opts: &BarrierOptions) -> Result<BarrierSolution> {
        let mut ws = BarrierWorkspace::for_solver(self);
        self.solve_with_workspace(x0, opts, &mut ws)
    }

    /// [`BarrierSolver::solve`] against a caller-held [`BarrierWorkspace`].
    ///
    /// Every Newton-step intermediate — slacks, gradients, the Newton
    /// diagonal, the Schur-complement scratch, line-search candidates —
    /// lives in `ws`, so the inner loop performs **no heap allocation**
    /// (verified by `tests/alloc_free.rs`). The workspace carries across
    /// solves: per-horizon callers build it once and reuse it every slot.
    ///
    /// # Errors
    ///
    /// As [`BarrierSolver::solve`].
    pub fn solve_with_workspace(
        &self,
        x0: Option<&[f64]>,
        opts: &BarrierOptions,
        ws: &mut BarrierWorkspace,
    ) -> Result<BarrierSolution> {
        let n = self.num_vars();
        let m = self.num_rows();
        debug_assert_eq!(
            self.objective.groups().len(),
            self.num_groups,
            "objective structure changed under a live solver (see objective_mut)"
        );
        ws.resize_for(self);
        match x0 {
            Some(start) => {
                if start.len() != n {
                    return Err(Error::Dimension("starting point length".into()));
                }
                self.slacks_into(start, &mut ws.slack);
                if start.iter().any(|&v| v <= 0.0) {
                    return Err(Error::BadStartingPoint("some x_k ≤ 0".into()));
                }
                if ws.slack.iter().any(|&v| v <= 0.0) {
                    return Err(Error::BadStartingPoint("some constraint slack ≤ 0".into()));
                }
                ws.x.copy_from_slice(start);
            }
            None => {
                let start = self.strictly_feasible_start_budgeted(&opts.budget)?;
                ws.x.copy_from_slice(&start);
            }
        }

        let mut t = opts.t0;
        let mut stats = BarrierStats {
            outer_iterations: 0,
            newton_steps: 0,
            gap: f64::INFINITY,
        };
        let total_constraints = (m + n) as f64;
        let trace = std::env::var_os("OPTIM_TRACE").is_some();
        // The budget check is hoisted out of the hot loop condition: an
        // unlimited budget (the default) performs no clock reads at all.
        let budgeted = !opts.budget.is_unlimited();

        for outer in 0..opts.max_outer {
            stats.outer_iterations = outer + 1;
            let steps_before = stats.newton_steps;
            let mut trials = 0usize;
            // ---- center at parameter t ----
            for _ in 0..opts.max_newton {
                if budgeted && opts.budget.exhausted(stats.newton_steps) {
                    // The current iterate is the last *accepted* point, so
                    // it is strictly feasible; hand it back for salvage
                    // with the gap bound of the current barrier parameter
                    // (approximate — this point may not be fully centered).
                    stats.gap = total_constraints / t;
                    return Err(Error::DeadlineExceeded {
                        iterations: stats.newton_steps,
                        best: Some(Box::new(Salvage {
                            x: ws.x.clone(),
                            objective: self.objective.value(&ws.x),
                            residual: stats.gap,
                        })),
                    });
                }
                self.slacks_into(&ws.x, &mut ws.slack);
                self.objective.gradient_into(&ws.x, &mut ws.grad_f);
                self.objective.hessian_diag_into(&ws.x, &mut ws.diag_f);
                self.objective.group_curvatures_into(&ws.x, &mut ws.group_h);

                // Gradient of the barrier (assembled directly in negated
                // form: the Newton system is H dx = −∇ψ).
                for (ir, &sr) in ws.inv_slack.iter_mut().zip(&ws.slack) {
                    *ir = 1.0 / sr;
                }
                self.a
                    .mul_transpose_vec_into(&ws.inv_slack, &mut ws.at_inv_slack);
                for k in 0..n {
                    ws.g[k] = -(t * ws.grad_f[k] - ws.at_inv_slack[k] - 1.0 / ws.x[k]);
                    // Newton matrix diagonal.
                    ws.d[k] = (t * ws.diag_f[k] + 1.0 / (ws.x[k] * ws.x[k])).max(1e-14);
                }
                for (gi, &h) in ws.group_h.iter().enumerate() {
                    ws.e[gi] = t * h;
                }
                for (r, &s) in ws.slack.iter().enumerate() {
                    ws.e[self.num_groups + r] = 1.0 / (s * s);
                }
                self.coupling
                    .solve_into(&ws.d, &ws.e, &ws.g, &mut ws.schur, &mut ws.dx)?;
                // Newton decrement λ² = dxᵀ H dx = −∇ψᵀ dx = gᵀ dx (g already negated).
                let lambda2: f64 =
                    ws.g.iter()
                        .zip(&ws.dx)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
                        .max(0.0);
                stats.newton_steps += 1;
                if 0.5 * lambda2 < opts.inner_tol {
                    break;
                }

                // Ratio test for strict feasibility.
                let mut alpha_max = 1.0f64;
                for k in 0..n {
                    if ws.dx[k] < 0.0 {
                        alpha_max = alpha_max.min(-ws.x[k] / ws.dx[k]);
                    }
                }
                self.a.mul_vec_into(&ws.dx, &mut ws.ds);
                for r in 0..m {
                    if ws.ds[r] < 0.0 {
                        alpha_max = alpha_max.min(-ws.slack[r] / ws.ds[r]);
                    }
                }
                let mut alpha = (0.99 * alpha_max).min(1.0);
                // Backtracking (Armijo on the barrier function).
                let psi0 = self.barrier_value(t, &ws.x, &ws.slack);
                let slope = -lambda2; // ∇ψᵀ dx
                let mut accepted = false;
                let mut psi_accepted = psi0;
                for _ in 0..60 {
                    trials += 1;
                    for k in 0..n {
                        ws.xn[k] = ws.x[k] + alpha * ws.dx[k];
                    }
                    self.slacks_into(&ws.xn, &mut ws.sn);
                    if ws.xn.iter().all(|&v| v > 0.0) && ws.sn.iter().all(|&v| v > 0.0) {
                        let psi = self.barrier_value(t, &ws.xn, &ws.sn);
                        if psi <= psi0 + 0.01 * alpha * slope {
                            std::mem::swap(&mut ws.x, &mut ws.xn);
                            accepted = true;
                            psi_accepted = psi;
                            break;
                        }
                    }
                    alpha *= 0.5;
                }
                if !accepted {
                    // Numerically stuck: the current point is as centered as
                    // floating point allows at this t.
                    break;
                }
                // At large t the barrier value sits at ~t·f ≫ 1, and the
                // Armijo threshold `0.01·α·slope` eventually falls below one
                // ulp of ψ — steps then "succeed" with no representable
                // descent and the centering spins until `max_newton`. Treat
                // a sub-ulp decrease as converged-at-this-precision.
                if psi0 - psi_accepted <= 1e-13 * (1.0 + psi0.abs()) {
                    break;
                }
            }

            stats.gap = total_constraints / t;
            if trace {
                eprintln!(
                    "outer {outer}: t={t:.3e} steps={} trials={trials}",
                    stats.newton_steps - steps_before
                );
            }
            let fval = self.objective.value(&ws.x);
            if stats.gap <= opts.tol * (1.0 + fval.abs()) {
                self.slacks_into(&ws.x, &mut ws.slack);
                return Ok(BarrierSolution {
                    objective: fval,
                    row_duals: ws.slack.iter().map(|&s| 1.0 / (t * s)).collect(),
                    bound_duals: ws.x.iter().map(|&v| 1.0 / (t * v)).collect(),
                    x: ws.x.clone(),
                    stats,
                });
            }
            t *= opts.mu;
        }
        Err(Error::MaxIterations {
            iterations: opts.max_outer,
            residual: stats.gap,
        })
    }
}

/// Preallocated buffers for [`BarrierSolver::solve_with_workspace`]: every
/// per-Newton-step vector (slacks, gradient, Newton diagonal, step, line
/// search candidates) plus the [`DiagPlusLowRankWorkspace`] for the Schur
/// solve. Reusable across Newton steps, across solves, and across
/// value-refreshed re-solves of the same program — the persistent-workspace
/// online path holds exactly one of these per horizon.
#[derive(Debug, Clone, Default)]
pub struct BarrierWorkspace {
    x: Vec<f64>,
    slack: Vec<f64>,
    inv_slack: Vec<f64>,
    at_inv_slack: Vec<f64>,
    grad_f: Vec<f64>,
    diag_f: Vec<f64>,
    group_h: Vec<f64>,
    g: Vec<f64>,
    d: Vec<f64>,
    e: Vec<f64>,
    dx: Vec<f64>,
    ds: Vec<f64>,
    xn: Vec<f64>,
    sn: Vec<f64>,
    schur: DiagPlusLowRankWorkspace,
}

impl BarrierWorkspace {
    /// A workspace fully pre-sized for `solver`, so even the first solve
    /// performs no buffer growth.
    pub fn for_solver(solver: &BarrierSolver) -> Self {
        let mut ws = BarrierWorkspace {
            schur: DiagPlusLowRankWorkspace::for_solver(&solver.coupling),
            ..BarrierWorkspace::default()
        };
        ws.resize_for(solver);
        ws
    }

    /// Resizes every buffer for `solver`. A no-op when dimensions already
    /// match (the steady state); after a structural rebuild it regrows only
    /// what changed, keeping spare capacity.
    pub fn resize_for(&mut self, solver: &BarrierSolver) {
        let n = solver.num_vars();
        let m = solver.num_rows();
        for buf in [
            &mut self.x,
            &mut self.grad_f,
            &mut self.diag_f,
            &mut self.g,
            &mut self.d,
            &mut self.dx,
            &mut self.xn,
        ] {
            buf.resize(n, 0.0);
        }
        for buf in [
            &mut self.slack,
            &mut self.inv_slack,
            &mut self.ds,
            &mut self.sn,
        ] {
            buf.resize(m, 0.0);
        }
        self.at_inv_slack.resize(n, 0.0);
        self.group_h.resize(solver.num_groups, 0.0);
        self.e.resize(solver.num_groups + m, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convex::ScalarTerm;

    fn simple_row(coefs: &[f64]) -> CscMatrix {
        let mut t = Triplets::new(1, coefs.len());
        for (k, &v) in coefs.iter().enumerate() {
            t.push(0, k, v);
        }
        t.to_csc()
    }

    #[test]
    fn quadratic_with_linear_constraint() {
        // min x² + y² s.t. x + y ≥ 2 → (1,1).
        let mut f = SeparableObjective::new(2);
        f.add_term(0, ScalarTerm::Quadratic { q: 2.0 });
        f.add_term(1, ScalarTerm::Quadratic { q: 2.0 });
        let solver = BarrierSolver::new(f, simple_row(&[1.0, 1.0]), vec![2.0]).unwrap();
        let sol = solver.solve(None, &BarrierOptions::default()).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-5);
        assert!((sol.x[1] - 1.0).abs() < 1e-5);
        assert!((sol.objective - 2.0).abs() < 1e-5);
    }

    #[test]
    fn asymmetric_quadratic() {
        // min 2x² + y² s.t. x + y ≥ 3 → x = 1, y = 2 (gradients 4x = 2y).
        let mut f = SeparableObjective::new(2);
        f.add_term(0, ScalarTerm::Quadratic { q: 4.0 });
        f.add_term(1, ScalarTerm::Quadratic { q: 2.0 });
        let solver = BarrierSolver::new(f, simple_row(&[1.0, 1.0]), vec![3.0]).unwrap();
        let sol = solver.solve(None, &BarrierOptions::default()).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-4, "x = {:?}", sol.x);
        assert!((sol.x[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn linear_objective_hits_vertex() {
        // min x + 2y s.t. x + y ≥ 1 → (1, 0): acts like an LP.
        let mut f = SeparableObjective::new(2);
        f.add_term(0, ScalarTerm::Linear { coef: 1.0 });
        f.add_term(1, ScalarTerm::Linear { coef: 2.0 });
        let solver = BarrierSolver::new(f, simple_row(&[1.0, 1.0]), vec![1.0]).unwrap();
        let sol = solver.solve(None, &BarrierOptions::default()).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-5, "obj {}", sol.objective);
        assert!(sol.x[1] < 1e-4);
    }

    #[test]
    fn group_term_is_honored() {
        // min (x+y−2)² rewritten via a group quadratic plus linear parts:
        // φ(s) = s² − 4s (+const) over s = x+y, s.t. x ≥ 0, y ≥ 0 (no rows).
        // Minimum at s = 2.
        let mut f = SeparableObjective::new(2);
        f.add_group(vec![0, 1], ScalarTerm::Quadratic { q: 2.0 });
        f.add_term(0, ScalarTerm::Linear { coef: -4.0 });
        f.add_term(1, ScalarTerm::Linear { coef: -4.0 });
        let a = Triplets::new(0, 2).to_csc();
        let solver = BarrierSolver::new(f, a, vec![]).unwrap();
        let sol = solver
            .solve(Some(&[0.5, 0.5]), &BarrierOptions::default())
            .unwrap();
        let s = sol.x[0] + sol.x[1];
        assert!((s - 2.0).abs() < 1e-4, "sum = {s}");
    }

    #[test]
    fn entropy_pull_toward_reference() {
        // min a·x + w·((x+ε)ln((x+ε)/(xref+ε)) − x) s.t. x ≥ 1 (single var).
        // With a = 0 and minimization over x ≥ 1, the entropy term pulls x
        // toward xref = 3; unconstrained minimum of the term alone:
        // derivative w·ln((x+ε)/(xref+ε)) = 0 → x = xref.
        let mut f = SeparableObjective::new(1);
        f.add_term(
            0,
            ScalarTerm::RelativeEntropy {
                weight: 2.0,
                eps: 0.1,
                xref: 3.0,
            },
        );
        let solver = BarrierSolver::new(f, simple_row(&[1.0]), vec![1.0]).unwrap();
        let sol = solver.solve(None, &BarrierOptions::default()).unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-4, "x = {}", sol.x[0]);
    }

    #[test]
    fn infeasible_program_detected() {
        // x ≥ 0 with row −x ≥ 1 → infeasible.
        let f = SeparableObjective::new(1);
        let solver = BarrierSolver::new(f, simple_row(&[-1.0]), vec![1.0]).unwrap();
        assert!(matches!(
            solver.solve(None, &BarrierOptions::default()),
            Err(Error::Infeasible)
        ));
    }

    #[test]
    fn bad_starting_point_rejected() {
        let f = SeparableObjective::new(1);
        let solver = BarrierSolver::new(f, simple_row(&[1.0]), vec![1.0]).unwrap();
        assert!(matches!(
            solver.solve(Some(&[0.5]), &BarrierOptions::default()),
            Err(Error::BadStartingPoint(_))
        ));
    }

    #[test]
    fn row_duals_satisfy_stationarity() {
        // min x² s.t. x ≥ 1: optimum x = 1, dual λ of (x ≥ 1) is 2
        // (∇f = 2x = λ·1 + z, z → 0).
        let mut f = SeparableObjective::new(1);
        f.add_term(0, ScalarTerm::Quadratic { q: 2.0 });
        let solver = BarrierSolver::new(f, simple_row(&[1.0]), vec![1.0]).unwrap();
        let sol = solver.solve(None, &BarrierOptions::default()).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-5);
        assert!(
            (sol.row_duals[0] - 2.0).abs() < 1e-3,
            "dual = {}",
            sol.row_duals[0]
        );
    }
}
