//! Scoped parallel mapping with a process-global worker budget.
//!
//! The bench harness, the simulator, and the blocked Schur kernel all want
//! to fan work across threads, and they nest: a sweep point runs a scenario
//! whose repetitions each run a solver. Left to size themselves
//! independently, the layers multiply (`threads × repetitions × solver
//! threads` OS threads) and oversubscribe the machine. This module gives
//! every layer the same primitive — a scoped, work-stealing, panic-isolated
//! map — plus a shared [`WorkerBudget`]: a process-global pool of *spare*
//! worker permits (`available_parallelism − 1`; the calling thread is
//! always free). Each parallel site grabs as many spare permits as it can
//! use, runs with `1 + granted` workers, and returns the permits when done.
//! An inner site that finds the pool drained simply runs inline on its
//! caller — no blocking, no deadlock, and the process never has more
//! runnable workers than cores.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Renders a panic payload into a readable message.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// A pool of spare worker permits shared by nested parallel sites.
///
/// The pool counts threads *in addition to* the calling thread, so a
/// freshly built budget for an `n`-core machine holds `n − 1` permits.
/// [`acquire`](Self::acquire) is non-blocking: it hands back whatever is
/// available (possibly zero) and the caller proceeds with that many extra
/// workers. Permits return to the pool when the [`Permits`] guard drops.
pub struct WorkerBudget {
    spare: AtomicUsize,
}

impl WorkerBudget {
    /// A budget holding `spare` permits.
    pub fn new(spare: usize) -> Self {
        Self {
            spare: AtomicUsize::new(spare),
        }
    }

    /// The process-global budget: `available_parallelism − 1` spare permits.
    pub fn global() -> &'static WorkerBudget {
        static GLOBAL: OnceLock<WorkerBudget> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map_or(1, usize::from);
            WorkerBudget::new(cores.saturating_sub(1))
        })
    }

    /// Takes up to `want` permits without blocking; the guard returns them
    /// on drop. May grant fewer than asked — including zero.
    pub fn acquire(&self, want: usize) -> Permits<'_> {
        let mut cur = self.spare.load(Ordering::Relaxed);
        let mut granted = 0;
        while want.min(cur) > 0 {
            let take = want.min(cur);
            match self.spare.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    granted = take;
                    break;
                }
                Err(seen) => cur = seen,
            }
        }
        Permits {
            budget: self,
            count: granted,
        }
    }

    /// Permits currently available (racy snapshot; for tests/telemetry).
    pub fn spare(&self) -> usize {
        self.spare.load(Ordering::Relaxed)
    }
}

/// Guard over permits taken from a [`WorkerBudget`]; returns them on drop.
pub struct Permits<'a> {
    budget: &'a WorkerBudget,
    count: usize,
}

impl Permits<'_> {
    /// How many permits were actually granted.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl Drop for Permits<'_> {
    fn drop(&mut self) {
        if self.count > 0 {
            self.budget.spare.fetch_add(self.count, Ordering::Relaxed);
        }
    }
}

/// Maps `f` over `items` on up to `threads` scoped worker threads, pulling
/// work from a shared atomic queue (long items don't straggle behind a
/// static partition), and *isolates* each item: a panic inside `f` is
/// caught and returned as that item's `Err` while the other workers keep
/// draining the queue. Results come back in input order.
///
/// With `threads <= 1` (or a single item) the map runs inline on the
/// calling thread — with the same per-item isolation.
pub fn try_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let run_one = |item: &T| {
        catch_unwind(AssertUnwindSafe(|| f(item)))
            .map_err(|payload| format!("panicked: {}", panic_message(payload)))
    };
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().map(run_one).collect();
    }
    let next = AtomicUsize::new(0);
    let cells: Vec<Mutex<Option<Result<R, String>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = run_one(&items[i]);
                *cells[i].lock().expect("result cell poisoned") = Some(r);
            });
        }
    });
    cells
        .into_iter()
        .map(|c| {
            c.into_inner()
                .expect("result cell poisoned")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

/// [`try_parallel_map`] sized by a [`WorkerBudget`]: asks the budget for
/// `want − 1` spare permits (the calling thread is the first worker) and
/// runs with `1 + granted` workers, returning the permits when the map
/// completes. A drained budget degrades gracefully to an inline map, so
/// nested budgeted maps never oversubscribe the machine.
pub fn try_parallel_map_budgeted<T, R, F>(
    items: &[T],
    want: usize,
    budget: &WorkerBudget,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let want = want.clamp(1, items.len().max(1));
    let permits = if want > 1 {
        Some(budget.acquire(want - 1))
    } else {
        None
    };
    let workers = 1 + permits.as_ref().map_or(0, Permits::count);
    try_parallel_map(items, workers, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_inline_and_threaded() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1, 4] {
            let got = try_parallel_map(&items, threads, |&x| x * x);
            let want: Vec<Result<usize, String>> = items.iter().map(|&x| Ok(x * x)).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn isolates_panics_per_item() {
        let items: Vec<usize> = (0..8).collect();
        let got = try_parallel_map(&items, 3, |&x| {
            assert!(x != 5, "boom at {x}");
            x + 1
        });
        for (i, r) in got.iter().enumerate() {
            if i == 5 {
                let e = r.as_ref().unwrap_err();
                assert!(e.contains("boom at 5"), "unexpected error: {e}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i + 1);
            }
        }
    }

    #[test]
    fn budget_grants_at_most_spare_and_returns_on_drop() {
        let budget = WorkerBudget::new(3);
        let a = budget.acquire(2);
        assert_eq!(a.count(), 2);
        assert_eq!(budget.spare(), 1);
        let b = budget.acquire(5);
        assert_eq!(b.count(), 1);
        let c = budget.acquire(1);
        assert_eq!(c.count(), 0);
        drop(b);
        drop(c);
        assert_eq!(budget.spare(), 1);
        drop(a);
        assert_eq!(budget.spare(), 3);
    }

    #[test]
    fn budgeted_map_runs_inline_when_drained() {
        let budget = WorkerBudget::new(0);
        let items: Vec<usize> = (0..5).collect();
        let got = try_parallel_map_budgeted(&items, 8, &budget, |&x| x + 10);
        let want: Vec<Result<usize, String>> = items.iter().map(|&x| Ok(x + 10)).collect();
        assert_eq!(got, want);
        assert_eq!(budget.spare(), 0);
    }

    #[test]
    fn budgeted_map_returns_permits_when_a_task_panics() {
        // The panic-path audit: a panicking item is caught per-item inside
        // the map, but even so the permits guard must release on *every*
        // exit path, or one bad shard/repetition would permanently shrink
        // the process-global pool for all later parallel sites.
        let budget = WorkerBudget::new(3);
        let items: Vec<usize> = (0..8).collect();
        let got = try_parallel_map_budgeted(&items, 4, &budget, |&x| {
            assert!(x != 3, "shard {x} exploded");
            x
        });
        assert!(got[3].as_ref().unwrap_err().contains("shard 3 exploded"));
        assert_eq!(got.iter().filter(|r| r.is_ok()).count(), 7);
        assert_eq!(budget.spare(), 3, "panicking task leaked permits");
    }

    #[test]
    fn permits_release_when_unwinding_past_the_guard() {
        // A panic that unwinds *through* a frame holding Permits (e.g. a
        // coordinator round dying between acquire and the map) still runs
        // the RAII drop under catch_unwind.
        let budget = WorkerBudget::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _permits = budget.acquire(2);
            assert_eq!(budget.spare(), 0);
            panic!("round failed while holding permits");
        }));
        assert!(result.is_err());
        assert_eq!(budget.spare(), 2, "unwind leaked permits");
    }

    #[test]
    fn repeated_panicking_maps_never_drain_the_pool() {
        // Regression shape for the repetition-isolation path: many
        // consecutive failing fan-outs must leave the pool whole each time.
        let budget = WorkerBudget::new(2);
        let items: Vec<usize> = (0..4).collect();
        for _ in 0..10 {
            let got = try_parallel_map_budgeted(&items, 3, &budget, |_| -> usize {
                panic!("every item fails");
            });
            assert!(got.iter().all(|r| r.is_err()));
            assert_eq!(budget.spare(), 2);
        }
    }

    #[test]
    fn nested_budgeted_maps_share_one_pool() {
        // Outer map takes the whole pool; inner maps see it drained and run
        // inline. After everything returns the pool is whole again.
        let budget = WorkerBudget::new(2);
        let items: Vec<usize> = (0..4).collect();
        let got = try_parallel_map_budgeted(&items, 4, &budget, |&x| {
            let inner: Vec<usize> = (0..3).map(|k| x * 10 + k).collect();
            let inner_got = try_parallel_map_budgeted(&inner, 3, &budget, |&y| y * 2);
            inner_got.into_iter().map(|r| r.unwrap()).sum::<usize>()
        });
        for (i, r) in got.iter().enumerate() {
            let expect: usize = (0..3).map(|k| (i * 10 + k) * 2).sum();
            assert_eq!(*r.as_ref().unwrap(), expect);
        }
        assert_eq!(budget.spare(), 2);
    }
}
