//! Row-form linear program description and solutions.

use crate::lp::{simplex, solve_ip, IpmOptions, StandardLp};
use crate::Result;

/// Sense of a linear constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintSense {
    /// `a·x ≤ rhs`
    Le,
    /// `a·x ≥ rhs`
    Ge,
    /// `a·x = rhs`
    Eq,
}

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found to the requested tolerance.
    Optimal,
}

/// A linear program over **nonnegative** variables:
///
/// ```text
/// min  cᵀx    s.t.  aᵢ·x {≤,≥,=} bᵢ  for each row i,   x ≥ 0.
/// ```
///
/// Rows are stored sparsely; build with [`LpProblem::add_var`] and
/// [`LpProblem::add_row`], then call [`LpProblem::solve`] (interior point)
/// or [`LpProblem::solve_simplex`] (dense simplex, small problems only).
///
/// # Example
///
/// ```
/// use optim::lp::{ConstraintSense, LpProblem};
///
/// # fn main() -> Result<(), optim::Error> {
/// // min x + 2y  s.t.  x + y >= 3, y <= 2, x,y >= 0  →  x=1, y=2 or x=3,y=0?
/// // costs: x:1, y:2 → prefer x: x=3,y=0 gives 3; x=1,y=2 gives 5. Optimal 3.
/// let mut lp = LpProblem::new();
/// let x = lp.add_var(1.0);
/// let y = lp.add_var(2.0);
/// lp.add_row(ConstraintSense::Ge, 3.0, &[(x, 1.0), (y, 1.0)]);
/// lp.add_row(ConstraintSense::Le, 2.0, &[(y, 1.0)]);
/// let sol = lp.solve()?;
/// assert!((sol.objective - 3.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    costs: Vec<f64>,
    row_cols: Vec<Vec<usize>>,
    row_coefs: Vec<Vec<f64>>,
    senses: Vec<ConstraintSense>,
    rhs: Vec<f64>,
}

impl LpProblem {
    /// Creates an empty problem with no variables or rows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a nonnegative variable with objective coefficient `cost`,
    /// returning its column index.
    pub fn add_var(&mut self, cost: f64) -> usize {
        self.costs.push(cost);
        self.costs.len() - 1
    }

    /// Adds `n` variables sharing objective coefficient `cost`; returns the
    /// index of the first.
    pub fn add_vars(&mut self, n: usize, cost: f64) -> usize {
        let first = self.costs.len();
        self.costs.resize(first + n, cost);
        first
    }

    /// Sets the objective coefficient of an existing variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_cost(&mut self, var: usize, cost: f64) {
        self.costs[var] = cost;
    }

    /// Adds a constraint row `Σ coef·x[col] sense rhs`; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    pub fn add_row(&mut self, sense: ConstraintSense, rhs: f64, terms: &[(usize, f64)]) -> usize {
        let mut cols = Vec::with_capacity(terms.len());
        let mut coefs = Vec::with_capacity(terms.len());
        for &(c, v) in terms {
            assert!(c < self.costs.len(), "column {c} out of range");
            if v != 0.0 {
                cols.push(c);
                coefs.push(v);
            }
        }
        self.row_cols.push(cols);
        self.row_coefs.push(coefs);
        self.senses.push(sense);
        self.rhs.push(rhs);
        self.senses.len() - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.senses.len()
    }

    /// Objective coefficients.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Row data: (sense, rhs, columns, coefficients).
    pub fn row(&self, i: usize) -> (ConstraintSense, f64, &[usize], &[f64]) {
        (
            self.senses[i],
            self.rhs[i],
            &self.row_cols[i],
            &self.row_coefs[i],
        )
    }

    /// Objective value of a candidate point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars(), "dimension mismatch");
        self.costs.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Maximum constraint violation of a candidate point (0.0 if feasible).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars(), "dimension mismatch");
        let mut worst = 0.0f64;
        for i in 0..self.num_rows() {
            let lhs: f64 = self.row_cols[i]
                .iter()
                .zip(&self.row_coefs[i])
                .map(|(&c, &a)| a * x[c])
                .sum();
            let v = match self.senses[i] {
                ConstraintSense::Le => lhs - self.rhs[i],
                ConstraintSense::Ge => self.rhs[i] - lhs,
                ConstraintSense::Eq => (lhs - self.rhs[i]).abs(),
            };
            worst = worst.max(v);
        }
        for &xi in x {
            worst = worst.max(-xi);
        }
        worst
    }

    /// Solves with the sparse interior-point method and default options.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (infeasibility, iteration limit, numerical
    /// breakdown).
    pub fn solve(&self) -> Result<LpSolution> {
        self.solve_with(&IpmOptions::default())
    }

    /// Solves with the sparse interior-point method and explicit options.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn solve_with(&self, opts: &IpmOptions) -> Result<LpSolution> {
        let std = StandardLp::from_problem(self);
        let ip = solve_ip(&std, opts)?;
        let x = std.extract_original(&ip.x);
        let objective = self.objective_value(&x);
        Ok(LpSolution {
            x,
            duals: ip.y,
            objective,
            status: LpStatus::Optimal,
            iterations: ip.stats.iterations,
        })
    }

    /// Solves with the dense two-phase simplex (cross-check oracle; intended
    /// for small problems — cost grows as `O(rows · cols · iterations)` on a
    /// dense tableau).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Infeasible`] / [`crate::Error::Unbounded`]
    /// when detected.
    pub fn solve_simplex(&self) -> Result<LpSolution> {
        let std = StandardLp::from_problem(self);
        let (x_std, _obj) = simplex::solve(&std)?;
        let x = std.extract_original(&x_std);
        let objective = self.objective_value(&x);
        Ok(LpSolution {
            x,
            duals: vec![0.0; self.num_rows()],
            objective,
            status: LpStatus::Optimal,
            iterations: 0,
        })
    }
}

/// Solution of an [`LpProblem`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal values of the original (non-slack) variables.
    pub x: Vec<f64>,
    /// Row duals in standard-form convention: `y_i ≥ 0` for binding `≥`
    /// rows, `y_i ≤ 0` for binding `≤` rows, free for `=` rows. Zero vector
    /// when produced by the simplex oracle.
    pub duals: Vec<f64>,
    /// Objective value `cᵀx`.
    pub objective: f64,
    /// Termination status.
    pub status: LpStatus,
    /// Interior-point iterations used (0 for simplex).
    pub iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_and_violation_helpers() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(2.0);
        let y = lp.add_var(1.0);
        lp.add_row(ConstraintSense::Ge, 4.0, &[(x, 1.0), (y, 1.0)]);
        assert_eq!(lp.objective_value(&[1.0, 2.0]), 4.0);
        assert_eq!(lp.max_violation(&[1.0, 2.0]), 1.0);
        assert_eq!(lp.max_violation(&[2.0, 2.0]), 0.0);
    }

    #[test]
    fn add_vars_block() {
        let mut lp = LpProblem::new();
        let first = lp.add_vars(3, 5.0);
        assert_eq!(first, 0);
        assert_eq!(lp.num_vars(), 3);
        assert_eq!(lp.costs(), &[5.0, 5.0, 5.0]);
    }

    #[test]
    fn zero_coefficients_dropped_from_rows() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        let r = lp.add_row(ConstraintSense::Eq, 1.0, &[(x, 0.0), (y, 2.0)]);
        let (_, _, cols, coefs) = lp.row(r);
        assert_eq!(cols, &[y]);
        assert_eq!(coefs, &[2.0]);
    }
}
