//! Sparse Mehrotra predictor-corrector interior-point method.
//!
//! Solves standard-form LPs `min cᵀx, Ax=b, x≥0` via the normal equations
//! `A·D·Aᵀ Δy = r` with `D = diag(x/s)`, factored by the crate's sparse
//! LDLᵀ under a minimum-degree ordering. The symbolic analysis (pattern of
//! `A·Aᵀ`, ordering, elimination tree) is performed once per solve and
//! reused by every iteration's refactorization.

use crate::budget::SolveBudget;
use crate::linalg::{min_degree_ordering, LdlSymbolic};
use crate::lp::StandardLp;
use crate::sparse::ops::NormalEqProduct;
use crate::{Error, Result, Salvage};

/// Options for the interior-point solver.
#[derive(Debug, Clone)]
pub struct IpmOptions {
    /// Relative tolerance on primal/dual residuals and duality gap.
    pub tol: f64,
    /// Iteration limit.
    pub max_iters: usize,
    /// Initial diagonal regularization added to `A·D·Aᵀ`.
    pub reg: f64,
    /// Fraction of the maximum step length taken (0 < τ < 1).
    pub step_scale: f64,
    /// Apply the minimum-degree ordering (disable only for experiments).
    pub use_ordering: bool,
    /// Cooperative wall-clock/iteration budget, checked at the top of each
    /// predictor-corrector iteration (unlimited by default — the happy
    /// path then reads no clock). On exhaustion the solve returns
    /// [`Error::DeadlineExceeded`]; the salvaged iterate is generally
    /// *infeasible* (interior-point LP iterates only reach feasibility at
    /// convergence) and should be treated as a warm start at best.
    pub budget: SolveBudget,
}

impl Default for IpmOptions {
    fn default() -> Self {
        IpmOptions {
            tol: 1e-8,
            max_iters: 200,
            reg: 1e-10,
            step_scale: 0.9995,
            use_ordering: true,
            budget: SolveBudget::unlimited(),
        }
    }
}

/// Convergence statistics of a finished interior-point run.
#[derive(Debug, Clone, Copy)]
pub struct IpmStats {
    /// Number of predictor-corrector iterations.
    pub iterations: usize,
    /// Final relative primal residual `‖Ax−b‖∞ / (1+‖b‖∞)`.
    pub primal_residual: f64,
    /// Final relative dual residual `‖Aᵀy+s−c‖∞ / (1+‖c‖∞)`.
    pub dual_residual: f64,
    /// Final relative duality gap `|cᵀx−bᵀy| / (1+|cᵀx|)`.
    pub gap: f64,
}

/// Solution of a standard-form LP.
#[derive(Debug, Clone)]
pub struct IpmSolution {
    /// Primal solution (length `n`, includes slack columns).
    pub x: Vec<f64>,
    /// Dual solution for the equality rows (length `m`).
    pub y: Vec<f64>,
    /// Dual slacks / reduced costs (length `n`).
    pub s: Vec<f64>,
    /// Convergence statistics.
    pub stats: IpmStats,
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Largest α in (0, 1] with `v + α·dv ≥ (1-τ)·v`, i.e. the ratio test.
fn max_step(v: &[f64], dv: &[f64]) -> f64 {
    let mut alpha = 1.0f64;
    for (x, d) in v.iter().zip(dv) {
        if *d < 0.0 {
            alpha = alpha.min(-x / d);
        }
    }
    alpha
}

/// Solves a standard-form LP with the Mehrotra predictor-corrector method.
///
/// # Errors
///
/// * [`Error::Infeasible`] / [`Error::Unbounded`] on (heuristic) detection —
///   iterates diverging while residuals stall.
/// * [`Error::MaxIterations`] when the iteration limit is hit.
/// * [`Error::Numerical`] if the normal equations cannot be factored even
///   after boosting regularization.
pub fn solve(std_lp: &StandardLp, opts: &IpmOptions) -> Result<IpmSolution> {
    let a = &std_lp.a;
    let (m, n) = (a.nrows(), a.ncols());
    let b = &std_lp.b;
    let c = &std_lp.c;

    for v in c.iter().chain(b.iter()) {
        if !v.is_finite() {
            return Err(Error::InvalidInput("non-finite coefficient".into()));
        }
    }

    // Trivial cases.
    if n == 0 {
        if inf_norm(b) > opts.tol {
            return Err(Error::Infeasible);
        }
        return Ok(IpmSolution {
            x: vec![],
            y: vec![0.0; m],
            s: vec![],
            stats: IpmStats {
                iterations: 0,
                primal_residual: 0.0,
                dual_residual: 0.0,
                gap: 0.0,
            },
        });
    }
    if m == 0 {
        if c.iter().any(|&cj| cj < 0.0) {
            return Err(Error::Unbounded);
        }
        return Ok(IpmSolution {
            x: vec![0.0; n],
            y: vec![],
            s: c.clone(),
            stats: IpmStats {
                iterations: 0,
                primal_residual: 0.0,
                dual_residual: 0.0,
                gap: 0.0,
            },
        });
    }
    // Rows with no entries must have zero rhs.
    {
        let at = a.transpose();
        for i in 0..m {
            if at.col(i).0.is_empty() && b[i].abs() > 1e-12 {
                return Err(Error::Infeasible);
            }
        }
    }

    // Symbolic setup: pattern of A·Aᵀ, ordering, elimination tree.
    let verbose = std::env::var_os("OPTIM_IPM_VERBOSE").is_some();
    let t0 = std::time::Instant::now();
    let mut product = NormalEqProduct::new(a);
    let ones = vec![1.0; n];
    let base_reg = opts.reg * (1.0 + a.max_abs() * a.max_abs());
    let pattern = product.compute(&ones, base_reg).clone();
    if verbose {
        eprintln!(
            "ipm setup: m={m} n={n} nnz(A)={} nnz(AAt/2)={} product {:?}",
            a.nnz(),
            pattern.nnz(),
            t0.elapsed()
        );
    }
    let t0 = std::time::Instant::now();
    // A (near-)dense A·Aᵀ — e.g. a phase-I LP whose auxiliary variable
    // couples every row — has nothing for a fill-reducing ordering to
    // save, and min-degree on a dense pattern costs O(m³)-ish time that
    // dwarfs the factorization it is meant to speed up. Skip it.
    let dense_fraction = pattern.nnz() as f64 / (0.5 * m as f64 * (m as f64 + 1.0));
    let perm = if opts.use_ordering && dense_fraction < 0.5 {
        Some(min_degree_ordering(&pattern))
    } else {
        None
    };
    if verbose {
        eprintln!("ipm setup: ordering {:?}", t0.elapsed());
    }
    let t0 = std::time::Instant::now();
    let symbolic = LdlSymbolic::new(&pattern, perm);
    if verbose {
        eprintln!(
            "ipm setup: symbolic {:?} (factor nnz {})",
            t0.elapsed(),
            symbolic.factor_nnz()
        );
    }

    // Helper: factor A·D·Aᵀ + reg·I, boosting reg on failure.
    let factor = |product: &mut NormalEqProduct, d: &[f64], symbolic: &LdlSymbolic, reg0: f64| {
        let mut reg = reg0;
        for _ in 0..6 {
            let s = product.compute(d, reg);
            match symbolic.factor(s) {
                Ok(f) => return Ok(f),
                Err(_) => reg = (reg * 1e3).max(1e-12),
            }
        }
        Err(Error::Numerical(
            "normal equations could not be factored".into(),
        ))
    };

    // ---- Mehrotra starting point ----
    let f0 = factor(&mut product, &ones, &symbolic, base_reg)?;
    // x = Aᵀ (A Aᵀ)⁻¹ b  (min-norm solution of Ax=b)
    let w = f0.solve(b);
    let mut x = a.mul_transpose_vec(&w);
    // y = (A Aᵀ)⁻¹ A c ; s = c − Aᵀ y
    let ac = a.mul_vec(c);
    let mut y = f0.solve(&ac);
    let aty = a.mul_transpose_vec(&y);
    let mut s: Vec<f64> = c.iter().zip(&aty).map(|(ci, v)| ci - v).collect();

    let dx = (-1.5 * x.iter().cloned().fold(f64::INFINITY, f64::min)).max(0.0);
    let ds = (-1.5 * s.iter().cloned().fold(f64::INFINITY, f64::min)).max(0.0);
    for xi in &mut x {
        *xi += dx;
    }
    for si in &mut s {
        *si += ds;
    }
    let xs = dot(&x, &s).max(1e-10);
    let sum_s: f64 = s.iter().sum::<f64>().max(1e-10);
    let sum_x: f64 = x.iter().sum::<f64>().max(1e-10);
    let dx2 = 0.5 * xs / sum_s;
    let ds2 = 0.5 * xs / sum_x;
    for xi in &mut x {
        *xi += dx2;
        *xi = xi.max(1e-10);
    }
    for si in &mut s {
        *si += ds2;
        *si = si.max(1e-10);
    }

    let norm_b = inf_norm(b);
    let norm_c = inf_norm(c);

    let mut stats = IpmStats {
        iterations: 0,
        primal_residual: f64::INFINITY,
        dual_residual: f64::INFINITY,
        gap: f64::INFINITY,
    };

    let mut rb = vec![0.0; m];
    let mut d = vec![0.0; n];
    // Hoisted so an unlimited budget (the default) reads no clock at all.
    let budgeted = !opts.budget.is_unlimited();

    // Best iterate seen so far (by worst relative residual), returned if the
    // iteration stalls after effectively converging.
    type BestIterate = (f64, Vec<f64>, Vec<f64>, Vec<f64>, IpmStats);
    let mut best: Option<BestIterate> = None;
    let mut stall_count = 0usize;

    for iter in 0..opts.max_iters {
        stats.iterations = iter;
        // Residuals.
        a.mul_vec_into(&x, &mut rb);
        for i in 0..m {
            rb[i] -= b[i];
        }
        let aty = a.mul_transpose_vec(&y);
        let rc: Vec<f64> = (0..n).map(|j| aty[j] + s[j] - c[j]).collect();
        let mu = dot(&x, &s) / n as f64;
        let cx = dot(c, &x);
        let by = dot(b, &y);

        stats.primal_residual = inf_norm(&rb) / (1.0 + norm_b);
        stats.dual_residual = inf_norm(&rc) / (1.0 + norm_c);
        stats.gap = (cx - by).abs() / (1.0 + cx.abs());

        if std::env::var_os("OPTIM_IPM_VERBOSE").is_some() {
            eprintln!(
                "ipm iter {iter}: rp={:.3e} rd={:.3e} gap={:.3e} mu={mu:.3e}",
                stats.primal_residual, stats.dual_residual, stats.gap
            );
        }
        if stats.primal_residual < opts.tol
            && stats.dual_residual < opts.tol
            && stats.gap < opts.tol
        {
            return Ok(IpmSolution { x, y, s, stats });
        }
        if budgeted && opts.budget.exhausted(iter) {
            let worst = stats
                .primal_residual
                .max(stats.dual_residual)
                .max(stats.gap);
            return Err(Error::DeadlineExceeded {
                iterations: iter,
                best: Some(Box::new(Salvage {
                    x,
                    objective: cx,
                    residual: worst,
                })),
            });
        }

        // Track the best iterate; detect stalls (no improvement for a while)
        // and fall back to the best point if it is acceptably accurate.
        let worst_res = stats
            .primal_residual
            .max(stats.dual_residual)
            .max(stats.gap);
        match &best {
            Some((b_res, ..)) if worst_res >= *b_res => stall_count += 1,
            _ => {
                best = Some((worst_res, x.clone(), y.clone(), s.clone(), stats));
                stall_count = 0;
            }
        }
        if stall_count >= 30 {
            let (b_res, bx, by, bs, bstats) = best.expect("best iterate recorded");
            if b_res <= opts.tol * 1e4 {
                // Converged to slightly above tolerance and then stalled on
                // floating-point limits: accept the best iterate.
                return Ok(IpmSolution {
                    x: bx,
                    y: by,
                    s: bs,
                    stats: bstats,
                });
            }
            return Err(Error::MaxIterations {
                iterations: iter,
                residual: b_res,
            });
        }

        // Divergence heuristics.
        let xnorm = inf_norm(&x);
        if xnorm > 1e13 {
            // Primal blowing up with dual residuals satisfied ⇒ unbounded;
            // otherwise call it infeasible.
            return Err(if stats.dual_residual < 1e-6 && stats.gap > 1.0 {
                Error::Unbounded
            } else {
                Error::Infeasible
            });
        }
        if inf_norm(&y) > 1e13 {
            return Err(Error::Infeasible);
        }

        // Scaling matrix D = x/s (clamped).
        for j in 0..n {
            d[j] = (x[j] / s[j]).clamp(1e-10, 1e10);
        }
        let f = factor(&mut product, &d, &symbolic, base_reg)?;

        // Shared closure: given complementarity rhs r3, solve the Newton
        // system and return (Δx, Δy, Δs).
        let newton = |r3: &[f64], f: &crate::linalg::LdlFactor| {
            // rhs_y = −rb − A(S⁻¹ r3 + D rc)
            let mut t = vec![0.0; n];
            for j in 0..n {
                t[j] = r3[j] / s[j] + d[j] * rc[j];
            }
            let at_rhs = a.mul_vec(&t);
            let rhs: Vec<f64> = (0..m).map(|i| -rb[i] - at_rhs[i]).collect();
            let mut dy = f.solve(&rhs);
            // Iterative refinement on the (true, unregularized) normal
            // equations, with the factored matrix as preconditioner. Stops
            // when accurate enough or when refinement ceases to help.
            {
                let adat_dy = |v: &[f64]| {
                    // A·D·Aᵀ·v computed matrix-free: A (d ∘ (Aᵀ v)).
                    let atv = a.mul_transpose_vec(v);
                    let scaled: Vec<f64> = (0..n).map(|j| d[j] * atv[j]).collect();
                    a.mul_vec(&scaled)
                };
                let rhs_scale = 1.0 + inf_norm(&rhs);
                let mut prev_res = f64::INFINITY;
                for _ in 0..4 {
                    let av = adat_dy(&dy);
                    let resid: Vec<f64> = (0..m).map(|i| rhs[i] - av[i]).collect();
                    let rnorm = inf_norm(&resid);
                    if rnorm <= 1e-13 * rhs_scale || rnorm >= 0.5 * prev_res {
                        break;
                    }
                    prev_res = rnorm;
                    let corr = f.solve(&resid);
                    for i in 0..m {
                        dy[i] += corr[i];
                    }
                }
            }
            let atdy = a.mul_transpose_vec(&dy);
            let ds_v: Vec<f64> = (0..n).map(|j| -rc[j] - atdy[j]).collect();
            let dx_v: Vec<f64> = (0..n)
                .map(|j| r3[j] / s[j] - x[j] / s[j] * ds_v[j])
                .collect();
            (dx_v, dy, ds_v)
        };

        // Affine (predictor) step.
        let r3_aff: Vec<f64> = (0..n).map(|j| -x[j] * s[j]).collect();
        let (dxa, _dya, dsa) = newton(&r3_aff, &f);
        let ap = max_step(&x, &dxa);
        let ad = max_step(&s, &dsa);
        let mu_aff = {
            let mut acc = 0.0;
            for j in 0..n {
                acc += (x[j] + ap * dxa[j]) * (s[j] + ad * dsa[j]);
            }
            acc / n as f64
        };
        let sigma = ((mu_aff / mu).powi(3)).clamp(0.0, 1.0);

        // Corrector step.
        let r3: Vec<f64> = (0..n)
            .map(|j| sigma * mu - x[j] * s[j] - dxa[j] * dsa[j])
            .collect();
        let (dx_c, dy_c, ds_c) = newton(&r3, &f);

        // Direction-quality safeguard: the Newton system demands
        // A·Δx = −rb, but that is the one equation carrying factorization
        // error (the dual equations hold identically by construction). When
        // D spans many orders of magnitude near convergence, the error can
        // be large; cap the *primal* step so the feasibility damage stays
        // within a fraction of the current residual, and let the dual step
        // proceed at full length.
        let primal_cap = {
            let adx = a.mul_vec(&dx_c);
            let err = (0..m)
                .map(|i| (adx[i] + rb[i]).abs())
                .fold(0.0f64, f64::max);
            let budget = (0.9 * inf_norm(&rb)).max(0.01 * opts.tol * (1.0 + norm_b));
            if err > budget {
                budget / err
            } else {
                1.0
            }
        };

        let ap = (opts.step_scale * max_step(&x, &dx_c))
            .min(1.0)
            .min(primal_cap);
        let ad = (opts.step_scale * max_step(&s, &ds_c)).min(1.0);

        for j in 0..n {
            x[j] += ap * dx_c[j];
            s[j] += ad * ds_c[j];
        }
        for i in 0..m {
            y[i] += ad * dy_c[i];
        }
    }

    Err(Error::MaxIterations {
        iterations: opts.max_iters,
        residual: stats
            .primal_residual
            .max(stats.dual_residual)
            .max(stats.gap),
    })
}

#[cfg(test)]
mod tests {
    use crate::lp::{ConstraintSense, LpProblem};

    #[test]
    fn solves_small_lp() {
        // min -x1 - 2 x2 s.t. x1 + x2 <= 4, x1 <= 3 → x = (0,4)? obj -8.
        let mut lp = LpProblem::new();
        let x1 = lp.add_var(-1.0);
        let x2 = lp.add_var(-2.0);
        lp.add_row(ConstraintSense::Le, 4.0, &[(x1, 1.0), (x2, 1.0)]);
        lp.add_row(ConstraintSense::Le, 3.0, &[(x1, 1.0)]);
        let sol = lp.solve().unwrap();
        assert!(
            (sol.objective + 8.0).abs() < 1e-6,
            "obj = {}",
            sol.objective
        );
        assert!(sol.x[1] > 3.9999);
    }

    #[test]
    fn solves_equality_constrained_lp() {
        // min x + y s.t. x + y = 2, x - y = 0 → x=y=1, obj 2.
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_row(ConstraintSense::Eq, 2.0, &[(x, 1.0), (y, 1.0)]);
        lp.add_row(ConstraintSense::Eq, 0.0, &[(x, 1.0), (y, -1.0)]);
        let sol = lp.solve().unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-6);
        assert!((sol.x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        // x >= 2 and x <= 1.
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_row(ConstraintSense::Ge, 2.0, &[(x, 1.0)]);
        lp.add_row(ConstraintSense::Le, 1.0, &[(x, 1.0)]);
        let r = lp.solve();
        assert!(r.is_err(), "expected failure, got {r:?}");
    }

    #[test]
    fn detects_unbounded() {
        // min -x, x >= 1 (no upper bound).
        let mut lp = LpProblem::new();
        let x = lp.add_var(-1.0);
        lp.add_row(ConstraintSense::Ge, 1.0, &[(x, 1.0)]);
        let r = lp.solve();
        assert!(r.is_err(), "expected failure, got {r:?}");
    }

    #[test]
    fn transportation_lp() {
        // 2 supplies (3, 4), 2 demands (5, 2); cost matrix [[1,4],[2,1]].
        // Optimal: s0→d0: 3, s1→d0: 2, s1→d1: 2 → 3 + 4 + 2 = 9.
        let mut lp = LpProblem::new();
        let x00 = lp.add_var(1.0);
        let x01 = lp.add_var(4.0);
        let x10 = lp.add_var(2.0);
        let x11 = lp.add_var(1.0);
        lp.add_row(ConstraintSense::Le, 3.0, &[(x00, 1.0), (x01, 1.0)]);
        lp.add_row(ConstraintSense::Le, 4.0, &[(x10, 1.0), (x11, 1.0)]);
        lp.add_row(ConstraintSense::Ge, 5.0, &[(x00, 1.0), (x10, 1.0)]);
        lp.add_row(ConstraintSense::Ge, 2.0, &[(x01, 1.0), (x11, 1.0)]);
        let sol = lp.solve().unwrap();
        assert!(
            (sol.objective - 9.0).abs() < 1e-6,
            "obj = {}",
            sol.objective
        );
    }

    #[test]
    fn duals_have_documented_signs() {
        // min x s.t. x >= 2 → dual of the Ge row must be >= 0 (here 1).
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_row(ConstraintSense::Ge, 2.0, &[(x, 1.0)]);
        let sol = lp.solve().unwrap();
        assert!((sol.duals[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_no_constraints() {
        let mut lp = LpProblem::new();
        lp.add_var(1.0);
        lp.add_var(0.0);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.x, vec![0.0, 0.0]);
    }

    #[test]
    fn redundant_rows_are_tolerated() {
        // Same row twice — normal equations are singular without
        // regularization.
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(2.0);
        lp.add_row(ConstraintSense::Ge, 2.0, &[(x, 1.0), (y, 1.0)]);
        lp.add_row(ConstraintSense::Ge, 2.0, &[(x, 1.0), (y, 1.0)]);
        let sol = lp.solve().unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn moderately_sized_random_lp_agrees_with_simplex() {
        // A structured assignment-like LP, solved by both methods.
        let (nsrc, ndst) = (6, 7);
        let mut lp = LpProblem::new();
        let mut vars = vec![vec![0usize; ndst]; nsrc];
        for (i, row) in vars.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = lp.add_var(((i * 7 + j * 3) % 5 + 1) as f64);
            }
        }
        for (i, row) in vars.iter().enumerate() {
            let terms: Vec<(usize, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
            lp.add_row(ConstraintSense::Ge, 1.0 + (i % 3) as f64, &terms);
        }
        for j in 0..ndst {
            let terms: Vec<(usize, f64)> = (0..nsrc).map(|i| (vars[i][j], 1.0)).collect();
            lp.add_row(ConstraintSense::Le, 3.0, &terms);
        }
        let ip = lp.solve().unwrap();
        let sx = lp.solve_simplex().unwrap();
        assert!(
            (ip.objective - sx.objective).abs() < 1e-5,
            "ipm {} vs simplex {}",
            ip.objective,
            sx.objective
        );
    }
}
