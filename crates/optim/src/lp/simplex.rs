//! Dense two-phase primal simplex.
//!
//! An intentionally simple, independent implementation used to cross-check
//! the interior-point solver on small problems (tests, the Figure-1 toy
//! examples). Uses Bland's rule, which is immune to cycling.

use crate::lp::StandardLp;
use crate::{Error, Result};

const EPS: f64 = 1e-9;

/// Solves the standard-form LP `min cᵀx, Ax=b, x≥0` by the two-phase dense
/// simplex method. Returns `(x, objective)`.
///
/// # Errors
///
/// * [`Error::Infeasible`] if phase 1 terminates with positive artificial
///   weight.
/// * [`Error::Unbounded`] if a pivot column has no positive entries.
pub fn solve(std_lp: &StandardLp) -> Result<(Vec<f64>, f64)> {
    let m = std_lp.nrows();
    let n = std_lp.ncols();
    if m == 0 {
        if std_lp.c.iter().any(|&cj| cj < -EPS) {
            return Err(Error::Unbounded);
        }
        return Ok((vec![0.0; n], 0.0));
    }

    // Dense tableau: rows 0..m are constraints over n + m columns (original
    // plus artificials), with the rhs in the final column.
    let width = n + m + 1;
    let mut t = vec![0.0f64; m * width];
    let dense = std_lp.a.to_dense();
    for i in 0..m {
        let flip = if std_lp.b[i] < 0.0 { -1.0 } else { 1.0 };
        for j in 0..n {
            t[i * width + j] = flip * dense[i][j];
        }
        t[i * width + n + i] = 1.0; // artificial
        t[i * width + n + m] = flip * std_lp.b[i];
    }
    let mut basis: Vec<usize> = (n..n + m).collect();

    // Phase 1: minimize the sum of artificials.
    let phase1_cost: Vec<f64> = (0..n + m).map(|j| if j >= n { 1.0 } else { 0.0 }).collect();
    run_simplex(&mut t, &mut basis, m, n + m, &phase1_cost)?;
    let p1_obj = objective_of(&t, &basis, m, n + m, &phase1_cost);
    if p1_obj > 1e-7 {
        return Err(Error::Infeasible);
    }
    // Pivot remaining artificials out of the basis where possible.
    for i in 0..m {
        if basis[i] >= n {
            let mut pivoted = false;
            for j in 0..n {
                if t[i * width + j].abs() > 1e-7 {
                    pivot(&mut t, &mut basis, m, i, j);
                    pivoted = true;
                    break;
                }
            }
            if !pivoted {
                // Redundant row; the artificial stays basic at value ~0.
                // Zero it out so it cannot re-enter phase 2 arithmetic.
                t[i * width + n + m] = 0.0;
            }
        }
    }

    // Phase 2: original objective; artificial columns are barred by giving
    // them an effectively infinite cost.
    let mut phase2_cost = vec![0.0f64; n + m];
    phase2_cost[..n].copy_from_slice(&std_lp.c);
    for cj in phase2_cost.iter_mut().skip(n) {
        *cj = 1e30;
    }
    run_simplex(&mut t, &mut basis, m, n + m, &phase2_cost)?;

    let mut x = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i * width + n + m];
        }
    }
    let obj: f64 = std_lp.c.iter().zip(&x).map(|(c, v)| c * v).sum();
    Ok((x, obj))
}

fn objective_of(t: &[f64], basis: &[usize], m: usize, ncols: usize, cost: &[f64]) -> f64 {
    let width = ncols + 1;
    (0..m).map(|i| cost[basis[i]] * t[i * width + ncols]).sum()
}

fn pivot(t: &mut [f64], basis: &mut [usize], m: usize, row: usize, col: usize) {
    let width = t.len() / m;
    let piv = t[row * width + col];
    debug_assert!(piv.abs() > 1e-12, "pivot too small");
    for j in 0..width {
        t[row * width + j] /= piv;
    }
    for i in 0..m {
        if i == row {
            continue;
        }
        let factor = t[i * width + col];
        if factor != 0.0 {
            for j in 0..width {
                t[i * width + j] -= factor * t[row * width + j];
            }
        }
    }
    basis[row] = col;
}

/// Runs primal simplex iterations with Bland's rule until optimality.
fn run_simplex(
    t: &mut [f64],
    basis: &mut [usize],
    m: usize,
    ncols: usize,
    cost: &[f64],
) -> Result<()> {
    let width = ncols + 1;
    let max_pivots = 50_000usize;
    for _ in 0..max_pivots {
        // Reduced costs: r_j = c_j − c_Bᵀ B⁻¹ A_j (tableau is already B⁻¹A).
        let mut enter = None;
        for j in 0..ncols {
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost[j];
            for i in 0..m {
                r -= cost[basis[i]] * t[i * width + j];
            }
            if r < -EPS {
                enter = Some(j); // Bland: first improving column
                break;
            }
        }
        let Some(col) = enter else {
            return Ok(()); // optimal
        };
        // Ratio test (Bland: smallest basis index among ties).
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let aij = t[i * width + col];
            if aij > EPS {
                let ratio = t[i * width + ncols] / aij;
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leave.is_none_or(|l| basis[i] < basis[l]));
                if better {
                    best_ratio = ratio.min(best_ratio);
                    leave = Some(i);
                }
            }
        }
        let Some(row) = leave else {
            return Err(Error::Unbounded);
        };
        pivot(t, basis, m, row, col);
    }
    Err(Error::MaxIterations {
        iterations: max_pivots,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use crate::lp::{ConstraintSense, LpProblem};

    #[test]
    fn simple_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2,6), obj 36.
        let mut lp = LpProblem::new();
        let x = lp.add_var(-3.0);
        let y = lp.add_var(-5.0);
        lp.add_row(ConstraintSense::Le, 4.0, &[(x, 1.0)]);
        lp.add_row(ConstraintSense::Le, 12.0, &[(y, 2.0)]);
        lp.add_row(ConstraintSense::Le, 18.0, &[(x, 3.0), (y, 2.0)]);
        let sol = lp.solve_simplex().unwrap();
        assert!((sol.objective + 36.0).abs() < 1e-9);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!((sol.x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn phase1_detects_infeasible() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(0.0);
        lp.add_row(ConstraintSense::Ge, 5.0, &[(x, 1.0)]);
        lp.add_row(ConstraintSense::Le, 3.0, &[(x, 1.0)]);
        assert!(lp.solve_simplex().is_err());
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(-1.0);
        lp.add_row(ConstraintSense::Ge, 0.0, &[(x, 1.0)]);
        assert!(lp.solve_simplex().is_err());
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 10, x - y = 2 → x=6, y=4, obj 24.
        let mut lp = LpProblem::new();
        let x = lp.add_var(2.0);
        let y = lp.add_var(3.0);
        lp.add_row(ConstraintSense::Eq, 10.0, &[(x, 1.0), (y, 1.0)]);
        lp.add_row(ConstraintSense::Eq, 2.0, &[(x, 1.0), (y, -1.0)]);
        let sol = lp.solve_simplex().unwrap();
        assert!((sol.objective - 24.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_lp_does_not_cycle() {
        // Classic degenerate example; Bland's rule must terminate.
        let mut lp = LpProblem::new();
        let x1 = lp.add_var(-0.75);
        let x2 = lp.add_var(150.0);
        let x3 = lp.add_var(-0.02);
        let x4 = lp.add_var(6.0);
        lp.add_row(
            ConstraintSense::Le,
            0.0,
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        );
        lp.add_row(
            ConstraintSense::Le,
            0.0,
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        );
        lp.add_row(ConstraintSense::Le, 1.0, &[(x3, 1.0)]);
        let sol = lp.solve_simplex().unwrap();
        assert!((sol.objective + 0.05).abs() < 1e-9, "obj {}", sol.objective);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_row(ConstraintSense::Le, -3.0, &[(x, -1.0)]);
        let sol = lp.solve_simplex().unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_equality_rows() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_row(ConstraintSense::Eq, 2.0, &[(x, 1.0), (y, 1.0)]);
        lp.add_row(ConstraintSense::Eq, 4.0, &[(x, 2.0), (y, 2.0)]);
        let sol = lp.solve_simplex().unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }
}
