//! Conversion of row-form LPs to equality standard form.

use crate::lp::{ConstraintSense, LpProblem};
use crate::sparse::{CscMatrix, Triplets};

/// An LP in equality standard form:
///
/// ```text
/// min cᵀx   s.t.  A x = b,  x ≥ 0
/// ```
///
/// produced from an [`LpProblem`] by appending one slack (`≤`) or surplus
/// (`≥`) column per inequality row. Row `i` of `A` corresponds one-to-one to
/// row `i` of the source problem.
#[derive(Debug, Clone)]
pub struct StandardLp {
    /// Constraint matrix, `m × n` (n includes slack columns).
    pub a: CscMatrix,
    /// Right-hand side, length `m`.
    pub b: Vec<f64>,
    /// Objective, length `n` (zero on slack columns).
    pub c: Vec<f64>,
    /// Number of original (non-slack) variables.
    pub num_original: usize,
}

impl StandardLp {
    /// Builds the standard form of `p`.
    pub fn from_problem(p: &LpProblem) -> Self {
        let m = p.num_rows();
        let n0 = p.num_vars();
        let mut nslack = 0usize;
        for i in 0..m {
            if p.row(i).0 != ConstraintSense::Eq {
                nslack += 1;
            }
        }
        let n = n0 + nslack;
        let nnz_estimate: usize = (0..m).map(|i| p.row(i).2.len()).sum::<usize>() + nslack;
        let mut t = Triplets::with_capacity(m, n, nnz_estimate);
        let mut b = Vec::with_capacity(m);
        let mut slack = n0;
        for i in 0..m {
            let (sense, rhs, cols, coefs) = p.row(i);
            for (&cidx, &v) in cols.iter().zip(coefs) {
                t.push(i, cidx, v);
            }
            match sense {
                ConstraintSense::Le => {
                    t.push(i, slack, 1.0);
                    slack += 1;
                }
                ConstraintSense::Ge => {
                    t.push(i, slack, -1.0);
                    slack += 1;
                }
                ConstraintSense::Eq => {}
            }
            b.push(rhs);
        }
        let mut c = vec![0.0; n];
        c[..n0].copy_from_slice(p.costs());
        StandardLp {
            a: t.to_csc(),
            b,
            c,
            num_original: n0,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.a.nrows()
    }

    /// Number of columns (including slacks).
    pub fn ncols(&self) -> usize {
        self.a.ncols()
    }

    /// Strips slack components from a standard-form point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols()`.
    pub fn extract_original(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols(), "dimension mismatch");
        x[..self.num_original].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_columns_have_correct_signs() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_row(ConstraintSense::Le, 5.0, &[(x, 2.0)]);
        lp.add_row(ConstraintSense::Ge, 1.0, &[(x, 1.0)]);
        lp.add_row(ConstraintSense::Eq, 3.0, &[(x, 3.0)]);
        let s = StandardLp::from_problem(&lp);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.ncols(), 3); // x + 2 slacks
        assert_eq!(s.a.get(0, 1), 1.0); // Le slack
        assert_eq!(s.a.get(1, 2), -1.0); // Ge surplus
        assert_eq!(s.c, vec![1.0, 0.0, 0.0]);
        assert_eq!(s.b, vec![5.0, 1.0, 3.0]);
    }

    #[test]
    fn extract_original_strips_slacks() {
        let mut lp = LpProblem::new();
        lp.add_var(1.0);
        lp.add_row(ConstraintSense::Le, 1.0, &[(0, 1.0)]);
        let s = StandardLp::from_problem(&lp);
        assert_eq!(s.extract_original(&[0.25, 0.75]), vec![0.25]);
    }
}
