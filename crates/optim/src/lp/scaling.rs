//! Geometric-mean equilibration of standard-form LPs.
//!
//! Interior-point methods are sensitive to badly scaled constraint
//! matrices: rows in kilometers next to rows in milliseconds make the
//! normal equations ill-conditioned long before the iterates approach the
//! optimal face. This module rescales `min cᵀx, Ax = b, x ≥ 0` with
//! positive diagonal matrices `R` (rows) and `S` (columns),
//!
//! ```text
//! Â = R·A·S,   b̂ = R·b,   ĉ = S·c,   x = S·x̂,   y = R·ŷ,
//! ```
//!
//! choosing `R` and `S` by a few rounds of geometric-mean equilibration so
//! every row and column of `Â` has entries centered around magnitude 1.
//! The transformation is exact: unscaling recovers primal and dual
//! solutions of the original problem.

use crate::lp::StandardLp;
use crate::sparse::CscMatrix;

/// The diagonal scaling applied to a [`StandardLp`], with enough
/// information to map solutions back to the original problem.
#[derive(Debug, Clone)]
pub struct Scaling {
    /// Row scales `R` (length m).
    pub row: Vec<f64>,
    /// Column scales `S` (length n).
    pub col: Vec<f64>,
}

impl Scaling {
    /// Maps a scaled primal solution `x̂` back to the original `x = S·x̂`.
    pub fn unscale_primal(&self, x_hat: &[f64]) -> Vec<f64> {
        x_hat.iter().zip(&self.col).map(|(x, s)| x * s).collect()
    }

    /// Maps a scaled dual solution `ŷ` back to the original `y = R·ŷ`.
    pub fn unscale_dual(&self, y_hat: &[f64]) -> Vec<f64> {
        y_hat.iter().zip(&self.row).map(|(y, r)| y * r).collect()
    }
}

/// Equilibrates a standard-form LP with `rounds` sweeps of geometric-mean
/// scaling (2 is usually enough). Returns the scaled problem and the
/// scaling needed to recover original solutions.
pub fn equilibrate(lp: &StandardLp, rounds: usize) -> (StandardLp, Scaling) {
    let m = lp.nrows();
    let n = lp.ncols();
    let mut row = vec![1.0f64; m];
    let mut col = vec![1.0f64; n];
    // Work on a copy of the values; pattern is unchanged throughout.
    let mut a = lp.a.clone();

    for _ in 0..rounds {
        // Column pass: geometric mean of |entries| per column.
        for c in 0..n {
            let (_, vals) = a.col(c);
            if vals.is_empty() {
                continue;
            }
            let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
            for &v in vals {
                let av = v.abs();
                if av > 0.0 {
                    lo = lo.min(av);
                    hi = hi.max(av);
                }
            }
            if hi <= 0.0 {
                continue;
            }
            let s = 1.0 / (lo * hi).sqrt();
            if s.is_finite() && s > 0.0 {
                col[c] *= s;
                scale_column(&mut a, c, s);
            }
        }
        // Row pass: via the transpose.
        let at = a.transpose();
        let mut rscale = vec![1.0f64; m];
        for r in 0..m {
            let (_, vals) = at.col(r);
            if vals.is_empty() {
                continue;
            }
            let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
            for &v in vals {
                let av = v.abs();
                if av > 0.0 {
                    lo = lo.min(av);
                    hi = hi.max(av);
                }
            }
            if hi <= 0.0 {
                continue;
            }
            let s = 1.0 / (lo * hi).sqrt();
            if s.is_finite() && s > 0.0 {
                rscale[r] = s;
                row[r] *= s;
            }
        }
        scale_rows(&mut a, &rscale);
    }

    let b: Vec<f64> = lp.b.iter().zip(&row).map(|(v, r)| v * r).collect();
    let c: Vec<f64> = lp.c.iter().zip(&col).map(|(v, s)| v * s).collect();
    (
        StandardLp {
            a,
            b,
            c,
            num_original: lp.num_original,
        },
        Scaling { row, col },
    )
}

fn scale_column(a: &mut CscMatrix, c: usize, s: f64) {
    let start = a.colptr()[c];
    let end = a.colptr()[c + 1];
    for p in start..end {
        a.values_mut()[p] *= s;
    }
}

fn scale_rows(a: &mut CscMatrix, rscale: &[f64]) {
    let n = a.ncols();
    for c in 0..n {
        let start = a.colptr()[c];
        let end = a.colptr()[c + 1];
        for p in start..end {
            let r = a.rowind()[p];
            a.values_mut()[p] *= rscale[r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::{solve_ip, ConstraintSense, IpmOptions, LpProblem};

    /// An LP with entries spanning nine orders of magnitude.
    fn badly_scaled() -> LpProblem {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1e6);
        let y = lp.add_var(2e-3);
        lp.add_row(ConstraintSense::Ge, 3e4, &[(x, 1e4), (y, 2e-4)]);
        lp.add_row(ConstraintSense::Le, 5e-2, &[(y, 1e-5)]);
        lp
    }

    #[test]
    fn equilibration_reduces_value_spread() {
        let std_lp = StandardLp::from_problem(&badly_scaled());
        let spread = |a: &CscMatrix| {
            let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
            for &v in a.values() {
                let av = v.abs();
                if av > 0.0 {
                    lo = lo.min(av);
                    hi = hi.max(av);
                }
            }
            hi / lo
        };
        let before = spread(&std_lp.a);
        let (scaled, _) = equilibrate(&std_lp, 2);
        let after = spread(&scaled.a);
        assert!(after < before / 100.0, "spread {before} → {after}");
        assert!(
            after < 1e3,
            "after scaling the spread should be modest: {after}"
        );
    }

    #[test]
    fn solving_scaled_problem_recovers_original_solution() {
        // Analytic optimum: y hits its cap 5e3 (cheap), contributing 1.0 to
        // the first row, so x = (3e4 − 1)/1e4 = 2.9999:
        // objective = 1e6·2.9999 + 2e-3·5e3 = 2_999_910.01.
        let expected = 1e6 * 2.9999 + 2e-3 * 5e3;
        let lp = badly_scaled();
        let std_lp = StandardLp::from_problem(&lp);
        let (scaled, scaling) = equilibrate(&std_lp, 2);
        let scaled_sol = solve_ip(&scaled, &IpmOptions::default()).unwrap();
        let x = scaling.unscale_primal(&scaled_sol.x);
        let obj_scaled: f64 = std_lp.c.iter().zip(&x).map(|(c, v)| c * v).sum();
        assert!(
            (obj_scaled - expected).abs() <= 1e-6 * expected,
            "scaled {obj_scaled} vs analytic {expected}"
        );
        // Original constraints hold at the unscaled point.
        assert!(lp.max_violation(&x[..lp.num_vars()]) < 1e-4);
        // The direct (unscaled) solve stalls slightly short of the optimum
        // on this nine-orders-of-magnitude problem — equilibration must not
        // do worse than it.
        let direct = lp.solve().unwrap();
        assert!(obj_scaled <= direct.objective + 1e-6 * expected);
    }

    #[test]
    fn dual_unscaling_preserves_reduced_cost_signs() {
        let lp = badly_scaled();
        let std_lp = StandardLp::from_problem(&lp);
        let (scaled, scaling) = equilibrate(&std_lp, 2);
        let sol = solve_ip(&scaled, &IpmOptions::default()).unwrap();
        let y = scaling.unscale_dual(&sol.y);
        // Reduced costs of the ORIGINAL problem: c − Aᵀy ≥ −tol.
        let aty = std_lp.a.mul_transpose_vec(&y);
        for j in 0..std_lp.ncols() {
            assert!(
                std_lp.c[j] - aty[j] >= -1e-4 * (1.0 + std_lp.c[j].abs()),
                "reduced cost {j} negative: {}",
                std_lp.c[j] - aty[j]
            );
        }
    }

    #[test]
    fn well_scaled_problem_is_left_nearly_unchanged() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_row(ConstraintSense::Ge, 2.0, &[(x, 1.0), (y, 1.0)]);
        let std_lp = StandardLp::from_problem(&lp);
        let (scaled, scaling) = equilibrate(&std_lp, 2);
        for s in scaling.row.iter().chain(&scaling.col) {
            assert!((0.5..=2.0).contains(s), "scale {s} drifted");
        }
        assert_eq!(scaled.num_original, std_lp.num_original);
    }
}
