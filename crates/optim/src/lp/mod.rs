//! Linear programming: problem representation and two solvers.
//!
//! * [`LpProblem`] — a general LP in "row form" with `<=`, `>=`, `=`
//!   constraints over nonnegative variables.
//! * [`StandardLp`] — the equality standard form `min cᵀx, Ax=b, x>=0`
//!   produced from an [`LpProblem`] by adding slack variables.
//! * [`solve_ip`] — a sparse Mehrotra predictor-corrector interior-point
//!   solver (the workhorse).
//! * [`simplex`] — a dense two-phase primal simplex, used as an independent
//!   cross-check oracle in tests and for tiny problems.
//! * [`scaling`] — geometric-mean equilibration for badly scaled problems.

mod mehrotra;
mod problem;
pub mod scaling;
pub mod simplex;
mod standard;

pub use mehrotra::{solve as solve_ip, IpmOptions, IpmSolution, IpmStats};
pub use problem::{ConstraintSense, LpProblem, LpSolution, LpStatus};
pub use standard::StandardLp;
