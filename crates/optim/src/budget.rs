//! Cooperative wall-clock / iteration budgets for solver calls.
//!
//! The online pipeline must produce a decision inside each time slot, so a
//! solver that *hangs* (an ill-conditioned Schur system grinding through
//! Newton steps, an interior-point method stalling near the boundary) is as
//! fatal as one that fails. A [`SolveBudget`] gives every solve a deadline
//! and an iteration ceiling, checked **cooperatively** at the top of each
//! Newton / predictor-corrector iteration: when the budget runs out, the
//! solver returns [`crate::Error::DeadlineExceeded`] carrying the best
//! iterate it reached, so the caller can salvage a feasible-enough point
//! instead of getting nothing.
//!
//! An unlimited budget (the default) performs **no clock reads at all** —
//! the happy path pays nothing for the mechanism.

use std::time::{Duration, Instant};

/// A wall-clock deadline plus an iteration ceiling for one solve.
///
/// Both limits are optional; [`SolveBudget::unlimited`] (the `Default`)
/// disables the mechanism entirely. The budget is *cooperative*: solvers
/// poll [`SolveBudget::exhausted`] between iterations, so overruns are
/// bounded by the cost of a single iteration, not detected preemptively.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveBudget {
    /// Absolute wall-clock deadline, if any.
    pub deadline: Option<Instant>,
    /// Ceiling on iterations (Newton steps for the barrier,
    /// predictor-corrector iterations for the LP solver), if any.
    pub max_iters: Option<usize>,
}

impl SolveBudget {
    /// No limits: solvers never read the clock.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// A budget expiring `ms` milliseconds from now.
    pub fn from_millis(ms: f64) -> Self {
        SolveBudget {
            deadline: Some(Instant::now() + Duration::from_secs_f64((ms / 1e3).max(0.0))),
            max_iters: None,
        }
    }

    /// A budget with an absolute deadline.
    pub fn until(deadline: Instant) -> Self {
        SolveBudget {
            deadline: Some(deadline),
            max_iters: None,
        }
    }

    /// Adds an iteration ceiling to this budget.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = Some(iters);
        self
    }

    /// Whether this budget imposes no limits (solvers then skip every
    /// clock read).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_iters.is_none()
    }

    /// Whether the budget is exhausted after `iters_done` iterations.
    /// Reads the clock only when a deadline is set.
    pub fn exhausted(&self, iters_done: usize) -> bool {
        if let Some(cap) = self.max_iters {
            if iters_done >= cap {
                return true;
            }
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Wall-clock time left, `None` when no deadline is set,
    /// `Some(Duration::ZERO)` when already past it.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// An equal slice of the remaining budget for one of `parts` upcoming
    /// phases: the returned budget's deadline is `remaining / parts` from
    /// now (never past the original deadline), and the iteration ceiling is
    /// carried through unchanged. With no deadline set, the slice is the
    /// budget itself. `parts` is clamped to at least 1.
    pub fn slice(&self, parts: usize) -> SolveBudget {
        let parts = parts.max(1) as u32;
        let deadline = self.deadline.map(|d| {
            let now = Instant::now();
            let left = d.saturating_duration_since(now);
            now + left / parts
        });
        SolveBudget {
            deadline,
            max_iters: self.max_iters,
        }
    }

    /// Milliseconds elapsed past the deadline (0 when within budget or no
    /// deadline is set) — used for error reporting.
    pub fn overrun_ms(&self) -> f64 {
        match self.deadline {
            Some(d) => Instant::now().saturating_duration_since(d).as_secs_f64() * 1e3,
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = SolveBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.exhausted(0));
        assert!(!b.exhausted(usize::MAX));
        assert!(b.remaining().is_none());
    }

    #[test]
    fn expired_deadline_exhausts_immediately() {
        let b = SolveBudget::until(Instant::now() - Duration::from_millis(5));
        assert!(b.exhausted(0));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn iteration_ceiling_exhausts_without_clock() {
        let b = SolveBudget::unlimited().with_max_iters(10);
        assert!(!b.is_unlimited());
        assert!(!b.exhausted(9));
        assert!(b.exhausted(10));
    }

    #[test]
    fn slice_never_exceeds_the_original_deadline() {
        let b = SolveBudget::from_millis(100.0);
        for parts in [1, 2, 4, 100] {
            let s = b.slice(parts);
            assert!(
                s.deadline.unwrap() <= b.deadline.unwrap(),
                "slice({parts}) past the original deadline"
            );
        }
    }

    #[test]
    fn slice_of_expired_budget_is_expired() {
        let b = SolveBudget::until(Instant::now() - Duration::from_millis(1));
        assert!(b.slice(3).exhausted(0));
    }

    #[test]
    fn slice_of_unlimited_budget_is_unlimited() {
        assert!(SolveBudget::unlimited().slice(4).is_unlimited());
    }
}
