//! Dual-ascent driver for price-coordinated decomposition.
//!
//! A coupled program `min Σ_s f_s(x_s)  s.t.  Σ_s G_s(x_s) ≤ c` (shards
//! `s` coupled only through a shared resource `c`) decomposes once the
//! coupling is priced: for multipliers `μ ≥ 0` the Lagrangian splits into
//! per-shard subproblems, and weak duality turns any per-shard minima into
//! a certified lower bound on the coupled optimum. This module owns the
//! *outer* loop of that scheme — the projected-subgradient price update
//! with a diminishing step-size schedule, the best-round bookkeeping, and
//! the [`SolveBudget`] slicing that spreads a wall-clock deadline across
//! coordination rounds. What the subproblems are (and how the violation
//! `Σ_s G_s(x_s) − c` is measured) is the caller's business: the sharded
//! slot solver in `crates/shard` plugs the ℙ₂ shard subproblems in here.
//!
//! The update is the classical projected subgradient ascent on the dual
//!
//! ```text
//! μ_i ← max(0, μ_i + α_k · v_i),     α_k = α₀ / (1 + δ·k),
//! ```
//!
//! where `v_i` is round `k`'s violation of resource `i` (positive =
//! over-subscribed, negative = slack). With `δ = 0` the step is constant —
//! appropriate when the subproblems are strongly convex and the dual is
//! smooth; a small `δ` tempers oscillation on nearly-linear subproblems.

use crate::budget::SolveBudget;

/// Diminishing step-size schedule `α_k = α₀ / (1 + δ·k)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSchedule {
    /// Base step `α₀ > 0` (in price units per unit of violation).
    pub alpha0: f64,
    /// Decay rate `δ ≥ 0` (`0` = constant step).
    pub decay: f64,
}

impl StepSchedule {
    /// The step length for round `k` (0-based).
    pub fn step(&self, k: usize) -> f64 {
        self.alpha0 / (1.0 + self.decay * k as f64)
    }
}

impl Default for StepSchedule {
    fn default() -> Self {
        // A unit base step with mild decay: callers are expected to fold
        // their problem's price/resource scale into `alpha0` (see
        // `shard::ShardedConfig`), so the default only fixes the shape.
        StepSchedule {
            alpha0: 1.0,
            decay: 0.05,
        }
    }
}

/// State of one projected-subgradient dual ascent: the multipliers, the
/// round counter, and the running best (lowest) primal objective any round
/// achieved — the salvage the caller adopts when the loop is cut short by
/// its deadline.
#[derive(Debug, Clone)]
pub struct DualAscent {
    prices: Vec<f64>,
    schedule: StepSchedule,
    round: usize,
    best_round: Option<usize>,
    best_objective: f64,
    adaptive: Option<AdaptiveSteps>,
}

/// Per-resource step adaptation (sign-based, RPROP-style): a violation that
/// keeps its sign is moving the price monotonically toward the dual optimum
/// — grow that resource's step; a sign flip means the price overshot —
/// halve it. The subgradient's *sign* is reliable even where its magnitude
/// is not (piecewise-linear duals), which is exactly where the plain
/// diminishing schedule oscillates.
#[derive(Debug, Clone)]
struct AdaptiveSteps {
    /// Per-resource multiplier on the scheduled step, clamped to
    /// `[1e-4, 1e4]`.
    scale: Vec<f64>,
    /// Previous round's violation (`NaN` = none yet).
    prev: Vec<f64>,
}

impl DualAscent {
    /// A fresh ascent over `n` coupled resources, all prices zero.
    pub fn new(n: usize, schedule: StepSchedule) -> Self {
        Self::warm(vec![0.0; n], schedule)
    }

    /// An ascent warm-started from previously converged prices (the sharded
    /// slot solver carries `μ` across slots: consecutive slots price the
    /// same clouds under similar load).
    ///
    /// Non-finite or negative warm prices are reset to zero rather than
    /// poisoning every subsequent update.
    pub fn warm(prices: Vec<f64>, schedule: StepSchedule) -> Self {
        let prices = prices
            .into_iter()
            .map(|p| if p.is_finite() && p > 0.0 { p } else { 0.0 })
            .collect();
        DualAscent {
            prices,
            schedule,
            round: 0,
            best_round: None,
            best_objective: f64::INFINITY,
            adaptive: None,
        }
    }

    /// Enables per-resource step adaptation: each resource's step is scaled
    /// up (×1.3) while its violation keeps the same sign round over round,
    /// and halved when the sign flips (the price overshot the dual optimum).
    /// The scheduled step `α_k` still applies as the base; scales are
    /// clamped to `[10⁻⁴, 10⁴]`.
    pub fn with_adaptive_steps(mut self) -> Self {
        let n = self.prices.len();
        self.adaptive = Some(AdaptiveSteps {
            scale: vec![1.0; n],
            prev: vec![f64::NAN; n],
        });
        self
    }

    /// The current multipliers `μ ≥ 0`.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Rounds completed so far (= the number of [`Self::ascend`] calls).
    pub fn round(&self) -> usize {
        self.round
    }

    /// The projected subgradient update for one round: `μ_i ← max(0, μ_i +
    /// α_k·v_i)` with `v_i` the round's violation of resource `i` (positive
    /// = over-subscribed). Non-finite violations leave their price
    /// untouched (a corrupted shard must not destroy the whole price
    /// vector).
    ///
    /// # Panics
    ///
    /// Panics if `violation.len()` differs from the price dimension.
    pub fn ascend(&mut self, violation: &[f64]) {
        assert_eq!(violation.len(), self.prices.len(), "dimension mismatch");
        let alpha = self.schedule.step(self.round);
        for (i, (p, &v)) in self.prices.iter_mut().zip(violation).enumerate() {
            if !v.is_finite() {
                continue;
            }
            let mut step = alpha;
            if let Some(ad) = &mut self.adaptive {
                let pv = ad.prev[i];
                if pv.is_finite() && pv != 0.0 && v != 0.0 {
                    if (pv > 0.0) != (v > 0.0) {
                        ad.scale[i] *= 0.5;
                    } else {
                        ad.scale[i] *= 1.3;
                    }
                    ad.scale[i] = ad.scale[i].clamp(1e-4, 1e4);
                }
                ad.prev[i] = v;
                step *= ad.scale[i];
            }
            *p = (*p + step * v).max(0.0);
        }
        self.round += 1;
    }

    /// Records a completed round's primal objective; keeps it when it beats
    /// every earlier round (non-finite objectives never win). Returns
    /// `true` when this round became the new best — the caller then stashes
    /// the round's iterate as the salvage decision.
    pub fn offer(&mut self, objective: f64) -> bool {
        if objective.is_finite() && objective < self.best_objective {
            self.best_objective = objective;
            self.best_round = Some(self.round);
            true
        } else {
            false
        }
    }

    /// The best (lowest) objective offered so far, with its round index.
    pub fn best(&self) -> Option<(usize, f64)> {
        self.best_round.map(|r| (r, self.best_objective))
    }

    /// The wall-clock slice for the *next* round: an equal share of what
    /// remains of `budget` across the rounds still allowed. Later rounds
    /// inherit the time early rounds did not use (see [`SolveBudget::slice`]),
    /// and an unlimited budget stays unlimited without touching the clock.
    pub fn round_budget(&self, budget: &SolveBudget, max_rounds: usize) -> SolveBudget {
        budget.slice(max_rounds.saturating_sub(self.round).max(1))
    }
}

/// One archived shard offer: the subproblem iterate together with the
/// certificate data needed to re-price it later (see [`OfferArchive`]).
///
/// `prices` are the *total* per-resource prices the offer was solved
/// against (whatever the caller folds into its subproblem — for the
/// sharded slot solver, `μ_i` plus the entropy tangent `g_i`). A
/// carried-forward offer solved at old prices still lower-bounds the
/// current-price Lagrangian after subtracting `Σ_i (old_i − new_i)⁺ · c_i`
/// — re-pricing can only *weaken* the certificate, never tighten it.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchivedOffer {
    /// The shard's primal iterate (caller-defined layout).
    pub x: Vec<f64>,
    /// The offer's subproblem objective at its solve prices.
    pub objective: f64,
    /// The offer's certified duality gap (`f64::INFINITY` = no
    /// certificate, e.g. a salvaged iterate; never negative or NaN).
    pub gap: f64,
    /// Total per-resource prices the offer was solved against.
    pub prices: Vec<f64>,
    /// Coordination round the offer was produced in.
    pub round: usize,
    /// Caller-defined epoch (the sharded slot solver stores the slot
    /// index): offers from an earlier epoch price a *different* program,
    /// so their certificate must be discarded on carry-forward even though
    /// the iterate itself remains a usable warm decision.
    pub epoch: usize,
}

/// Per-shard archive of the most recent *feasible* offer, the substrate of
/// straggler carry-forward: when a shard produces no fresh offer in a
/// round, the coordinator merges the shard's last archived offer instead
/// and re-prices its certificate. [`OfferArchive::record`] screens every
/// candidate — an offer carrying NaN/Inf entries, negative allocations, a
/// non-finite objective, a NaN or negative gap, or non-finite prices never
/// enters, so [`OfferArchive::latest`] can never hand back a corrupt round.
#[derive(Debug, Clone, Default)]
pub struct OfferArchive {
    latest: Vec<Option<ArchivedOffer>>,
}

impl OfferArchive {
    /// An empty archive over `shards` shard slots.
    pub fn new(shards: usize) -> Self {
        OfferArchive {
            latest: vec![None; shards],
        }
    }

    /// Number of shard slots.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// Whether the archive tracks zero shards.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }

    /// Records `offer` as shard `shard`'s most recent feasible offer.
    /// Returns `false` (leaving any earlier archived offer in place) when
    /// the offer fails the feasibility screen: non-finite or negative
    /// entries in `x`, a non-finite objective, a NaN or negative gap
    /// (`+∞` is allowed — "no certificate" is honest), or non-finite
    /// prices. Out-of-range shard indices are also rejected.
    pub fn record(&mut self, shard: usize, offer: ArchivedOffer) -> bool {
        let Some(slot) = self.latest.get_mut(shard) else {
            return false;
        };
        let clean = offer.x.iter().all(|v| v.is_finite() && *v >= 0.0)
            && offer.objective.is_finite()
            && !offer.gap.is_nan()
            && offer.gap >= 0.0
            && offer.prices.iter().all(|p| p.is_finite());
        if !clean {
            return false;
        }
        *slot = Some(offer);
        true
    }

    /// Shard `shard`'s most recent feasible offer, if any survived the
    /// screen.
    pub fn latest(&self, shard: usize) -> Option<&ArchivedOffer> {
        self.latest.get(shard).and_then(|o| o.as_ref())
    }

    /// Forgets every archived offer (keeps the shard count). The sharded
    /// coordinator clears the archive on re-plan: offers are indexed by
    /// shard, and a re-plan reassigns users across shards.
    pub fn clear(&mut self) {
        for slot in &mut self.latest {
            *slot = None;
        }
    }

    /// Resizes to `shards` shard slots, dropping every archived offer.
    pub fn reset(&mut self, shards: usize) {
        self.latest.clear();
        self.latest.resize(shards, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_diminishes_from_alpha0() {
        let s = StepSchedule {
            alpha0: 2.0,
            decay: 0.5,
        };
        assert_eq!(s.step(0), 2.0);
        assert_eq!(s.step(2), 1.0);
        assert!(s.step(10) < s.step(9));
        let constant = StepSchedule {
            alpha0: 0.3,
            decay: 0.0,
        };
        assert_eq!(constant.step(0), constant.step(100));
    }

    #[test]
    fn ascend_projects_onto_nonnegative_prices() {
        let mut d = DualAscent::new(
            3,
            StepSchedule {
                alpha0: 1.0,
                decay: 0.0,
            },
        );
        d.ascend(&[2.0, -5.0, f64::NAN]);
        assert_eq!(d.prices(), &[2.0, 0.0, 0.0]);
        assert_eq!(d.round(), 1);
        d.ascend(&[-1.0, 1.0, 0.5]);
        assert_eq!(d.prices(), &[1.0, 1.0, 0.5]);
        assert_eq!(d.round(), 2);
    }

    #[test]
    fn warm_start_sanitizes_bad_prices() {
        let d = DualAscent::warm(
            vec![1.5, -2.0, f64::INFINITY, f64::NAN],
            StepSchedule::default(),
        );
        assert_eq!(d.prices(), &[1.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn offer_keeps_the_lowest_finite_objective() {
        let mut d = DualAscent::new(1, StepSchedule::default());
        assert!(d.best().is_none());
        assert!(d.offer(10.0));
        d.ascend(&[0.0]);
        assert!(!d.offer(f64::NAN));
        assert!(!d.offer(11.0));
        d.ascend(&[0.0]);
        assert!(d.offer(9.0));
        assert_eq!(d.best(), Some((2, 9.0)));
    }

    #[test]
    fn round_budget_slices_evenly_and_passes_unlimited_through() {
        let d = DualAscent::new(1, StepSchedule::default());
        let unlimited = d.round_budget(&SolveBudget::unlimited(), 8);
        assert!(unlimited.is_unlimited());
        let sliced = d.round_budget(&SolveBudget::from_millis(80.0), 8);
        assert!(!sliced.is_unlimited());
        // An exhausted budget slices to an exhausted slice, not a panic.
        let spent = SolveBudget::from_millis(0.0);
        assert!(d.round_budget(&spent, 4).exhausted(0));
    }

    #[test]
    fn adaptive_steps_grow_on_persistent_sign_and_halve_on_flip() {
        let mut d = DualAscent::new(
            1,
            StepSchedule {
                alpha0: 1.0,
                decay: 0.0,
            },
        )
        .with_adaptive_steps();
        // Round 0: no history, scale stays 1 → μ = 2.
        d.ascend(&[2.0]);
        assert_eq!(d.prices(), &[2.0]);
        // Round 1: same sign, scale 1.3 → μ = 2 + 1.3·2 = 4.6.
        d.ascend(&[2.0]);
        assert!((d.prices()[0] - 4.6).abs() < 1e-12);
        // Round 2: sign flip, scale 0.65 → μ = 4.6 − 0.65·1 = 3.95.
        d.ascend(&[-1.0]);
        assert!((d.prices()[0] - 3.95).abs() < 1e-12);
    }

    #[test]
    fn adaptive_steps_ignore_non_finite_violations() {
        let mut d = DualAscent::new(2, StepSchedule::default()).with_adaptive_steps();
        d.ascend(&[1.0, f64::NAN]);
        d.ascend(&[f64::NAN, 1.0]);
        assert!(d.prices().iter().all(|p| p.is_finite()));
    }

    fn offer(x: Vec<f64>, objective: f64, gap: f64, prices: Vec<f64>) -> ArchivedOffer {
        ArchivedOffer {
            x,
            objective,
            gap,
            prices,
            round: 0,
            epoch: 0,
        }
    }

    #[test]
    fn archive_keeps_the_most_recent_feasible_offer_per_shard() {
        let mut a = OfferArchive::new(2);
        assert_eq!(a.len(), 2);
        assert!(a.latest(0).is_none());
        assert!(a.record(0, offer(vec![1.0, 2.0], 3.0, 0.1, vec![0.5])));
        assert!(a.record(0, offer(vec![4.0, 5.0], 2.0, 0.2, vec![0.6])));
        assert_eq!(a.latest(0).unwrap().x, vec![4.0, 5.0]);
        assert!(a.latest(1).is_none(), "shards are archived independently");
        a.clear();
        assert!(a.latest(0).is_none());
        assert_eq!(a.len(), 2, "clear keeps the shard count");
    }

    #[test]
    fn archive_never_returns_an_infeasible_or_nan_bearing_round() {
        let mut a = OfferArchive::new(1);
        let good = offer(vec![1.0, 2.0], 3.0, 0.0, vec![0.5]);
        assert!(a.record(0, good.clone()));
        // Every corrupt variant is rejected AND leaves the archived good
        // offer untouched.
        let corrupt = [
            offer(vec![f64::NAN, 2.0], 3.0, 0.0, vec![0.5]),
            offer(vec![f64::INFINITY, 2.0], 3.0, 0.0, vec![0.5]),
            offer(vec![-1.0, 2.0], 3.0, 0.0, vec![0.5]),
            offer(vec![1.0, 2.0], f64::NAN, 0.0, vec![0.5]),
            offer(vec![1.0, 2.0], f64::INFINITY, 0.0, vec![0.5]),
            offer(vec![1.0, 2.0], 3.0, f64::NAN, vec![0.5]),
            offer(vec![1.0, 2.0], 3.0, -0.1, vec![0.5]),
            offer(vec![1.0, 2.0], 3.0, 0.0, vec![f64::NAN]),
        ];
        for (k, bad) in corrupt.into_iter().enumerate() {
            assert!(!a.record(0, bad), "corrupt offer {k} entered the archive");
            assert_eq!(a.latest(0), Some(&good), "corrupt offer {k} clobbered");
        }
        // An uncertified offer (gap = +∞) is honest, not corrupt.
        assert!(a.record(0, offer(vec![0.0], 1.0, f64::INFINITY, vec![])));
        assert!(a.latest(0).unwrap().gap.is_infinite());
        // Out-of-range shard indices never panic.
        assert!(!a.record(7, offer(vec![0.0], 1.0, 0.0, vec![])));
        assert!(a.latest(7).is_none());
    }

    #[test]
    fn archive_reset_resizes_and_forgets() {
        let mut a = OfferArchive::new(1);
        assert!(a.record(0, offer(vec![1.0], 1.0, 0.0, vec![])));
        a.reset(3);
        assert_eq!(a.len(), 3);
        assert!((0..3).all(|s| a.latest(s).is_none()));
        assert!(!a.is_empty());
        a.reset(0);
        assert!(a.is_empty());
    }

    #[test]
    fn round_budget_never_divides_by_zero_rounds() {
        let mut d = DualAscent::new(1, StepSchedule::default());
        for _ in 0..5 {
            d.ascend(&[0.0]);
        }
        // round (5) exceeds max_rounds (3): the slice degrades to "all of
        // what's left" instead of panicking.
        let b = d.round_budget(&SolveBudget::from_millis(50.0), 3);
        assert!(!b.is_unlimited());
    }
}
