//! Property-based tests of the solver substrate: the interior-point method
//! against the independent simplex oracle on random feasible LPs, sparse
//! LDLᵀ against dense reference solves, and the Woodbury solver against
//! dense LU.

use optim::convex::DiagPlusLowRank;
use optim::linalg::{min_degree_ordering, DenseMatrix, LdlSymbolic};
use optim::lp::{ConstraintSense, LpProblem};
use optim::sparse::Triplets;
use proptest::prelude::*;

/// Strategy: a random transportation LP that is always feasible (total
/// capacity ≥ total demand by construction).
fn transportation_lp() -> impl Strategy<Value = LpProblem> {
    (
        2usize..5,
        2usize..5,
        proptest::collection::vec(1u32..9, 4..25),
    )
        .prop_map(|(nsrc, ndst, raw)| {
            let mut lp = LpProblem::new();
            let mut vars = vec![vec![0usize; ndst]; nsrc];
            let mut k = 0usize;
            for (i, row) in vars.iter_mut().enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    let cost = raw[k % raw.len()] as f64;
                    k += 1;
                    *v = lp.add_var(cost + (i + j) as f64 * 0.25);
                }
            }
            // Demands 1..3 per source row.
            let mut total_demand = 0.0;
            for (i, row) in vars.iter().enumerate() {
                let d = 1.0 + (raw[(i + 1) % raw.len()] % 3) as f64;
                total_demand += d;
                let terms: Vec<(usize, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
                lp.add_row(ConstraintSense::Ge, d, &terms);
            }
            // Capacities sized to cover everything comfortably.
            for j in 0..ndst {
                let terms: Vec<(usize, f64)> = (0..nsrc).map(|i| (vars[i][j], 1.0)).collect();
                lp.add_row(
                    ConstraintSense::Le,
                    total_demand * 2.0 / ndst as f64 + 1.0,
                    &terms,
                );
            }
            lp
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ipm_matches_simplex_on_random_transportation_lps(lp in transportation_lp()) {
        let ip = lp.solve().expect("ipm solves feasible LP");
        let sx = lp.solve_simplex().expect("simplex solves feasible LP");
        prop_assert!(
            (ip.objective - sx.objective).abs() <= 1e-5 * (1.0 + sx.objective.abs()),
            "ipm {} vs simplex {}", ip.objective, sx.objective
        );
        prop_assert!(lp.max_violation(&ip.x) < 1e-6);
    }

    #[test]
    fn ipm_solution_is_feasible_and_no_better_than_optimal(lp in transportation_lp()) {
        let ip = lp.solve().expect("solves");
        let sx = lp.solve_simplex().expect("solves");
        // IPM cannot beat the exact optimum by more than tolerance.
        prop_assert!(ip.objective >= sx.objective - 1e-5 * (1.0 + sx.objective.abs()));
    }
}

/// Strategy: a random SPD matrix as lower-triangular CSC (B·Bᵀ + n·I).
fn spd_lower() -> impl Strategy<Value = (optim::sparse::CscMatrix, Vec<f64>)> {
    (3usize..12, proptest::collection::vec(-1.0f64..1.0, 200)).prop_map(|(n, raw)| {
        let mut dense = vec![vec![0.0f64; n]; n];
        let mut k = 0;
        for row in dense.iter_mut() {
            for v in row.iter_mut() {
                if k % 3 == 0 {
                    *v = raw[k % raw.len()];
                }
                k += 1;
            }
        }
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s: f64 = (0..n).map(|c| dense[i][c] * dense[j][c]).sum();
                if i == j {
                    s += n as f64;
                }
                if s != 0.0 {
                    t.push(i, j, s);
                }
            }
        }
        let b: Vec<f64> = (0..n).map(|i| raw[(i * 7) % raw.len()]).collect();
        (t.to_csc(), b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ldl_solves_random_spd_systems((a, b) in spd_lower()) {
        let n = a.ncols();
        let perm = min_degree_ordering(&a);
        let sym = LdlSymbolic::new(&a, Some(perm));
        let f = sym.factor(&a).expect("SPD factors");
        let x = f.solve(&b);
        // Residual against the full symmetric matrix.
        for i in 0..n {
            let mut ax = 0.0;
            for j in 0..n {
                let v = if i >= j { a.get(i, j) } else { a.get(j, i) };
                ax += v * x[j];
            }
            prop_assert!((ax - b[i]).abs() < 1e-7, "row {i}: {ax} vs {}", b[i]);
        }
    }

    #[test]
    fn ordering_never_increases_fill_vs_worst_case((a, _b) in spd_lower()) {
        let n = a.ncols();
        let perm = min_degree_ordering(&a);
        let ordered = LdlSymbolic::new(&a, Some(perm));
        prop_assert!(ordered.factor_nnz() <= n * (n - 1) / 2);
    }

    #[test]
    fn woodbury_matches_dense_lu(
        n in 3usize..10,
        p in 1usize..4,
        raw in proptest::collection::vec(0.1f64..2.0, 64),
    ) {
        let mut t = Triplets::new(p, n);
        let mut k = 0;
        for i in 0..p {
            for j in 0..n {
                if (i + j) % 2 == 0 {
                    t.push(i, j, raw[k % raw.len()] - 1.0);
                }
                k += 1;
            }
        }
        let u = t.to_csc();
        let d: Vec<f64> = (0..n).map(|i| raw[(i * 3) % raw.len()]).collect();
        let e: Vec<f64> = (0..p).map(|i| raw[(i * 5 + 1) % raw.len()]).collect();
        let r: Vec<f64> = (0..n).map(|i| raw[(i * 7 + 2) % raw.len()] - 1.0).collect();
        let solver = DiagPlusLowRank::new(u.clone());
        let x = solver.solve(&d, &e, &r).expect("solves");
        // Dense reference.
        let ud = u.to_dense();
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, d[i]);
        }
        for i in 0..p {
            for a_ in 0..n {
                for b_ in 0..n {
                    m.add(a_, b_, ud[i][a_] * e[i] * ud[i][b_]);
                }
            }
        }
        let xref = m.lu().expect("nonsingular").solve(&r);
        for i in 0..n {
            prop_assert!((x[i] - xref[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn csc_transpose_involution_and_matvec_consistency(
        n in 1usize..8,
        m in 1usize..8,
        raw in proptest::collection::vec(-2.0f64..2.0, 64),
    ) {
        let mut t = Triplets::new(m, n);
        let mut k = 0;
        for i in 0..m {
            for j in 0..n {
                if k % 3 != 2 && raw[k % raw.len()] != 0.0 {
                    t.push(i, j, raw[k % raw.len()]);
                }
                k += 1;
            }
        }
        let a = t.to_csc();
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let x: Vec<f64> = (0..n).map(|i| raw[(i * 11) % raw.len()]).collect();
        let y1 = a.mul_vec(&x);
        let y2 = a.transpose().mul_transpose_vec(&x);
        for i in 0..m {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The blocked nested-Schur kernel must agree with the dense Woodbury
    /// kernel on randomized ℙ₂-shaped arrow systems: J disjoint demand rows
    /// (I strided columns each, mirroring ℙ₂'s cloud-major layout) plus
    /// group/capacity rows touching every variable, with randomly
    /// degenerate (zero-curvature) rows in both blocks.
    #[test]
    fn blocked_kernel_matches_dense_woodbury(
        clouds in 2usize..6,
        users in 3usize..28,
        raw in proptest::collection::vec(0.05f64..2.5, 256),
    ) {
        use optim::convex::SchurKernel;
        let n = clouds * users;
        let p = users + clouds + 1;
        let mut t = Triplets::new(p, n);
        // Demand rows: user j touches column i·J + j in every cloud i.
        for j in 0..users {
            for i in 0..clouds {
                t.push(j, i * users + j, 0.5 + raw[(i * users + j) % raw.len()]);
            }
        }
        // Group rows: cloud i's J contiguous columns.
        for i in 0..clouds {
            for j in 0..users {
                t.push(users + i, i * users + j, 1.0);
            }
        }
        // One all-ones capacity row.
        for k in 0..n {
            t.push(users + clouds, k, 1.0);
        }
        let u = t.to_csc();
        let d: Vec<f64> = (0..n).map(|k| 0.01 + raw[(k * 3 + 1) % raw.len()]).collect();
        let e: Vec<f64> = (0..p)
            .map(|i| {
                // ~20% of rows degenerate (zero curvature → inactive).
                if raw[(i * 11 + 4) % raw.len()] < 0.5 {
                    0.0
                } else {
                    0.02 + raw[(i * 5 + 2) % raw.len()]
                }
            })
            .collect();
        let r: Vec<f64> = (0..n).map(|k| raw[(k * 7 + 3) % raw.len()] - 1.25).collect();
        let blocked = DiagPlusLowRank::with_kernel(u.clone(), SchurKernel::Blocked);
        let dense = DiagPlusLowRank::with_kernel(u, SchurKernel::Dense);
        prop_assert_eq!(blocked.resolved_kernel(), SchurKernel::Blocked);
        let xb = blocked.solve(&d, &e, &r).expect("blocked solves");
        let xd = dense.solve(&d, &e, &r).expect("dense solves");
        let scale = xd.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        for k in 0..n {
            prop_assert!(
                (xb[k] - xd[k]).abs() <= 1e-10 * scale,
                "k={k}: blocked {} vs dense {} (scale {scale})", xb[k], xd[k]
            );
        }
    }
}
