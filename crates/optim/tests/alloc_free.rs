//! Verifies the barrier solver's Newton hot path performs no per-step heap
//! allocation: with a warmed [`BarrierWorkspace`], a whole solve allocates
//! only the handful of vectors of the returned [`BarrierSolution`] — a
//! count independent of how many Newton steps the solve takes.
//!
//! The counting allocator is process-global, so this lives in its own
//! integration-test binary (one test process, no interference from
//! parallel tests in other files).

use optim::convex::{
    BarrierOptions, BarrierSolver, BarrierWorkspace, ScalarTerm, SchurKernel, SeparableObjective,
};
use optim::sparse::Triplets;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A ℙ₂-shaped program: linear + entropy terms per variable, entropy group
/// terms per "cloud", demand rows and a coupling row — enough structure to
/// exercise every branch of the Newton step (groups, active Schur rows,
/// backtracking).
fn p2_like(clouds: usize, users: usize) -> (BarrierSolver, Vec<f64>) {
    p2_like_with_kernel(clouds, users, SchurKernel::Auto)
}

fn p2_like_with_kernel(
    clouds: usize,
    users: usize,
    kernel: SchurKernel,
) -> (BarrierSolver, Vec<f64>) {
    let n = clouds * users;
    let mut f = SeparableObjective::new(n);
    for i in 0..clouds {
        let members: Vec<usize> = (0..users).map(|j| i * users + j).collect();
        f.add_group(
            members,
            ScalarTerm::RelativeEntropy {
                weight: 0.7 + i as f64 * 0.1,
                eps: 0.5,
                xref: 1.0,
            },
        );
        for j in 0..users {
            let k = i * users + j;
            f.add_term(
                k,
                ScalarTerm::Linear {
                    coef: 1.0 + ((i * 7 + j * 3) % 5) as f64 * 0.3,
                },
            );
            f.add_term(
                k,
                ScalarTerm::RelativeEntropy {
                    weight: 0.4,
                    eps: 0.5,
                    xref: 0.3,
                },
            );
        }
    }
    let mut a = Triplets::new(users + 1, n);
    for j in 0..users {
        for i in 0..clouds {
            a.push(j, i * users + j, 1.0);
        }
    }
    for k in 0..n {
        a.push(users, k, 1.0);
    }
    let mut b = vec![1.0; users];
    b.push(users as f64 * 1.1);
    let solver = BarrierSolver::new_with_kernel(f, a.to_csc(), b, kernel).unwrap();
    // Strictly feasible start: spread every demand evenly with headroom.
    let start = vec![1.6 / clouds as f64; n];
    (solver, start)
}

fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn newton_inner_loop_is_allocation_free() {
    let (solver, start) = p2_like(4, 12);
    let mut ws = BarrierWorkspace::for_solver(&solver);
    let opts = BarrierOptions::default();
    // Warm-up solve: workspace buffers reach their steady-state sizes.
    let warm = solver
        .solve_with_workspace(Some(&start), &opts, &mut ws)
        .unwrap();
    assert!(
        warm.stats.newton_steps > 5,
        "test program too easy to solve"
    );

    let mut solution_allocs = 0;
    let count = allocations_during(|| {
        let sol = solver
            .solve_with_workspace(Some(&start), &opts, &mut ws)
            .unwrap();
        // Only the returned solution may allocate: x, row_duals,
        // bound_duals (plus iterator-size slack inside collect).
        solution_allocs = 3;
        assert!(sol.stats.newton_steps > 5);
    });
    assert!(
        count <= 2 * solution_allocs + 4,
        "warmed solve allocated {count} times — the Newton inner loop is \
         supposed to run entirely out of the BarrierWorkspace"
    );

    // Control: the count must not scale with Newton steps. A much tighter
    // tolerance forces more outer iterations and more Newton steps; the
    // allocation count must stay flat.
    let tight = BarrierOptions {
        tol: 1e-10,
        ..BarrierOptions::default()
    };
    let mut steps_tight = 0;
    let count_tight = allocations_during(|| {
        let sol = solver
            .solve_with_workspace(Some(&start), &tight, &mut ws)
            .unwrap();
        steps_tight = sol.stats.newton_steps;
    });
    assert!(
        count_tight <= 2 * solution_allocs + 4,
        "allocations grew with solve length ({steps_tight} Newton steps → \
         {count_tight} allocations)"
    );
}

#[test]
fn blocked_kernel_newton_loop_is_allocation_free() {
    // Large enough that the demand rows form a real local block; the kernel
    // is forced anyway so the test can't silently regress to dense if the
    // auto cutover moves.
    let (solver, start) = p2_like_with_kernel(4, 64, SchurKernel::Blocked);
    assert_eq!(solver.schur_kernel(), SchurKernel::Blocked);
    let mut ws = BarrierWorkspace::for_solver(&solver);
    let opts = BarrierOptions::default();
    let warm = solver
        .solve_with_workspace(Some(&start), &opts, &mut ws)
        .unwrap();
    assert!(
        warm.stats.newton_steps > 5,
        "test program too easy to solve"
    );

    let solution_allocs = 3;
    let count = allocations_during(|| {
        let sol = solver
            .solve_with_workspace(Some(&start), &opts, &mut ws)
            .unwrap();
        assert!(sol.stats.newton_steps > 5);
    });
    assert!(
        count <= 2 * solution_allocs + 4,
        "warmed blocked-kernel solve allocated {count} times — the nested-\
         Schur elimination is supposed to run entirely out of the workspace"
    );
}

#[test]
fn one_shot_solve_still_works_and_matches_workspace_path() {
    let (solver, start) = p2_like(3, 8);
    let opts = BarrierOptions::default();
    let one_shot = solver.solve(Some(&start), &opts).unwrap();
    let mut ws = BarrierWorkspace::for_solver(&solver);
    let via_ws = solver
        .solve_with_workspace(Some(&start), &opts, &mut ws)
        .unwrap();
    assert_eq!(one_shot.x, via_ws.x, "identical arithmetic expected");
    assert_eq!(one_shot.stats.newton_steps, via_ws.stats.newton_steps);
}
