//! Empirical competitive ratios.

/// The empirical competitive ratio: an algorithm's total cost normalized by
/// the offline optimum. The paper reports ≈1.1 for the regularized online
/// algorithm and up to ≈1.8 for online-greedy.
///
/// # Panics
///
/// Panics if `offline_total` is not strictly positive or either value is
/// non-finite.
///
/// # Example
///
/// ```
/// assert_eq!(edgealloc::ratio::competitive_ratio(11.5, 9.6), 11.5 / 9.6);
/// ```
pub fn competitive_ratio(algorithm_total: f64, offline_total: f64) -> f64 {
    assert!(
        offline_total > 0.0 && offline_total.is_finite(),
        "offline total must be positive and finite"
    );
    assert!(
        algorithm_total.is_finite(),
        "algorithm total must be finite"
    );
    algorithm_total / offline_total
}

/// Mean and (population) standard deviation of a set of ratios, as plotted
/// in Figures 2–5 (mean ± sd over repetitions).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean_sd(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "need at least one value");
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_of_equal_costs_is_one() {
        assert_eq!(competitive_ratio(5.0, 5.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_offline_panics() {
        competitive_ratio(1.0, 0.0);
    }

    #[test]
    fn mean_sd_basics() {
        let (m, s) = mean_sd(&[1.0, 1.0, 1.0]);
        assert_eq!(m, 1.0);
        assert_eq!(s, 0.0);
        let (m, s) = mean_sd(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }
}
