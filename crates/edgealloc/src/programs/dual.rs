//! The fitted dual solution `S_D` of program 𝔻 (§IV of the paper).
//!
//! The competitive analysis constructs, from the per-slot ℙ₂ solutions and
//! their KKT multipliers, a feasible point of the dual 𝔻 of the relaxed
//! LP ℙ₃:
//!
//! ```text
//! α_{i,t}   = (c̃_i/η_i)   · ln( (C_i+ε₁) / (x*_{i,t−1}+ε₁) )
//! β_{i,j,t} = (b̃_i/τ_ij) · ln( (λ_j+ε₂) / (x*_{i,j,t−1}+ε₂) )
//! θ_{j,t}   = θ'_{j,t},    ρ_{i,t} = ρ'_{i,t}
//! ```
//!
//! (The paper prints `C_i+ε₂` in the β numerator; the bound β ≤ b̃ in its
//! own Lemma 2 requires the numerator `λ_j+ε₂` matching `τ_{i,j} =
//! ln(1+λ_j/ε₂)`, and constraint (14a) only involves *differences* of β, so
//! we use `λ_j+ε₂`. DESIGN.md records this erratum.)
//!
//! This module exists so the paper's chain `P₁ ≥ P₃ ≥ D` and the dual
//! feasibility of `S_D` (Lemma 2) can be verified **numerically** in tests
//! — turning the competitive proof into executable checks.

use crate::allocation::Allocation;
use crate::instance::Instance;
use crate::programs::p2::{Epsilons, P2Solution};

/// The fitted dual solution for a whole horizon.
#[derive(Debug, Clone)]
pub struct DualFit {
    /// `α[t][i]` for `t = 0..T` (slot indices; `α[t]` belongs to slot `t`).
    pub alpha: Vec<Vec<f64>>,
    /// `β[t][i][j]`.
    pub beta: Vec<Vec<Vec<f64>>>,
    /// `θ[t][j]` — demand-row duals from ℙ₂.
    pub theta: Vec<Vec<f64>>,
    /// `ρ[t][i]` — (10b)-row duals from ℙ₂.
    pub rho: Vec<Vec<f64>>,
}

/// Builds `S_D` from the sequence of solved per-slot programs.
///
/// # Panics
///
/// Panics if `solutions.len() != inst.num_slots()`.
pub fn fit(inst: &Instance, solutions: &[P2Solution], eps: Epsilons) -> DualFit {
    let num_slots = inst.num_slots();
    assert_eq!(solutions.len(), num_slots, "one ℙ₂ solution per slot");
    let num_clouds = inst.num_clouds();
    let num_users = inst.num_users();
    let w = inst.weights();

    let prev_alloc = |t: usize| -> Allocation {
        if t == 0 {
            Allocation::zeros(num_clouds, num_users)
        } else {
            solutions[t - 1].allocation.clone()
        }
    };

    let mut alpha = Vec::with_capacity(num_slots);
    let mut beta = Vec::with_capacity(num_slots);
    let mut theta = Vec::with_capacity(num_slots);
    let mut rho = Vec::with_capacity(num_slots);
    for (t, sol) in solutions.iter().enumerate() {
        let prev = prev_alloc(t);
        let mut at = Vec::with_capacity(num_clouds);
        let mut bt = Vec::with_capacity(num_clouds);
        for i in 0..num_clouds {
            let cap = inst.system().capacity(i);
            let c_tilde = w.reconfig * inst.reconfig_price(i);
            let b_tilde = w.migration * inst.migration_total(i);
            let eta = (1.0 + cap / eps.eps1).ln();
            at.push(c_tilde / eta * ((cap + eps.eps1) / (prev.cloud_total(i) + eps.eps1)).ln());
            let mut bij = Vec::with_capacity(num_users);
            for j in 0..num_users {
                let lambda = inst.workload(j);
                let tau = (1.0 + lambda / eps.eps2).ln();
                bij.push(b_tilde / tau * ((lambda + eps.eps2) / (prev.get(i, j) + eps.eps2)).ln());
            }
            bt.push(bij);
        }
        alpha.push(at);
        beta.push(bt);
        theta.push(sol.theta.clone());
        rho.push(sol.rho.clone());
    }
    DualFit {
        alpha,
        beta,
        theta,
        rho,
    }
}

impl DualFit {
    /// The dual objective
    /// `D = Σ_t Σ_j λ_j θ_{j,t} + Σ_t Σ_i (Σ_j λ_j − C_i)⁺ ρ_{i,t}`.
    pub fn objective(&self, inst: &Instance) -> f64 {
        let total_workload = inst.total_workload();
        let mut d = 0.0;
        for t in 0..self.theta.len() {
            for j in 0..inst.num_users() {
                d += inst.workload(j) * self.theta[t][j];
            }
            for i in 0..inst.num_clouds() {
                d += (total_workload - inst.system().capacity(i)).max(0.0) * self.rho[t][i];
            }
        }
        d
    }

    /// Maximum violation of the 𝔻 constraints (14b)–(14e) — the parts of
    /// Lemma 2 that do not depend on KKT stationarity. A feasible fit
    /// returns ≈ 0 (up to solver tolerance).
    pub fn simple_constraint_violation(&self, inst: &Instance) -> f64 {
        let w = inst.weights();
        let mut worst = 0.0f64;
        for t in 0..self.alpha.len() {
            for i in 0..inst.num_clouds() {
                let c_tilde = w.reconfig * inst.reconfig_price(i);
                let b_tilde = w.migration * inst.migration_total(i);
                // (14b): α ≤ c̃ ; (14d): α ≥ 0, ρ ≥ 0.
                worst = worst.max(self.alpha[t][i] - c_tilde);
                worst = worst.max(-self.alpha[t][i]);
                worst = worst.max(-self.rho[t][i]);
                for j in 0..inst.num_users() {
                    // (14c): β ≤ b̃ ; (14e): β ≥ 0, θ ≥ 0.
                    worst = worst.max(self.beta[t][i][j] - b_tilde);
                    worst = worst.max(-self.beta[t][i][j]);
                }
            }
            for j in 0..inst.num_users() {
                worst = worst.max(-self.theta[t][j]);
            }
        }
        worst
    }

    /// Maximum violation of the coupling constraint (14a),
    ///
    /// ```text
    /// −ã_{i,t} − w_q d(l_{j,t},i)/λ_j + α_{i,t+1} − α_{i,t}
    ///   + β_{i,j,t+1} − β_{i,j,t} + Σ_{k≠i} ρ_{k,t} + θ_{j,t} ≤ 0,
    /// ```
    ///
    /// evaluated with `α_{·,T+1}` and `β_{·,·,T+1}` computed from the final
    /// slot's solution. Feasibility follows from the ℙ₂ stationarity
    /// condition (15a), so this measures how exactly KKT holds.
    pub fn coupling_violation(
        &self,
        inst: &Instance,
        solutions: &[P2Solution],
        eps: Epsilons,
    ) -> f64 {
        let w = inst.weights();
        let num_slots = self.alpha.len();
        let num_clouds = inst.num_clouds();
        let num_users = inst.num_users();
        // α, β at t+1 — extend using the final solution.
        let next_alpha = |t: usize, i: usize| -> f64 {
            if t + 1 < num_slots {
                self.alpha[t + 1][i]
            } else {
                let cap = inst.system().capacity(i);
                let c_tilde = w.reconfig * inst.reconfig_price(i);
                let eta = (1.0 + cap / eps.eps1).ln();
                let x = solutions[t].allocation.cloud_total(i);
                c_tilde / eta * ((cap + eps.eps1) / (x + eps.eps1)).ln()
            }
        };
        let next_beta = |t: usize, i: usize, j: usize| -> f64 {
            if t + 1 < num_slots {
                self.beta[t + 1][i][j]
            } else {
                let lambda = inst.workload(j);
                let b_tilde = w.migration * inst.migration_total(i);
                let tau = (1.0 + lambda / eps.eps2).ln();
                let x = solutions[t].allocation.get(i, j);
                b_tilde / tau * ((lambda + eps.eps2) / (x + eps.eps2)).ln()
            }
        };
        let mut worst = f64::NEG_INFINITY;
        for t in 0..num_slots {
            let rho_sum: f64 = self.rho[t].iter().sum();
            for i in 0..num_clouds {
                let a_tilde = w.operation * inst.operation_price(i, t);
                for j in 0..num_users {
                    let l = inst.attached(j, t);
                    let lhs = -a_tilde - w.quality * inst.system().delay(l, i) / inst.workload(j)
                        + next_alpha(t, i)
                        - self.alpha[t][i]
                        + next_beta(t, i, j)
                        - self.beta[t][i][j]
                        + (rho_sum - self.rho[t][i])
                        + self.theta[t][j];
                    worst = worst.max(lhs);
                }
            }
        }
        worst.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::SlotInput;
    use crate::programs::p2;
    use optim::convex::BarrierOptions;

    fn solve_horizon(inst: &Instance, eps: Epsilons) -> Vec<P2Solution> {
        let mut prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
        let mut out = Vec::new();
        for t in 0..inst.num_slots() {
            let input = SlotInput::from_instance(inst, t);
            let sol = p2::solve(&input, &prev, eps, None, &BarrierOptions::default()).unwrap();
            prev = sol.allocation.clone();
            out.push(sol);
        }
        out
    }

    #[test]
    fn dual_fit_is_feasible_on_fig1() {
        // Lemma 2, executed: the constructed S_D satisfies 𝔻's constraints.
        let inst = Instance::fig1_example(2.1, true);
        let eps = Epsilons::default();
        let sols = solve_horizon(&inst, eps);
        let fit = fit(&inst, &sols, eps);
        assert!(
            fit.simple_constraint_violation(&inst) < 1e-6,
            "violation {}",
            fit.simple_constraint_violation(&inst)
        );
        let coupling = fit.coupling_violation(&inst, &sols, eps);
        assert!(coupling < 1e-3, "coupling violation {coupling}");
    }

    #[test]
    fn dual_objective_is_nonnegative() {
        let inst = Instance::fig1_example(1.9, false);
        let eps = Epsilons::default();
        let sols = solve_horizon(&inst, eps);
        let fit = fit(&inst, &sols, eps);
        assert!(fit.objective(&inst) >= 0.0);
    }
}
