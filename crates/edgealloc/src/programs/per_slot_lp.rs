//! Per-slot linear programs shared by the greedy and atomistic baselines.
//!
//! All of them allocate over variables `x_{i,j} ≥ 0` (indexed `i·J + j`)
//! subject to demand `Σ_i x_{i,j} ≥ λ_j` and capacity `Σ_j x_{i,j} ≤ C_i`,
//! and differ only in the objective:
//!
//! * **perf-opt** — service-quality cost only,
//! * **oper-opt** — operation cost only,
//! * **stat-opt** — both static costs,
//! * **online-greedy** — the full ℙ₀ objective of the slot, including the
//!   reconfiguration and bidirectional migration costs relative to the
//!   previous slot (with auxiliary variables `u_i`, `v^{in}_{ij}`,
//!   `v^{out}_{ij}`).

use crate::algorithms::SlotInput;
use crate::allocation::Allocation;
use crate::Result;
use optim::lp::{ConstraintSense, IpmOptions, LpProblem};
use optim::resilience::{solve_lp_with_retry, RetryPolicy, SolveReport};

/// Which static cost components the objective includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticTerms {
    /// Include operation cost `ã_{i,t} x_{ij}`.
    pub operation: bool,
    /// Include service-quality cost `(w_q d(l_{j,t}, i)/λ_j) x_{ij}`.
    pub quality: bool,
}

/// Builds the base per-slot LP (variables + demand + capacity rows) and the
/// selected static objective; returns the problem and the index of the
/// first `x` variable (always 0).
pub fn base_lp(input: &SlotInput<'_>, terms: StaticTerms) -> LpProblem {
    let num_clouds = input.num_clouds();
    let num_users = input.num_users();
    let w = input.weights;
    let mut lp = LpProblem::new();
    // x variables with static costs.
    for i in 0..num_clouds {
        for j in 0..num_users {
            let mut cost = 0.0;
            if terms.operation {
                cost += w.operation * input.operation_prices[i];
            }
            if terms.quality {
                let l = input.attachment[j];
                cost += w.quality * input.system.delay(l, i) / input.workloads[j];
            }
            lp.add_var(cost);
        }
    }
    // Demand rows.
    for j in 0..num_users {
        let terms: Vec<(usize, f64)> = (0..num_clouds).map(|i| (i * num_users + j, 1.0)).collect();
        lp.add_row(ConstraintSense::Ge, input.workloads[j], &terms);
    }
    // Capacity rows.
    for i in 0..num_clouds {
        let terms: Vec<(usize, f64)> = (0..num_users).map(|j| (i * num_users + j, 1.0)).collect();
        lp.add_row(ConstraintSense::Le, input.system.capacity(i), &terms);
    }
    lp
}

/// Appends the dynamic (reconfiguration + bidirectional migration) cost of
/// transitioning from `prev` to the LP built by [`base_lp`].
pub fn add_dynamic_terms(lp: &mut LpProblem, input: &SlotInput<'_>, prev: &Allocation) {
    let num_clouds = input.num_clouds();
    let num_users = input.num_users();
    let w = input.weights;
    // u_i ≥ Σ_j x_ij − Σ_j prev_ij, u_i ≥ 0 — reconfiguration.
    for i in 0..num_clouds {
        let u = lp.add_var(w.reconfig * input.reconfig_prices[i]);
        let mut terms: Vec<(usize, f64)> = vec![(u, 1.0)];
        terms.extend((0..num_users).map(|j| (i * num_users + j, -1.0)));
        lp.add_row(ConstraintSense::Ge, -prev.cloud_total(i), &terms);
    }
    // v^{in}_{ij} ≥ x_ij − prev_ij and v^{out}_{ij} ≥ prev_ij − x_ij.
    for i in 0..num_clouds {
        for j in 0..num_users {
            let k = i * num_users + j;
            let vin = lp.add_var(w.migration * input.migration_in[i]);
            lp.add_row(
                ConstraintSense::Ge,
                -prev.get(i, j),
                &[(vin, 1.0), (k, -1.0)],
            );
            let vout = lp.add_var(w.migration * input.migration_out[i]);
            lp.add_row(
                ConstraintSense::Ge,
                prev.get(i, j),
                &[(vout, 1.0), (k, 1.0)],
            );
        }
    }
}

/// Solves a per-slot LP and extracts the allocation from its first
/// `I·J` variables.
///
/// # Errors
///
/// Propagates LP solver failures.
pub fn solve_to_allocation(lp: &LpProblem, input: &SlotInput<'_>) -> Result<Allocation> {
    let sol = lp.solve()?;
    let n = input.num_clouds() * input.num_users();
    Ok(Allocation::from_flat(
        input.num_clouds(),
        input.num_users(),
        sol.x[..n].to_vec(),
    ))
}

/// [`solve_to_allocation`] under a [`RetryPolicy`]: interior-point attempts
/// escalate through relaxed options and may finish on the exact-simplex
/// rung. Returns the allocation (or the last error) together with the
/// [`SolveReport`] describing which rung produced it.
pub fn solve_to_allocation_resilient(
    lp: &LpProblem,
    input: &SlotInput<'_>,
    policy: &RetryPolicy,
) -> (Result<Allocation>, SolveReport) {
    solve_to_allocation_resilient_with(lp, input, &IpmOptions::default(), policy)
}

/// [`solve_to_allocation_resilient`] with explicit base [`IpmOptions`] —
/// the degradation ladder passes a remaining-slot-time
/// [`optim::budget::SolveBudget`] through here so even the LP rung respects
/// the slot deadline.
pub fn solve_to_allocation_resilient_with(
    lp: &LpProblem,
    input: &SlotInput<'_>,
    opts: &IpmOptions,
    policy: &RetryPolicy,
) -> (Result<Allocation>, SolveReport) {
    let (result, report) = solve_lp_with_retry(lp, opts, policy);
    let n = input.num_clouds() * input.num_users();
    let allocation = result.map_err(crate::Error::from).map(|sol| {
        Allocation::from_flat(input.num_clouds(), input.num_users(), sol.x[..n].to_vec())
    });
    (allocation, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    #[test]
    fn base_lp_has_expected_shape() {
        let inst = Instance::fig1_example(2.1, true);
        let input = crate::algorithms::SlotInput::from_instance(&inst, 0);
        let lp = base_lp(
            &input,
            StaticTerms {
                operation: true,
                quality: true,
            },
        );
        assert_eq!(lp.num_vars(), 2); // 2 clouds × 1 user
        assert_eq!(lp.num_rows(), 3); // 1 demand + 2 capacity
    }

    #[test]
    fn dynamic_terms_add_u_and_v_vars() {
        let inst = Instance::fig1_example(2.1, true);
        let input = crate::algorithms::SlotInput::from_instance(&inst, 0);
        let mut lp = base_lp(
            &input,
            StaticTerms {
                operation: true,
                quality: true,
            },
        );
        let prev = Allocation::zeros(2, 1);
        add_dynamic_terms(&mut lp, &input, &prev);
        // +2 u vars, +2 vin, +2 vout.
        assert_eq!(lp.num_vars(), 2 + 2 + 4);
    }

    #[test]
    fn solution_satisfies_demand_and_capacity() {
        let inst = Instance::fig1_example(2.1, true);
        let input = crate::algorithms::SlotInput::from_instance(&inst, 0);
        let lp = base_lp(
            &input,
            StaticTerms {
                operation: true,
                quality: true,
            },
        );
        let x = solve_to_allocation(&lp, &input).unwrap();
        assert!(x.demand_shortfall(inst.workloads()) < 1e-6);
        assert!(x.capacity_excess(inst.system().capacities()) < 1e-6);
        // Serving the user from its own cloud (0) is strictly cheaper here.
        assert!(x.get(0, 0) > 0.99);
    }
}
