//! The offline full-horizon LP for ℙ₀.
//!
//! With complete knowledge of prices and mobility, ℙ₀ is a linear program
//! after linearizing the `(·)⁺` terms. We use a telescoped reformulation
//! that halves the number of migration variables: with
//! `y_{ijt} ≥ (x_{ijt} − x_{ij,t−1})` and `y ≥ 0` (so `y = z^{in}` at the
//! optimum), the bidirectional migration cost satisfies
//!
//! ```text
//! Σ_t b^{out}(x_{t−1}−x_t)⁺ + b^{in}(x_t−x_{t−1})⁺
//!   = Σ_t (b^{out}+b^{in})·y_t − b^{out}·Σ_t (x_t − x_{t−1})
//!   = Σ_t b_i·y_t − b^{out}·x_{i,j,T}                      (x_{i,j,0} = 0)
//! ```
//!
//! so only the final slot's `x` carries the `−b^{out}` correction.

use crate::allocation::Allocation;
use crate::instance::Instance;
use crate::Result;
use optim::lp::{ConstraintSense, IpmOptions, LpProblem};

/// Index helpers for the horizon LP's variable blocks.
struct Layout {
    num_clouds: usize,
    num_users: usize,
    num_slots: usize,
}

impl Layout {
    fn x(&self, i: usize, j: usize, t: usize) -> usize {
        (t * self.num_clouds + i) * self.num_users + j
    }
    fn y(&self, i: usize, j: usize, t: usize) -> usize {
        self.num_slots * self.num_clouds * self.num_users + self.x(i, j, t)
    }
    fn u(&self, i: usize, t: usize) -> usize {
        2 * self.num_slots * self.num_clouds * self.num_users + t * self.num_clouds + i
    }
    fn num_vars(&self) -> usize {
        2 * self.num_slots * self.num_clouds * self.num_users + self.num_slots * self.num_clouds
    }
}

/// Builds the full-horizon ℙ₀ LP for an instance.
pub fn build(inst: &Instance) -> LpProblem {
    let lay = Layout {
        num_clouds: inst.num_clouds(),
        num_users: inst.num_users(),
        num_slots: inst.num_slots(),
    };
    let w = inst.weights();
    let mut lp = LpProblem::new();
    lp.add_vars(lay.num_vars(), 0.0);

    // Objective.
    for t in 0..lay.num_slots {
        for i in 0..lay.num_clouds {
            let b_out = w.migration * inst.migration_out(i);
            let b_total = w.migration * inst.migration_total(i);
            for j in 0..lay.num_users {
                let l = inst.attached(j, t);
                let mut cx = w.operation * inst.operation_price(i, t)
                    + w.quality * inst.system().delay(l, i) / inst.workload(j);
                if t + 1 == lay.num_slots {
                    cx -= b_out; // telescoped migration correction
                }
                lp.set_cost(lay.x(i, j, t), cx);
                lp.set_cost(lay.y(i, j, t), b_total);
            }
            lp.set_cost(lay.u(i, t), w.reconfig * inst.reconfig_price(i));
        }
    }

    // Demand and capacity rows, per slot.
    for t in 0..lay.num_slots {
        for j in 0..lay.num_users {
            let terms: Vec<(usize, f64)> =
                (0..lay.num_clouds).map(|i| (lay.x(i, j, t), 1.0)).collect();
            lp.add_row(ConstraintSense::Ge, inst.workload(j), &terms);
        }
        for i in 0..lay.num_clouds {
            let terms: Vec<(usize, f64)> =
                (0..lay.num_users).map(|j| (lay.x(i, j, t), 1.0)).collect();
            lp.add_row(ConstraintSense::Le, inst.system().capacity(i), &terms);
        }
    }

    // Linking rows: u_{i,t} ≥ Σ_j x_{ijt} − Σ_j x_{ij,t−1};
    //               y_{ijt} ≥ x_{ijt} − x_{ij,t−1}   (x at t = −1 is 0).
    for t in 0..lay.num_slots {
        for i in 0..lay.num_clouds {
            let mut terms: Vec<(usize, f64)> = vec![(lay.u(i, t), 1.0)];
            for j in 0..lay.num_users {
                terms.push((lay.x(i, j, t), -1.0));
                if t > 0 {
                    terms.push((lay.x(i, j, t - 1), 1.0));
                }
            }
            lp.add_row(ConstraintSense::Ge, 0.0, &terms);
            for j in 0..lay.num_users {
                let mut terms = vec![(lay.y(i, j, t), 1.0), (lay.x(i, j, t), -1.0)];
                if t > 0 {
                    terms.push((lay.x(i, j, t - 1), 1.0));
                }
                lp.add_row(ConstraintSense::Ge, 0.0, &terms);
            }
        }
    }
    lp
}

/// Solves the horizon LP and extracts one [`Allocation`] per slot.
///
/// # Errors
///
/// Propagates LP solver failures.
pub fn solve(inst: &Instance, opts: &IpmOptions) -> Result<Vec<Allocation>> {
    let lp = build(inst);
    let sol = lp.solve_with(opts)?;
    let lay = Layout {
        num_clouds: inst.num_clouds(),
        num_users: inst.num_users(),
        num_slots: inst.num_slots(),
    };
    let mut out = Vec::with_capacity(lay.num_slots);
    for t in 0..lay.num_slots {
        let mut x = Allocation::zeros(lay.num_clouds, lay.num_users);
        for i in 0..lay.num_clouds {
            for j in 0..lay.num_users {
                x.set(i, j, sol.x[lay.x(i, j, t)].max(0.0));
            }
        }
        out.push(x);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::evaluate_trajectory;
    use crate::instance::Instance;

    #[test]
    fn horizon_lp_shape() {
        let inst = Instance::fig1_example(2.1, true);
        let lp = build(&inst);
        // vars: x (2·1·3=6) + y (6) + u (2·3=6) = 18.
        assert_eq!(lp.num_vars(), 18);
        // rows: demand 3 + capacity 6 + u-rows 6 + y-rows 6 = 21.
        assert_eq!(lp.num_rows(), 21);
    }

    #[test]
    fn offline_on_fig1a_keeps_workload_at_a() {
        // Figure 1(a): the optimal solution keeps the workload at cloud A.
        let inst = Instance::fig1_example(2.1, true);
        let xs = solve(&inst, &IpmOptions::default()).unwrap();
        for t in 0..3 {
            assert!(xs[t].get(0, 0) > 0.99, "slot {t}: {:?}", xs[t]);
        }
    }

    #[test]
    fn offline_on_fig1b_serves_from_b_throughout() {
        // Figure 1(b): knowing the user heads to B and stays, the true
        // optimum allocates at B from the start (the paper's narrative
        // optimum migrates at t=1 and costs 0.1 more; see DESIGN.md).
        let inst = Instance::fig1_example(1.9, false);
        let xs = solve(&inst, &IpmOptions::default()).unwrap();
        for t in 0..3 {
            assert!(xs[t].get(1, 0) > 0.99, "slot {t}: {:?}", xs[t]);
        }
    }

    #[test]
    fn lp_objective_matches_cost_model() {
        // The LP objective (plus the constant access-delay cost) must agree
        // with the independent trajectory evaluator — this validates the
        // telescoped migration reformulation.
        let inst = Instance::fig1_example(2.1, true);
        let lp = build(&inst);
        let sol = lp.solve().unwrap();
        let xs = solve(&inst, &IpmOptions::default()).unwrap();
        let cost = evaluate_trajectory(&inst, &xs);
        let access_constant: f64 = (0..inst.num_slots())
            .map(|t| {
                (0..inst.num_users())
                    .map(|j| inst.weights().quality * inst.access_delay(j, t))
                    .sum::<f64>()
            })
            .sum();
        assert!(
            (sol.objective + access_constant - cost.total()).abs() < 1e-5,
            "lp {} + const {access_constant} vs evaluated {}",
            sol.objective,
            cost.total()
        );
    }
}
