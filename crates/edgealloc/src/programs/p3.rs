//! The relaxed linear program ℙ₃ (§IV-B of the paper).
//!
//! ℙ₃ linearizes ℙ₁'s `(·)⁺` terms with auxiliary variables `u_{i,t}`
//! (aggregate reconfiguration) and `v_{i,j,t}` (one-directional migration),
//! and relaxes the per-slot capacity rows to the (10b)-style form
//! (13c): `Σ_{k≠i} Σ_j x_{k,j,t} ≥ (Σ_j λ_j − C_i)⁺`.
//!
//! Its optimal value sits between the dual objective `D` and the ℙ₁
//! objective of any feasible trajectory — the middle link of the
//! competitive-analysis chain `P₁ ≥ P₃ ≥ D ≥ P₂/r` — and this module
//! exists so that chain can be verified **numerically** (`tests/theory.rs`).

use crate::instance::Instance;
use crate::Result;
use optim::lp::{ConstraintSense, IpmOptions, LpProblem};

struct Layout {
    num_clouds: usize,
    num_users: usize,
    num_slots: usize,
}

impl Layout {
    fn x(&self, i: usize, j: usize, t: usize) -> usize {
        (t * self.num_clouds + i) * self.num_users + j
    }
    fn v(&self, i: usize, j: usize, t: usize) -> usize {
        self.num_slots * self.num_clouds * self.num_users + self.x(i, j, t)
    }
    fn u(&self, i: usize, t: usize) -> usize {
        2 * self.num_slots * self.num_clouds * self.num_users + t * self.num_clouds + i
    }
    fn num_vars(&self) -> usize {
        2 * self.num_slots * self.num_clouds * self.num_users + self.num_slots * self.num_clouds
    }
}

/// Builds ℙ₃ for an instance (weight-scaled prices, as everywhere).
pub fn build(inst: &Instance) -> LpProblem {
    let lay = Layout {
        num_clouds: inst.num_clouds(),
        num_users: inst.num_users(),
        num_slots: inst.num_slots(),
    };
    let w = inst.weights();
    let total_workload = inst.total_workload();
    let mut lp = LpProblem::new();
    lp.add_vars(lay.num_vars(), 0.0);

    for t in 0..lay.num_slots {
        for i in 0..lay.num_clouds {
            let b_tilde = w.migration * inst.migration_total(i);
            for j in 0..lay.num_users {
                let l = inst.attached(j, t);
                lp.set_cost(
                    lay.x(i, j, t),
                    w.operation * inst.operation_price(i, t)
                        + w.quality * inst.system().delay(l, i) / inst.workload(j),
                );
                lp.set_cost(lay.v(i, j, t), b_tilde);
            }
            lp.set_cost(lay.u(i, t), w.reconfig * inst.reconfig_price(i));
        }
    }

    for t in 0..lay.num_slots {
        // (6a) demand.
        for j in 0..lay.num_users {
            let terms: Vec<(usize, f64)> =
                (0..lay.num_clouds).map(|i| (lay.x(i, j, t), 1.0)).collect();
            lp.add_row(ConstraintSense::Ge, inst.workload(j), &terms);
        }
        // (13c): Σ_{k≠i} Σ_j x ≥ (Σλ − C_i)⁺.
        for i in 0..lay.num_clouds {
            let mut terms = Vec::with_capacity((lay.num_clouds - 1) * lay.num_users);
            for k in 0..lay.num_clouds {
                if k == i {
                    continue;
                }
                for j in 0..lay.num_users {
                    terms.push((lay.x(k, j, t), 1.0));
                }
            }
            let rhs = (total_workload - inst.system().capacity(i)).max(0.0);
            lp.add_row(ConstraintSense::Ge, rhs, &terms);
        }
        // (13a): u_{i,t} ≥ Σ_j x_{ijt} − Σ_j x_{ij,t−1}.
        for i in 0..lay.num_clouds {
            let mut terms: Vec<(usize, f64)> = vec![(lay.u(i, t), 1.0)];
            for j in 0..lay.num_users {
                terms.push((lay.x(i, j, t), -1.0));
                if t > 0 {
                    terms.push((lay.x(i, j, t - 1), 1.0));
                }
            }
            lp.add_row(ConstraintSense::Ge, 0.0, &terms);
            // (13b): v_{ijt} ≥ x_{ijt} − x_{ij,t−1}.
            for j in 0..lay.num_users {
                let mut terms = vec![(lay.v(i, j, t), 1.0), (lay.x(i, j, t), -1.0)];
                if t > 0 {
                    terms.push((lay.x(i, j, t - 1), 1.0));
                }
                lp.add_row(ConstraintSense::Ge, 0.0, &terms);
            }
        }
    }
    lp
}

/// Optimal value of ℙ₃ (excluding the constant access-delay cost, like the
/// ℙ₂/ℙ₁ objectives used in the analysis).
///
/// # Errors
///
/// Propagates LP solver failures.
pub fn optimal_value(inst: &Instance, opts: &IpmOptions) -> Result<f64> {
    let lp = build(inst);
    let sol = lp.solve_with(opts)?;
    Ok(sol.objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::p1_objective;

    #[test]
    fn p3_shape_matches_formulation() {
        let inst = Instance::fig1_example(2.1, true);
        let lp = build(&inst);
        // vars: x (6) + v (6) + u (6); rows per slot: 1 demand + 2 (13c)
        // + 2 u-rows + 2 v-rows = 7 → 21.
        assert_eq!(lp.num_vars(), 18);
        assert_eq!(lp.num_rows(), 21);
    }

    #[test]
    fn p3_lower_bounds_p1_of_any_trajectory() {
        // P₃ relaxes ℙ₁, so its optimum is ≤ the ℙ₁ objective of any
        // feasible trajectory (here: the regularized algorithm's).
        let inst = Instance::fig1_example(2.1, true);
        let p3 = optimal_value(&inst, &IpmOptions::default()).unwrap();
        let traj = crate::algorithms::run_online(
            &inst,
            &mut crate::algorithms::OnlineRegularized::with_defaults(),
        )
        .unwrap();
        let access_constant: f64 = (0..inst.num_slots())
            .map(|t| {
                (0..inst.num_users())
                    .map(|j| inst.weights().quality * inst.access_delay(j, t))
                    .sum::<f64>()
            })
            .sum();
        let p1 = p1_objective(&inst, &traj.allocations) - access_constant;
        assert!(p3 <= p1 + 1e-6, "P3 {p3} > P1 {p1}");
    }
}
