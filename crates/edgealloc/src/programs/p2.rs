//! The regularized per-slot convex program ℙ₂ (§III-B of the paper).
//!
//! At slot `t`, taking the previous decision `x*_{t−1}` as input:
//!
//! ```text
//! min  Σ_ij ã_{i,t} x_ij + Σ_j ( d(j,l_jt) + Σ_i (w_q·d(l_jt,i)/λ_j) x_ij )
//!    + Σ_i (c̃_i/η_i) ( (x_i+ε₁) ln((x_i+ε₁)/(x*_{i,t−1}+ε₁)) − x_i )
//!    + Σ_ij (b̃_i/τ_ij) ( (x_ij+ε₂) ln((x_ij+ε₂)/(x*_{ij,t−1}+ε₂)) − x_ij )
//! s.t. Σ_i x_ij ≥ λ_j          ∀j                  (10a)
//!      Σ_{k≠i} Σ_j x_kj ≥ Σ_j λ_j − C_i  ∀i        (10b)
//!      x ≥ 0                                        (10c)
//! ```
//!
//! with `η_i = ln(1 + C_i/ε₁)`, `τ_ij = ln(1 + λ_j/ε₂)` and
//! weight-scaled prices `ã, c̃, b̃` (see [`super::ScaledPrices`]).
//! The objective is convex separable plus per-cloud aggregate terms, solved
//! by [`optim::convex::BarrierSolver`].

use crate::algorithms::SlotInput;
use crate::allocation::Allocation;
use crate::{Error, Result};
use optim::convex::{
    BarrierOptions, BarrierSolution, BarrierSolver, BarrierWorkspace, ScalarTerm, SchurKernel,
    SeparableObjective,
};
use optim::sparse::Triplets;

/// How ℙ₂ encodes the capacity limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapacityMode {
    /// The paper's constraint (10b): `Σ_{k≠i} Σ_j x_kj ≥ Σλ − C_i`. Used by
    /// the competitive analysis, but does **not** imply `x_i ≤ C_i` when
    /// the optimum over-allocates (see DESIGN.md erratum 1).
    #[default]
    Paper10b,
    /// Explicit per-cloud rows `Σ_j x_ij ≤ C_i` (which imply (10b) whenever
    /// demand is met). Guarantees capacity feasibility outright — what a
    /// practitioner would deploy; the ρ duals then belong to the capacity
    /// rows instead of (10b).
    Explicit,
}

/// Regularization parameters `ε₁` (aggregate/reconfiguration term) and
/// `ε₂` (per-user/migration term).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Epsilons {
    /// `ε₁ > 0`.
    pub eps1: f64,
    /// `ε₂ > 0`.
    pub eps2: f64,
}

impl Default for Epsilons {
    fn default() -> Self {
        // Figure 4 shows a shallow optimum of the empirical ratio for
        // ε around 10⁻¹…10⁰; 0.5 is a robust default.
        Epsilons {
            eps1: 0.5,
            eps2: 0.5,
        }
    }
}

/// The solved per-slot program: the allocation plus the KKT multipliers the
/// competitive analysis needs (`θ'_{j,t}` for the demand rows (10a) and
/// `ρ'_{i,t}` for the rows (10b)).
#[derive(Debug, Clone)]
pub struct P2Solution {
    /// The slot's allocation `x*_{·,·,t}`.
    pub allocation: Allocation,
    /// Demand-row duals `θ'_{j,t} ≥ 0`.
    pub theta: Vec<f64>,
    /// (10b)-row duals `ρ'_{i,t} ≥ 0`.
    pub rho: Vec<f64>,
    /// Optimal objective value of ℙ₂ (excluding the constant access-delay
    /// term `Σ_j d(j, l_{j,t})`).
    pub objective: f64,
}

/// Builds the ℙ₂ [`BarrierSolver`] for one slot. Variables are indexed
/// `k = i·J + j`, matching [`Allocation::as_flat`].
///
/// # Errors
///
/// Returns [`Error::Invalid`] for non-positive epsilons.
pub fn build(input: &SlotInput<'_>, prev: &Allocation, eps: Epsilons) -> Result<BarrierSolver> {
    build_with_mode(input, prev, eps, CapacityMode::Paper10b)
}

/// [`build`] with an explicit [`CapacityMode`].
///
/// # Errors
///
/// Returns [`Error::Invalid`] for non-positive epsilons.
pub fn build_with_mode(
    input: &SlotInput<'_>,
    prev: &Allocation,
    eps: Epsilons,
    mode: CapacityMode,
) -> Result<BarrierSolver> {
    build_with_kernel(input, prev, eps, mode, SchurKernel::Auto)
}

/// [`build_with_mode`] with an explicit Newton-step Schur kernel. The
/// default [`SchurKernel::Auto`] cutover keeps the dense Woodbury path for
/// small user counts and switches to the user-blocked nested-Schur
/// elimination (per-slot cost linear instead of cubic in `J`) once the
/// demand-row block is large enough to pay off; forcing a kernel is mainly
/// for benchmarking and equivalence tests.
///
/// # Errors
///
/// Returns [`Error::Invalid`] for non-positive epsilons.
pub fn build_with_kernel(
    input: &SlotInput<'_>,
    prev: &Allocation,
    eps: Epsilons,
    mode: CapacityMode,
    kernel: SchurKernel,
) -> Result<BarrierSolver> {
    if !(eps.eps1 > 0.0) || !(eps.eps2 > 0.0) {
        return Err(Error::Invalid("ε₁ and ε₂ must be positive".into()));
    }
    let num_clouds = input.num_clouds();
    let num_users = input.num_users();
    let n = num_clouds * num_users;
    let total_workload: f64 = input.workloads.iter().sum();

    let mut f = SeparableObjective::new(n);
    for i in 0..num_clouds {
        // Per-cloud aggregate regularizer (reconfiguration smoothing). A
        // degenerate η — zero for a zero-capacity (down) cloud, non-finite
        // for corrupted capacities — would poison the objective, so such
        // clouds simply lose their smoothing term.
        if let Some(weight) = reconfig_weight(input, i, eps.eps1) {
            let members: Vec<usize> = (0..num_users).map(|j| i * num_users + j).collect();
            f.add_group(
                members,
                ScalarTerm::RelativeEntropy {
                    weight,
                    eps: eps.eps1,
                    xref: prev.cloud_total(i),
                },
            );
        }
        for j in 0..num_users {
            let k = i * num_users + j;
            let lin = linear_coef(input, i, j)?;
            f.add_term(k, ScalarTerm::Linear { coef: lin });
            // Per-(i,j) regularizer (migration smoothing); τ degenerates
            // like η does when λ_j is corrupted.
            if let Some(weight) = migration_weight(input, i, j, eps.eps2) {
                f.add_term(
                    k,
                    ScalarTerm::RelativeEntropy {
                        weight,
                        eps: eps.eps2,
                        xref: prev.get(i, j),
                    },
                );
            }
        }
    }

    // Constraints: J demand rows then I rows of (10b).
    let mut a = Triplets::with_capacity(
        num_users + num_clouds,
        n,
        n + num_clouds * (num_clouds - 1) * num_users,
    );
    let mut b = Vec::with_capacity(num_users + num_clouds);
    for j in 0..num_users {
        for i in 0..num_clouds {
            a.push(j, i * num_users + j, 1.0);
        }
        b.push(input.workloads[j]);
    }
    for i in 0..num_clouds {
        match mode {
            CapacityMode::Paper10b => {
                for k in 0..num_clouds {
                    if k == i {
                        continue;
                    }
                    for j in 0..num_users {
                        a.push(num_users + i, k * num_users + j, 1.0);
                    }
                }
            }
            CapacityMode::Explicit => {
                // −Σ_j x_ij ≥ −C_i in the solver's `A x ≥ b` form.
                for j in 0..num_users {
                    a.push(num_users + i, i * num_users + j, -1.0);
                }
            }
        }
        b.push(capacity_rhs(input, i, mode, total_workload));
    }
    BarrierSolver::new_with_kernel(f, a.to_csc(), b, kernel).map_err(Error::from)
}

/// Weight `c̃_i/η_i` of cloud `i`'s aggregate (reconfiguration) regularizer,
/// or `None` when the term is absent (zero reconfiguration price, or a
/// degenerate η from a zero/corrupted capacity).
fn reconfig_weight(input: &SlotInput<'_>, i: usize, eps1: f64) -> Option<f64> {
    let c_tilde = input.weights.reconfig * input.reconfig_prices[i];
    let eta = (1.0 + input.system.capacity(i) / eps1).ln();
    (c_tilde > 0.0 && eta.is_finite() && eta > 0.0).then(|| c_tilde / eta)
}

/// Weight `b̃_i/τ_ij` of the per-(i,j) migration regularizer, or `None`
/// when the term is absent (zero migration price, or a degenerate τ from a
/// corrupted workload).
fn migration_weight(input: &SlotInput<'_>, i: usize, j: usize, eps2: f64) -> Option<f64> {
    let b_tilde = input.weights.migration * input.migration_total(i);
    let tau = (1.0 + input.workloads[j] / eps2).ln();
    (b_tilde > 0.0 && tau.is_finite() && tau > 0.0).then(|| b_tilde / tau)
}

/// Linear (operation + service-quality) coefficient of variable `(i, j)`.
///
/// # Errors
///
/// Returns [`Error::Invalid`] when corrupted prices or delays make the
/// coefficient non-finite.
fn linear_coef(input: &SlotInput<'_>, i: usize, j: usize) -> Result<f64> {
    let w = input.weights;
    let lin = w.operation * input.operation_prices[i]
        + w.quality * input.system.delay(input.attachment[j], i) / input.workloads[j];
    if !lin.is_finite() {
        return Err(Error::Invalid(format!(
            "non-finite objective coefficient for cloud {i}, user {j} \
             (corrupted prices or delays; sanitize the input first)"
        )));
    }
    Ok(lin)
}

/// Right-hand side of cloud `i`'s capacity row in the chosen mode.
fn capacity_rhs(input: &SlotInput<'_>, i: usize, mode: CapacityMode, total_workload: f64) -> f64 {
    match mode {
        CapacityMode::Paper10b => total_workload - input.system.capacity(i),
        CapacityMode::Explicit => -input.system.capacity(i),
    }
}

/// Cloud `i`'s aggregate (reconfiguration) regularizer as a [`ScalarTerm`]
/// on the cloud total `x_{i,t} = Σ_j x_ij`, referenced at the previous
/// slot's total — exactly the group term [`build_with_kernel`] installs, or
/// `None` when that term is absent. The sharded coordinator evaluates this
/// term's value/derivative (`φ_i`, `φ_i'`) to linearize the one
/// non-separable piece of ℙ₂ across user shards.
pub fn reconfig_term(
    input: &SlotInput<'_>,
    prev: &Allocation,
    i: usize,
    eps1: f64,
) -> Option<ScalarTerm> {
    reconfig_weight(input, i, eps1).map(|weight| ScalarTerm::RelativeEntropy {
        weight,
        eps: eps1,
        xref: prev.cloud_total(i),
    })
}

/// Evaluates the full ℙ₂ objective (linear operation + quality costs,
/// per-cloud aggregate reconfiguration entropy, per-(i,j) migration
/// entropy; excluding the constant access-delay term, as everywhere in this
/// module) at an **arbitrary** allocation `x` — not necessarily a solver
/// iterate. Terms dropped by the builders (degenerate η/τ, zero prices) are
/// dropped here too, so the value agrees exactly with
/// [`BarrierSolution::objective`] at the same point.
///
/// The sharded slot solver uses this to compare coordination rounds on a
/// common footing (merged shard solutions and their capacity projections
/// are not iterates of any single solver).
///
/// # Errors
///
/// Returns [`Error::Invalid`] for non-positive epsilons, a dimension
/// mismatch between `x` and the slot, or corrupted prices/delays (as
/// [`build`]).
pub fn slot_objective(
    input: &SlotInput<'_>,
    prev: &Allocation,
    x: &Allocation,
    eps: Epsilons,
) -> Result<f64> {
    if !(eps.eps1 > 0.0) || !(eps.eps2 > 0.0) {
        return Err(Error::Invalid("ε₁ and ε₂ must be positive".into()));
    }
    let num_clouds = input.num_clouds();
    let num_users = input.num_users();
    if x.num_clouds() != num_clouds || x.num_users() != num_users {
        return Err(Error::Invalid(format!(
            "allocation is {}×{} but the slot is {}×{}",
            x.num_clouds(),
            x.num_users(),
            num_clouds,
            num_users
        )));
    }
    let mut total = 0.0;
    for i in 0..num_clouds {
        if let Some(term) = reconfig_term(input, prev, i, eps.eps1) {
            total += term.value(x.cloud_total(i));
        }
        for j in 0..num_users {
            total += linear_coef(input, i, j)? * x.get(i, j);
            if let Some(weight) = migration_weight(input, i, j, eps.eps2) {
                let term = ScalarTerm::RelativeEntropy {
                    weight,
                    eps: eps.eps2,
                    xref: prev.get(i, j),
                };
                total += term.value(x.get(i, j));
            }
        }
    }
    Ok(total)
}

/// Which terms of ℙ₂ *exist* for a given slot: the per-cloud aggregate
/// groups and per-(i,j) entropy terms are dropped when their weights
/// degenerate, so term existence — unlike term values — can in principle
/// change between slots (e.g. a fault zeroes a capacity mid-horizon).
/// [`P2Workspace::refresh`] compares signatures to decide between the cheap
/// in-place value refresh and a full rebuild.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StructureSig {
    num_clouds: usize,
    num_users: usize,
    groups: Vec<bool>,
    entropy: Vec<bool>,
}

impl StructureSig {
    fn of(input: &SlotInput<'_>, eps: Epsilons) -> Self {
        let num_clouds = input.num_clouds();
        let num_users = input.num_users();
        let mut entropy = Vec::with_capacity(num_clouds * num_users);
        for i in 0..num_clouds {
            for j in 0..num_users {
                entropy.push(migration_weight(input, i, j, eps.eps2).is_some());
            }
        }
        StructureSig {
            num_clouds,
            num_users,
            groups: (0..num_clouds)
                .map(|i| reconfig_weight(input, i, eps.eps1).is_some())
                .collect(),
            entropy,
        }
    }
}

/// A persistent ℙ₂ solve context for one horizon: the constraint matrix,
/// the objective's term/group structure, and the barrier solver's Schur
/// coupling are built **once**; each slot only refreshes the term *values*
/// (operation prices, delays, entropy references) and the right-hand side,
/// then solves out of a retained [`BarrierWorkspace`] — the per-slot path
/// allocates nothing beyond the returned solution.
///
/// The cross-slot reuse is sound because ℙ₂'s structure depends only on
/// per-instance data (capacities, workloads, reconfiguration/migration
/// prices, weights): per-slot inputs (operation prices, attachments, the
/// previous allocation) enter as coefficients. [`P2Workspace::refresh`]
/// still guards with a [`StructureSig`] comparison and transparently
/// rebuilds when term existence *does* change (fault injection can zero a
/// capacity or a price mid-horizon).
#[derive(Debug, Clone)]
pub struct P2Workspace {
    solver: BarrierSolver,
    barrier: BarrierWorkspace,
    eps: Epsilons,
    mode: CapacityMode,
    kernel: SchurKernel,
    sig: StructureSig,
}

impl P2Workspace {
    /// Builds the workspace for the first slot of a horizon.
    ///
    /// # Errors
    ///
    /// As [`build_with_mode`].
    pub fn new(
        input: &SlotInput<'_>,
        prev: &Allocation,
        eps: Epsilons,
        mode: CapacityMode,
    ) -> Result<Self> {
        Self::new_with_kernel(input, prev, eps, mode, SchurKernel::Auto)
    }

    /// [`P2Workspace::new`] with an explicit Schur kernel (see
    /// [`build_with_kernel`]); structure-signature rebuilds keep the choice.
    ///
    /// # Errors
    ///
    /// As [`build_with_mode`].
    pub fn new_with_kernel(
        input: &SlotInput<'_>,
        prev: &Allocation,
        eps: Epsilons,
        mode: CapacityMode,
        kernel: SchurKernel,
    ) -> Result<Self> {
        let solver = build_with_kernel(input, prev, eps, mode, kernel)?;
        let barrier = BarrierWorkspace::for_solver(&solver);
        Ok(P2Workspace {
            barrier,
            solver,
            eps,
            mode,
            kernel,
            sig: StructureSig::of(input, eps),
        })
    }

    /// Worker-thread target for the blocked kernel's per-user elimination
    /// (see [`BarrierSolver::set_schur_threads`]).
    pub fn set_schur_threads(&mut self, threads: usize) {
        self.solver.set_schur_threads(threads);
    }

    /// Re-targets the workspace at a new slot: overwrites every term value
    /// and right-hand-side entry in place (or rebuilds from scratch when
    /// the structure signature changed). Produces a solver state identical
    /// to [`build_with_mode`] on the same inputs, so solves after a refresh
    /// are bit-for-bit equal to fresh-build solves.
    ///
    /// # Errors
    ///
    /// As [`build_with_mode`]; on error the workspace holds partially
    /// refreshed values, which is harmless — the slot is abandoned to a
    /// fallback rung and the next refresh overwrites every value again.
    pub fn refresh(&mut self, input: &SlotInput<'_>, prev: &Allocation) -> Result<()> {
        let sig = StructureSig::of(input, self.eps);
        if sig != self.sig {
            let threads = 1.max(self.solver.schur_threads());
            self.solver = build_with_kernel(input, prev, self.eps, self.mode, self.kernel)?;
            self.solver.set_schur_threads(threads);
            self.sig = sig;
            return Ok(());
        }
        let num_clouds = input.num_clouds();
        let num_users = input.num_users();
        let f = self.solver.objective_mut();
        let mut g = 0usize;
        for i in 0..num_clouds {
            if let Some(weight) = reconfig_weight(input, i, self.eps.eps1) {
                f.set_group_term(
                    g,
                    ScalarTerm::RelativeEntropy {
                        weight,
                        eps: self.eps.eps1,
                        xref: prev.cloud_total(i),
                    },
                );
                g += 1;
            }
            for j in 0..num_users {
                let k = i * num_users + j;
                f.set_term(
                    k,
                    0,
                    ScalarTerm::Linear {
                        coef: linear_coef(input, i, j)?,
                    },
                );
                if let Some(weight) = migration_weight(input, i, j, self.eps.eps2) {
                    f.set_term(
                        k,
                        1,
                        ScalarTerm::RelativeEntropy {
                            weight,
                            eps: self.eps.eps2,
                            xref: prev.get(i, j),
                        },
                    );
                }
            }
        }
        let total_workload: f64 = input.workloads.iter().sum();
        let b = self.solver.rhs_mut();
        b[..num_users].copy_from_slice(&input.workloads[..num_users]);
        for i in 0..num_clouds {
            b[num_users + i] = capacity_rhs(input, i, self.mode, total_workload);
        }
        Ok(())
    }

    /// Solves the current slot's program out of the retained buffers.
    ///
    /// # Errors
    ///
    /// As [`BarrierSolver::solve`].
    pub fn solve(
        &mut self,
        start: Option<&[f64]>,
        opts: &BarrierOptions,
    ) -> Result<BarrierSolution> {
        self.solve_raw(start, opts).map_err(Error::from)
    }

    /// [`P2Workspace::solve`] surfacing the raw [`optim::Error`], which the
    /// degradation ladder inspects (retryability, bad starting points).
    pub(crate) fn solve_raw(
        &mut self,
        start: Option<&[f64]>,
        opts: &BarrierOptions,
    ) -> optim::Result<BarrierSolution> {
        self.solver
            .solve_with_workspace(start, opts, &mut self.barrier)
    }

    /// The underlying solver (dimensions, objective evaluation).
    pub fn solver(&self) -> &BarrierSolver {
        &self.solver
    }
}

/// A strictly feasible starting point: every user's demand spread across
/// clouds proportionally to capacity, scaled by 1.001. Returns `None` when
/// total capacity does not strictly exceed total workload (the barrier
/// solver then falls back to its phase-I LP).
pub fn proportional_start(input: &SlotInput<'_>) -> Option<Vec<f64>> {
    let num_clouds = input.num_clouds();
    let num_users = input.num_users();
    let total_cap = input.system.total_capacity();
    let total_workload: f64 = input.workloads.iter().sum();
    if total_cap <= total_workload * 1.0015 {
        return None;
    }
    let mut x = vec![0.0; num_clouds * num_users];
    for i in 0..num_clouds {
        let share = input.system.capacity(i) / total_cap;
        for j in 0..num_users {
            x[i * num_users + j] = 1.001 * input.workloads[j] * share;
        }
    }
    Some(x)
}

/// Builds and optimally solves ℙ₂ for one slot.
///
/// `start` overrides the initial point (used for warm-starting from the
/// previous slot's solution); when `None` a capacity-proportional interior
/// point (or the solver's phase-I) is used.
///
/// # Errors
///
/// Propagates solver failures.
pub fn solve(
    input: &SlotInput<'_>,
    prev: &Allocation,
    eps: Epsilons,
    start: Option<&[f64]>,
    opts: &BarrierOptions,
) -> Result<P2Solution> {
    solve_with_mode(input, prev, eps, start, opts, CapacityMode::Paper10b)
}

/// [`solve`] with an explicit [`CapacityMode`].
///
/// # Errors
///
/// Propagates solver failures.
pub fn solve_with_mode(
    input: &SlotInput<'_>,
    prev: &Allocation,
    eps: Epsilons,
    start: Option<&[f64]>,
    opts: &BarrierOptions,
    mode: CapacityMode,
) -> Result<P2Solution> {
    let solver = build_with_mode(input, prev, eps, mode)?;
    let proportional = proportional_start(input);
    let chosen: Option<&[f64]> = start.or(proportional.as_deref());
    let sol = match solver.solve(chosen, opts) {
        Ok(s) => s,
        // A supplied start can be (numerically) on the boundary; retry with
        // phase-I rather than failing the whole horizon.
        Err(optim::Error::BadStartingPoint(_)) => solver.solve(None, opts)?,
        Err(e) => return Err(e.into()),
    };
    Ok(solution_from_barrier(input, sol))
}

/// Unpacks a raw barrier solution of a ℙ₂ program into a [`P2Solution`]
/// (allocation + the duals the analysis needs). Shared by [`solve`] and the
/// degradation ladder in [`crate::algorithms::OnlineRegularized`], which
/// drives the barrier solver itself to control retries.
pub fn solution_from_barrier(
    input: &SlotInput<'_>,
    sol: optim::convex::BarrierSolution,
) -> P2Solution {
    let num_users = input.num_users();
    let allocation = Allocation::from_flat(input.num_clouds(), num_users, sol.x);
    P2Solution {
        theta: sol.row_duals[..num_users].to_vec(),
        rho: sol.row_duals[num_users..].to_vec(),
        objective: sol.objective,
        allocation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::SlotInput;
    use crate::instance::Instance;

    fn fig1_slot(t: usize) -> (Instance, usize) {
        (Instance::fig1_example(2.1, true), t)
    }

    #[test]
    fn p2_solution_is_feasible_for_p1() {
        let (inst, t) = fig1_slot(0);
        let input = SlotInput::from_instance(&inst, t);
        let prev = Allocation::zeros(2, 1);
        let sol = solve(
            &input,
            &prev,
            Epsilons::default(),
            None,
            &BarrierOptions::default(),
        )
        .unwrap();
        // Theorem 1: demand met and capacity respected.
        assert!(sol.allocation.demand_shortfall(inst.workloads()) < 1e-5);
        assert!(sol.allocation.capacity_excess(inst.system().capacities()) < 1e-5);
    }

    #[test]
    fn p2_monotone_in_previous_solution() {
        // Theorem 1's proof: x*_t ≥ would-decrease only; with prev already
        // serving from cloud 0, the solution should not exceed capacity and
        // the aggregate must stay within [0, C].
        let (inst, _) = fig1_slot(1);
        let input = SlotInput::from_instance(&inst, 1);
        let mut prev = Allocation::zeros(2, 1);
        prev.set(0, 0, 1.0);
        let sol = solve(
            &input,
            &prev,
            Epsilons::default(),
            None,
            &BarrierOptions::default(),
        )
        .unwrap();
        for i in 0..2 {
            assert!(sol.allocation.cloud_total(i) <= inst.system().capacity(i) + 1e-6);
        }
    }

    #[test]
    fn duals_are_nonnegative() {
        let (inst, _) = fig1_slot(0);
        let input = SlotInput::from_instance(&inst, 0);
        let prev = Allocation::zeros(2, 1);
        let sol = solve(
            &input,
            &prev,
            Epsilons::default(),
            None,
            &BarrierOptions::default(),
        )
        .unwrap();
        assert!(sol.theta.iter().all(|&v| v >= 0.0));
        assert!(sol.rho.iter().all(|&v| v >= 0.0));
        assert_eq!(sol.theta.len(), 1);
        assert_eq!(sol.rho.len(), 2);
    }

    #[test]
    fn explicit_capacity_mode_respects_caps_exactly() {
        let (inst, _) = fig1_slot(0);
        let input = SlotInput::from_instance(&inst, 0);
        let prev = Allocation::zeros(2, 1);
        let sol = solve_with_mode(
            &input,
            &prev,
            Epsilons::default(),
            None,
            &BarrierOptions::default(),
            CapacityMode::Explicit,
        )
        .unwrap();
        assert!(sol.allocation.demand_shortfall(inst.workloads()) < 1e-5);
        assert!(sol.allocation.capacity_excess(inst.system().capacities()) < 1e-7);
    }

    #[test]
    fn rejects_nonpositive_epsilons() {
        let (inst, _) = fig1_slot(0);
        let input = SlotInput::from_instance(&inst, 0);
        let prev = Allocation::zeros(2, 1);
        assert!(build(
            &input,
            &prev,
            Epsilons {
                eps1: 0.0,
                eps2: 1.0
            }
        )
        .is_err());
    }

    #[test]
    fn proportional_start_is_strictly_feasible() {
        let (inst, _) = fig1_slot(0);
        let input = SlotInput::from_instance(&inst, 0);
        let start = proportional_start(&input).expect("capacity exceeds workload");
        let prev = Allocation::zeros(2, 1);
        let solver = build(&input, &prev, Epsilons::default()).unwrap();
        // Solving from this start must not raise BadStartingPoint.
        let sol = solver.solve(Some(&start), &BarrierOptions::default());
        assert!(sol.is_ok(), "{sol:?}");
    }

    #[test]
    fn slot_objective_agrees_with_solver_objective() {
        let inst = Instance::fig1_example(2.1, true);
        let input = SlotInput::from_instance(&inst, 1);
        let mut prev = Allocation::zeros(2, 1);
        prev.set(0, 0, 1.0);
        let sol = solve(
            &input,
            &prev,
            Epsilons::default(),
            None,
            &BarrierOptions::default(),
        )
        .unwrap();
        let eval = slot_objective(&input, &prev, &sol.allocation, Epsilons::default()).unwrap();
        assert!(
            (eval - sol.objective).abs() <= 1e-9 * (1.0 + sol.objective.abs()),
            "evaluator {eval} vs solver {}",
            sol.objective
        );
        // And it rejects a mis-shaped allocation.
        assert!(
            slot_objective(&input, &prev, &Allocation::zeros(3, 1), Epsilons::default()).is_err()
        );
    }

    #[test]
    fn reconfig_term_matches_installed_group() {
        let inst = Instance::fig1_example(2.1, true);
        let input = SlotInput::from_instance(&inst, 0);
        let mut prev = Allocation::zeros(2, 1);
        prev.set(1, 0, 0.7);
        let term = reconfig_term(&input, &prev, 1, 0.5).expect("live cloud has a group term");
        match term {
            ScalarTerm::RelativeEntropy { weight, eps, xref } => {
                assert!(weight > 0.0);
                assert_eq!(eps, 0.5);
                assert!((xref - 0.7).abs() < 1e-12);
            }
            other => panic!("unexpected term {other:?}"),
        }
    }

    #[test]
    fn entropy_pull_keeps_allocation_near_previous() {
        // With huge migration prices, the solution should stay very close
        // to the previous allocation (which is feasible here).
        let inst = Instance::fig1_example(2.1, true);
        let mut inst2 = inst.clone();
        // Scale dynamic weights hard.
        inst2 = inst2.with_weights(crate::cost::CostWeights {
            reconfig: 100.0,
            migration: 100.0,
            ..Default::default()
        });
        let input = SlotInput::from_instance(&inst2, 1);
        let mut prev = Allocation::zeros(2, 1);
        prev.set(0, 0, 1.0);
        let sol = solve(
            &input,
            &prev,
            Epsilons::default(),
            None,
            &BarrierOptions::default(),
        )
        .unwrap();
        assert!(
            sol.allocation.get(0, 0) > 0.9,
            "allocation should stick to cloud 0, got {:?}",
            sol.allocation
        );
    }
}
