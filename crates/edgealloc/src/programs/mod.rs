//! Mathematical programs behind the algorithms.
//!
//! * [`p2`] — the regularized convex per-slot program ℙ₂ (§III-B).
//! * [`per_slot_lp`] — per-slot LPs for the greedy and atomistic baselines.
//! * [`horizon_lp`] — the offline full-horizon LP for ℙ₀, with the
//!   telescoped one-directional migration reformulation.
//! * [`p3`] — the relaxed LP of the competitive analysis (§IV-B), solved
//!   exactly so the chain `P₁ ≥ P₃ ≥ D` can be checked numerically.
//! * [`dual`] — the fitted dual solution `S_D` of program 𝔻 used by the
//!   competitive analysis (Lemmas 2, 5, 6), exposed so tests can verify the
//!   paper's inequalities numerically.

pub mod dual;
pub mod horizon_lp;
pub mod p2;
pub mod p3;
pub mod per_slot_lp;

/// Effective (weight-scaled) prices used consistently by ℙ₁/ℙ₂/ℙ₃/𝔻:
/// `ã = w_op·a`, quality coefficient `w_q·d/λ`, `c̃ = w_rc·c`,
/// `b̃ = w_mg·(b^out + b^in)`.
#[derive(Debug, Clone)]
pub struct ScaledPrices {
    /// `ã_{i}` for the current slot (operation, weighted).
    pub operation: Vec<f64>,
    /// `c̃_i` (reconfiguration, weighted).
    pub reconfig: Vec<f64>,
    /// `b̃_i = w_mg (b_i^{out} + b_i^{in})` (folded migration, weighted).
    pub migration_folded: Vec<f64>,
}

impl ScaledPrices {
    /// Extracts the scaled prices of slot `t` from an instance.
    pub fn at_slot(inst: &crate::instance::Instance, t: usize) -> Self {
        let w = inst.weights();
        let num_clouds = inst.num_clouds();
        ScaledPrices {
            operation: (0..num_clouds)
                .map(|i| w.operation * inst.operation_price(i, t))
                .collect(),
            reconfig: (0..num_clouds)
                .map(|i| w.reconfig * inst.reconfig_price(i))
                .collect(),
            migration_folded: (0..num_clouds)
                .map(|i| w.migration * inst.migration_total(i))
                .collect(),
        }
    }
}
