//! Discrete VM rounding.
//!
//! §II-C of the paper: "we assume that virtual machines are the smallest
//! resource segment in the edge clouds". The optimization itself is
//! continuous (as in the paper's evaluation); this module provides the
//! deployment step that converts a fractional allocation into integral VM
//! counts — largest-remainder rounding per user under per-cloud VM
//! capacities.

use crate::algorithms::SlotInput;
use crate::allocation::Allocation;
use crate::{Error, Result};

/// An integral allocation: `vms[i][j]` virtual machines of size `vm_size`
/// serving user `j` at cloud `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmAllocation {
    /// VM counts, cloud-major.
    pub vms: Vec<Vec<u32>>,
}

impl VmAllocation {
    /// The equivalent fractional allocation (`count · vm_size`).
    pub fn to_allocation(&self, vm_size: f64) -> Allocation {
        let num_clouds = self.vms.len();
        let num_users = self.vms.first().map_or(0, Vec::len);
        let mut x = Allocation::zeros(num_clouds, num_users);
        for (i, row) in self.vms.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                x.set(i, j, f64::from(c) * vm_size);
            }
        }
        x
    }

    /// Total VM count.
    pub fn total_vms(&self) -> u64 {
        self.vms
            .iter()
            .flat_map(|r| r.iter())
            .map(|&c| u64::from(c))
            .sum()
    }
}

/// Rounds a fractional allocation to whole VMs of `vm_size` resource units:
/// each user receives `⌈λ_j / vm_size⌉` VMs placed as close to the
/// fractional solution as possible (floor + largest remainder), subject to
/// per-cloud capacities `⌊C_i / vm_size⌋`.
///
/// # Errors
///
/// Returns [`Error::Invalid`] if `vm_size` is not positive or the total VM
/// capacity cannot host every user's VM count (a discretization artifact
/// possible even when `ΣC ≥ Σλ`).
pub fn round_to_vms(input: &SlotInput<'_>, x: &Allocation, vm_size: f64) -> Result<VmAllocation> {
    if !(vm_size > 0.0) || !vm_size.is_finite() {
        return Err(Error::Invalid("vm_size must be positive".into()));
    }
    let num_clouds = input.num_clouds();
    let num_users = input.num_users();
    let cap_vms: Vec<u32> = (0..num_clouds)
        .map(|i| (input.system.capacity(i) / vm_size).floor() as u32)
        .collect();
    let needed: u64 = (0..num_users)
        .map(|j| (input.workloads[j] / vm_size).ceil() as u64)
        .sum();
    let available: u64 = cap_vms.iter().map(|&c| u64::from(c)).sum();
    if needed > available {
        return Err(Error::Invalid(format!(
            "{needed} VMs needed but only {available} fit into the capacities at vm_size {vm_size}"
        )));
    }

    let mut vms = vec![vec![0u32; num_users]; num_clouds];
    let mut used = vec![0u32; num_clouds];
    // Floor pass.
    for j in 0..num_users {
        for (i, used_i) in used.iter_mut().enumerate() {
            let f = (x.get(i, j) / vm_size).floor() as u32;
            let granted = f.min(cap_vms[i].saturating_sub(*used_i));
            vms[i][j] = granted;
            *used_i += granted;
        }
    }
    // Largest-remainder pass, per user.
    for j in 0..num_users {
        let target = (input.workloads[j] / vm_size).ceil() as u32;
        let mut have: u32 = (0..num_clouds).map(|i| vms[i][j]).sum();
        if have >= target {
            continue;
        }
        let mut order: Vec<usize> = (0..num_clouds).collect();
        let remainder = |i: usize| {
            let s = x.get(i, j) / vm_size;
            s - s.floor()
        };
        order.sort_by(|&a, &b| {
            remainder(b)
                .partial_cmp(&remainder(a))
                .expect("finite remainders")
        });
        // First by largest remainder, then any cloud with slack.
        for pass in 0..2 {
            for &i in &order {
                if have >= target {
                    break;
                }
                if used[i] < cap_vms[i] && (pass == 1 || remainder(i) > 0.0) {
                    vms[i][j] += 1;
                    used[i] += 1;
                    have += 1;
                }
            }
        }
        if have < target {
            return Err(Error::Invalid(format!(
                "user {j}: only {have}/{target} VMs placeable"
            )));
        }
    }
    Ok(VmAllocation { vms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    fn fig1_input(inst: &Instance) -> SlotInput<'_> {
        SlotInput::from_instance(inst, 0)
    }

    #[test]
    fn rounded_allocation_is_feasible() {
        let inst = Instance::fig1_example(2.1, true);
        let input = fig1_input(&inst);
        // Fractional solution: 0.6 at A, 0.4 at B.
        let x = Allocation::from_flat(2, 1, vec![0.6, 0.4]);
        let vm = round_to_vms(&input, &x, 0.5).unwrap();
        let rounded = vm.to_allocation(0.5);
        assert!(rounded.demand_shortfall(inst.workloads()) < 1e-12);
        assert!(rounded.capacity_excess(inst.system().capacities()) < 1e-12);
        // 2 VMs of 0.5 for λ = 1.
        assert_eq!(vm.total_vms(), 2);
    }

    #[test]
    fn rounding_respects_fractional_shape() {
        let inst = Instance::fig1_example(2.1, true);
        let input = fig1_input(&inst);
        let x = Allocation::from_flat(2, 1, vec![0.9, 0.1]);
        let vm = round_to_vms(&input, &x, 0.5).unwrap();
        // 0.9/0.5 = 1.8 → one floor VM at A + largest remainder also at A.
        assert_eq!(vm.vms[0][0], 2);
        assert_eq!(vm.vms[1][0], 0);
    }

    #[test]
    fn exact_multiples_round_trivially() {
        let inst = Instance::fig1_example(2.1, true);
        let input = fig1_input(&inst);
        let x = Allocation::from_flat(2, 1, vec![1.0, 0.0]);
        let vm = round_to_vms(&input, &x, 0.25).unwrap();
        assert_eq!(vm.vms[0][0], 4);
        let back = vm.to_allocation(0.25);
        assert_eq!(back.get(0, 0), 1.0);
    }

    #[test]
    fn infeasible_vm_size_is_rejected() {
        let inst = Instance::fig1_example(2.1, true);
        let input = fig1_input(&inst);
        let x = Allocation::from_flat(2, 1, vec![1.0, 0.0]);
        // Each cloud has capacity 2.0; vm_size 1.5 → 1 VM per cloud, user
        // needs ⌈1/1.5⌉ = 1 → feasible.
        assert!(round_to_vms(&input, &x, 1.5).is_ok());
        // vm_size 5.0 → zero VMs fit anywhere.
        assert!(round_to_vms(&input, &x, 5.0).is_err());
        assert!(round_to_vms(&input, &x, 0.0).is_err());
    }

    #[test]
    fn capacity_limits_spill_to_other_clouds() {
        let inst = Instance::fig1_example(2.1, true);
        let input = fig1_input(&inst);
        // Fractional solution wants 2.0 at A (= its capacity) but with
        // vm_size 0.75 only ⌊2/0.75⌋ = 2 VMs fit; the rest must spill to B.
        let x = Allocation::from_flat(2, 1, vec![2.0, 0.1]);
        let vm = round_to_vms(&input, &x, 0.75).unwrap();
        assert!(vm.vms[0][0] <= 2);
        let rounded = vm.to_allocation(0.75);
        assert!(rounded.demand_shortfall(inst.workloads()) < 1e-12);
        assert!(rounded.capacity_excess(inst.system().capacities()) < 1e-12);
    }
}
