//! Pre-solve feasibility sentinel.
//!
//! The paper's ℙ₂ assumes every slot satisfies `Σ_j λ_j ≤ Σ_i C_i` —
//! [`crate::instance::Instance::new`] even rejects instances that violate
//! it. Under live traffic that assumption breaks: flash crowds multiply
//! demand mid-horizon and faults strip capacity, and the first thing a
//! barrier solve does on such a slot is burn its whole budget in phase I
//! before discovering there is no interior. The sentinel answers the
//! feasibility question in O(I + J) *before* any solver starts, so the
//! ladder can route an overloaded slot straight to the shedding rung
//! (see [`crate::shed`]).
//!
//! One aggregate comparison suffices as a per-resource interior check: the
//! proportional point `x_{ij} = λ_j · C_i / ΣC` loads every cloud at the
//! uniform utilization `D/ΣC`, so `D < ΣC` already certifies a strictly
//! interior point for every per-cloud row at once. The margin parameter
//! flags slots whose interior is thinner than the requested headroom as
//! [`SentinelVerdict::Tight`] — still solvable, but phase I will work for
//! its living.

use crate::algorithms::SlotInput;
use serde::{Deserialize, Serialize};

/// Default interior margin: a slot whose slack `(C − D)/C` falls below
/// this fraction is classified [`SentinelVerdict::Tight`].
pub const DEFAULT_INTERIOR_MARGIN: f64 = 0.02;

/// The sentinel's classification of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SentinelVerdict {
    /// Demand fits with at least the requested interior margin.
    Feasible,
    /// Demand fits, but the interior is thinner than the margin — solvable,
    /// with phase I doing real work.
    Tight,
    /// Aggregate demand exceeds aggregate capacity: ℙ₂ has no feasible
    /// point and the slot needs load shedding.
    Overloaded,
}

/// The sentinel's full report for one slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentinelReport {
    /// The classification.
    pub verdict: SentinelVerdict,
    /// Aggregate demand `D = Σ_j λ_j` (non-finite workloads, which
    /// sanitization removes upstream, are skipped).
    pub total_demand: f64,
    /// Aggregate capacity `C = Σ_i C_i` (non-finite capacities skipped).
    pub total_capacity: f64,
    /// Relative slack `(C − D)/C`; negative when overloaded, 0 when the
    /// system has no capacity at all.
    pub slack_fraction: f64,
}

impl SentinelReport {
    /// Whether the slot needs the shedding rung.
    pub fn overloaded(&self) -> bool {
        self.verdict == SentinelVerdict::Overloaded
    }
}

/// Classifies one slot in O(I + J). `margin` is the interior slack
/// fraction below which a feasible slot is reported as
/// [`SentinelVerdict::Tight`] (use [`DEFAULT_INTERIOR_MARGIN`] when in
/// doubt; values are clamped to `[0, 1)`).
pub fn assess(input: &SlotInput<'_>, margin: f64) -> SentinelReport {
    let margin = if margin.is_finite() {
        margin.clamp(0.0, 1.0 - f64::EPSILON)
    } else {
        DEFAULT_INTERIOR_MARGIN
    };
    let total_demand: f64 = input
        .workloads
        .iter()
        .copied()
        .filter(|l| l.is_finite())
        .map(|l| l.max(0.0))
        .sum();
    let total_capacity: f64 = (0..input.num_clouds())
        .map(|i| input.system.capacity(i))
        .filter(|c| c.is_finite())
        .map(|c| c.max(0.0))
        .sum();
    let slack_fraction = if total_capacity > 0.0 {
        (total_capacity - total_demand) / total_capacity
    } else {
        0.0
    };
    let verdict = if total_demand > total_capacity {
        SentinelVerdict::Overloaded
    } else if slack_fraction < margin {
        SentinelVerdict::Tight
    } else {
        SentinelVerdict::Feasible
    };
    SentinelReport {
        verdict,
        total_demand,
        total_capacity,
        slack_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    #[test]
    fn healthy_slot_is_feasible() {
        let inst = Instance::fig1_example(2.1, true);
        let input = SlotInput::from_instance(&inst, 0);
        let report = assess(&input, DEFAULT_INTERIOR_MARGIN);
        assert_eq!(report.verdict, SentinelVerdict::Feasible);
        assert!(report.slack_fraction > 0.5, "{}", report.slack_fraction);
        assert!(!report.overloaded());
    }

    #[test]
    fn surged_demand_is_overloaded() {
        let mut inst = Instance::fig1_example(2.1, true);
        inst.inject_workload(0, 10.0); // capacity is 4
        let input = SlotInput::from_instance(&inst, 0);
        let report = assess(&input, DEFAULT_INTERIOR_MARGIN);
        assert_eq!(report.verdict, SentinelVerdict::Overloaded);
        assert!(report.slack_fraction < 0.0);
    }

    #[test]
    fn thin_interior_is_tight() {
        let mut inst = Instance::fig1_example(2.1, true);
        inst.inject_workload(0, 3.96); // slack fraction 1%
        let input = SlotInput::from_instance(&inst, 0);
        let report = assess(&input, 0.02);
        assert_eq!(report.verdict, SentinelVerdict::Tight);
    }

    #[test]
    fn zero_capacity_system_with_demand_is_overloaded() {
        let mut inst = Instance::fig1_example(2.1, true);
        inst.system_mut().inject_capacity(0, 0.0);
        inst.system_mut().inject_capacity(1, 0.0);
        let input = SlotInput::from_instance(&inst, 0);
        let report = assess(&input, DEFAULT_INTERIOR_MARGIN);
        assert_eq!(report.verdict, SentinelVerdict::Overloaded);
        assert_eq!(report.slack_fraction, 0.0);
        assert_eq!(report.total_capacity, 0.0);
    }

    #[test]
    fn non_finite_inputs_do_not_poison_the_sums() {
        let mut inst = Instance::fig1_example(2.1, true);
        inst.inject_workload(0, f64::NAN);
        let input = SlotInput::from_instance(&inst, 0);
        let report = assess(&input, DEFAULT_INTERIOR_MARGIN);
        assert!(report.total_demand.is_finite());
        assert!(report.total_capacity.is_finite());
    }

    #[test]
    fn verdict_round_trips_through_serde() {
        for v in [
            SentinelVerdict::Feasible,
            SentinelVerdict::Tight,
            SentinelVerdict::Overloaded,
        ] {
            let json = serde_json::to_string(&v).unwrap();
            let back: SentinelVerdict = serde_json::from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }
}
