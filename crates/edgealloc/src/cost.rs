//! The four-part cost model of program ℙ₀ and its evaluation.

use crate::allocation::Allocation;
use crate::instance::Instance;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Weights of the four cost components in the total objective.
///
/// The paper omits weights in the formulation "for simplicity of expression
/// but keeps them during evaluation"; Figure 4 sweeps the ratio `μ` between
/// the dynamic (reconfiguration + migration) and static (operation +
/// quality) weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Weight of the operation cost.
    pub operation: f64,
    /// Weight of the service-quality cost.
    pub quality: f64,
    /// Weight of the reconfiguration cost.
    pub reconfig: f64,
    /// Weight of the migration cost.
    pub migration: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            operation: 1.0,
            quality: 1.0,
            reconfig: 1.0,
            migration: 1.0,
        }
    }
}

impl CostWeights {
    /// Unit static weights with both dynamic weights set to `mu` — the
    /// Figure-4 sweep parameter.
    pub fn with_dynamic_ratio(mu: f64) -> Self {
        CostWeights {
            operation: 1.0,
            quality: 1.0,
            reconfig: mu,
            migration: mu,
        }
    }
}

/// A cost tally split into the paper's four components (already weighted).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Weighted operation cost.
    pub operation: f64,
    /// Weighted service-quality cost.
    pub quality: f64,
    /// Weighted reconfiguration cost.
    pub reconfig: f64,
    /// Weighted migration cost.
    pub migration: f64,
}

impl CostBreakdown {
    /// Total cost (the ℙ₀ objective).
    pub fn total(&self) -> f64 {
        self.operation + self.quality + self.reconfig + self.migration
    }

    /// The static part (operation + quality).
    pub fn static_part(&self) -> f64 {
        self.operation + self.quality
    }

    /// The dynamic part (reconfiguration + migration).
    pub fn dynamic_part(&self) -> f64 {
        self.reconfig + self.migration
    }
}

impl Add for CostBreakdown {
    type Output = CostBreakdown;
    fn add(self, o: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            operation: self.operation + o.operation,
            quality: self.quality + o.quality,
            reconfig: self.reconfig + o.reconfig,
            migration: self.migration + o.migration,
        }
    }
}

impl AddAssign for CostBreakdown {
    fn add_assign(&mut self, o: CostBreakdown) {
        *self = *self + o;
    }
}

/// The static (per-slot) cost of allocation `x` at slot `t`:
/// weighted operation plus service quality, including the
/// allocation-independent access-delay term `Σ_j d(j, l_{j,t})`.
///
/// # Panics
///
/// Panics if dimensions of `x` do not match the instance.
pub fn slot_static_cost(inst: &Instance, t: usize, x: &Allocation) -> CostBreakdown {
    let (num_clouds, num_users) = (inst.num_clouds(), inst.num_users());
    assert_eq!(x.num_clouds(), num_clouds, "cloud count mismatch");
    assert_eq!(x.num_users(), num_users, "user count mismatch");
    let w = inst.weights();
    let mut operation = 0.0;
    let mut quality = 0.0;
    for j in 0..num_users {
        let l = inst.attached(j, t);
        quality += inst.access_delay(j, t);
        let lambda = inst.workload(j);
        for i in 0..num_clouds {
            let xij = x.get(i, j);
            operation += inst.operation_price(i, t) * xij;
            quality += xij / lambda * inst.system().delay(l, i);
        }
    }
    CostBreakdown {
        operation: w.operation * operation,
        quality: w.quality * quality,
        reconfig: 0.0,
        migration: 0.0,
    }
}

/// The dynamic (transition) cost between consecutive slots: weighted
/// reconfiguration `Σ_i c_i (x_{i,t} − x_{i,t−1})⁺` plus bidirectional
/// migration `Σ_i b_i^{out} z^{out}_{i,t} + b_i^{in} z^{in}_{i,t}` (Eq. 2,
/// 4–5 of the paper).
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn transition_cost(inst: &Instance, prev: &Allocation, cur: &Allocation) -> CostBreakdown {
    let (num_clouds, num_users) = (inst.num_clouds(), inst.num_users());
    assert_eq!(prev.num_clouds(), num_clouds, "cloud count mismatch");
    assert_eq!(cur.num_clouds(), num_clouds, "cloud count mismatch");
    assert_eq!(prev.num_users(), num_users, "user count mismatch");
    assert_eq!(cur.num_users(), num_users, "user count mismatch");
    let w = inst.weights();
    let mut reconfig = 0.0;
    let mut migration = 0.0;
    for i in 0..num_clouds {
        let delta_aggregate = cur.cloud_total(i) - prev.cloud_total(i);
        reconfig += inst.reconfig_price(i) * delta_aggregate.max(0.0);
        let mut z_in = 0.0;
        let mut z_out = 0.0;
        for j in 0..num_users {
            let d = cur.get(i, j) - prev.get(i, j);
            if d > 0.0 {
                z_in += d;
            } else {
                z_out -= d;
            }
        }
        migration += inst.migration_out(i) * z_out + inst.migration_in(i) * z_in;
    }
    CostBreakdown {
        operation: 0.0,
        quality: 0.0,
        reconfig: w.reconfig * reconfig,
        migration: w.migration * migration,
    }
}

/// Evaluates the full ℙ₀ objective of a trajectory: static costs of every
/// slot plus dynamic costs of every transition (from the all-zero
/// allocation at `t = 0`).
///
/// # Panics
///
/// Panics if `allocations.len() != inst.num_slots()` or any dimension
/// mismatches.
pub fn evaluate_trajectory(inst: &Instance, allocations: &[Allocation]) -> CostBreakdown {
    assert_eq!(
        allocations.len(),
        inst.num_slots(),
        "trajectory length must equal the number of slots"
    );
    let mut total = CostBreakdown::default();
    let mut prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
    for (t, x) in allocations.iter().enumerate() {
        total += slot_static_cost(inst, t, x);
        total += transition_cost(inst, &prev, x);
        prev = x.clone();
    }
    total
}

/// Per-slot cost series of a trajectory: element `t` holds the slot's
/// static cost plus the dynamic cost of the transition *into* slot `t`
/// (from the all-zero allocation for `t = 0`). Summing the series yields
/// [`evaluate_trajectory`].
///
/// # Panics
///
/// Panics on trajectory/instance dimension mismatches.
pub fn trajectory_timeline(inst: &Instance, allocations: &[Allocation]) -> Vec<CostBreakdown> {
    assert_eq!(
        allocations.len(),
        inst.num_slots(),
        "trajectory length must equal the number of slots"
    );
    let mut out = Vec::with_capacity(allocations.len());
    let mut prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
    for (t, x) in allocations.iter().enumerate() {
        out.push(slot_static_cost(inst, t, x) + transition_cost(inst, &prev, x));
        prev = x.clone();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    /// 2 clouds, 1 user, 3 slots — Figure 1(a) of the paper.
    fn fig1a() -> Instance {
        Instance::fig1_example(2.1, true)
    }

    #[test]
    fn weights_scale_components() {
        let inst = fig1a();
        let mut x = Allocation::zeros(2, 1);
        x.set(0, 0, 1.0);
        let c = slot_static_cost(&inst, 0, &x);
        assert!(c.reconfig == 0.0 && c.migration == 0.0);
        assert!(c.operation > 0.0);
    }

    #[test]
    fn transition_cost_zero_for_identical() {
        let inst = fig1a();
        let mut x = Allocation::zeros(2, 1);
        x.set(0, 0, 1.0);
        let c = transition_cost(&inst, &x, &x);
        assert_eq!(c.total(), 0.0);
    }

    #[test]
    fn migration_counts_both_ends() {
        let inst = fig1a(); // b_out = b_in = 0.5, c_i = 1 in the example
        let mut a = Allocation::zeros(2, 1);
        a.set(0, 0, 1.0);
        let mut b = Allocation::zeros(2, 1);
        b.set(1, 0, 1.0);
        let c = transition_cost(&inst, &a, &b);
        // Move 1 unit: z_out(0)=1, z_in(1)=1 → 0.5 + 0.5 = 1 migration;
        // reconfig at cloud 1 for +1 unit → 1.
        assert!(
            (c.migration - 1.0).abs() < 1e-12,
            "migration {}",
            c.migration
        );
        assert!((c.reconfig - 1.0).abs() < 1e-12, "reconfig {}", c.reconfig);
    }

    #[test]
    fn timeline_sums_to_total() {
        let inst = Instance::fig1_example(2.1, true);
        let mut a = Allocation::zeros(2, 1);
        a.set(0, 0, 1.0);
        let mut b = Allocation::zeros(2, 1);
        b.set(1, 0, 1.0);
        let traj = vec![a.clone(), b, a];
        let timeline = trajectory_timeline(&inst, &traj);
        assert_eq!(timeline.len(), 3);
        let summed: CostBreakdown = timeline
            .into_iter()
            .fold(CostBreakdown::default(), |x, y| x + y);
        let total = evaluate_trajectory(&inst, &traj);
        assert!((summed.total() - total.total()).abs() < 1e-12);
        assert!((summed.migration - total.migration).abs() < 1e-12);
    }

    #[test]
    fn breakdown_addition() {
        let a = CostBreakdown {
            operation: 1.0,
            quality: 2.0,
            reconfig: 3.0,
            migration: 4.0,
        };
        let b = a + a;
        assert_eq!(b.total(), 20.0);
        assert_eq!(b.static_part(), 6.0);
        assert_eq!(b.dynamic_part(), 14.0);
    }
}
