//! Per-slot solve health: which rung of the degradation ladder produced
//! each slot's allocation, and aggregate summaries for reporting.
//!
//! The online pipeline (see [`crate::algorithms::run_online`]) must emit a
//! decision every slot even when a solver breaks down. Instead of aborting
//! the horizon, each algorithm walks a degradation ladder:
//!
//! 1. [`FallbackRung::Primary`] — the intended solver with its primary
//!    options succeeded.
//! 2. [`FallbackRung::RelaxedTolerance`] — a re-solve with escalating
//!    relaxations (see [`optim::resilience`]) succeeded.
//! 3. [`FallbackRung::PerSlotLp`] — the entropy-free per-slot LP (the
//!    linearized slot objective) succeeded where the barrier could not.
//! 4. [`FallbackRung::DeadlineSalvage`] — the slot's wall-clock budget ran
//!    out mid-solve and the best strictly-feasible barrier iterate reached
//!    was adopted (capacity-repaired) as the decision.
//! 5. [`FallbackRung::CarryForward`] — the previous slot's allocation was
//!    carried forward and repaired with
//!    [`crate::algorithms::repair_capacity`].
//!
//! One rung sits *beside* the ladder rather than below it:
//! [`FallbackRung::Shedding`] marks slots the pre-solve sentinel
//! (see [`crate::sentinel`]) classified as overloaded, where a
//! minimum-penalty user subset was deferred to the overflow tier
//! (see [`crate::shed`]) and ℙ₂ was re-solved on the survivors.
//!
//! Every slot records which rung produced its allocation in a
//! [`SlotHealth`], collected on the
//! [`crate::algorithms::Trajectory`]. [`HealthSummary`] condenses a
//! trajectory for scenario-level reporting.

use crate::sentinel::SentinelVerdict;
use serde::{Deserialize, Serialize};

/// Which rung of the degradation ladder produced a slot's allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackRung {
    /// The intended solver converged with its primary options.
    Primary,
    /// A retry with relaxed options (or the exact-simplex rung of an LP
    /// retry chain) converged.
    RelaxedTolerance,
    /// The entropy-free per-slot LP converged after the barrier gave up.
    PerSlotLp,
    /// The slot deadline expired and the best interior iterate any budgeted
    /// solve reached was adopted (after capacity repair) as the decision.
    DeadlineSalvage,
    /// The previous allocation was carried forward and repaired.
    CarryForward,
    /// The sentinel found the slot overloaded; a minimum-penalty user set
    /// was deferred to the overflow tier and ℙ₂ was re-solved on the
    /// feasible survivors (see [`crate::shed`]).
    Shedding,
}

/// What happened while deciding one slot, whatever the outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotHealth {
    /// The ladder rung that produced the slot's allocation.
    pub rung: FallbackRung,
    /// Total solve attempts across all rungs (1 = clean first solve).
    pub attempts: usize,
    /// Residual of the accepted solve: the certified duality gap for the
    /// barrier, the maximum constraint violation for LPs, `None` when no
    /// solver produced the allocation (carry-forward) — serialized as JSON
    /// `null`, which also matches how legacy records wrote their NaN
    /// sentinel.
    pub final_residual: Option<f64>,
    /// Wall time spent deciding the slot, in milliseconds.
    pub wall_time_ms: f64,
    /// The wall-clock budget the slot was decided under, in milliseconds
    /// (`None` = unlimited).
    #[serde(default)]
    pub deadline_ms: Option<f64>,
    /// Whether the slot's budget expired at any point while walking the
    /// ladder (the decision then came from a salvage or carry-forward
    /// rung, or from a rung that ran with a reduced slice).
    #[serde(default)]
    pub deadline_hit: bool,
    /// Wall time each attempted ladder rung consumed, in milliseconds,
    /// in the order the rungs ran (skipped rungs don't appear).
    #[serde(default)]
    pub rung_ms: Vec<f64>,
    /// Whether [`crate::algorithms::repair_capacity`] was applied.
    pub repaired: bool,
    /// Whether the slot's inputs were sanitized (non-finite or negative
    /// data replaced) before solving.
    pub sanitized: bool,
    /// Total Newton steps of the accepted barrier solve (0 when the slot
    /// was decided by an LP rung or carry-forward, and in records written
    /// before this field existed).
    #[serde(default)]
    pub newton_steps: usize,
    /// Outer (centering) iterations of the accepted barrier solve (0 for
    /// non-barrier rungs and legacy records).
    #[serde(default)]
    pub outer_iterations: usize,
    /// Which Newton-step Schur kernel the accepted barrier solve used
    /// (`"dense"` or `"blocked"`; `None` for non-barrier rungs and legacy
    /// records).
    #[serde(default)]
    pub schur_kernel: Option<String>,
    /// Mean wall time per Newton step of the accepted barrier solve, in
    /// milliseconds (`None` when no barrier solve was accepted or no step
    /// ran) — the per-step cost the kernel choice is supposed to move.
    #[serde(default)]
    pub newton_step_ms: Option<f64>,
    /// User shards the slot was decomposed into (0 for non-sharded
    /// algorithms and legacy records; 1 when the sharded algorithm fell
    /// through to its monolithic path).
    #[serde(default)]
    pub shards: usize,
    /// Capacity-price coordination rounds the sharded decomposition ran
    /// (0 for non-sharded slots).
    #[serde(default)]
    pub coord_rounds: usize,
    /// Largest relative per-cloud capacity violation of the adopted
    /// coordination round's *merged, unprojected* allocation
    /// (`max_i (Σ_j x_ij − C_i)⁺ / max(C_i, 1)`; `None` for non-sharded
    /// slots). The projection step removes it from the decision — this
    /// records how far coordination itself got.
    #[serde(default)]
    pub max_capacity_violation: Option<f64>,
    /// Certified relative duality gap of the adopted round: the distance
    /// between the projected decision's true ℙ₂ objective and the
    /// decomposition's dual lower bound (`None` for non-sharded slots).
    #[serde(default)]
    pub duality_gap: Option<f64>,
    /// Whether the sharded coordinator closed the slot with its hybrid
    /// refinement: a warm-started monolithic solve from the best projected
    /// round, run when coordination stalled above its gap tolerance.
    #[serde(default)]
    pub polished: bool,
    /// Carried-forward (stale) shard offers merged in place of a fresh
    /// offer because the shard failed or straggled past its round budget
    /// (0 for non-sharded slots and legacy records).
    #[serde(default)]
    pub stale_offers: usize,
    /// Per-shard solve retries taken after a panic, solver error, or
    /// quarantined offer (0 = every shard solved on its first attempt).
    #[serde(default)]
    pub shard_retries: usize,
    /// Fresh shard offers rejected by the NaN/Inf/negativity quarantine
    /// screen before they could reach the merge or the carry-forward
    /// archive.
    #[serde(default)]
    pub quarantined_offers: usize,
    /// Shard circuit-breaker trips: after R consecutive failures a sick
    /// shard's users were merged into a neighbor shard, or (at ≤ 2 shards)
    /// the slot was demoted to the monolithic fallback.
    #[serde(default)]
    pub breaker_trips: usize,
    /// Coordination rounds that completed without a fresh offer from every
    /// shard (stale carry-forward, or too few offers to merge at all).
    #[serde(default)]
    pub degraded_rounds: usize,
    /// The pre-solve sentinel's feasibility verdict for the slot (`None`
    /// for algorithms that don't run the sentinel and for legacy records).
    #[serde(default)]
    pub sentinel_verdict: Option<SentinelVerdict>,
    /// Users deferred off the edge for this slot by the shedding rung
    /// (0 = nobody shed).
    #[serde(default)]
    pub shed_users: usize,
    /// Of the shed users, how many were routed to the overflow cloud tier
    /// (the rest were shed outright).
    #[serde(default)]
    pub overflowed_users: usize,
    /// Total deferral penalty charged by the shedding rung for this slot.
    #[serde(default)]
    pub shed_penalty: f64,
    /// Errors swallowed along the way (the failures that pushed the
    /// decision down the ladder), newest last.
    pub errors: Vec<String>,
}

impl SlotHealth {
    /// A pristine slot: first attempt, primary rung, nothing repaired.
    pub fn primary() -> Self {
        SlotHealth {
            rung: FallbackRung::Primary,
            attempts: 1,
            final_residual: None,
            wall_time_ms: 0.0,
            deadline_ms: None,
            deadline_hit: false,
            rung_ms: Vec::new(),
            repaired: false,
            sanitized: false,
            newton_steps: 0,
            outer_iterations: 0,
            schur_kernel: None,
            newton_step_ms: None,
            shards: 0,
            coord_rounds: 0,
            max_capacity_violation: None,
            duality_gap: None,
            polished: false,
            stale_offers: 0,
            shard_retries: 0,
            quarantined_offers: 0,
            breaker_trips: 0,
            degraded_rounds: 0,
            sentinel_verdict: None,
            shed_users: 0,
            overflowed_users: 0,
            shed_penalty: 0.0,
            errors: Vec::new(),
        }
    }

    /// Builds a slot record from an LP [`SolveReport`]. A degraded report
    /// maps to [`FallbackRung::RelaxedTolerance`]: the LP retry chain's
    /// relaxations and exact-simplex rung re-solve the *same* program with
    /// escalating options, they do not substitute a different one.
    ///
    /// [`SolveReport`]: optim::resilience::SolveReport
    pub fn from_lp_report(report: &optim::resilience::SolveReport) -> Self {
        SlotHealth {
            rung: if report.degraded() {
                FallbackRung::RelaxedTolerance
            } else {
                FallbackRung::Primary
            },
            attempts: report.attempts.max(1),
            final_residual: if report.final_residual.is_finite() {
                Some(report.final_residual)
            } else {
                None
            },
            wall_time_ms: report.wall_time_ms,
            deadline_ms: None,
            deadline_hit: false,
            rung_ms: Vec::new(),
            repaired: false,
            sanitized: false,
            newton_steps: 0,
            outer_iterations: 0,
            schur_kernel: None,
            newton_step_ms: None,
            shards: 0,
            coord_rounds: 0,
            max_capacity_violation: None,
            duality_gap: None,
            polished: false,
            stale_offers: 0,
            shard_retries: 0,
            quarantined_offers: 0,
            breaker_trips: 0,
            degraded_rounds: 0,
            sentinel_verdict: None,
            shed_users: 0,
            overflowed_users: 0,
            shed_penalty: 0.0,
            errors: report.error.iter().cloned().collect(),
        }
    }

    /// Records a swallowed error.
    pub fn note_error(&mut self, err: impl std::fmt::Display) {
        self.errors.push(err.to_string());
    }

    /// Whether anything beyond the primary clean path happened.
    pub fn degraded(&self) -> bool {
        self.rung != FallbackRung::Primary
            || self.sanitized
            || self.deadline_hit
            || !self.errors.is_empty()
    }
}

/// Per-rung slot counts of one trajectory (or merged across many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RungCounts {
    /// Slots decided on [`FallbackRung::Primary`].
    pub primary: usize,
    /// Slots decided on [`FallbackRung::RelaxedTolerance`].
    pub relaxed_tolerance: usize,
    /// Slots decided on [`FallbackRung::PerSlotLp`].
    pub per_slot_lp: usize,
    /// Slots decided on [`FallbackRung::DeadlineSalvage`].
    #[serde(default)]
    pub deadline_salvage: usize,
    /// Slots decided on [`FallbackRung::CarryForward`].
    pub carry_forward: usize,
    /// Slots decided on [`FallbackRung::Shedding`].
    #[serde(default)]
    pub shedding: usize,
}

impl RungCounts {
    /// Counts one slot.
    pub fn record(&mut self, rung: FallbackRung) {
        match rung {
            FallbackRung::Primary => self.primary += 1,
            FallbackRung::RelaxedTolerance => self.relaxed_tolerance += 1,
            FallbackRung::PerSlotLp => self.per_slot_lp += 1,
            FallbackRung::DeadlineSalvage => self.deadline_salvage += 1,
            FallbackRung::CarryForward => self.carry_forward += 1,
            FallbackRung::Shedding => self.shedding += 1,
        }
    }

    /// Adds another count set into this one.
    pub fn merge(&mut self, other: &RungCounts) {
        self.primary += other.primary;
        self.relaxed_tolerance += other.relaxed_tolerance;
        self.per_slot_lp += other.per_slot_lp;
        self.deadline_salvage += other.deadline_salvage;
        self.carry_forward += other.carry_forward;
        self.shedding += other.shedding;
    }

    /// Total slots counted.
    pub fn total(&self) -> usize {
        self.primary
            + self.relaxed_tolerance
            + self.per_slot_lp
            + self.deadline_salvage
            + self.carry_forward
            + self.shedding
    }
}

/// Aggregate health of one trajectory (one algorithm × one repetition), or
/// of several merged together.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HealthSummary {
    /// Total slots covered.
    pub slots: usize,
    /// Slots where anything beyond the clean primary path happened.
    pub degraded_slots: usize,
    /// Slots whose inputs needed sanitization before solving.
    pub sanitized_slots: usize,
    /// Slots whose allocation needed fallback rungs, by rung.
    pub rungs: RungCounts,
    /// Total Newton steps across all barrier-decided slots.
    #[serde(default)]
    pub newton_steps: usize,
    /// Largest number of outer (centering) iterations any single slot's
    /// accepted barrier solve needed.
    #[serde(default)]
    pub peak_outer_iterations: usize,
    /// Slots whose wall-clock budget expired while deciding.
    #[serde(default)]
    pub deadline_hits: usize,
    /// Slots whose accepted barrier solve used the blocked nested-Schur
    /// kernel (0 for legacy records; dense-kernel slots are
    /// `slots − blocked_kernel_slots − non-barrier slots`).
    #[serde(default)]
    pub blocked_kernel_slots: usize,
    /// Slots decided by the sharded decomposition (shards ≥ 2; a sharded
    /// algorithm's monolithic fall-through slots don't count).
    #[serde(default)]
    pub sharded_slots: usize,
    /// Total capacity-price coordination rounds across all sharded slots.
    #[serde(default)]
    pub coord_rounds: usize,
    /// Largest relative capacity violation any sharded slot's adopted
    /// (unprojected) coordination round left behind (0 when no sharded
    /// slot ran).
    #[serde(default)]
    pub peak_capacity_violation: f64,
    /// Sharded slots closed by the hybrid refinement (warm-started
    /// monolithic solve after coordination stalled above tolerance).
    #[serde(default)]
    pub polished_slots: usize,
    /// Total carried-forward (stale) shard offers merged across all slots.
    #[serde(default)]
    pub stale_offers: usize,
    /// Total per-shard solve retries across all slots.
    #[serde(default)]
    pub shard_retries: usize,
    /// Total shard offers rejected by the quarantine screen.
    #[serde(default)]
    pub quarantined_offers: usize,
    /// Total shard circuit-breaker trips.
    #[serde(default)]
    pub breaker_trips: usize,
    /// Total coordination rounds that completed without a full set of
    /// fresh shard offers.
    #[serde(default)]
    pub degraded_rounds: usize,
    /// Slots the sentinel classified as overloaded (demand above aggregate
    /// capacity).
    #[serde(default)]
    pub overloaded_slots: usize,
    /// Slots the sentinel classified as tight (feasible, but with an
    /// interior thinner than the configured margin).
    #[serde(default)]
    pub tight_slots: usize,
    /// Total user-slots deferred by the shedding rung.
    #[serde(default)]
    pub shed_users: usize,
    /// Of those, total user-slots routed to the overflow tier.
    #[serde(default)]
    pub overflowed_users: usize,
    /// Total deferral penalty across all shedding slots.
    #[serde(default)]
    pub shed_penalty: f64,
}

impl HealthSummary {
    /// Summarizes a trajectory's per-slot health records.
    pub fn from_slots(slots: &[SlotHealth]) -> Self {
        let mut summary = HealthSummary {
            slots: slots.len(),
            ..HealthSummary::default()
        };
        for h in slots {
            if h.degraded() {
                summary.degraded_slots += 1;
            }
            if h.sanitized {
                summary.sanitized_slots += 1;
            }
            summary.rungs.record(h.rung);
            summary.newton_steps += h.newton_steps;
            summary.peak_outer_iterations = summary.peak_outer_iterations.max(h.outer_iterations);
            if h.deadline_hit {
                summary.deadline_hits += 1;
            }
            if h.schur_kernel.as_deref() == Some("blocked") {
                summary.blocked_kernel_slots += 1;
            }
            if h.shards >= 2 {
                summary.sharded_slots += 1;
            }
            summary.coord_rounds += h.coord_rounds;
            if h.polished {
                summary.polished_slots += 1;
            }
            summary.stale_offers += h.stale_offers;
            summary.shard_retries += h.shard_retries;
            summary.quarantined_offers += h.quarantined_offers;
            summary.breaker_trips += h.breaker_trips;
            summary.degraded_rounds += h.degraded_rounds;
            match h.sentinel_verdict {
                Some(SentinelVerdict::Overloaded) => summary.overloaded_slots += 1,
                Some(SentinelVerdict::Tight) => summary.tight_slots += 1,
                _ => {}
            }
            summary.shed_users += h.shed_users;
            summary.overflowed_users += h.overflowed_users;
            if h.shed_penalty.is_finite() {
                summary.shed_penalty += h.shed_penalty;
            }
            if let Some(v) = h.max_capacity_violation {
                if v.is_finite() {
                    summary.peak_capacity_violation = summary.peak_capacity_violation.max(v);
                }
            }
        }
        summary
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &HealthSummary) {
        self.slots += other.slots;
        self.degraded_slots += other.degraded_slots;
        self.sanitized_slots += other.sanitized_slots;
        self.rungs.merge(&other.rungs);
        self.newton_steps += other.newton_steps;
        self.peak_outer_iterations = self.peak_outer_iterations.max(other.peak_outer_iterations);
        self.deadline_hits += other.deadline_hits;
        self.blocked_kernel_slots += other.blocked_kernel_slots;
        self.sharded_slots += other.sharded_slots;
        self.coord_rounds += other.coord_rounds;
        self.peak_capacity_violation = self
            .peak_capacity_violation
            .max(other.peak_capacity_violation);
        self.polished_slots += other.polished_slots;
        self.stale_offers += other.stale_offers;
        self.shard_retries += other.shard_retries;
        self.quarantined_offers += other.quarantined_offers;
        self.breaker_trips += other.breaker_trips;
        self.degraded_rounds += other.degraded_rounds;
        self.overloaded_slots += other.overloaded_slots;
        self.tight_slots += other.tight_slots;
        self.shed_users += other.shed_users;
        self.overflowed_users += other.overflowed_users;
        self.shed_penalty += other.shed_penalty;
    }

    /// Fraction of slots that degraded (0 when no slots were recorded).
    pub fn degraded_fraction(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.degraded_slots as f64 / self.slots as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_slot_is_not_degraded() {
        let h = SlotHealth::primary();
        assert!(!h.degraded());
        assert_eq!(h.rung, FallbackRung::Primary);
        assert_eq!(h.attempts, 1);
    }

    #[test]
    fn noting_an_error_marks_degraded() {
        let mut h = SlotHealth::primary();
        h.note_error("solver wobbled");
        assert!(h.degraded());
        assert_eq!(h.errors.len(), 1);
    }

    #[test]
    fn summary_counts_rungs_and_degradation() {
        let mut a = SlotHealth::primary();
        a.rung = FallbackRung::CarryForward;
        let mut b = SlotHealth::primary();
        b.sanitized = true;
        let clean = SlotHealth::primary();
        let s = HealthSummary::from_slots(&[a, b, clean]);
        assert_eq!(s.slots, 3);
        assert_eq!(s.degraded_slots, 2);
        assert_eq!(s.sanitized_slots, 1);
        assert_eq!(s.rungs.carry_forward, 1);
        assert_eq!(s.rungs.primary, 2);
        assert_eq!(s.rungs.total(), 3);
        assert!((s.degraded_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summaries_merge_additively() {
        let mut x = HealthSummary::from_slots(&[SlotHealth::primary()]);
        let mut carry = SlotHealth::primary();
        carry.rung = FallbackRung::CarryForward;
        let y = HealthSummary::from_slots(&[carry]);
        x.merge(&y);
        assert_eq!(x.slots, 2);
        assert_eq!(x.degraded_slots, 1);
        assert_eq!(x.rungs.carry_forward, 1);
    }

    #[test]
    fn summary_aggregates_solver_effort() {
        let mut a = SlotHealth::primary();
        a.newton_steps = 12;
        a.outer_iterations = 8;
        let mut b = SlotHealth::primary();
        b.newton_steps = 5;
        b.outer_iterations = 3;
        let mut s = HealthSummary::from_slots(&[a, b]);
        assert_eq!(s.newton_steps, 17);
        assert_eq!(s.peak_outer_iterations, 8);
        let other = HealthSummary {
            newton_steps: 1,
            peak_outer_iterations: 11,
            ..HealthSummary::default()
        };
        s.merge(&other);
        assert_eq!(s.newton_steps, 18);
        assert_eq!(s.peak_outer_iterations, 11);
    }

    #[test]
    fn legacy_health_json_without_effort_fields_deserializes() {
        let legacy = r#"{"rung":"Primary","attempts":1,"final_residual":0.0,
            "wall_time_ms":0.0,"repaired":false,"sanitized":false,"errors":[]}"#;
        let h: SlotHealth = serde_json::from_str(legacy).unwrap();
        assert_eq!(h.newton_steps, 0);
        assert_eq!(h.outer_iterations, 0);
        assert!(!h.deadline_hit);
        assert_eq!(h.deadline_ms, None);
        assert!(h.rung_ms.is_empty());
        assert_eq!(h.final_residual, Some(0.0));
        assert_eq!(h.schur_kernel, None);
        assert_eq!(h.newton_step_ms, None);
        assert_eq!(h.shards, 0);
        assert_eq!(h.coord_rounds, 0);
        assert_eq!(h.max_capacity_violation, None);
        assert_eq!(h.duality_gap, None);
        assert_eq!(h.stale_offers, 0);
        assert_eq!(h.shard_retries, 0);
        assert_eq!(h.quarantined_offers, 0);
        assert_eq!(h.breaker_trips, 0);
        assert_eq!(h.degraded_rounds, 0);
    }

    #[test]
    fn pre_fault_tolerance_health_record_round_trips() {
        // A record exactly as the previous sweep checkpoints wrote it:
        // shard coordination fields present, fault-tolerance fields absent.
        // Resuming one of those JSONL checkpoints must keep working, and
        // re-serializing must fill the new fields with zeros.
        let legacy = r#"{"rung":"Primary","attempts":1,"final_residual":2e-6,
            "wall_time_ms":12.5,"deadline_ms":50.0,"deadline_hit":false,
            "rung_ms":[12.5],"repaired":false,"sanitized":false,
            "newton_steps":40,"outer_iterations":9,"schur_kernel":"blocked",
            "newton_step_ms":0.3,"shards":4,"coord_rounds":3,
            "max_capacity_violation":0.01,"duality_gap":1.5e-5,
            "polished":false,"errors":[]}"#;
        let h: SlotHealth = serde_json::from_str(legacy).unwrap();
        assert_eq!(h.shards, 4);
        assert_eq!(h.stale_offers, 0);
        assert_eq!(h.shard_retries, 0);
        assert_eq!(h.quarantined_offers, 0);
        assert_eq!(h.breaker_trips, 0);
        assert_eq!(h.degraded_rounds, 0);
        let json = serde_json::to_string(&h).unwrap();
        let back: SlotHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shards, 4);
        assert_eq!(back.coord_rounds, 3);
        assert_eq!(back.breaker_trips, 0);

        let legacy_summary = r#"{"slots":4,"degraded_slots":0,"sanitized_slots":0,
            "rungs":{"primary":4,"relaxed_tolerance":0,"per_slot_lp":0,"carry_forward":0},
            "sharded_slots":4,"coord_rounds":12}"#;
        let s: HealthSummary = serde_json::from_str(legacy_summary).unwrap();
        assert_eq!(s.sharded_slots, 4);
        assert_eq!(s.stale_offers, 0);
        assert_eq!(s.shard_retries, 0);
        assert_eq!(s.quarantined_offers, 0);
        assert_eq!(s.breaker_trips, 0);
        assert_eq!(s.degraded_rounds, 0);
    }

    #[test]
    fn summary_aggregates_fault_tolerance_telemetry() {
        let mut a = SlotHealth::primary();
        a.stale_offers = 2;
        a.shard_retries = 3;
        a.quarantined_offers = 1;
        a.degraded_rounds = 2;
        let mut b = SlotHealth::primary();
        b.breaker_trips = 1;
        b.shard_retries = 1;
        let mut s = HealthSummary::from_slots(&[a, b]);
        assert_eq!(s.stale_offers, 2);
        assert_eq!(s.shard_retries, 4);
        assert_eq!(s.quarantined_offers, 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.degraded_rounds, 2);
        let other = HealthSummary {
            stale_offers: 1,
            shard_retries: 2,
            quarantined_offers: 3,
            breaker_trips: 4,
            degraded_rounds: 5,
            ..HealthSummary::default()
        };
        s.merge(&other);
        assert_eq!(s.stale_offers, 3);
        assert_eq!(s.shard_retries, 6);
        assert_eq!(s.quarantined_offers, 4);
        assert_eq!(s.breaker_trips, 5);
        assert_eq!(s.degraded_rounds, 7);
    }

    #[test]
    fn summary_aggregates_sharded_telemetry() {
        let mut a = SlotHealth::primary();
        a.shards = 4;
        a.coord_rounds = 3;
        a.max_capacity_violation = Some(0.02);
        a.duality_gap = Some(1e-5);
        let mut b = SlotHealth::primary();
        b.shards = 1; // monolithic fall-through: not a sharded slot
        b.coord_rounds = 0;
        let c = SlotHealth::primary(); // non-sharded algorithm
        let mut s = HealthSummary::from_slots(&[a.clone(), b, c]);
        assert_eq!(s.sharded_slots, 1);
        assert_eq!(s.coord_rounds, 3);
        assert!((s.peak_capacity_violation - 0.02).abs() < 1e-15);
        assert!(!a.degraded(), "sharding itself is not a degradation");
        let mut d = SlotHealth::primary();
        d.shards = 2;
        d.coord_rounds = 7;
        d.max_capacity_violation = Some(0.5);
        let other = HealthSummary::from_slots(&[d]);
        s.merge(&other);
        assert_eq!(s.sharded_slots, 2);
        assert_eq!(s.coord_rounds, 10);
        assert!((s.peak_capacity_violation - 0.5).abs() < 1e-15);
    }

    #[test]
    fn legacy_summary_json_without_shard_fields_deserializes() {
        let legacy = r#"{"slots":4,"degraded_slots":0,"sanitized_slots":0,
            "rungs":{"primary":4,"relaxed_tolerance":0,"per_slot_lp":0,"carry_forward":0}}"#;
        let s: HealthSummary = serde_json::from_str(legacy).unwrap();
        assert_eq!(s.sharded_slots, 0);
        assert_eq!(s.coord_rounds, 0);
        assert_eq!(s.peak_capacity_violation, 0.0);
    }

    #[test]
    fn summary_counts_blocked_kernel_slots() {
        let mut a = SlotHealth::primary();
        a.schur_kernel = Some("blocked".into());
        a.newton_step_ms = Some(0.4);
        let mut b = SlotHealth::primary();
        b.schur_kernel = Some("dense".into());
        let c = SlotHealth::primary(); // non-barrier slot: no kernel
        let mut s = HealthSummary::from_slots(&[a.clone(), b, c]);
        assert_eq!(s.blocked_kernel_slots, 1);
        assert!(!a.degraded(), "kernel choice is not a degradation");
        let other = HealthSummary::from_slots(&[a]);
        s.merge(&other);
        assert_eq!(s.blocked_kernel_slots, 2);
    }

    #[test]
    fn legacy_nan_residual_serialized_as_null_reads_back_as_none() {
        // Carry-forward slots used to write `final_residual: f64::NAN`,
        // which serde_json emits as `null`; those records must now load as
        // `None` rather than failing to parse.
        let legacy = r#"{"rung":"CarryForward","attempts":2,"final_residual":null,
            "wall_time_ms":1.5,"repaired":true,"sanitized":false,"errors":["x"]}"#;
        let h: SlotHealth = serde_json::from_str(legacy).unwrap();
        assert_eq!(h.final_residual, None);
        let json = serde_json::to_string(&h).unwrap();
        assert!(
            json.contains(r#""final_residual":null"#),
            "missing residual must serialize as null: {json}"
        );
    }

    #[test]
    fn deadline_hits_aggregate_and_merge() {
        let mut a = SlotHealth::primary();
        a.deadline_ms = Some(50.0);
        a.deadline_hit = true;
        a.rung = FallbackRung::DeadlineSalvage;
        let mut b = SlotHealth::primary();
        b.deadline_ms = Some(50.0);
        let mut s = HealthSummary::from_slots(&[a.clone(), b]);
        assert_eq!(s.deadline_hits, 1);
        assert_eq!(s.rungs.deadline_salvage, 1);
        assert!(a.degraded(), "a deadline hit is a degradation");
        let other = HealthSummary::from_slots(&[a]);
        s.merge(&other);
        assert_eq!(s.deadline_hits, 2);
        assert_eq!(s.rungs.deadline_salvage, 2);
        assert_eq!(s.rungs.total(), 3);
    }

    #[test]
    fn pre_shedding_health_record_round_trips() {
        // A record exactly as the fault-tolerance-era checkpoints wrote it:
        // shard fault fields present, sentinel/shed fields absent. Resuming
        // those JSONL checkpoints must keep working, and re-serializing
        // must fill the shed fields with their zero defaults.
        let legacy = r#"{"rung":"Primary","attempts":1,"final_residual":2e-6,
            "wall_time_ms":12.5,"deadline_ms":50.0,"deadline_hit":false,
            "rung_ms":[12.5],"repaired":false,"sanitized":false,
            "newton_steps":40,"outer_iterations":9,"schur_kernel":"blocked",
            "newton_step_ms":0.3,"shards":4,"coord_rounds":3,
            "max_capacity_violation":0.01,"duality_gap":1.5e-5,
            "polished":false,"stale_offers":1,"shard_retries":2,
            "quarantined_offers":0,"breaker_trips":0,"degraded_rounds":1,
            "errors":[]}"#;
        let h: SlotHealth = serde_json::from_str(legacy).unwrap();
        assert_eq!(h.sentinel_verdict, None);
        assert_eq!(h.shed_users, 0);
        assert_eq!(h.overflowed_users, 0);
        assert_eq!(h.shed_penalty, 0.0);
        let json = serde_json::to_string(&h).unwrap();
        let back: SlotHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sentinel_verdict, None);
        assert_eq!(back.shed_users, 0);
        assert_eq!(back.shards, 4);

        let legacy_summary = r#"{"slots":4,"degraded_slots":0,"sanitized_slots":0,
            "rungs":{"primary":4,"relaxed_tolerance":0,"per_slot_lp":0,"carry_forward":0},
            "sharded_slots":4,"coord_rounds":12,"shard_retries":2}"#;
        let s: HealthSummary = serde_json::from_str(legacy_summary).unwrap();
        assert_eq!(s.overloaded_slots, 0);
        assert_eq!(s.tight_slots, 0);
        assert_eq!(s.shed_users, 0);
        assert_eq!(s.overflowed_users, 0);
        assert_eq!(s.shed_penalty, 0.0);
        assert_eq!(s.rungs.shedding, 0);
        assert_eq!(s.rungs.total(), 4);
    }

    #[test]
    fn summary_aggregates_shedding_telemetry() {
        let mut a = SlotHealth::primary();
        a.rung = FallbackRung::Shedding;
        a.sentinel_verdict = Some(SentinelVerdict::Overloaded);
        a.shed_users = 3;
        a.overflowed_users = 3;
        a.shed_penalty = 7.5;
        let mut b = SlotHealth::primary();
        b.sentinel_verdict = Some(SentinelVerdict::Tight);
        let mut c = SlotHealth::primary();
        c.sentinel_verdict = Some(SentinelVerdict::Feasible);
        let mut s = HealthSummary::from_slots(&[a.clone(), b, c]);
        assert_eq!(s.overloaded_slots, 1);
        assert_eq!(s.tight_slots, 1);
        assert_eq!(s.shed_users, 3);
        assert_eq!(s.overflowed_users, 3);
        assert!((s.shed_penalty - 7.5).abs() < 1e-12);
        assert_eq!(s.rungs.shedding, 1);
        assert_eq!(s.rungs.total(), 3);
        assert!(a.degraded(), "a shed slot is a degradation");
        let other = HealthSummary::from_slots(&[a]);
        s.merge(&other);
        assert_eq!(s.overloaded_slots, 2);
        assert_eq!(s.shed_users, 6);
        assert!((s.shed_penalty - 15.0).abs() < 1e-12);
        assert_eq!(s.rungs.shedding, 2);
    }

    #[test]
    fn health_round_trips_through_serde() {
        let mut h = SlotHealth::primary();
        h.rung = FallbackRung::PerSlotLp;
        h.note_error("boom");
        let json = serde_json::to_string(&h).unwrap();
        let back: SlotHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rung, FallbackRung::PerSlotLp);
        assert_eq!(back.errors, vec!["boom".to_string()]);
    }
}
