//! The gap-preserving ℙ₀ → ℙ₁ transformation (§III-A, Lemma 1).
//!
//! ℙ₁ folds the bidirectional migration cost into a single direction with
//! `b_i = b_i^{out} + b_i^{in}`. Lemma 1 shows `P₁ ≤ P₀ + σ` with the
//! constant `σ = Σ_i b_i^{out} C_i`, so any r-competitive algorithm for ℙ₁
//! is r-competitive for ℙ₀ (up to the additive constant).

use crate::allocation::Allocation;
use crate::cost::slot_static_cost;
use crate::instance::Instance;

/// The ℙ₁ objective of a trajectory: static costs plus reconfiguration plus
/// **one-directional** migration `Σ_t Σ_i b̃_i z^{in}_{i,t}`.
///
/// # Panics
///
/// Panics if the trajectory length does not match the instance.
pub fn p1_objective(inst: &Instance, allocations: &[Allocation]) -> f64 {
    assert_eq!(allocations.len(), inst.num_slots(), "trajectory length");
    let w = inst.weights();
    let mut total = 0.0;
    let mut prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
    for (t, x) in allocations.iter().enumerate() {
        total += slot_static_cost(inst, t, x).total();
        for i in 0..inst.num_clouds() {
            let aggregate_increase = (x.cloud_total(i) - prev.cloud_total(i)).max(0.0);
            total += w.reconfig * inst.reconfig_price(i) * aggregate_increase;
            let mut z_in = 0.0;
            for j in 0..inst.num_users() {
                z_in += (x.get(i, j) - prev.get(i, j)).max(0.0);
            }
            total += w.migration * inst.migration_total(i) * z_in;
        }
        prev = x.clone();
    }
    total
}

/// Lemma 1's constant `σ = Σ_i w_mg · b_i^{out} · C_i`.
pub fn sigma(inst: &Instance) -> f64 {
    let w = inst.weights();
    (0..inst.num_clouds())
        .map(|i| w.migration * inst.migration_out(i) * inst.system().capacity(i))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{run_online, OnlineGreedy, OnlineRegularized};
    use crate::cost::evaluate_trajectory;

    #[test]
    fn lemma1_bound_holds_on_fig1() {
        // P₁ ≤ P₀ + σ for any trajectory.
        for (dab, ret) in [(2.1, true), (1.9, false)] {
            let inst = Instance::fig1_example(dab, ret);
            for alg in [
                &mut OnlineGreedy::new() as &mut dyn crate::algorithms::OnlineAlgorithm,
                &mut OnlineRegularized::with_defaults(),
            ] {
                let traj = run_online(&inst, alg).unwrap();
                let p0 = evaluate_trajectory(&inst, &traj.allocations).total();
                let p1 = p1_objective(&inst, &traj.allocations);
                assert!(
                    p1 <= p0 + sigma(&inst) + 1e-9,
                    "{}: P1 {p1} > P0 {p0} + σ {}",
                    alg.name(),
                    sigma(&inst)
                );
            }
        }
    }

    #[test]
    fn p1_uses_folded_price() {
        // Moving one unit i→k adds b_k^{out}+b_k^{in} at the incoming side
        // only: with fig1 prices (0.5 + 0.5) that is exactly 1.
        let inst = Instance::fig1_example(2.1, true);
        let mut a = Allocation::zeros(2, 1);
        a.set(0, 0, 1.0);
        let mut b = Allocation::zeros(2, 1);
        b.set(1, 0, 1.0);
        let p1 = p1_objective(&inst, &[a.clone(), b, a.clone()]);
        // Compare against hand computation: statics 2.5+2.5+2.5 at the
        // attached clouds (user path A,B,A aligns with allocations A,B,A):
        // slot1 ramp: rc 1 + mig (b0=1)·1; slot2: rc 1 + 1; slot3: rc 1 + 1.
        assert!((p1 - (7.5 + 6.0)).abs() < 1e-9, "p1 {p1}");
    }

    #[test]
    fn sigma_is_positive_constant() {
        let inst = Instance::fig1_example(2.1, true);
        // b_out = 0.5, C = 2 each → σ = 2.
        assert!((sigma(&inst) - 2.0).abs() < 1e-12);
    }
}
