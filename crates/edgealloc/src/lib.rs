//! `edgealloc` — online resource allocation for arbitrary user mobility in
//! distributed edge clouds.
//!
//! A complete Rust implementation of the ICDCS 2017 paper by Wang, Jiao, Li
//! and Mühlhäuser. An operator runs `I` edge clouds with capacities `C_i`;
//! `J` mobile users move arbitrarily between them, each carrying workload
//! `λ_j` that may be split across clouds. Four costs accrue over a
//! time-slotted horizon (program ℙ₀):
//!
//! * **operation** — time-varying per-unit resource prices `a_{i,t}`;
//! * **service quality** — user↔cloud and cloud↔cloud network delays;
//! * **reconfiguration** — `c_i · (scale-up of cloud i)⁺` across slots;
//! * **migration** — `b_i^{out}/b_i^{in}` per unit of workload moved.
//!
//! The centerpiece is [`algorithms::OnlineRegularized`]: at each slot it
//! solves the convex program ℙ₂ whose relative-entropy regularizers smooth
//! the dynamic costs, yielding a feasible trajectory with competitive ratio
//! `1 + γ|I|` (Theorem 2) — with **no** knowledge of future prices or
//! movements. All baselines evaluated by the paper are here too:
//! online-greedy, the atomistic group (perf-opt / oper-opt / stat-opt), the
//! offline optimum, and static allocations.
//!
//! # Quickstart
//!
//! ```
//! use edgealloc::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), edgealloc::Error> {
//! // A small scenario: the Rome metro system, random-walk users.
//! let net = mobility::rome_metro();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mob = mobility::random_walk::generate(&net, 8, 12, &mut rng);
//! let instance = Instance::synthetic(&net, mob, &mut rng);
//!
//! // Run the paper's online algorithm and compare with the offline optimum.
//! let mut online = OnlineRegularized::with_defaults();
//! let trajectory = run_online(&instance, &mut online)?;
//! let cost = evaluate_trajectory(&instance, &trajectory.allocations);
//!
//! let offline = solve_offline(&instance)?;
//! assert!(cost.total() >= offline.cost.total() - 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod algorithms;
pub mod allocation;
pub mod cost;
pub mod exact;
pub mod health;
pub mod instance;
pub mod programs;
pub mod ratio;
pub mod rounding;
pub mod sanitize;
pub mod sentinel;
pub mod shed;
pub mod system;
pub mod transform;

use std::fmt;

pub use algorithms::{run_online, OnlineAlgorithm, SlotInput, Trajectory};
pub use allocation::Allocation;
pub use cost::{evaluate_trajectory, CostBreakdown, CostWeights};
pub use exact::project_exact;
pub use health::{FallbackRung, HealthSummary, RungCounts, SlotHealth};
pub use instance::Instance;
pub use sentinel::{SentinelReport, SentinelVerdict};
pub use shed::{OverflowTier, ShedConfig, ShedDecision, SurvivorSlot};
pub use system::EdgeCloudSystem;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::algorithms::{
        run_online, solve_offline, OnlineAlgorithm, OnlineGreedy, OnlineRegularized, OperOpt,
        PerfOpt, StatOpt, StaticPolicy, Trajectory,
    };
    pub use crate::allocation::Allocation;
    pub use crate::cost::{evaluate_trajectory, CostBreakdown, CostWeights};
    pub use crate::exact::project_exact;
    pub use crate::health::{FallbackRung, HealthSummary, RungCounts, SlotHealth};
    pub use crate::instance::Instance;
    pub use crate::ratio::competitive_ratio;
    pub use crate::sentinel::{SentinelReport, SentinelVerdict};
    pub use crate::shed::{OverflowTier, ShedConfig, ShedDecision, SurvivorSlot};
    pub use crate::system::EdgeCloudSystem;
}

/// Errors surfaced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A solver from the `optim` substrate failed.
    Solver(optim::Error),
    /// The instance or arguments are internally inconsistent.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Solver(e) => write!(f, "solver failure: {e}"),
            Error::Invalid(s) => write!(f, "invalid input: {s}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Solver(e) => Some(e),
            Error::Invalid(_) => None,
        }
    }
}

impl From<optim::Error> for Error {
    fn from(e: optim::Error) -> Self {
        Error::Solver(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
