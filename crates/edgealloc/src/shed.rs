//! Minimal load shedding: the escape valve for overloaded slots.
//!
//! When the sentinel (see [`crate::sentinel`]) reports aggregate demand
//! above aggregate capacity, ℙ₂ has no feasible point and no amount of
//! ladder-walking will find one — the previous behavior was to dead-end in
//! carry-forward with a flagged deficit. This module gives the ladder a
//! principled rung instead: pick the **minimum-penalty** set of users to
//! defer for the slot, then re-solve ℙ₂ on the survivors, which are
//! feasible by construction.
//!
//! Deferred users are routed to an *overflow tier* — an
//! effectively-infinite-capacity remote cloud with a high access delay, in
//! the spirit of cloudlet/cloud hierarchies (Dinh et al. 2020) — or shed
//! outright when no overflow tier is configured. Either way the deferral
//! penalty is explicit and the decision carries a certificate: the
//! continuous relaxation of the selection problem
//!
//! ```text
//! min Σ_j p_j s_j   s.t.   Σ_j λ_j s_j ≥ required,   0 ≤ s_j ≤ 1
//! ```
//!
//! is a fractional-knapsack LP whose optimum sorts users by the penalty
//! density `p_j/λ_j`; [`plan_shedding`] computes that optimum analytically,
//! cross-checks it against `optim::lp` when budget allows, and rounds it
//! with a deterministic greedy that sheds at most one boundary user more
//! than the relaxation — so the integral decision is provably within one
//! user (and in workload terms within `max_j λ_j`) of the LP lower bound.

use crate::algorithms::SlotInput;
use crate::allocation::Allocation;
use crate::{Error, Result};
use optim::budget::SolveBudget;
use optim::lp::{ConstraintSense, IpmOptions, LpProblem};
use serde::{Deserialize, Serialize};

/// The overflow cloud tier deferred users are routed to: effectively
/// infinite capacity, far away. Costs follow the paper's per-slot model —
/// operation cost `w_op · unit_price · λ_j` plus quality cost
/// `w_q · delay` for a fully-served user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverflowTier {
    /// Per-unit-workload operation price at the overflow tier (edge prices
    /// in the synthetic scenarios average ~1).
    pub unit_price: f64,
    /// Access delay to the overflow tier, in quality-cost units (edge
    /// delays are single digits).
    pub delay: f64,
}

impl Default for OverflowTier {
    fn default() -> Self {
        OverflowTier {
            unit_price: 4.0,
            delay: 50.0,
        }
    }
}

/// Tuning of the shedding rung.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedConfig {
    /// Interior headroom: survivors are trimmed to at most
    /// `(1 − headroom) · ΣC` so the re-solved ℙ₂ keeps a real interior
    /// instead of landing exactly on the capacity boundary.
    pub headroom: f64,
    /// The overflow tier (`None` = deferred users are shed outright and
    /// penalized via `outright_unit_penalty`).
    pub overflow: Option<OverflowTier>,
    /// Penalty per unit of workload shed outright (only used when
    /// `overflow` is `None`); deliberately punitive.
    pub outright_unit_penalty: f64,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            headroom: 0.02,
            overflow: Some(OverflowTier::default()),
            outright_unit_penalty: 100.0,
        }
    }
}

/// The shedding decision for one overloaded slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShedDecision {
    /// Users deferred for this slot, ascending.
    pub deferred: Vec<usize>,
    /// Users kept (the reduced ℙ₂'s columns), ascending.
    pub survivors: Vec<usize>,
    /// Whether deferred users go to the overflow tier (vs shed outright).
    pub overflowed: bool,
    /// Total workload of the deferred users.
    pub shed_workload: f64,
    /// The workload the slot *had* to shed — `D − (1 − headroom)·C` — and
    /// simultaneously the LP lower bound on any feasible decision's shed
    /// workload.
    pub required_shed: f64,
    /// Total deferral penalty of the decision.
    pub penalty: f64,
    /// The fractional-knapsack (LP-relaxation) optimum of the penalty —
    /// the certificate the integral decision is measured against.
    pub penalty_lower_bound: f64,
    /// The numeric `optim::lp` objective for the same relaxation, when the
    /// cross-check solve ran and converged (should match
    /// `penalty_lower_bound` to solver tolerance).
    pub lp_objective: Option<f64>,
}

impl ShedDecision {
    /// A decision that sheds nobody (the slot was not overloaded).
    pub fn keep_all(num_users: usize) -> Self {
        ShedDecision {
            deferred: Vec::new(),
            survivors: (0..num_users).collect(),
            overflowed: false,
            shed_workload: 0.0,
            required_shed: 0.0,
            penalty: 0.0,
            penalty_lower_bound: 0.0,
            lp_objective: None,
        }
    }

    /// Whether anything was shed.
    pub fn is_empty(&self) -> bool {
        self.deferred.is_empty()
    }
}

/// The per-user deferral penalty under `cfg`: what one slot of overflow
/// service (or outright shedding) costs user `j`.
fn deferral_penalty(input: &SlotInput<'_>, cfg: &ShedConfig, lambda: f64) -> f64 {
    match cfg.overflow {
        Some(tier) => {
            input.weights.operation * tier.unit_price * lambda + input.weights.quality * tier.delay
        }
        None => cfg.outright_unit_penalty * lambda,
    }
}

/// Computes the minimum-penalty shedding decision for one slot.
///
/// Deterministic: users are ordered by penalty density `p_j/λ_j`
/// (ascending, ties by index), the greedy takes the shortest prefix
/// covering `required`, then swaps its boundary user for the lightest
/// not-picked user that still covers the residual — minimizing workload
/// overshoot at the same user count. The user *count* is monotone in the
/// overload (a higher `required` never sheds fewer users).
///
/// `budget` bounds the optional `optim::lp` cross-check; the analytic
/// fractional bound is always computed and never needs the solver.
///
/// # Errors
///
/// Returns [`Error::Invalid`] when the slot has no users to shed from.
pub fn plan_shedding(
    input: &SlotInput<'_>,
    cfg: &ShedConfig,
    budget: &SolveBudget,
) -> Result<ShedDecision> {
    let num_users = input.num_users();
    if num_users == 0 {
        return Err(Error::Invalid(
            "cannot shed from a slot with no users".into(),
        ));
    }
    let headroom = if cfg.headroom.is_finite() {
        cfg.headroom.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let lambda: Vec<f64> = input
        .workloads
        .iter()
        .map(|&l| if l.is_finite() { l.max(0.0) } else { 0.0 })
        .collect();
    let total_demand: f64 = lambda.iter().sum();
    let total_capacity: f64 = (0..input.num_clouds())
        .map(|i| input.system.capacity(i))
        .filter(|c| c.is_finite())
        .map(|c| c.max(0.0))
        .sum();
    let required = total_demand - (1.0 - headroom) * total_capacity;
    if required <= 0.0 {
        return Ok(ShedDecision::keep_all(num_users));
    }

    let penalty: Vec<f64> = lambda
        .iter()
        .map(|&l| deferral_penalty(input, cfg, l))
        .collect();
    // Penalty density: users that cover a lot of overload per unit of
    // penalty come first. Zero-workload users can never help and sort last.
    let density = |j: usize| {
        if lambda[j] > 0.0 {
            penalty[j] / lambda[j]
        } else {
            f64::INFINITY
        }
    };
    let mut order: Vec<usize> = (0..num_users).collect();
    order.sort_by(|&a, &b| {
        density(a)
            .partial_cmp(&density(b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    // Fractional-knapsack optimum of the relaxation: full users in density
    // order, one fractional boundary user.
    let mut penalty_lower_bound = 0.0;
    let mut covered = 0.0;
    for &j in &order {
        if covered >= required {
            break;
        }
        let take = (required - covered).min(lambda[j]);
        if lambda[j] > 0.0 {
            penalty_lower_bound += penalty[j] * take / lambda[j];
        }
        covered += take;
    }

    // Greedy prefix: shortest density-ordered prefix covering `required`.
    let mut picked: Vec<usize> = Vec::new();
    let mut cum = 0.0;
    for &j in &order {
        if cum >= required {
            break;
        }
        picked.push(j);
        cum += lambda[j];
    }
    // Overshoot swap: replace the boundary (last-picked) user with the
    // lightest candidate still covering the residual. Keeps the count, can
    // only shrink the overshoot, and — densities being increasing in λ only
    // through the additive quality term — never raises the penalty above
    // the boundary user's.
    if let Some(&last) = picked.last() {
        let residual = required - (cum - lambda[last]);
        let mut best = last;
        for j in 0..num_users {
            if picked.contains(&j) {
                continue;
            }
            if lambda[j] >= residual && lambda[j] < lambda[best] {
                best = j;
            }
        }
        if best != last {
            let len = picked.len();
            cum = cum - lambda[last] + lambda[best];
            picked[len - 1] = best;
        }
    }

    let mut deferred = picked;
    deferred.sort_unstable();
    let survivors: Vec<usize> = (0..num_users).filter(|j| !deferred.contains(j)).collect();
    let decision_penalty: f64 = deferred.iter().map(|&j| penalty[j]).sum();

    // Optional numeric cross-check of the analytic bound: the same
    // relaxation through `optim::lp`. Failure (or an exhausted budget) is
    // not an error — the analytic bound stands on its own.
    let lp_objective = if budget.exhausted(0) {
        None
    } else {
        let mut lp = LpProblem::new();
        for &p in &penalty {
            lp.add_var(p);
        }
        lp.add_row(
            ConstraintSense::Ge,
            required,
            &(0..num_users)
                .filter(|&j| lambda[j] > 0.0)
                .map(|j| (j, lambda[j]))
                .collect::<Vec<_>>(),
        );
        for j in 0..num_users {
            lp.add_row(ConstraintSense::Le, 1.0, &[(j, 1.0)]);
        }
        let opts = IpmOptions {
            budget: budget.slice(4),
            ..IpmOptions::default()
        };
        lp.solve_with(&opts)
            .ok()
            .map(|sol| sol.objective)
            .filter(|obj| obj.is_finite())
    };

    Ok(ShedDecision {
        deferred,
        survivors,
        overflowed: cfg.overflow.is_some(),
        shed_workload: cum,
        required_shed: required,
        penalty: decision_penalty,
        penalty_lower_bound,
        lp_objective,
    })
}

/// An owned survivor-only view of one slot: the columns of the users kept
/// by a [`ShedDecision`], plus the mappings to restrict warm starts into —
/// and scatter solutions out of — the reduced index space. Mirrors
/// [`crate::sanitize::SanitizedSlot`]'s borrow-back pattern.
#[derive(Debug, Clone)]
pub struct SurvivorSlot {
    survivors: Vec<usize>,
    workloads: Vec<f64>,
    attachment: Vec<usize>,
    access_delay: Vec<f64>,
}

impl SurvivorSlot {
    /// Extracts the survivor columns of `input` under `decision`.
    pub fn new(input: &SlotInput<'_>, decision: &ShedDecision) -> Self {
        let survivors = decision.survivors.clone();
        SurvivorSlot {
            workloads: survivors.iter().map(|&j| input.workloads[j]).collect(),
            attachment: survivors.iter().map(|&j| input.attachment[j]).collect(),
            access_delay: survivors.iter().map(|&j| input.access_delay[j]).collect(),
            survivors,
        }
    }

    /// The kept users, ascending.
    pub fn survivors(&self) -> &[usize] {
        &self.survivors
    }

    /// Number of survivors.
    pub fn len(&self) -> usize {
        self.survivors.len()
    }

    /// Whether everyone was shed.
    pub fn is_empty(&self) -> bool {
        self.survivors.is_empty()
    }

    /// The reduced slot view over the survivor columns, preserving the
    /// original slot index, system, prices, and weights.
    pub fn as_input<'a>(&'a self, raw: &SlotInput<'a>) -> SlotInput<'a> {
        SlotInput {
            t: raw.t,
            system: raw.system,
            workloads: &self.workloads,
            operation_prices: raw.operation_prices,
            attachment: self.attachment.clone(),
            access_delay: self.access_delay.clone(),
            reconfig_prices: raw.reconfig_prices,
            migration_out: raw.migration_out,
            migration_in: raw.migration_in,
            weights: raw.weights,
        }
    }

    /// Extracts the survivor columns of a full allocation (the reduced
    /// previous-slot reference the migration regularizers need).
    pub fn restrict(&self, x: &Allocation) -> Allocation {
        let num_clouds = x.num_clouds();
        let mut r = Allocation::zeros(num_clouds, self.survivors.len());
        for i in 0..num_clouds {
            for (col, &j) in self.survivors.iter().enumerate() {
                r.set(i, col, x.get(i, j));
            }
        }
        r
    }

    /// Restricts a flat cloud-major `I × J` vector (e.g. a stored warm
    /// start) to the survivor columns.
    pub fn restrict_flat(&self, flat: &[f64], num_clouds: usize) -> Vec<f64> {
        let num_users = flat.len().checked_div(num_clouds).unwrap_or(0);
        let s = self.survivors.len();
        let mut out = vec![0.0; num_clouds * s];
        for i in 0..num_clouds {
            for (col, &j) in self.survivors.iter().enumerate() {
                out[i * s + col] = flat[i * num_users + j];
            }
        }
        out
    }

    /// Scatters a reduced allocation back to the full `I × num_users`
    /// shape; deferred users' columns are zero (their workload lives at the
    /// overflow tier, not on any edge cloud).
    pub fn scatter(&self, reduced: &Allocation, num_users: usize) -> Allocation {
        let num_clouds = reduced.num_clouds();
        let mut x = Allocation::zeros(num_clouds, num_users);
        for i in 0..num_clouds {
            for (col, &j) in self.survivors.iter().enumerate() {
                x.set(i, j, reduced.get(i, col));
            }
        }
        x
    }

    /// Scatters a reduced flat cloud-major vector back to full shape.
    pub fn scatter_flat(&self, flat: &[f64], num_clouds: usize, num_users: usize) -> Vec<f64> {
        let s = self.survivors.len();
        let mut out = vec![0.0; num_clouds * num_users];
        for i in 0..num_clouds {
            for (col, &j) in self.survivors.iter().enumerate() {
                out[i * num_users + j] = flat[i * s + col];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    fn overloaded_input(factor: f64) -> Instance {
        let mut inst = Instance::fig1_example(2.1, true);
        // fig1: one user, λ = 1, capacity 4. Add overload via injection.
        inst.inject_workload(0, factor);
        inst
    }

    #[test]
    fn feasible_slot_sheds_nothing() {
        let inst = Instance::fig1_example(2.1, true);
        let input = SlotInput::from_instance(&inst, 0);
        let d = plan_shedding(&input, &ShedConfig::default(), &SolveBudget::unlimited()).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.survivors, vec![0]);
        assert_eq!(d.required_shed, 0.0);
    }

    #[test]
    fn overloaded_slot_sheds_enough_workload() {
        let inst = overloaded_input(10.0);
        let input = SlotInput::from_instance(&inst, 0);
        let d = plan_shedding(&input, &ShedConfig::default(), &SolveBudget::unlimited()).unwrap();
        assert_eq!(d.deferred, vec![0]);
        assert!(d.shed_workload >= d.required_shed);
        assert!(d.overflowed);
        assert!(d.penalty > 0.0);
        assert!(d.penalty >= d.penalty_lower_bound - 1e-9);
    }

    #[test]
    fn lp_cross_check_matches_the_analytic_bound() {
        let net = mobility::rome_metro();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
        let mob = mobility::random_walk::generate(&net, 12, 2, &mut rng);
        let mut inst = Instance::synthetic(&net, mob, &mut rng);
        for j in 0..inst.num_users() {
            inst.inject_workload(j, inst.workload(j) * 3.0);
        }
        let input = SlotInput::from_instance(&inst, 0);
        let d = plan_shedding(&input, &ShedConfig::default(), &SolveBudget::unlimited()).unwrap();
        assert!(!d.deferred.is_empty());
        let lp = d.lp_objective.expect("cross-check ran");
        let rel = (lp - d.penalty_lower_bound).abs() / d.penalty_lower_bound.max(1e-12);
        assert!(rel < 1e-4, "lp {lp} vs analytic {}", d.penalty_lower_bound);
        // The integral greedy is within one boundary user of the bound.
        assert!(d.penalty >= d.penalty_lower_bound - 1e-9);
    }

    #[test]
    fn shed_count_is_monotone_in_overload() {
        let net = mobility::rome_metro();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let mob = mobility::random_walk::generate(&net, 10, 2, &mut rng);
        let inst = Instance::synthetic(&net, mob, &mut rng);
        let mut last = 0usize;
        for surge in [1.5, 2.0, 2.5, 3.0, 4.0] {
            let mut surged = inst.clone();
            for j in 0..surged.num_users() {
                surged.inject_workload(j, inst.workload(j) * surge);
            }
            let input = SlotInput::from_instance(&surged, 0);
            let d =
                plan_shedding(&input, &ShedConfig::default(), &SolveBudget::unlimited()).unwrap();
            assert!(
                d.deferred.len() >= last,
                "surge {surge} shed {} after {last}",
                d.deferred.len()
            );
            last = d.deferred.len();
        }
        assert!(last > 0, "the largest surge shed nobody");
    }

    #[test]
    fn outright_shedding_penalizes_by_workload() {
        let inst = overloaded_input(10.0);
        let input = SlotInput::from_instance(&inst, 0);
        let cfg = ShedConfig {
            overflow: None,
            ..ShedConfig::default()
        };
        let d = plan_shedding(&input, &cfg, &SolveBudget::unlimited()).unwrap();
        assert!(!d.overflowed);
        assert!((d.penalty - cfg.outright_unit_penalty * 10.0).abs() < 1e-9);
    }

    #[test]
    fn survivor_slot_round_trips_restrict_and_scatter() {
        let decision = ShedDecision {
            deferred: vec![1],
            survivors: vec![0, 2],
            overflowed: true,
            shed_workload: 2.0,
            required_shed: 1.5,
            penalty: 3.0,
            penalty_lower_bound: 2.5,
            lp_objective: None,
        };
        let inst = Instance::fig1_example(2.1, true);
        let raw = SlotInput::from_instance(&inst, 0);
        // Fake a 3-user view by hand: reuse the real system with synthetic
        // per-user vectors.
        let workloads = [1.0, 2.0, 3.0];
        let attachment = vec![0, 1, 0];
        let access_delay = vec![0.5, 0.25, 0.75];
        let input = SlotInput {
            workloads: &workloads,
            attachment,
            access_delay,
            ..raw
        };
        let slot = SurvivorSlot::new(&input, &decision);
        assert_eq!(slot.len(), 2);
        let rinput = slot.as_input(&input);
        assert_eq!(rinput.workloads, &[1.0, 3.0]);
        assert_eq!(rinput.attachment, vec![0, 0]);

        let mut full = Allocation::zeros(2, 3);
        for i in 0..2 {
            for j in 0..3 {
                full.set(i, j, (10 * i + j) as f64);
            }
        }
        let reduced = slot.restrict(&full);
        assert_eq!(reduced.get(0, 1), 2.0);
        assert_eq!(reduced.get(1, 0), 10.0);
        let back = slot.scatter(&reduced, 3);
        assert_eq!(back.get(0, 0), 0.0);
        assert_eq!(back.get(0, 2), 2.0);
        assert_eq!(back.get(1, 1), 0.0, "deferred column is zero");

        let flat = slot.restrict_flat(full.as_flat(), 2);
        assert_eq!(flat, vec![0.0, 2.0, 10.0, 12.0]);
        let scattered = slot.scatter_flat(&flat, 2, 3);
        assert_eq!(scattered, vec![0.0, 0.0, 2.0, 10.0, 0.0, 12.0]);
    }
}
