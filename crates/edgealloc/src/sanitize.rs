//! Input sanitization for corrupted instances.
//!
//! Fault injection (and real telemetry) can hand the online pipeline
//! non-finite prices, negative delays, or vanished capacities. Feeding
//! those to the solvers produces NaN objectives, panics in comparison
//! sorts, or silent garbage. This module repairs a [`SlotInput`] into a
//! well-formed copy *before* any solver sees it, reporting exactly what
//! was changed so the slot can be flagged in its
//! [`crate::health::SlotHealth`].
//!
//! Sanitization is deliberately conservative:
//!
//! * a **non-finite price** is replaced by the *largest* finite price of
//!   its vector (corrupted entries become unattractive, never free);
//! * a **negative price or delay** is clamped to zero;
//! * a **non-finite or negative capacity** becomes zero (the cloud is
//!   treated as down, which the degradation ladder then handles) — an
//!   exact zero is kept as-is, since "cloud down" is a legitimate state,
//!   not corruption;
//! * a **non-finite or non-positive workload** becomes 1 (the paper's
//!   minimum `λ_j ∈ ℤ⁺`).

use crate::algorithms::SlotInput;
use crate::system::EdgeCloudSystem;

/// Replacement for a corrupted price: the largest finite entry of the
/// vector, so the corrupted option never looks artificially cheap.
fn price_ceiling(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .fold(f64::NAN, f64::max)
        .max(1.0)
}

/// Fixes one price vector in place; appends a note per change.
pub(crate) fn fix_prices(values: &mut [f64], what: &str, notes: &mut Vec<String>) {
    let ceiling = price_ceiling(values);
    for (i, v) in values.iter_mut().enumerate() {
        if !v.is_finite() {
            notes.push(format!("{what}[{i}] was {v}, set to {ceiling}"));
            *v = ceiling;
        } else if *v < 0.0 {
            notes.push(format!("{what}[{i}] was {v}, clamped to 0"));
            *v = 0.0;
        }
    }
}

/// Fixes workloads in place (finite and positive, minimum 1).
pub(crate) fn fix_workloads(values: &mut [f64], notes: &mut Vec<String>) {
    for (j, l) in values.iter_mut().enumerate() {
        if !l.is_finite() || !(*l > 0.0) {
            notes.push(format!("workload[{j}] was {l}, set to 1"));
            *l = 1.0;
        }
    }
}

/// Hardens a workload vector emitted by a generator (finite and positive,
/// minimum 1 — the paper's `λ_j ∈ ℤ⁺` floor), returning a note per
/// repaired entry. This is the public entry point hostile scenario
/// generators run *before* their surged demand reaches the sentinel, so a
/// NaN or negative surge factor cannot smuggle ill-formed demand into the
/// feasibility classification.
pub fn harden_workloads(values: &mut [f64]) -> Vec<String> {
    let mut notes = Vec::new();
    fix_workloads(values, &mut notes);
    notes
}

/// Clamps a multiplicative demand/capacity scaling factor to a safe value:
/// non-finite factors become 1 (no scaling), negative factors become 0
/// (full loss). Generators use this so a corrupted surge spec degrades to
/// a no-op instead of poisoning every downstream sum.
pub fn clamp_factor(v: f64) -> f64 {
    if !v.is_finite() {
        1.0
    } else if v < 0.0 {
        0.0
    } else {
        v
    }
}

/// Fixes a system's capacities and delays in place through the unchecked
/// injectors: sanitized capacities may legitimately be zero, which
/// [`EdgeCloudSystem::new`] rejects.
pub(crate) fn fix_system(system: &mut EdgeCloudSystem, notes: &mut Vec<String>) {
    let num_clouds = system.num_clouds();
    let delay_ceiling = {
        let mut m = 0.0f64;
        for i in 0..num_clouds {
            for k in 0..num_clouds {
                let d = system.delay(i, k);
                if d.is_finite() && d > m {
                    m = d;
                }
            }
        }
        m
    };
    for i in 0..num_clouds {
        let c = system.capacity(i);
        if !c.is_finite() || c < 0.0 {
            notes.push(format!("capacity[{i}] was {c}, set to 0"));
            system.inject_capacity(i, 0.0);
        }
        for k in 0..num_clouds {
            let d = system.delay(i, k);
            if i == k {
                if d != 0.0 {
                    notes.push(format!("delay[{i}][{i}] was {d}, set to 0"));
                    system.inject_delay(i, k, 0.0);
                }
            } else if !d.is_finite() {
                notes.push(format!("delay[{i}][{k}] was {d}, set to {delay_ceiling}"));
                system.inject_delay(i, k, delay_ceiling);
            } else if d < 0.0 {
                notes.push(format!("delay[{i}][{k}] was {d}, clamped to 0"));
                system.inject_delay(i, k, 0.0);
            }
        }
    }
}

/// An owned, well-formed copy of one slot's inputs. Borrow it back into a
/// [`SlotInput`] with [`SanitizedSlot::as_input`].
#[derive(Debug, Clone)]
pub struct SanitizedSlot {
    system: EdgeCloudSystem,
    workloads: Vec<f64>,
    operation_prices: Vec<f64>,
    access_delay: Vec<f64>,
    reconfig_prices: Vec<f64>,
    migration_out: Vec<f64>,
    migration_in: Vec<f64>,
}

impl SanitizedSlot {
    /// The slot view over the sanitized data, preserving the original
    /// slot index, attachments, and weights.
    pub fn as_input<'a>(&'a self, raw: &SlotInput<'_>) -> SlotInput<'a> {
        SlotInput {
            t: raw.t,
            system: &self.system,
            workloads: &self.workloads,
            operation_prices: &self.operation_prices,
            attachment: raw.attachment.clone(),
            access_delay: self.access_delay.clone(),
            reconfig_prices: &self.reconfig_prices,
            migration_out: &self.migration_out,
            migration_in: &self.migration_in,
            weights: raw.weights,
        }
    }
}

/// Checks a slot's inputs and, when anything is corrupted, returns a
/// repaired copy plus a note per repaired value. Returns `None` for clean
/// inputs so the common path stays allocation-free.
pub fn sanitize_slot(input: &SlotInput<'_>) -> Option<(SanitizedSlot, Vec<String>)> {
    let mut notes = Vec::new();

    let mut workloads = input.workloads.to_vec();
    fix_workloads(&mut workloads, &mut notes);

    let mut operation_prices = input.operation_prices.to_vec();
    fix_prices(&mut operation_prices, "operation_price", &mut notes);
    let mut reconfig_prices = input.reconfig_prices.to_vec();
    fix_prices(&mut reconfig_prices, "reconfig_price", &mut notes);
    let mut migration_out = input.migration_out.to_vec();
    fix_prices(&mut migration_out, "migration_out", &mut notes);
    let mut migration_in = input.migration_in.to_vec();
    fix_prices(&mut migration_in, "migration_in", &mut notes);

    let mut access_delay = input.access_delay.clone();
    for (j, d) in access_delay.iter_mut().enumerate() {
        if !d.is_finite() || *d < 0.0 {
            notes.push(format!("access_delay[{j}] was {d}, clamped to 0"));
            *d = 0.0;
        }
    }

    let mut system = input.system.clone();
    fix_system(&mut system, &mut notes);

    if notes.is_empty() {
        return None;
    }
    Some((
        SanitizedSlot {
            system,
            workloads,
            operation_prices,
            access_delay,
            reconfig_prices,
            migration_out,
            migration_in,
        },
        notes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    #[test]
    fn clean_input_needs_no_sanitization() {
        let inst = Instance::fig1_example(2.1, true);
        let input = SlotInput::from_instance(&inst, 0);
        assert!(sanitize_slot(&input).is_none());
    }

    #[test]
    fn nan_price_becomes_the_row_ceiling() {
        let inst = Instance::fig1_example(2.1, true);
        let mut bad = inst.clone();
        bad.inject_operation_price(0, 1, f64::NAN);
        let input = SlotInput::from_instance(&bad, 0);
        let (clean, notes) = sanitize_slot(&input).expect("corruption detected");
        let fixed = clean.as_input(&input);
        assert!(fixed.operation_prices.iter().all(|p| p.is_finite()));
        // The surviving finite price is 1.0, so the ceiling is 1.0.
        assert_eq!(fixed.operation_prices[1], 1.0);
        assert_eq!(notes.len(), 1);
    }

    #[test]
    fn negative_price_clamps_to_zero() {
        let inst = Instance::fig1_example(2.1, true);
        let mut bad = inst.clone();
        bad.inject_operation_price(0, 0, -5.0);
        let input = SlotInput::from_instance(&bad, 0);
        let (clean, _) = sanitize_slot(&input).unwrap();
        assert_eq!(clean.as_input(&input).operation_prices[0], 0.0);
    }

    #[test]
    fn corrupted_capacity_becomes_zero_but_exact_zero_is_kept_clean() {
        let inst = Instance::fig1_example(2.1, true);
        let mut bad = inst.clone();
        bad.system_mut().inject_capacity(0, f64::INFINITY);
        let input = SlotInput::from_instance(&bad, 0);
        let (clean, _) = sanitize_slot(&input).unwrap();
        assert_eq!(clean.as_input(&input).system.capacity(0), 0.0);

        // A cloud that is down (capacity exactly 0) is a state, not a fault.
        let mut down = inst.clone();
        down.system_mut().inject_capacity(0, 0.0);
        let input = SlotInput::from_instance(&down, 0);
        assert!(sanitize_slot(&input).is_none());
    }

    #[test]
    fn harden_workloads_repairs_generator_output() {
        let mut w = vec![2.0, f64::NAN, -3.0, f64::INFINITY, 0.0, 5.5];
        let notes = harden_workloads(&mut w);
        assert_eq!(w, vec![2.0, 1.0, 1.0, 1.0, 1.0, 5.5]);
        assert_eq!(notes.len(), 4);
        let mut clean = vec![1.0, 2.0];
        assert!(harden_workloads(&mut clean).is_empty());
    }

    #[test]
    fn clamp_factor_neutralizes_bad_scaling() {
        assert_eq!(clamp_factor(2.5), 2.5);
        assert_eq!(clamp_factor(0.0), 0.0);
        assert_eq!(clamp_factor(-1.0), 0.0);
        assert_eq!(clamp_factor(f64::NAN), 1.0);
        assert_eq!(clamp_factor(f64::INFINITY), 1.0);
    }

    #[test]
    fn nan_workload_becomes_one() {
        let inst = Instance::fig1_example(2.1, true);
        let mut bad = inst.clone();
        bad.inject_workload(0, f64::NAN);
        let input = SlotInput::from_instance(&bad, 0);
        let (clean, _) = sanitize_slot(&input).unwrap();
        assert_eq!(clean.as_input(&input).workloads[0], 1.0);
    }
}
