//! Full problem instances: system + users + mobility + price processes.

use crate::cost::CostWeights;
use crate::system::EdgeCloudSystem;
use crate::{Error, Result};
use mobility::prices::{self, PriceConfig};
use mobility::workload::WorkloadDist;
use mobility::{MobilityInput, StationNetwork};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of [`Instance::synthetic_with`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Workload distribution for `λ_j`.
    pub workload: WorkloadDist,
    /// Target system utilization (§V-A keeps 80%: total capacity is
    /// `total_workload / utilization`).
    pub utilization: f64,
    /// Price-process parameters.
    pub prices: PriceConfig,
    /// Delay (quality-cost) units per kilometer of distance.
    pub delay_per_km: f64,
    /// Cost-component weights.
    pub weights: CostWeights,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            workload: WorkloadDist::default_power(),
            utilization: 0.8,
            prices: PriceConfig::default(),
            delay_per_km: 1.0,
            weights: CostWeights::default(),
        }
    }
}

/// A complete instance of the online resource-allocation problem: the
/// quantities an omniscient offline solver sees. Online algorithms access
/// it only through per-slot [`crate::algorithms::SlotInput`] views.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    system: EdgeCloudSystem,
    workloads: Vec<f64>,
    mobility: MobilityInput,
    /// `operation_prices[t][i]` = `a_{i,t}`.
    operation_prices: Vec<Vec<f64>>,
    /// `c_i`.
    reconfig_prices: Vec<f64>,
    /// `b_i^{out}`.
    migration_out: Vec<f64>,
    /// `b_i^{in}`.
    migration_in: Vec<f64>,
    weights: CostWeights,
    /// Per-slot multiplicative demand scaling `demand_factors[t]` applied
    /// to every `λ_j` on the *online* path (hostile generators use this to
    /// create overload mid-horizon without tripping [`Instance::new`]'s
    /// aggregate-feasibility validation). `None` = no scaling anywhere.
    #[serde(default)]
    demand_factors: Option<Vec<f64>>,
    /// Per-slot, per-cloud multiplicative capacity scaling
    /// `capacity_factors[t][i]` (rolling degradation). `None` = no scaling.
    #[serde(default)]
    capacity_factors: Option<Vec<Vec<f64>>>,
}

impl Instance {
    /// Assembles and validates an instance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] on any dimensional inconsistency,
    /// non-positive workload, or negative price.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        system: EdgeCloudSystem,
        workloads: Vec<f64>,
        mobility: MobilityInput,
        operation_prices: Vec<Vec<f64>>,
        reconfig_prices: Vec<f64>,
        migration_out: Vec<f64>,
        migration_in: Vec<f64>,
        weights: CostWeights,
    ) -> Result<Self> {
        let num_clouds = system.num_clouds();
        if mobility.num_clouds() != num_clouds {
            return Err(Error::Invalid(format!(
                "mobility references {} clouds, system has {}",
                mobility.num_clouds(),
                num_clouds
            )));
        }
        if workloads.len() != mobility.num_users() {
            return Err(Error::Invalid(format!(
                "{} workloads for {} users",
                workloads.len(),
                mobility.num_users()
            )));
        }
        if workloads.iter().any(|&l| !(l >= 1.0) || !l.is_finite()) {
            return Err(Error::Invalid(
                "workloads must be ≥ 1 (λ_j ∈ ℤ⁺ in the paper)".into(),
            ));
        }
        if operation_prices.len() != mobility.num_slots() {
            return Err(Error::Invalid(format!(
                "{} operation-price rows for {} slots",
                operation_prices.len(),
                mobility.num_slots()
            )));
        }
        for (t, row) in operation_prices.iter().enumerate() {
            if row.len() != num_clouds {
                return Err(Error::Invalid(format!(
                    "operation price row {t} wrong length"
                )));
            }
            if row.iter().any(|&p| p < 0.0 || !p.is_finite()) {
                return Err(Error::Invalid(format!(
                    "negative operation price at slot {t}"
                )));
            }
        }
        for (name, v) in [
            ("reconfig", &reconfig_prices),
            ("migration_out", &migration_out),
            ("migration_in", &migration_in),
        ] {
            if v.len() != num_clouds {
                return Err(Error::Invalid(format!("{name} prices wrong length")));
            }
            if v.iter().any(|&p| p < 0.0 || !p.is_finite()) {
                return Err(Error::Invalid(format!("negative {name} price")));
            }
        }
        for (name, w) in [
            ("operation", weights.operation),
            ("quality", weights.quality),
            ("reconfig", weights.reconfig),
            ("migration", weights.migration),
        ] {
            if !w.is_finite() || w < 0.0 {
                return Err(Error::Invalid(format!(
                    "{name} cost weight must be finite and non-negative, got {w}"
                )));
            }
        }
        let total_workload: f64 = workloads.iter().sum();
        if system.total_capacity() < total_workload {
            return Err(Error::Invalid(format!(
                "total capacity {} below total workload {total_workload}; the problem is infeasible",
                system.total_capacity()
            )));
        }
        Ok(Instance {
            system,
            workloads,
            mobility,
            operation_prices,
            reconfig_prices,
            migration_out,
            migration_in,
            weights,
            demand_factors: None,
            capacity_factors: None,
        })
    }

    /// Builds a paper-style synthetic instance over a station network with
    /// default parameters (power-law workloads, 80% utilization, §V-A price
    /// processes).
    ///
    /// # Panics
    ///
    /// Panics if the generated instance fails validation (cannot happen for
    /// a non-empty network and mobility).
    pub fn synthetic<R: Rng + ?Sized>(
        net: &StationNetwork,
        mobility: MobilityInput,
        rng: &mut R,
    ) -> Self {
        Self::synthetic_with(net, mobility, &SyntheticConfig::default(), rng)
            .expect("default synthetic instance must be valid")
    }

    /// Builds a synthetic instance with explicit configuration.
    ///
    /// Capacities follow §V-A: total capacity is `Σλ / utilization`,
    /// distributed across clouds proportionally to the attachment frequency
    /// (Laplace-smoothed so unvisited clouds keep a sliver of capacity).
    ///
    /// # Errors
    ///
    /// Propagates [`Instance::new`] validation failures.
    pub fn synthetic_with<R: Rng + ?Sized>(
        net: &StationNetwork,
        mobility: MobilityInput,
        cfg: &SyntheticConfig,
        rng: &mut R,
    ) -> Result<Self> {
        if mobility.num_clouds() != net.len() {
            return Err(Error::Invalid(
                "mobility was generated for a different network".into(),
            ));
        }
        let num_clouds = net.len();
        let num_users = mobility.num_users();
        let num_slots = mobility.num_slots();
        let workloads: Vec<f64> = cfg
            .workload
            .sample_many(num_users, rng)
            .into_iter()
            .map(f64::from)
            .collect();
        let total_workload: f64 = workloads.iter().sum();

        // Capacity ∝ attachment frequency (smoothed), total = Σλ/utilization.
        let freq = mobility.attachment_frequency();
        let smooth: Vec<f64> = freq.iter().map(|&f| f as f64 + 1.0).collect();
        let total_smooth: f64 = smooth.iter().sum();
        let total_capacity = total_workload / cfg.utilization;
        let capacities: Vec<f64> = smooth
            .iter()
            .map(|&s| total_capacity * s / total_smooth)
            .collect();

        let system = EdgeCloudSystem::from_stations(net, capacities, cfg.delay_per_km)?;
        let base = prices::operation_base_prices(system.capacities(), cfg.prices.operation_mean);
        let operation_prices = prices::operation_price_series_ar1(
            &base,
            num_slots,
            cfg.prices.operation_floor_frac,
            cfg.prices.operation_correlation,
            rng,
        );
        let reconfig_prices = prices::reconfig_prices(
            num_clouds,
            cfg.prices.reconfig_mean,
            cfg.prices.reconfig_sd,
            rng,
        );
        let (migration_out, migration_in) =
            prices::bandwidth_prices(num_clouds, cfg.prices.bandwidth_scale, rng);
        Instance::new(
            system,
            workloads,
            mobility,
            operation_prices,
            reconfig_prices,
            migration_out,
            migration_in,
            cfg.weights,
        )
    }

    /// The two-cloud, one-user, three-slot toy instance of Figure 1.
    ///
    /// `d_ab` is the inter-cloud delay (2.1 for Fig 1(a), 1.9 for Fig 1(b));
    /// with `user_returns` the user visits clouds A, B, A (Fig 1(a)),
    /// otherwise A, B, B (Fig 1(b)). Operation prices are 1 at both clouds,
    /// the access delay is 1.5 in every slot, `c_i = 1`, and
    /// `b^{out} = b^{in} = 0.5` so a full move costs 1 in migration plus 1
    /// in reconfiguration — reproducing the cost tallies 11.5 vs 9.6 and
    /// 11.3 vs 9.5 from the paper (excluding the initial ramp-up transition
    /// which is identical for all policies; see
    /// [`crate::cost::evaluate_trajectory`] with a warm initial allocation).
    pub fn fig1_example(d_ab: f64, user_returns: bool) -> Self {
        let system = EdgeCloudSystem::new(vec![2.0, 2.0], vec![vec![0.0, d_ab], vec![d_ab, 0.0]])
            .expect("static example system is valid");
        let attachment = if user_returns {
            vec![vec![0, 1, 0]]
        } else {
            vec![vec![0, 1, 1]]
        };
        let mobility = MobilityInput::new(2, attachment, vec![vec![1.5, 1.5, 1.5]]);
        Instance::new(
            system,
            vec![1.0],
            mobility,
            vec![vec![1.0, 1.0]; 3],
            vec![1.0, 1.0],
            vec![0.5, 0.5],
            vec![0.5, 0.5],
            CostWeights::default(),
        )
        .expect("static example instance is valid")
    }

    /// An adversarial "ping-pong" instance exploring the lower bound the
    /// paper leaves as future work: one unit-workload user oscillates
    /// between two clouds every slot; the inter-cloud delay `k + 0.1` is
    /// just above the full dynamic cost `k` of a move (reconfiguration
    /// `k/2` plus migration `k/4 + k/4`), so online-greedy relocates every
    /// slot while better policies park the workload. As `k` grows,
    /// greedy's competitive ratio approaches 2 on this family.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive or `num_slots == 0`.
    pub fn pingpong(num_slots: usize, k: f64) -> Self {
        assert!(k > 0.0, "k must be positive");
        assert!(num_slots > 0, "need at least one slot");
        let d_ab = k + 0.1;
        let system = EdgeCloudSystem::new(vec![2.0, 2.0], vec![vec![0.0, d_ab], vec![d_ab, 0.0]])
            .expect("static system is valid");
        let attachment = vec![(0..num_slots).map(|t| t % 2).collect::<Vec<_>>()];
        let mobility = MobilityInput::new(2, attachment, vec![vec![0.0; num_slots]]);
        Instance::new(
            system,
            vec![1.0],
            mobility,
            vec![vec![1.0, 1.0]; num_slots],
            vec![k / 2.0, k / 2.0],
            vec![k / 4.0, k / 4.0],
            vec![k / 4.0, k / 4.0],
            CostWeights::default(),
        )
        .expect("static instance is valid")
    }

    /// The underlying system.
    pub fn system(&self) -> &EdgeCloudSystem {
        &self.system
    }

    /// Number of edge clouds `I`.
    pub fn num_clouds(&self) -> usize {
        self.system.num_clouds()
    }

    /// Number of users `J`.
    pub fn num_users(&self) -> usize {
        self.workloads.len()
    }

    /// Number of time slots `T`.
    pub fn num_slots(&self) -> usize {
        self.mobility.num_slots()
    }

    /// Workload `λ_j`.
    pub fn workload(&self, j: usize) -> f64 {
        self.workloads[j]
    }

    /// All workloads.
    pub fn workloads(&self) -> &[f64] {
        &self.workloads
    }

    /// Total workload `Σ_j λ_j`.
    pub fn total_workload(&self) -> f64 {
        self.workloads.iter().sum()
    }

    /// The mobility input.
    pub fn mobility(&self) -> &MobilityInput {
        &self.mobility
    }

    /// Cloud user `j` is attached to at slot `t` (`l_{j,t}`).
    pub fn attached(&self, j: usize, t: usize) -> usize {
        self.mobility.attached(j, t)
    }

    /// Access delay `d(j, l_{j,t})`.
    pub fn access_delay(&self, j: usize, t: usize) -> f64 {
        self.mobility.delay(j, t)
    }

    /// Operation price `a_{i,t}`.
    pub fn operation_price(&self, i: usize, t: usize) -> f64 {
        self.operation_prices[t][i]
    }

    /// Operation prices of slot `t` for all clouds.
    pub fn operation_prices_at(&self, t: usize) -> &[f64] {
        &self.operation_prices[t]
    }

    /// Reconfiguration price `c_i`.
    pub fn reconfig_price(&self, i: usize) -> f64 {
        self.reconfig_prices[i]
    }

    /// Outgoing migration price `b_i^{out}`.
    pub fn migration_out(&self, i: usize) -> f64 {
        self.migration_out[i]
    }

    /// Incoming migration price `b_i^{in}`.
    pub fn migration_in(&self, i: usize) -> f64 {
        self.migration_in[i]
    }

    /// Folded migration price `b_i = b_i^{out} + b_i^{in}` (ℙ₁, §III-A).
    pub fn migration_total(&self, i: usize) -> f64 {
        self.migration_out[i] + self.migration_in[i]
    }

    /// All reconfiguration prices.
    pub fn reconfig_prices_slice(&self) -> &[f64] {
        &self.reconfig_prices
    }

    /// All outgoing migration prices.
    pub fn migration_out_slice(&self) -> &[f64] {
        &self.migration_out
    }

    /// All incoming migration prices.
    pub fn migration_in_slice(&self) -> &[f64] {
        &self.migration_in
    }

    /// The cost weights.
    pub fn weights(&self) -> CostWeights {
        self.weights
    }

    /// Returns a copy of the instance with different cost weights (used for
    /// the Figure-4 `μ` sweep).
    pub fn with_weights(&self, weights: CostWeights) -> Self {
        let mut inst = self.clone();
        inst.weights = weights;
        inst
    }

    /// Overwrites one operation price **without validation** — the value
    /// may be negative or non-finite. This deliberately breaks the
    /// invariants [`Instance::new`] established; it exists for fault
    /// injection (see `sim::faults`). Use [`Instance::sanitized`] or the
    /// online pipeline's per-slot sanitization to restore well-formedness.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `i` is out of range.
    pub fn inject_operation_price(&mut self, t: usize, i: usize, value: f64) {
        self.operation_prices[t][i] = value;
    }

    /// Overwrites one workload **without validation** — same caveats as
    /// [`Instance::inject_operation_price`].
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn inject_workload(&mut self, j: usize, value: f64) {
        self.workloads[j] = value;
    }

    /// Unchecked mutable access to the system, for fault injection via
    /// [`EdgeCloudSystem::inject_capacity`] and
    /// [`EdgeCloudSystem::inject_delay`]. Mutations bypass all validation.
    pub fn system_mut(&mut self) -> &mut EdgeCloudSystem {
        &mut self.system
    }

    /// Multiplies the demand scaling factor of slot `t` by `factor`
    /// (clamped via [`crate::sanitize::clamp_factor`]; out-of-range `t` is
    /// ignored). The factor applies to every user's `λ_j` on the online
    /// path — see [`Instance::scaled_slot`] — and deliberately bypasses
    /// [`Instance::new`]'s aggregate-feasibility validation: overload is
    /// exactly what hostile generators are for. The offline/cost view keeps
    /// the base workloads.
    pub fn scale_demand(&mut self, t: usize, factor: f64) {
        if t >= self.num_slots() {
            return;
        }
        let factors = self
            .demand_factors
            .get_or_insert_with(|| vec![1.0; self.mobility.num_slots()]);
        factors[t] *= crate::sanitize::clamp_factor(factor);
    }

    /// Multiplies cloud `i`'s capacity scaling factor at slot `t` by
    /// `factor` (clamped; out-of-range indices ignored). Same online-path
    /// semantics as [`Instance::scale_demand`].
    pub fn scale_capacity(&mut self, t: usize, i: usize, factor: f64) {
        if t >= self.num_slots() || i >= self.num_clouds() {
            return;
        }
        let num_clouds = self.system.num_clouds();
        let factors = self
            .capacity_factors
            .get_or_insert_with(|| vec![vec![1.0; num_clouds]; self.mobility.num_slots()]);
        factors[t][i] *= crate::sanitize::clamp_factor(factor);
    }

    /// The demand scaling factor of slot `t` (1 when unscaled).
    pub fn demand_factor(&self, t: usize) -> f64 {
        self.demand_factors
            .as_ref()
            .and_then(|f| f.get(t))
            .copied()
            .unwrap_or(1.0)
    }

    /// The capacity scaling factor of cloud `i` at slot `t` (1 when
    /// unscaled).
    pub fn capacity_factor(&self, t: usize, i: usize) -> f64 {
        self.capacity_factors
            .as_ref()
            .and_then(|f| f.get(t))
            .and_then(|row| row.get(i))
            .copied()
            .unwrap_or(1.0)
    }

    /// The scaled view of slot `t`, or `None` when every factor at `t` is
    /// exactly 1 — the common case, which keeps the unscaled online path
    /// allocation-free and bit-identical to the pre-scaling pipeline.
    /// Scaled workloads are hardened (finite, `λ_j ≥ 1`) so a hostile surge
    /// cannot smuggle ill-formed demand past the sentinel.
    pub fn scaled_slot(&self, t: usize) -> Option<ScaledSlot> {
        let df = self.demand_factor(t);
        let any_cap = (0..self.num_clouds()).any(|i| self.capacity_factor(t, i) != 1.0);
        if df == 1.0 && !any_cap {
            return None;
        }
        let mut workloads: Vec<f64> = self.workloads.iter().map(|&l| l * df).collect();
        crate::sanitize::harden_workloads(&mut workloads);
        let mut system = self.system.clone();
        if any_cap {
            for i in 0..self.num_clouds() {
                let cf = self.capacity_factor(t, i);
                if cf != 1.0 {
                    let scaled = self.system.capacity(i) * cf;
                    system.inject_capacity(
                        i,
                        if scaled.is_finite() {
                            scaled.max(0.0)
                        } else {
                            0.0
                        },
                    );
                }
            }
        }
        Some(ScaledSlot { system, workloads })
    }

    /// Returns a copy with all corrupted values repaired (see the rules in
    /// [`crate::sanitize`]) plus one note per repaired value; the notes are
    /// empty when the instance was already well-formed. Structural problems
    /// — total demand exceeding total capacity, for instance — are *not*
    /// "repaired": they are real, and the degradation ladder handles them.
    pub fn sanitized(&self) -> (Self, Vec<String>) {
        let mut inst = self.clone();
        let mut notes = Vec::new();
        crate::sanitize::fix_workloads(&mut inst.workloads, &mut notes);
        for (t, row) in inst.operation_prices.iter_mut().enumerate() {
            let before = notes.len();
            crate::sanitize::fix_prices(row, "operation_price", &mut notes);
            for note in &mut notes[before..] {
                note.push_str(&format!(" (slot {t})"));
            }
        }
        crate::sanitize::fix_prices(&mut inst.reconfig_prices, "reconfig_price", &mut notes);
        crate::sanitize::fix_prices(&mut inst.migration_out, "migration_out", &mut notes);
        crate::sanitize::fix_prices(&mut inst.migration_in, "migration_in", &mut notes);
        crate::sanitize::fix_system(&mut inst.system, &mut notes);
        if let Some(factors) = &mut inst.demand_factors {
            for (t, f) in factors.iter_mut().enumerate() {
                let clamped = crate::sanitize::clamp_factor(*f);
                if clamped != *f {
                    notes.push(format!("demand_factor[{t}] was {f}, set to {clamped}"));
                    *f = clamped;
                }
            }
        }
        if let Some(factors) = &mut inst.capacity_factors {
            for (t, row) in factors.iter_mut().enumerate() {
                for (i, f) in row.iter_mut().enumerate() {
                    let clamped = crate::sanitize::clamp_factor(*f);
                    if clamped != *f {
                        notes.push(format!(
                            "capacity_factor[{t}][{i}] was {f}, set to {clamped}"
                        ));
                        *f = clamped;
                    }
                }
            }
        }
        (inst, notes)
    }
}

/// The scaled online view of one slot under the instance's hostile demand
/// and capacity factors: an owned system copy with scaled capacities plus
/// the scaled (and hardened) workloads. Borrow it back into a
/// [`crate::algorithms::SlotInput`] with [`ScaledSlot::as_input`] — the
/// same pattern as [`crate::sanitize::SanitizedSlot`].
#[derive(Debug, Clone)]
pub struct ScaledSlot {
    system: EdgeCloudSystem,
    workloads: Vec<f64>,
}

impl ScaledSlot {
    /// The slot-`t` view over the scaled data; prices and mobility come
    /// from the instance unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `t >= inst.num_slots()`.
    pub fn as_input<'a>(
        &'a self,
        inst: &'a Instance,
        t: usize,
    ) -> crate::algorithms::SlotInput<'a> {
        let num_users = inst.num_users();
        crate::algorithms::SlotInput {
            t,
            system: &self.system,
            workloads: &self.workloads,
            operation_prices: inst.operation_prices_at(t),
            attachment: (0..num_users).map(|j| inst.attached(j, t)).collect(),
            access_delay: (0..num_users).map(|j| inst.access_delay(j, t)).collect(),
            reconfig_prices: inst.reconfig_prices_slice(),
            migration_out: inst.migration_out_slice(),
            migration_in: inst.migration_in_slice(),
            weights: inst.weights(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthetic_instance_is_consistent() {
        let net = mobility::rome_metro();
        let mut rng = StdRng::seed_from_u64(3);
        let mob = mobility::random_walk::generate(&net, 10, 8, &mut rng);
        let inst = Instance::synthetic(&net, mob, &mut rng);
        assert_eq!(inst.num_clouds(), 15);
        assert_eq!(inst.num_users(), 10);
        assert_eq!(inst.num_slots(), 8);
        // 80% utilization → capacity = 1.25 × workload.
        let ratio = inst.system().total_capacity() / inst.total_workload();
        assert!((ratio - 1.25).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn capacity_follows_attachment_frequency() {
        let net = mobility::rome_metro();
        let mut rng = StdRng::seed_from_u64(5);
        // All users parked at station 0.
        let mob = MobilityInput::new(15, vec![vec![0; 6]; 8], vec![vec![0.0; 6]; 8]);
        let inst = Instance::synthetic(&net, mob, &mut rng);
        let c0 = inst.system().capacity(0);
        for i in 1..15 {
            assert!(c0 > inst.system().capacity(i));
        }
    }

    #[test]
    fn rejects_capacity_below_workload() {
        let system = EdgeCloudSystem::new(vec![1.0], vec![vec![0.0]]).unwrap();
        let mob = MobilityInput::new(1, vec![vec![0]], vec![vec![0.0]]);
        let r = Instance::new(
            system,
            vec![5.0],
            mob,
            vec![vec![1.0]],
            vec![1.0],
            vec![0.5],
            vec![0.5],
            CostWeights::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_fractional_below_one_workload() {
        let system = EdgeCloudSystem::new(vec![10.0], vec![vec![0.0]]).unwrap();
        let mob = MobilityInput::new(1, vec![vec![0]], vec![vec![0.0]]);
        let r = Instance::new(
            system,
            vec![0.5],
            mob,
            vec![vec![1.0]],
            vec![1.0],
            vec![0.5],
            vec![0.5],
            CostWeights::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_nan_operation_price() {
        let system = EdgeCloudSystem::new(vec![10.0], vec![vec![0.0]]).unwrap();
        let mob = MobilityInput::new(1, vec![vec![0]], vec![vec![0.0]]);
        let r = Instance::new(
            system,
            vec![1.0],
            mob,
            vec![vec![f64::NAN]],
            vec![1.0],
            vec![0.5],
            vec![0.5],
            CostWeights::default(),
        );
        assert!(matches!(r, Err(Error::Invalid(_))), "{r:?}");
    }

    #[test]
    fn rejects_nan_workload() {
        let system = EdgeCloudSystem::new(vec![10.0], vec![vec![0.0]]).unwrap();
        let mob = MobilityInput::new(1, vec![vec![0]], vec![vec![0.0]]);
        let r = Instance::new(
            system,
            vec![f64::NAN],
            mob,
            vec![vec![1.0]],
            vec![1.0],
            vec![0.5],
            vec![0.5],
            CostWeights::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_negative_migration_price() {
        let system = EdgeCloudSystem::new(vec![10.0], vec![vec![0.0]]).unwrap();
        let mob = MobilityInput::new(1, vec![vec![0]], vec![vec![0.0]]);
        let r = Instance::new(
            system,
            vec![1.0],
            mob,
            vec![vec![1.0]],
            vec![1.0],
            vec![-0.5],
            vec![0.5],
            CostWeights::default(),
        );
        assert!(matches!(r, Err(Error::Invalid(_))));
    }

    #[test]
    fn rejects_non_finite_weights() {
        let system = EdgeCloudSystem::new(vec![10.0], vec![vec![0.0]]).unwrap();
        let mob = MobilityInput::new(1, vec![vec![0]], vec![vec![0.0]]);
        let r = Instance::new(
            system,
            vec![1.0],
            mob,
            vec![vec![1.0]],
            vec![1.0],
            vec![0.5],
            vec![0.5],
            CostWeights {
                operation: f64::INFINITY,
                ..CostWeights::default()
            },
        );
        assert!(matches!(r, Err(Error::Invalid(_))));
    }

    #[test]
    fn empty_system_is_rejected_at_system_level() {
        assert!(EdgeCloudSystem::new(vec![], vec![]).is_err());
    }

    #[test]
    fn sanitized_repairs_injected_corruption() {
        let mut inst = Instance::fig1_example(2.1, true);
        inst.inject_operation_price(1, 0, f64::NAN);
        inst.inject_workload(0, -3.0);
        inst.system_mut().inject_delay(0, 1, f64::INFINITY);
        let (clean, notes) = inst.sanitized();
        assert_eq!(notes.len(), 3, "{notes:?}");
        assert!(clean.operation_price(0, 1).is_finite());
        assert_eq!(clean.workload(0), 1.0);
        assert!(clean.system().delay(0, 1).is_finite());
        // A clean instance sanitizes to itself.
        let (_, no_notes) = clean.sanitized();
        assert!(no_notes.is_empty(), "{no_notes:?}");
    }

    #[test]
    fn fig1_examples_have_expected_shape() {
        let a = Instance::fig1_example(2.1, true);
        assert_eq!(a.num_slots(), 3);
        assert_eq!(a.attached(0, 2), 0);
        let b = Instance::fig1_example(1.9, false);
        assert_eq!(b.attached(0, 2), 1);
        assert_eq!(b.migration_total(0), 1.0);
    }

    #[test]
    fn unscaled_instance_has_no_scaled_slots() {
        let inst = Instance::fig1_example(2.1, true);
        for t in 0..inst.num_slots() {
            assert!(inst.scaled_slot(t).is_none());
            assert_eq!(inst.demand_factor(t), 1.0);
            assert_eq!(inst.capacity_factor(t, 0), 1.0);
        }
    }

    #[test]
    fn demand_scaling_surges_the_online_view_only() {
        let mut inst = Instance::fig1_example(2.1, true);
        inst.scale_demand(1, 2.5);
        assert!(inst.scaled_slot(0).is_none(), "other slots stay unscaled");
        let scaled = inst.scaled_slot(1).expect("slot 1 is scaled");
        let view = scaled.as_input(&inst, 1);
        assert_eq!(view.workloads, &[2.5]);
        // The offline/base view keeps λ = 1.
        assert_eq!(inst.workload(0), 1.0);
        // Factors compose multiplicatively.
        inst.scale_demand(1, 2.0);
        assert_eq!(inst.demand_factor(1), 5.0);
    }

    #[test]
    fn capacity_scaling_degrades_one_cloud() {
        let mut inst = Instance::fig1_example(2.1, true);
        inst.scale_capacity(2, 0, 0.25);
        let scaled = inst.scaled_slot(2).expect("slot 2 is scaled");
        let view = scaled.as_input(&inst, 2);
        assert_eq!(view.system.capacity(0), 0.5);
        assert_eq!(view.system.capacity(1), 2.0);
        assert_eq!(inst.system().capacity(0), 2.0, "base system untouched");
    }

    #[test]
    fn bad_factors_are_clamped_not_propagated() {
        let mut inst = Instance::fig1_example(2.1, true);
        inst.scale_demand(0, f64::NAN); // clamps to 1: no scaling
        assert_eq!(inst.demand_factor(0), 1.0);
        inst.scale_capacity(0, 0, -2.0); // clamps to 0: cloud down
        assert_eq!(inst.capacity_factor(0, 0), 0.0);
        let view_owner = inst.scaled_slot(0).unwrap();
        let view = view_owner.as_input(&inst, 0);
        assert_eq!(view.system.capacity(0), 0.0);
        // A small positive wave scales through; hardening only guards
        // against non-positive and non-finite results.
        inst.scale_demand(1, 0.1);
        let scaled = inst.scaled_slot(1).unwrap();
        assert_eq!(scaled.as_input(&inst, 1).workloads, &[0.1]);
        inst.scale_demand(2, 0.0);
        let zeroed = inst.scaled_slot(2).unwrap();
        assert_eq!(
            zeroed.as_input(&inst, 2).workloads,
            &[1.0],
            "a zeroed workload is hardened back to the λ ≥ 1 floor"
        );
        // Out-of-range indices are ignored.
        inst.scale_demand(99, 3.0);
        inst.scale_capacity(0, 99, 3.0);
    }

    #[test]
    fn legacy_instance_json_without_factor_fields_deserializes() {
        let inst = Instance::fig1_example(2.1, true);
        let json = serde_json::to_string(&inst).unwrap();
        let stripped = json
            .replace(r#","demand_factors":null"#, "")
            .replace(r#","capacity_factors":null"#, "");
        let back: Instance = serde_json::from_str(&stripped).unwrap();
        assert!(back.scaled_slot(0).is_none());
        assert_eq!(back.num_slots(), 3);
    }

    #[test]
    fn with_weights_changes_only_weights() {
        let a = Instance::fig1_example(2.1, true);
        let b = a.with_weights(CostWeights::with_dynamic_ratio(5.0));
        assert_eq!(b.weights().reconfig, 5.0);
        assert_eq!(b.num_slots(), a.num_slots());
    }
}
