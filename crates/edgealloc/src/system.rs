//! The static description of an edge-cloud deployment.

use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// An edge-cloud system: `I` clouds with capacities `C_i` and pairwise
/// network delays `d(i, i')` (`d(i,i) = 0`).
///
/// # Example
///
/// ```
/// use edgealloc::EdgeCloudSystem;
///
/// # fn main() -> Result<(), edgealloc::Error> {
/// let sys = EdgeCloudSystem::new(
///     vec![10.0, 20.0],
///     vec![vec![0.0, 1.5], vec![1.5, 0.0]],
/// )?;
/// assert_eq!(sys.num_clouds(), 2);
/// assert_eq!(sys.delay(0, 1), 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeCloudSystem {
    capacities: Vec<f64>,
    /// `delay[i][i']`, zero diagonal.
    delay: Vec<Vec<f64>>,
}

impl EdgeCloudSystem {
    /// Creates a system from capacities and an inter-cloud delay matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] if the matrix is not square of matching
    /// size, a diagonal entry is nonzero, any delay is negative/non-finite,
    /// or any capacity is non-positive.
    pub fn new(capacities: Vec<f64>, delay: Vec<Vec<f64>>) -> Result<Self> {
        let n = capacities.len();
        if n == 0 {
            return Err(Error::Invalid("need at least one edge cloud".into()));
        }
        if capacities.iter().any(|&c| !(c > 0.0) || !c.is_finite()) {
            return Err(Error::Invalid("capacities must be positive".into()));
        }
        if delay.len() != n {
            return Err(Error::Invalid(format!(
                "delay matrix has {} rows for {} clouds",
                delay.len(),
                n
            )));
        }
        for (i, row) in delay.iter().enumerate() {
            if row.len() != n {
                return Err(Error::Invalid(format!(
                    "delay row {i} has length {}",
                    row.len()
                )));
            }
            if row[i] != 0.0 {
                return Err(Error::Invalid(format!("delay[{i}][{i}] must be zero")));
            }
            if row.iter().any(|&d| d < 0.0 || !d.is_finite()) {
                return Err(Error::Invalid(format!("delay row {i} has invalid entries")));
            }
        }
        Ok(EdgeCloudSystem { capacities, delay })
    }

    /// Builds a system over a station network, with delays equal to
    /// great-circle distance (km) times `delay_per_km` and the given
    /// capacities.
    ///
    /// # Errors
    ///
    /// Propagates [`EdgeCloudSystem::new`] validation errors.
    pub fn from_stations(
        net: &mobility::StationNetwork,
        capacities: Vec<f64>,
        delay_per_km: f64,
    ) -> Result<Self> {
        let mut delay = net.distance_matrix_km();
        for row in &mut delay {
            for d in row {
                *d *= delay_per_km;
            }
        }
        EdgeCloudSystem::new(capacities, delay)
    }

    /// Number of edge clouds `I`.
    pub fn num_clouds(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of cloud `i`.
    pub fn capacity(&self, i: usize) -> f64 {
        self.capacities[i]
    }

    /// All capacities.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Total capacity `Σ_i C_i`.
    pub fn total_capacity(&self) -> f64 {
        self.capacities.iter().sum()
    }

    /// Inter-cloud delay `d(i, i')`.
    pub fn delay(&self, i: usize, j: usize) -> f64 {
        self.delay[i][j]
    }

    /// Overwrites a capacity **without validation** — the value may be
    /// zero, negative, or non-finite. This deliberately breaks the type's
    /// invariants; it exists for fault injection (see `sim::faults`) and
    /// for the sanitization pass that restores them. Production code must
    /// go through [`EdgeCloudSystem::new`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn inject_capacity(&mut self, i: usize, value: f64) {
        self.capacities[i] = value;
    }

    /// Overwrites one delay entry **without validation** — same caveats as
    /// [`EdgeCloudSystem::inject_capacity`].
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn inject_delay(&mut self, i: usize, j: usize, value: f64) {
        self.delay[i][j] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_nonzero_diagonal() {
        let r = EdgeCloudSystem::new(vec![1.0], vec![vec![0.5]]);
        assert!(matches!(r, Err(Error::Invalid(_))));
    }

    #[test]
    fn rejects_zero_capacity() {
        let r = EdgeCloudSystem::new(vec![0.0], vec![vec![0.0]]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_ragged_delay() {
        let r = EdgeCloudSystem::new(vec![1.0, 1.0], vec![vec![0.0, 1.0], vec![1.0]]);
        assert!(r.is_err());
    }

    #[test]
    fn from_stations_scales_distances() {
        let net = mobility::rome_metro();
        let caps = vec![5.0; net.len()];
        let sys = EdgeCloudSystem::from_stations(&net, caps, 2.0).unwrap();
        let d = net.distance_matrix_km();
        assert!((sys.delay(0, 1) - 2.0 * d[0][1]).abs() < 1e-12);
        assert_eq!(sys.delay(3, 3), 0.0);
    }

    #[test]
    fn total_capacity_sums() {
        let sys =
            EdgeCloudSystem::new(vec![1.0, 2.0], vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert_eq!(sys.total_capacity(), 3.0);
    }
}
