//! `offline-opt` — the clairvoyant optimum used as the normalizer.

use crate::allocation::Allocation;
use crate::cost::{evaluate_trajectory, CostBreakdown};
use crate::instance::Instance;
use crate::programs::horizon_lp;
use crate::Result;
use optim::lp::IpmOptions;

/// The offline optimum of ℙ₀ together with its cost.
#[derive(Debug, Clone)]
pub struct OfflineSolution {
    /// Optimal per-slot allocations.
    pub allocations: Vec<Allocation>,
    /// The cost of the optimal trajectory (evaluated by the independent
    /// cost model, not read off the LP objective).
    pub cost: CostBreakdown,
}

/// Solves the full-horizon LP with a global view over all time slots —
/// "impractical and only serves as a baseline" (§V-B). All empirical
/// competitive ratios are normalized by this value.
///
/// # Errors
///
/// Propagates LP solver failures.
///
/// # Example
///
/// ```
/// use edgealloc::prelude::*;
///
/// # fn main() -> Result<(), edgealloc::Error> {
/// let inst = Instance::fig1_example(2.1, true);
/// let off = solve_offline(&inst)?;
/// assert_eq!(off.allocations.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn solve_offline(inst: &Instance) -> Result<OfflineSolution> {
    solve_offline_with(inst, &IpmOptions::default())
}

/// [`solve_offline`] with explicit interior-point options.
///
/// # Errors
///
/// Propagates LP solver failures.
pub fn solve_offline_with(inst: &Instance, opts: &IpmOptions) -> Result<OfflineSolution> {
    let mut allocations = horizon_lp::solve(inst, opts)?;
    for x in &mut allocations {
        x.clamp_nonnegative(1e-6);
    }
    let cost = evaluate_trajectory(inst, &allocations);
    Ok(OfflineSolution { allocations, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{run_online, OnlineGreedy};
    use crate::cost::transition_cost;

    fn cost_without_ramp(inst: &Instance, allocs: &[Allocation]) -> f64 {
        let full = evaluate_trajectory(inst, allocs).total();
        let ramp = transition_cost(
            inst,
            &Allocation::zeros(inst.num_clouds(), inst.num_users()),
            &allocs[0],
        )
        .total();
        full - ramp
    }

    #[test]
    fn fig1a_offline_cost_is_9_6() {
        let inst = Instance::fig1_example(2.1, true);
        let off = solve_offline(&inst).unwrap();
        let total = cost_without_ramp(&inst, &off.allocations);
        assert!(
            (total - 9.6).abs() < 1e-4,
            "offline cost {total}, expected 9.6"
        );
    }

    #[test]
    fn fig1b_offline_beats_papers_narrative_optimum() {
        // The paper's Fig 1(b) narrative optimum (allocate at A, migrate to
        // B at t=1) costs 9.5. The true LP optimum is 9.4: with full
        // knowledge it allocates at B from the first slot, paying the
        // inter-cloud delay once (slot 0) and no migration at all. We
        // verify both numbers (erratum recorded in DESIGN.md).
        let inst = Instance::fig1_example(1.9, false);
        let off = solve_offline(&inst).unwrap();
        let total = cost_without_ramp(&inst, &off.allocations);
        assert!(
            (total - 9.4).abs() < 1e-4,
            "offline cost {total}, expected 9.4"
        );

        // The paper's suggested policy, evaluated by the same cost model.
        let mut at_a = Allocation::zeros(2, 1);
        at_a.set(0, 0, 1.0);
        let mut at_b = Allocation::zeros(2, 1);
        at_b.set(1, 0, 1.0);
        let papers = vec![at_a, at_b.clone(), at_b];
        let papers_total = cost_without_ramp(&inst, &papers);
        assert!(
            (papers_total - 9.5).abs() < 1e-9,
            "paper's policy costs {papers_total}, expected 9.5"
        );
        assert!(total <= papers_total);
    }

    #[test]
    fn offline_never_worse_than_greedy() {
        for (dab, returns) in [(2.1, true), (1.9, false)] {
            let inst = Instance::fig1_example(dab, returns);
            let off = solve_offline(&inst).unwrap();
            let greedy = run_online(&inst, &mut OnlineGreedy::new()).unwrap();
            let gcost = evaluate_trajectory(&inst, &greedy.allocations).total();
            assert!(
                off.cost.total() <= gcost + 1e-6,
                "offline {} vs greedy {gcost}",
                off.cost.total()
            );
        }
    }

    #[test]
    fn offline_allocations_are_feasible() {
        let inst = Instance::fig1_example(2.1, true);
        let off = solve_offline(&inst).unwrap();
        for x in &off.allocations {
            assert!(x.demand_shortfall(inst.workloads()) < 1e-5);
            assert!(x.capacity_excess(inst.system().capacities()) < 1e-5);
        }
    }
}
