//! Online algorithms and offline baselines.
//!
//! The online algorithms implement [`OnlineAlgorithm`] and see only a
//! [`SlotInput`] — the information revealed at the current slot — plus the
//! previous slot's allocation, exactly matching the paper's online model.
//! The offline optimum ([`solve_offline`]) deliberately does *not*
//! implement the trait: it requires the whole future.

mod atomistic;
mod greedy;
mod offline;
mod regularized;
mod static_alloc;

pub use atomistic::{OperOpt, PerfOpt, StatOpt};
pub use greedy::OnlineGreedy;
pub use offline::{solve_offline, solve_offline_with, OfflineSolution};
pub use regularized::{repair_capacity, OnlineRegularized};
pub use static_alloc::{StaticPolicy, StaticVariant};

use crate::allocation::Allocation;
use crate::cost::CostWeights;
use crate::instance::Instance;
use crate::system::EdgeCloudSystem;
use crate::Result;

/// Everything an online algorithm may observe at slot `t`: the static
/// system description, the prices and attachments *of this slot*, and
/// nothing about the future.
#[derive(Debug, Clone)]
pub struct SlotInput<'a> {
    /// The slot index (0-based).
    pub t: usize,
    /// The static system (capacities, inter-cloud delays).
    pub system: &'a EdgeCloudSystem,
    /// Workloads `λ_j`.
    pub workloads: &'a [f64],
    /// This slot's operation prices `a_{i,t}`.
    pub operation_prices: &'a [f64],
    /// This slot's attachments `l_{j,t}`.
    pub attachment: Vec<usize>,
    /// This slot's access delays `d(j, l_{j,t})`.
    pub access_delay: Vec<f64>,
    /// Static reconfiguration prices `c_i`.
    pub reconfig_prices: &'a [f64],
    /// Static outgoing migration prices `b_i^{out}`.
    pub migration_out: &'a [f64],
    /// Static incoming migration prices `b_i^{in}`.
    pub migration_in: &'a [f64],
    /// Cost weights.
    pub weights: CostWeights,
}

impl<'a> SlotInput<'a> {
    /// Extracts the slot-`t` view of an instance.
    ///
    /// # Panics
    ///
    /// Panics if `t >= inst.num_slots()`.
    pub fn from_instance(inst: &'a Instance, t: usize) -> Self {
        assert!(t < inst.num_slots(), "slot {t} out of range");
        let num_users = inst.num_users();
        SlotInput {
            t,
            system: inst.system(),
            workloads: inst.workloads(),
            operation_prices: inst.operation_prices_at(t),
            attachment: (0..num_users).map(|j| inst.attached(j, t)).collect(),
            access_delay: (0..num_users).map(|j| inst.access_delay(j, t)).collect(),
            reconfig_prices: reconfig_slice(inst),
            migration_out: migration_out_slice(inst),
            migration_in: migration_in_slice(inst),
            weights: inst.weights(),
        }
    }

    /// Number of edge clouds.
    pub fn num_clouds(&self) -> usize {
        self.system.num_clouds()
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.workloads.len()
    }

    /// Folded migration price `b_i = b_i^{out} + b_i^{in}`.
    pub fn migration_total(&self, i: usize) -> f64 {
        self.migration_out[i] + self.migration_in[i]
    }
}

fn reconfig_slice(inst: &Instance) -> &[f64] {
    // Helper indirection keeps `SlotInput::from_instance` readable.
    inst.reconfig_prices_slice()
}
fn migration_out_slice(inst: &Instance) -> &[f64] {
    inst.migration_out_slice()
}
fn migration_in_slice(inst: &Instance) -> &[f64] {
    inst.migration_in_slice()
}

/// An online decision rule: given the information revealed at slot `t` and
/// the previous allocation, produce this slot's allocation.
pub trait OnlineAlgorithm {
    /// Human-readable algorithm name (used in reports).
    fn name(&self) -> &str;

    /// Decides the allocation for the slot described by `input`.
    ///
    /// # Errors
    ///
    /// Implementations propagate solver failures.
    fn decide(&mut self, input: &SlotInput<'_>, prev: &Allocation) -> Result<Allocation>;

    /// Clears any internal state so the algorithm can run a fresh horizon.
    fn reset(&mut self) {}
}

/// A complete run of an online algorithm over a horizon.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// One allocation per slot.
    pub allocations: Vec<Allocation>,
}

/// Runs an online algorithm over every slot of the instance, starting from
/// the all-zero allocation (`x_{i,j,0} ≜ 0`).
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn run_online<A: OnlineAlgorithm + ?Sized>(
    inst: &Instance,
    alg: &mut A,
) -> Result<Trajectory> {
    alg.reset();
    let mut prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
    let mut allocations = Vec::with_capacity(inst.num_slots());
    for t in 0..inst.num_slots() {
        let input = SlotInput::from_instance(inst, t);
        let mut x = alg.decide(&input, &prev)?;
        x.clamp_nonnegative(1e-6);
        prev = x.clone();
        allocations.push(x);
    }
    Ok(Trajectory { allocations })
}
