//! Online algorithms and offline baselines.
//!
//! The online algorithms implement [`OnlineAlgorithm`] and see only a
//! [`SlotInput`] — the information revealed at the current slot — plus the
//! previous slot's allocation, exactly matching the paper's online model.
//! The offline optimum ([`solve_offline`]) deliberately does *not*
//! implement the trait: it requires the whole future.

mod atomistic;
mod greedy;
mod offline;
mod regularized;
mod static_alloc;

pub use atomistic::{OperOpt, PerfOpt, StatOpt};
pub use greedy::OnlineGreedy;
pub use offline::{solve_offline, solve_offline_with, OfflineSolution};
pub use regularized::{repair_capacity, OnlineRegularized};
pub use static_alloc::{StaticPolicy, StaticVariant};

use crate::allocation::Allocation;
use crate::cost::CostWeights;
use crate::health::{FallbackRung, HealthSummary, SlotHealth};
use crate::instance::Instance;
use crate::sanitize::sanitize_slot;
use crate::system::EdgeCloudSystem;
use crate::Result;

/// Everything an online algorithm may observe at slot `t`: the static
/// system description, the prices and attachments *of this slot*, and
/// nothing about the future.
#[derive(Debug, Clone)]
pub struct SlotInput<'a> {
    /// The slot index (0-based).
    pub t: usize,
    /// The static system (capacities, inter-cloud delays).
    pub system: &'a EdgeCloudSystem,
    /// Workloads `λ_j`.
    pub workloads: &'a [f64],
    /// This slot's operation prices `a_{i,t}`.
    pub operation_prices: &'a [f64],
    /// This slot's attachments `l_{j,t}`.
    pub attachment: Vec<usize>,
    /// This slot's access delays `d(j, l_{j,t})`.
    pub access_delay: Vec<f64>,
    /// Static reconfiguration prices `c_i`.
    pub reconfig_prices: &'a [f64],
    /// Static outgoing migration prices `b_i^{out}`.
    pub migration_out: &'a [f64],
    /// Static incoming migration prices `b_i^{in}`.
    pub migration_in: &'a [f64],
    /// Cost weights.
    pub weights: CostWeights,
}

impl<'a> SlotInput<'a> {
    /// Extracts the slot-`t` view of an instance.
    ///
    /// # Panics
    ///
    /// Panics if `t >= inst.num_slots()`.
    pub fn from_instance(inst: &'a Instance, t: usize) -> Self {
        assert!(t < inst.num_slots(), "slot {t} out of range");
        let num_users = inst.num_users();
        SlotInput {
            t,
            system: inst.system(),
            workloads: inst.workloads(),
            operation_prices: inst.operation_prices_at(t),
            attachment: (0..num_users).map(|j| inst.attached(j, t)).collect(),
            access_delay: (0..num_users).map(|j| inst.access_delay(j, t)).collect(),
            reconfig_prices: reconfig_slice(inst),
            migration_out: migration_out_slice(inst),
            migration_in: migration_in_slice(inst),
            weights: inst.weights(),
        }
    }

    /// Number of edge clouds.
    pub fn num_clouds(&self) -> usize {
        self.system.num_clouds()
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.workloads.len()
    }

    /// Folded migration price `b_i = b_i^{out} + b_i^{in}`.
    pub fn migration_total(&self, i: usize) -> f64 {
        self.migration_out[i] + self.migration_in[i]
    }
}

fn reconfig_slice(inst: &Instance) -> &[f64] {
    // Helper indirection keeps `SlotInput::from_instance` readable.
    inst.reconfig_prices_slice()
}
fn migration_out_slice(inst: &Instance) -> &[f64] {
    inst.migration_out_slice()
}
fn migration_in_slice(inst: &Instance) -> &[f64] {
    inst.migration_in_slice()
}

/// An online decision rule: given the information revealed at slot `t` and
/// the previous allocation, produce this slot's allocation.
pub trait OnlineAlgorithm {
    /// Human-readable algorithm name (used in reports).
    fn name(&self) -> &str;

    /// Decides the allocation for the slot described by `input`.
    ///
    /// # Errors
    ///
    /// Implementations propagate solver failures their own degradation
    /// ladder could not absorb; [`run_online`] then applies the final
    /// carry-forward rung instead of aborting the horizon.
    fn decide(&mut self, input: &SlotInput<'_>, prev: &Allocation) -> Result<Allocation>;

    /// Hands over the [`SlotHealth`] of the most recent [`decide`] call,
    /// if the implementation tracks one. [`run_online`] collects these on
    /// the trajectory; implementations without a ladder may keep the
    /// default (`None`) and are recorded as healthy primary solves.
    ///
    /// [`decide`]: OnlineAlgorithm::decide
    fn take_health(&mut self) -> Option<SlotHealth> {
        None
    }

    /// Clears any internal state so the algorithm can run a fresh horizon.
    fn reset(&mut self) {}
}

/// A complete run of an online algorithm over a horizon.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// One allocation per slot.
    pub allocations: Vec<Allocation>,
    /// One health record per slot: which degradation-ladder rung produced
    /// the allocation (same indexing as `allocations`).
    pub health: Vec<SlotHealth>,
}

impl Trajectory {
    /// Condenses the per-slot health records for reporting.
    pub fn health_summary(&self) -> HealthSummary {
        HealthSummary::from_slots(&self.health)
    }
}

/// Runs an online algorithm over every slot of the instance, starting from
/// the all-zero allocation (`x_{i,j,0} ≜ 0`).
///
/// The loop never aborts mid-horizon. Corrupted slot inputs (non-finite
/// prices, negative delays — see [`crate::sanitize`]) are repaired before
/// the algorithm sees them, and a `decide` failure that survived the
/// algorithm's own ladder triggers the final rung: the previous slot's
/// allocation is carried forward and repaired with [`repair_capacity`].
/// Every slot's outcome is recorded in [`Trajectory::health`].
///
/// # Errors
///
/// Returns [`crate::Error::Invalid`] only for an empty horizon; solver
/// failures degrade instead of propagating.
pub fn run_online<A: OnlineAlgorithm + ?Sized>(inst: &Instance, alg: &mut A) -> Result<Trajectory> {
    if inst.num_slots() == 0 {
        return Err(crate::Error::Invalid("instance has no slots".into()));
    }
    alg.reset();
    let mut prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
    let mut allocations = Vec::with_capacity(inst.num_slots());
    let mut health = Vec::with_capacity(inst.num_slots());
    for t in 0..inst.num_slots() {
        // Hostile scaling factors (flash crowds, rolling capacity loss —
        // see `Instance::scale_demand`/`scale_capacity`) replace the slot
        // view; unscaled instances take the borrow-only path unchanged.
        let scaled = inst.scaled_slot(t);
        let raw = match &scaled {
            Some(s) => s.as_input(inst, t),
            None => SlotInput::from_instance(inst, t),
        };
        let sanitized = sanitize_slot(&raw);
        let input = match &sanitized {
            Some((clean, _)) => clean.as_input(&raw),
            None => raw,
        };
        let mut h;
        let mut x = match alg.decide(&input, &prev) {
            Ok(x) => {
                h = alg.take_health().unwrap_or_else(SlotHealth::primary);
                x
            }
            Err(err) => {
                // Final rung: carry the previous allocation forward and
                // repair it toward feasibility. Starting from all-zeros
                // (t = 0) the repair itself builds a cheapest-slack
                // covering, so even a first-slot failure yields service.
                h = alg.take_health().unwrap_or_else(SlotHealth::primary);
                h.rung = FallbackRung::CarryForward;
                h.final_residual = None;
                h.note_error(&err);
                let mut carried = prev.clone();
                if let Err(repair_err) = repair_capacity(&input, &mut carried) {
                    h.note_error(&repair_err);
                }
                h.repaired = true;
                carried
            }
        };
        if let Some((_, notes)) = &sanitized {
            h.sanitized = true;
            h.errors.extend(notes.iter().cloned());
        }
        x.clamp_nonnegative(1e-6);
        prev = x.clone();
        allocations.push(x);
        health.push(h);
    }
    Ok(Trajectory {
        allocations,
        health,
    })
}
