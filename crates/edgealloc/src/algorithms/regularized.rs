//! `online-approx` — the paper's regularization-based online algorithm.

use crate::algorithms::{OnlineAlgorithm, SlotInput};
use crate::allocation::Allocation;
use crate::health::{FallbackRung, SlotHealth};
use crate::programs::p2::{self, CapacityMode, Epsilons, P2Solution, P2Workspace};
use crate::programs::per_slot_lp::{
    add_dynamic_terms, base_lp, solve_to_allocation_resilient_with, StaticTerms,
};
use crate::sentinel;
use crate::shed::{self, ShedConfig, SurvivorSlot};
use crate::Result;
use optim::budget::SolveBudget;
use optim::convex::{BarrierOptions, SchurKernel};
use optim::lp::IpmOptions;
use optim::resilience::{self, RetryPolicy};
use optim::Salvage;
use std::time::Instant;

/// The paper's online algorithm (§III-B): at every slot, optimally solve
/// the regularized convex program ℙ₂ built around the previous slot's
/// decision. Theorem 2 gives the competitive ratio `1 + γ|I|` with
///
/// ```text
/// γ = max_i { (C_i+ε₁)·ln(1+C_i/ε₁), (C_i+ε₂)·ln(1+C_i/ε₂) }.
/// ```
///
/// # Example
///
/// ```
/// use edgealloc::prelude::*;
///
/// # fn main() -> Result<(), edgealloc::Error> {
/// let inst = Instance::fig1_example(2.1, true);
/// let mut alg = OnlineRegularized::with_defaults();
/// let traj = run_online(&inst, &mut alg)?;
/// let cost = evaluate_trajectory(&inst, &traj.allocations);
/// assert!(cost.total() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnlineRegularized {
    eps: Epsilons,
    options: BarrierOptions,
    warm_start: bool,
    repair: bool,
    capacity_mode: CapacityMode,
    kernel: SchurKernel,
    solver_threads: usize,
    policy: RetryPolicy,
    fallback: bool,
    workspace_reuse: bool,
    adaptive_t0: bool,
    slot_deadline_ms: Option<f64>,
    shedding: bool,
    shed: ShedConfig,
    workspace: Option<P2Workspace>,
    last_solution: Option<Vec<f64>>,
    /// Terminal barrier parameter `t` of the previous slot's accepted
    /// solve, used to seed the next slot's `t0` (see [`Self::without_adaptive_t0`]).
    last_t_final: Option<f64>,
    /// Duals of the most recent slot, exposed for the analysis tests.
    last_duals: Option<(Vec<f64>, Vec<f64>)>,
    last_health: Option<SlotHealth>,
}

impl OnlineRegularized {
    /// Creates the algorithm with explicit regularization parameters.
    pub fn new(eps: Epsilons) -> Self {
        OnlineRegularized {
            eps,
            options: BarrierOptions::default(),
            warm_start: true,
            repair: true,
            capacity_mode: CapacityMode::Paper10b,
            kernel: SchurKernel::Auto,
            solver_threads: 1,
            policy: RetryPolicy::default(),
            fallback: true,
            workspace_reuse: true,
            adaptive_t0: true,
            slot_deadline_ms: None,
            shedding: true,
            shed: ShedConfig::default(),
            workspace: None,
            last_solution: None,
            last_t_final: None,
            last_duals: None,
            last_health: None,
        }
    }

    /// Default `ε₁ = ε₂ = 0.5` (see [`Epsilons::default`]).
    pub fn with_defaults() -> Self {
        Self::new(Epsilons::default())
    }

    /// Convenience constructor for the Figure-4 sweep: `ε₁ = ε₂ = ε`.
    pub fn with_epsilon(eps: f64) -> Self {
        Self::new(Epsilons {
            eps1: eps,
            eps2: eps,
        })
    }

    /// Disables warm-starting each ℙ₂ from the previous slot's solution
    /// (ablation knob; results are identical, only solve time changes).
    pub fn without_warm_start(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Disables the persistent per-horizon solve workspace: every slot
    /// rebuilds the ℙ₂ constraint matrix, objective structure, and Schur
    /// coupling from scratch, as the pre-workspace implementation did
    /// (ablation/debugging knob; solves are bit-identical either way, only
    /// per-slot build work and allocations change).
    pub fn without_workspace_reuse(mut self) -> Self {
        self.workspace_reuse = false;
        self.workspace = None;
        self
    }

    /// Disables adaptive seeding of the barrier parameter `t0` from the
    /// previous slot's terminal `t`. By default, a warm-started slot begins
    /// near the barrier parameter where the previous slot finished (backed
    /// off by 10³), skipping the outer iterations that would only retrace
    /// the central path the warm point already sits on. Results change only
    /// within the duality-gap tolerance.
    pub fn without_adaptive_t0(mut self) -> Self {
        self.adaptive_t0 = false;
        self
    }

    /// Disables the capacity-repair projection (see [`repair_capacity`]) —
    /// exposes the raw ℙ₂ solutions, which on tightly-capacitated
    /// instances can exceed capacity (the Theorem-1 erratum).
    pub fn without_repair(mut self) -> Self {
        self.repair = false;
        self
    }

    /// Switches ℙ₂ to explicit per-cloud capacity rows instead of the
    /// paper's constraint (10b) — the deployment-grade variant that makes
    /// the repair projection unnecessary (ablation knob; see
    /// [`CapacityMode`]).
    pub fn with_explicit_capacity(mut self) -> Self {
        self.capacity_mode = CapacityMode::Explicit;
        self
    }

    /// Overrides the barrier-solver options.
    pub fn with_solver_options(mut self, options: BarrierOptions) -> Self {
        self.options = options;
        self
    }

    /// Forces the Newton-step Schur kernel instead of the default
    /// [`SchurKernel::Auto`] cutover (dense Woodbury for small user counts,
    /// user-blocked nested-Schur elimination for large ones). Mainly for
    /// benchmarking and kernel-equivalence tests; results agree to solver
    /// tolerance either way.
    pub fn with_schur_kernel(mut self, kernel: SchurKernel) -> Self {
        self.kernel = kernel;
        self.workspace = None;
        self
    }

    /// Worker-thread target for the blocked kernel's per-user elimination.
    /// Extra workers are leased per Newton step from the process-global
    /// [`optim::parallel::WorkerBudget`], so sweeps running many solves
    /// concurrently degrade gracefully to sequential solves instead of
    /// oversubscribing cores. The default of 1 keeps solves deterministic
    /// and allocation-free.
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.solver_threads = threads.max(1);
        self
    }

    /// Gives every slot a wall-clock budget of `ms` milliseconds. The
    /// degradation ladder splits it across its rungs ([`SolveBudget::slice`]),
    /// skips rungs once it is spent, and — when even that fails — adopts
    /// the best strictly-feasible barrier iterate reached
    /// ([`FallbackRung::DeadlineSalvage`], capacity-repaired), so `decide`
    /// returns within roughly twice the deadline (budget checks are
    /// cooperative, between iterations). `None` restores unlimited slots.
    pub fn with_slot_deadline_ms(mut self, ms: impl Into<Option<f64>>) -> Self {
        self.slot_deadline_ms = ms.into();
        self
    }

    /// The per-slot wall-clock budget, if one is set.
    pub fn slot_deadline_ms(&self) -> Option<f64> {
        self.slot_deadline_ms
    }

    /// Disables the overload sentinel and the shedding rung: overloaded
    /// slots fall down the ordinary ladder into carry-forward with a
    /// flagged deficit, as the pre-shedding implementation did
    /// (ablation/debugging knob; feasible horizons are bit-identical
    /// either way — the sentinel is a pure pre-solve read).
    pub fn without_shedding(mut self) -> Self {
        self.shedding = false;
        self
    }

    /// Overrides the shedding configuration (headroom, overflow tier,
    /// outright penalty). The headroom doubles as the sentinel's interior
    /// margin for the `Tight` classification.
    pub fn with_shed_config(mut self, shed: ShedConfig) -> Self {
        self.shed = shed;
        self
    }

    /// The shedding configuration in use.
    pub fn shed_config(&self) -> ShedConfig {
        self.shed
    }

    /// Overrides the retry policy that escalates relaxations when the
    /// barrier fails ([`RetryPolicy::none`] disables re-solves; the per-slot
    /// LP and carry-forward rungs remain unless [`Self::without_fallback`]).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Disables the degradation ladder entirely: a barrier failure
    /// propagates from `decide` instead of falling back to relaxed
    /// re-solves or the per-slot LP (analysis/debugging knob; the runner's
    /// carry-forward rung still applies when driven via
    /// [`crate::algorithms::run_online`]).
    pub fn without_fallback(mut self) -> Self {
        self.fallback = false;
        self
    }

    /// The regularization parameters in use.
    pub fn epsilons(&self) -> Epsilons {
        self.eps
    }

    /// Duals `(θ', ρ')` of the most recent slot's ℙ₂ (for analysis tests).
    pub fn last_duals(&self) -> Option<&(Vec<f64>, Vec<f64>)> {
        self.last_duals.as_ref()
    }

    /// Theorem 2's parameter `γ` for a given system.
    pub fn gamma(&self, system: &crate::system::EdgeCloudSystem) -> f64 {
        let mut g = 0.0f64;
        for i in 0..system.num_clouds() {
            let c = system.capacity(i);
            g = g.max((c + self.eps.eps1) * (1.0 + c / self.eps.eps1).ln());
            g = g.max((c + self.eps.eps2) * (1.0 + c / self.eps.eps2).ln());
        }
        g
    }

    /// Theorem 2's competitive ratio `r = 1 + γ|I|`.
    pub fn theoretical_ratio(&self, system: &crate::system::EdgeCloudSystem) -> f64 {
        1.0 + self.gamma(system) * system.num_clouds() as f64
    }

    /// Rungs 1–2 of the ladder: the ℙ₂ barrier solve with its primary
    /// options, then escalating relaxations. Level 0 reproduces
    /// [`p2::solve_with_mode`] exactly (including the phase-I fallback for
    /// a rejected warm start), so healthy horizons are bit-identical to a
    /// ladder-free run (modulo the adaptive `t0` seeding, which moves
    /// results only within the duality-gap tolerance and can be pinned off
    /// with [`Self::without_adaptive_t0`]).
    /// `budget` is the whole slot's remaining wall-clock allowance: each
    /// barrier level runs under a slice of it (one share is held back for
    /// the per-slot-LP rung when fallback is on), levels are skipped
    /// entirely once it is spent, and any interior iterate a cut-off solve
    /// reached is kept in `salvage` for the caller's DeadlineSalvage rung.
    fn solve_p2_ladder(
        &mut self,
        input: &SlotInput<'_>,
        prev: &Allocation,
        health: &mut SlotHealth,
        budget: &SolveBudget,
        salvage: &mut Option<Box<Salvage>>,
    ) -> Result<P2Solution> {
        // Taken, not read: a slot that produces no accepted barrier solve
        // must leave the *next* slot with a cold t0.
        let prev_t_final = self.last_t_final.take();
        // The persistent workspace keeps the constraint matrix, objective
        // structure, and Schur coupling across slots; only term values and
        // the rhs are refreshed. The ablation path rebuilds per slot.
        let fresh: Option<optim::convex::BarrierSolver> = if self.workspace_reuse {
            // `take` so a refresh failure drops the workspace: the next
            // slot then rebuilds instead of inheriting half-refreshed
            // values (the failed slot itself falls to a fallback rung).
            let ws = match self.workspace.take() {
                Some(mut ws) => {
                    ws.refresh(input, prev)?;
                    ws
                }
                None => P2Workspace::new_with_kernel(
                    input,
                    prev,
                    self.eps,
                    self.capacity_mode,
                    self.kernel,
                )?,
            };
            self.workspace = Some(ws);
            if let Some(ws) = self.workspace.as_mut() {
                ws.set_schur_threads(self.solver_threads);
            }
            None
        } else {
            let mut solver =
                p2::build_with_kernel(input, prev, self.eps, self.capacity_mode, self.kernel)?;
            solver.set_schur_threads(self.solver_threads);
            Some(solver)
        };
        let (total_constraints, kernel_name) = {
            let solver = fresh
                .as_ref()
                .or_else(|| self.workspace.as_ref().map(P2Workspace::solver))
                .expect("one solve path was just set up");
            (
                (solver.num_rows() + solver.num_vars()) as f64,
                solver.schur_kernel_name(),
            )
        };
        let proportional = p2::proportional_start(input);
        // The length guard drops a stale warm start whose shape no longer
        // matches (the shedding rung shrinks and re-grows the user set
        // between slots); on healthy horizons it never fires.
        let expected_len = input.num_clouds() * input.num_users();
        let warm = if self.warm_start {
            self.last_solution
                .as_deref()
                .filter(|w| w.len() == expected_len)
        } else {
            None
        };
        let warm_available = warm.is_some();
        let chosen = warm.or(proportional.as_deref());
        let levels = if self.fallback {
            self.policy.max_attempts.max(1)
        } else {
            1
        };
        let budgeted = !budget.is_unlimited();
        // One extra share reserved for the per-slot-LP rung that follows a
        // failed ladder, so the barrier levels cannot starve it.
        let lp_share = usize::from(self.fallback);
        let mut last_err: Option<optim::Error> = None;
        for k in 0..levels {
            if budgeted && budget.exhausted(0) {
                // The slot budget is spent: skip the remaining levels. The
                // caller falls through to salvage / carry-forward.
                health.deadline_hit = true;
                break;
            }
            let mut opts = resilience::relaxed_barrier_options(&self.options, &self.policy, k);
            if budgeted {
                opts.budget = budget.slice(levels - k + lp_share);
            }
            let start = if k == 0 { chosen } else { None };
            // Adaptive t0: a warm start sits next to the previous slot's
            // end of the central path, so begin near the barrier parameter
            // where that slot terminated (backed off by 10³ ≈ μ²·³ to
            // re-center) instead of retracing the path from t0 = 1. Only
            // the warm-started first attempt qualifies — ladder retries
            // and phase-I fallbacks start far from the path and need the
            // cold schedule.
            if k == 0 && self.adaptive_t0 && warm_available {
                if let Some(t_final) = prev_t_final {
                    opts.t0 = opts.t0.max((t_final * 1e-3).min(1e10));
                }
            }
            if k > 0 {
                health.rung = FallbackRung::RelaxedTolerance;
            }
            health.attempts += 1;
            let rung_clock = Instant::now();
            let first = match (&fresh, self.workspace.as_mut()) {
                (Some(solver), _) => solver.solve(start, &opts),
                (None, Some(ws)) => ws.solve_raw(start, &opts),
                (None, None) => unreachable!("one solve path was just set up"),
            };
            let attempt = match first {
                // A supplied start can be (numerically) on the boundary;
                // drop to phase-I before relaxing — at the *cold* options:
                // the phase-I point is far from the central path, where an
                // adaptive t0 would be counterproductive.
                Err(optim::Error::BadStartingPoint(_)) if k == 0 && start.is_some() => {
                    health.attempts += 1;
                    let mut cold =
                        resilience::relaxed_barrier_options(&self.options, &self.policy, k);
                    cold.budget = opts.budget;
                    match (&fresh, self.workspace.as_mut()) {
                        (Some(solver), _) => solver.solve(None, &cold),
                        (None, Some(ws)) => ws.solve_raw(None, &cold),
                        (None, None) => unreachable!("one solve path was just set up"),
                    }
                }
                other => other,
            };
            let rung_elapsed_ms = rung_clock.elapsed().as_secs_f64() * 1e3;
            health.rung_ms.push(rung_elapsed_ms);
            match attempt {
                Ok(sol) => {
                    health.final_residual = Some(sol.stats.gap);
                    health.newton_steps = sol.stats.newton_steps;
                    health.outer_iterations = sol.stats.outer_iterations;
                    health.schur_kernel = Some(kernel_name.to_string());
                    if sol.stats.newton_steps > 0 {
                        health.newton_step_ms =
                            Some(rung_elapsed_ms / sol.stats.newton_steps as f64);
                    }
                    // Terminal t = (m+n)/gap seeds the next slot's t0.
                    if sol.stats.gap.is_finite() && sol.stats.gap > 0.0 {
                        self.last_t_final = Some(total_constraints / sol.stats.gap);
                    }
                    return Ok(p2::solution_from_barrier(input, sol));
                }
                Err(err) => {
                    match &err {
                        optim::Error::MaxIterations { residual, .. } => {
                            health.final_residual = Some(*residual);
                        }
                        optim::Error::DeadlineExceeded { best, .. } => {
                            // The level's slice ran out. Keep the best
                            // interior iterate seen so far — it is strictly
                            // feasible and becomes the DeadlineSalvage rung
                            // if no later rung finishes.
                            health.deadline_hit = true;
                            if let Some(b) = best {
                                let keep = match salvage.as_ref() {
                                    Some(cur) => !(cur.residual <= b.residual),
                                    None => true,
                                };
                                if keep {
                                    *salvage = Some(b.clone());
                                }
                            }
                        }
                        _ => {}
                    }
                    health.note_error(&err);
                    let slice_expired = matches!(err, optim::Error::DeadlineExceeded { .. });
                    if !slice_expired && !resilience::retryable(&err) {
                        return Err(err.into());
                    }
                    last_err = Some(err);
                }
            }
        }
        // `last_err` is only absent when the budget was spent before the
        // first level even started (e.g. the workspace refresh ate it).
        Err(last_err
            .unwrap_or(optim::Error::DeadlineExceeded {
                iterations: 0,
                best: None,
            })
            .into())
    }
}

impl OnlineAlgorithm for OnlineRegularized {
    fn name(&self) -> &str {
        "online-approx"
    }

    fn decide(&mut self, input: &SlotInput<'_>, prev: &Allocation) -> Result<Allocation> {
        let clock = Instant::now();
        let mut health = SlotHealth::primary();
        health.deadline_ms = self.slot_deadline_ms;
        let budget = match self.slot_deadline_ms {
            Some(ms) => SolveBudget::from_millis(ms),
            None => SolveBudget::unlimited(),
        };
        let result = self.decide_sentineled(input, prev, &mut health, &budget);
        health.wall_time_ms = clock.elapsed().as_secs_f64() * 1e3;
        self.last_health = Some(health);
        result
    }

    fn take_health(&mut self) -> Option<SlotHealth> {
        self.last_health.take()
    }

    fn reset(&mut self) {
        self.workspace = None;
        self.last_solution = None;
        self.last_t_final = None;
        self.last_duals = None;
        self.last_health = None;
    }
}

impl OnlineRegularized {
    /// The sentinel layer around the ladder: classify the slot in O(I+J);
    /// overloaded slots get the shedding rung (minimum-penalty deferral +
    /// reduced re-solve with restricted warm starts), everything else runs
    /// the ordinary ladder untouched — the sentinel is a pure read, so
    /// feasible horizons stay bit-identical to the pre-sentinel pipeline.
    fn decide_sentineled(
        &mut self,
        input: &SlotInput<'_>,
        prev: &Allocation,
        health: &mut SlotHealth,
        budget: &SolveBudget,
    ) -> Result<Allocation> {
        let report = sentinel::assess(input, self.shed.headroom);
        health.sentinel_verdict = Some(report.verdict);
        if !(self.shedding && report.overloaded()) {
            return self.decide_core(input, prev, health, budget);
        }
        let decision = match shed::plan_shedding(input, &self.shed, budget) {
            Ok(d) => d,
            Err(err) => {
                // No shedding plan: run the full slot anyway — the ladder's
                // repair serves as much demand as capacity allows and flags
                // the deficit, exactly the pre-shedding behavior.
                health.note_error(&err);
                return self.decide_core(input, prev, health, budget);
            }
        };
        health.rung = FallbackRung::Shedding;
        health.shed_users = decision.deferred.len();
        health.overflowed_users = if decision.overflowed {
            decision.deferred.len()
        } else {
            0
        };
        health.shed_penalty = decision.penalty;
        if decision.survivors.is_empty() {
            // Everything overflows (e.g. all capacity is gone): the edge
            // decision is the zero allocation and there is nothing to solve.
            self.last_solution = None;
            self.last_duals = None;
            self.last_t_final = None;
            return Ok(Allocation::zeros(input.num_clouds(), input.num_users()));
        }
        let slot = SurvivorSlot::new(input, &decision);
        let rinput = slot.as_input(input);
        let rprev = slot.restrict(prev);
        // Restrict the stored warm start into survivor space so the
        // reduced ℙ₂ still warm-starts; a shape mismatch drops it.
        let full_len = input.num_clouds() * input.num_users();
        self.last_solution = match self.last_solution.take() {
            Some(w) if w.len() == full_len => Some(slot.restrict_flat(&w, input.num_clouds())),
            _ => None,
        };
        let shed_rung = health.rung;
        let mut reduced = self.decide_core(&rinput, &rprev, health, budget)?;
        // The core reports the rung that solved the reduced program; the
        // slot's identity stays Shedding (the errors/attempt counters the
        // core recorded are kept).
        health.rung = shed_rung;
        // Certify *exact* feasibility on the survivors: capacity and the
        // survivor demands hold under floating-point evaluation as written.
        if let Err(err) = crate::exact::project_exact(&rinput, &mut reduced) {
            health.note_error(&err);
        }
        // Scatter the reduced warm start back to full shape so a recovered
        // (un-shed) successor slot can still use it; deferred columns warm
        // at zero. Reduced-space duals are not the full slot's — drop them.
        if let Some(w) = self.last_solution.take() {
            if w.len() == input.num_clouds() * slot.len() {
                self.last_solution =
                    Some(slot.scatter_flat(&w, input.num_clouds(), input.num_users()));
            }
        }
        self.last_duals = None;
        Ok(slot.scatter(&reduced, input.num_users()))
    }

    /// Rungs 1–4 of the ladder on the given (possibly survivor-reduced)
    /// slot: barrier + relaxations, per-slot LP, deadline salvage, plus the
    /// capacity repair. Extracted from `decide` so the shedding rung can
    /// run it on the reduced slot.
    fn decide_core(
        &mut self,
        input: &SlotInput<'_>,
        prev: &Allocation,
        health: &mut SlotHealth,
        budget: &SolveBudget,
    ) -> Result<Allocation> {
        let mut salvage: Option<Box<Salvage>> = None;
        let mut force_repair = false;
        let mut allocation = match self.solve_p2_ladder(input, prev, health, budget, &mut salvage) {
            Ok(sol) => {
                self.last_solution = Some(sol.allocation.as_flat().to_vec());
                self.last_duals = Some((sol.theta, sol.rho));
                sol.allocation
            }
            Err(err) if self.fallback => {
                let mut adopted: Option<Allocation> = None;
                if !budget.exhausted(0) {
                    // Rung 3: the entropy-free per-slot LP — the
                    // linearized slot objective, no regularizers, exact
                    // dynamic costs — under whatever slot time remains
                    // (it is the last solver rung, so no further split).
                    health.rung = FallbackRung::PerSlotLp;
                    let mut lp = base_lp(
                        input,
                        StaticTerms {
                            operation: true,
                            quality: true,
                        },
                    );
                    add_dynamic_terms(&mut lp, input, prev);
                    let lp_opts = IpmOptions {
                        budget: *budget,
                        ..IpmOptions::default()
                    };
                    let rung_clock = Instant::now();
                    let (result, report) =
                        solve_to_allocation_resilient_with(&lp, input, &lp_opts, &self.policy);
                    health.attempts += report.attempts;
                    health
                        .rung_ms
                        .push(rung_clock.elapsed().as_secs_f64() * 1e3);
                    match result {
                        Ok(x) => {
                            health.final_residual = if report.final_residual.is_finite() {
                                Some(report.final_residual)
                            } else {
                                None
                            };
                            // The LP rung carries no ℙ₂ duals; clear the
                            // stale ones rather than expose the wrong
                            // slot's.
                            self.last_solution = Some(x.as_flat().to_vec());
                            self.last_duals = None;
                            adopted = Some(x);
                        }
                        Err(lp_err) => {
                            if matches!(
                                lp_err,
                                crate::Error::Solver(optim::Error::DeadlineExceeded { .. })
                            ) {
                                health.deadline_hit = true;
                            }
                            health.note_error(&lp_err);
                        }
                    }
                } else {
                    health.deadline_hit = true;
                }
                match adopted {
                    Some(x) => x,
                    // Rung 4: the deadline salvage — the best strictly
                    // feasible interior iterate any budgeted barrier
                    // solve reached. It covers demand by construction;
                    // the (forced) capacity repair below handles any
                    // excess, making it a valid degraded decision.
                    None => match salvage.take() {
                        Some(s) => {
                            health.rung = FallbackRung::DeadlineSalvage;
                            health.deadline_hit = true;
                            health.final_residual = if s.residual.is_finite() {
                                Some(s.residual)
                            } else {
                                None
                            };
                            force_repair = true;
                            self.last_solution = Some(s.x.clone());
                            self.last_duals = None;
                            Allocation::from_flat(input.num_clouds(), input.num_users(), s.x)
                        }
                        None => return Err(err),
                    },
                }
            }
            Err(err) => return Err(err),
        };
        if self.repair || force_repair {
            // Best-effort: a structurally infeasible slot (demand above
            // total capacity) leaves a deficit, which is flagged rather
            // than failing the slot — the allocation still respects
            // capacities and serves as much demand as possible.
            if let Err(repair_err) = repair_capacity(input, &mut allocation) {
                health.note_error(&repair_err);
            }
            health.repaired = true;
        }
        Ok(allocation)
    }
}

/// Restores per-cloud capacity feasibility of a ℙ₂ solution, preserving
/// demand coverage.
///
/// **Why this exists (erratum, see DESIGN.md):** Theorem 1 of the paper
/// argues that the ℙ₂ optimum never exceeds capacity by monotonicity of the
/// objective — but reducing an over-capacity cloud can violate constraint
/// (10b) of *other* clouds, and on tightly-capacitated instances
/// (`C_i < λ_j` for some clouds) the true ℙ₂ optimum does allocate
/// `x_{i,t} = C_i + δ` with several (10b) rows binding. This projection
/// scales over-capacity clouds down to `C_i` and refills any resulting
/// per-user demand deficit at the cheapest clouds with remaining slack
/// (which exist because `ΣC_i ≥ Σλ_j`).
///
/// # Errors
///
/// Returns [`crate::Error::Invalid`] if total capacity cannot absorb the
/// demand (impossible for validated instances).
pub fn repair_capacity(input: &SlotInput<'_>, x: &mut Allocation) -> Result<()> {
    let num_clouds = input.num_clouds();
    let num_users = input.num_users();
    // Trim per-user surpluses: ℙ₀ only requires Σ_i x_ij ≥ λ_j, and any
    // surplus pays operation and quality cost every slot, so scale each
    // over-served user down to exactly λ_j.
    for j in 0..num_users {
        let total = x.user_total(j);
        let lambda = input.workloads[j];
        if total > lambda {
            let factor = lambda / total;
            for i in 0..num_clouds {
                x.set(i, j, x.get(i, j) * factor);
            }
        }
    }
    // Scale down over-capacity clouds.
    for i in 0..num_clouds {
        let total = x.cloud_total(i);
        let cap = input.system.capacity(i);
        if total > cap {
            let factor = cap / total;
            for j in 0..num_users {
                x.set(i, j, x.get(i, j) * factor);
            }
        }
    }
    // Refill per-user deficits at the cheapest clouds with slack.
    let mut slack: Vec<f64> = (0..num_clouds)
        .map(|i| (input.system.capacity(i) - x.cloud_total(i)).max(0.0))
        .collect();
    for j in 0..num_users {
        let mut deficit = input.workloads[j] - x.user_total(j);
        if deficit <= 1e-12 {
            continue;
        }
        let l = input.attachment[j];
        let mut order: Vec<usize> = (0..num_clouds).collect();
        let unit_cost = |i: usize| {
            input.weights.operation * input.operation_prices[i]
                + input.weights.quality * input.system.delay(l, i) / input.workloads[j]
        };
        // Corrupted (NaN) costs sort as equal instead of panicking — the
        // repair rung must survive even un-sanitized inputs.
        order.sort_by(|&a, &b| {
            unit_cost(a)
                .partial_cmp(&unit_cost(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for i in order {
            if deficit <= 1e-12 {
                break;
            }
            let take = deficit.min(slack[i]);
            if take > 0.0 {
                x.set(i, j, x.get(i, j) + take);
                slack[i] -= take;
                deficit -= take;
            }
        }
        if deficit > 1e-9 {
            return Err(crate::Error::Invalid(format!(
                "capacity repair failed: user {j} left with deficit {deficit}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::run_online;
    use crate::cost::evaluate_trajectory;
    use crate::instance::Instance;

    #[test]
    fn produces_feasible_trajectory() {
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = OnlineRegularized::with_defaults();
        let traj = run_online(&inst, &mut alg).unwrap();
        assert_eq!(traj.allocations.len(), 3);
        for x in &traj.allocations {
            assert!(x.demand_shortfall(inst.workloads()) < 1e-5);
            assert!(x.capacity_excess(inst.system().capacities()) < 1e-5);
        }
    }

    #[test]
    fn warm_start_does_not_change_result_materially() {
        let inst = Instance::fig1_example(2.1, true);
        let mut warm = OnlineRegularized::with_defaults();
        let mut cold = OnlineRegularized::with_defaults().without_warm_start();
        let a = run_online(&inst, &mut warm).unwrap();
        let b = run_online(&inst, &mut cold).unwrap();
        let ca = evaluate_trajectory(&inst, &a.allocations).total();
        let cb = evaluate_trajectory(&inst, &b.allocations).total();
        assert!((ca - cb).abs() / cb < 1e-3, "warm {ca} vs cold {cb}");
    }

    #[test]
    fn workspace_reuse_matches_fresh_builds_exactly() {
        // With adaptive t0 pinned off, the refreshed workspace must hold a
        // solver state identical to a per-slot rebuild: trajectories agree
        // bit for bit, not just within tolerance.
        let inst = Instance::fig1_example(2.1, true);
        let mut reused = OnlineRegularized::with_defaults().without_adaptive_t0();
        let mut fresh = OnlineRegularized::with_defaults()
            .without_adaptive_t0()
            .without_workspace_reuse();
        let a = run_online(&inst, &mut reused).unwrap();
        let b = run_online(&inst, &mut fresh).unwrap();
        for (t, (xa, xb)) in a.allocations.iter().zip(&b.allocations).enumerate() {
            assert_eq!(xa.as_flat(), xb.as_flat(), "slot {t} diverged");
        }
    }

    #[test]
    fn adaptive_t0_changes_result_only_within_tolerance() {
        let inst = Instance::fig1_example(2.1, true);
        let mut adaptive = OnlineRegularized::with_defaults();
        let mut cold = OnlineRegularized::with_defaults().without_adaptive_t0();
        let a = run_online(&inst, &mut adaptive).unwrap();
        let b = run_online(&inst, &mut cold).unwrap();
        let ca = evaluate_trajectory(&inst, &a.allocations).total();
        let cb = evaluate_trajectory(&inst, &b.allocations).total();
        assert!((ca - cb).abs() / cb < 1e-6, "adaptive {ca} vs cold {cb}");
        // The point of the seeding: strictly fewer outer iterations after
        // the first slot.
        let outers = |traj: &crate::algorithms::Trajectory| {
            traj.health[1..]
                .iter()
                .map(|h| h.outer_iterations)
                .sum::<usize>()
        };
        assert!(
            outers(&a) < outers(&b),
            "adaptive t0 did not save outer iterations ({} vs {})",
            outers(&a),
            outers(&b)
        );
    }

    #[test]
    fn health_records_solver_effort() {
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = OnlineRegularized::with_defaults();
        let traj = run_online(&inst, &mut alg).unwrap();
        for (t, h) in traj.health.iter().enumerate() {
            assert!(h.newton_steps > 0, "slot {t} recorded no Newton steps");
            assert!(
                h.outer_iterations > 0,
                "slot {t} recorded no outer iterations"
            );
        }
        let summary = traj.health_summary();
        assert!(summary.newton_steps >= traj.health.len());
        assert!(summary.peak_outer_iterations > 0);
    }

    #[test]
    fn gamma_monotone_decreasing_in_epsilon() {
        let inst = Instance::fig1_example(2.1, true);
        let small = OnlineRegularized::with_epsilon(0.01).gamma(inst.system());
        let large = OnlineRegularized::with_epsilon(10.0).gamma(inst.system());
        assert!(small > large, "γ(0.01)={small} vs γ(10)={large}");
    }

    #[test]
    fn theoretical_ratio_exceeds_one() {
        let inst = Instance::fig1_example(2.1, true);
        let alg = OnlineRegularized::with_defaults();
        assert!(alg.theoretical_ratio(inst.system()) > 1.0);
    }

    #[test]
    fn explicit_capacity_variant_is_feasible_without_repair() {
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = OnlineRegularized::with_defaults()
            .with_explicit_capacity()
            .without_repair();
        let traj = run_online(&inst, &mut alg).unwrap();
        for x in &traj.allocations {
            assert!(x.capacity_excess(inst.system().capacities()) < 1e-6);
            assert!(x.demand_shortfall(inst.workloads()) < 1e-5);
        }
    }

    #[test]
    fn reset_clears_state() {
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = OnlineRegularized::with_defaults();
        let _ = run_online(&inst, &mut alg).unwrap();
        assert!(alg.last_duals().is_some());
        alg.reset();
        assert!(alg.last_duals().is_none());
    }

    #[test]
    fn healthy_run_records_primary_on_every_slot() {
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = OnlineRegularized::with_defaults();
        let traj = run_online(&inst, &mut alg).unwrap();
        assert_eq!(traj.health.len(), traj.allocations.len());
        for h in &traj.health {
            assert_eq!(h.rung, FallbackRung::Primary);
            assert!(!h.sanitized);
            assert!(h.errors.is_empty(), "{:?}", h.errors);
            assert!(h
                .final_residual
                .expect("primary slot certifies a gap")
                .is_finite());
        }
        assert_eq!(traj.health_summary().degraded_slots, 0);
    }

    #[test]
    fn crippled_barrier_still_covers_the_horizon() {
        // One outer iteration cannot close the duality gap; the ladder must
        // still produce an allocation (and a recorded rung) for every slot.
        let inst = Instance::fig1_example(2.1, true);
        let crippled = BarrierOptions {
            max_outer: 1,
            ..BarrierOptions::default()
        };
        let mut alg = OnlineRegularized::with_defaults().with_solver_options(crippled);
        let traj = run_online(&inst, &mut alg).unwrap();
        assert_eq!(traj.allocations.len(), inst.num_slots());
        assert_eq!(traj.health.len(), inst.num_slots());
        for (t, (x, h)) in traj.allocations.iter().zip(&traj.health).enumerate() {
            assert_ne!(
                h.rung,
                FallbackRung::Primary,
                "slot {t} claims a clean solve"
            );
            assert!(
                h.attempts > 1,
                "slot {t} recorded {} attempt(s)",
                h.attempts
            );
            assert!(!h.errors.is_empty(), "slot {t} swallowed no error");
            assert!(x.demand_shortfall(inst.workloads()) < 1e-4, "slot {t}");
            assert!(
                x.capacity_excess(inst.system().capacities()) < 1e-4,
                "slot {t}"
            );
        }
        let cost = evaluate_trajectory(&inst, &traj.allocations).total();
        assert!(cost.is_finite() && cost > 0.0, "cost {cost}");
    }

    #[test]
    fn no_retry_policy_drops_straight_to_per_slot_lp() {
        let inst = Instance::fig1_example(2.1, true);
        let crippled = BarrierOptions {
            max_outer: 1,
            ..BarrierOptions::default()
        };
        let mut alg = OnlineRegularized::with_defaults()
            .with_solver_options(crippled)
            .with_retry_policy(RetryPolicy::none());
        let traj = run_online(&inst, &mut alg).unwrap();
        for (t, h) in traj.health.iter().enumerate() {
            assert_eq!(h.rung, FallbackRung::PerSlotLp, "slot {t}: {:?}", h.rung);
        }
        assert_eq!(traj.health_summary().rungs.per_slot_lp, inst.num_slots());
    }

    #[test]
    fn zero_deadline_skips_every_rung_and_carries_forward() {
        // An already-spent budget must not run any solver at all: every
        // slot drops straight to the runner's carry-forward rung, and the
        // repair still builds a demand-covering allocation.
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = OnlineRegularized::with_defaults().with_slot_deadline_ms(0.0);
        let traj = run_online(&inst, &mut alg).unwrap();
        for (t, (x, h)) in traj.allocations.iter().zip(&traj.health).enumerate() {
            assert_eq!(h.rung, FallbackRung::CarryForward, "slot {t}");
            assert!(h.deadline_hit, "slot {t} missed the deadline flag");
            assert_eq!(h.deadline_ms, Some(0.0));
            assert!(x.demand_shortfall(inst.workloads()) < 1e-6, "slot {t}");
            assert!(
                x.capacity_excess(inst.system().capacities()) < 1e-6,
                "slot {t}"
            );
        }
        assert_eq!(traj.health_summary().deadline_hits, inst.num_slots());
    }

    #[test]
    fn generous_deadline_leaves_the_happy_path_bit_identical() {
        // Budget checks are reads, not perturbations: with a deadline that
        // never trips, the trajectory must match the unbudgeted run exactly
        // and every slot must still report the clean primary rung.
        let inst = Instance::fig1_example(2.1, true);
        let mut plain = OnlineRegularized::with_defaults();
        let mut budgeted = OnlineRegularized::with_defaults().with_slot_deadline_ms(10_000.0);
        let a = run_online(&inst, &mut plain).unwrap();
        let b = run_online(&inst, &mut budgeted).unwrap();
        for (t, (xa, xb)) in a.allocations.iter().zip(&b.allocations).enumerate() {
            assert_eq!(xa.as_flat(), xb.as_flat(), "slot {t} diverged under budget");
        }
        for h in &b.health {
            assert_eq!(h.rung, FallbackRung::Primary);
            assert!(!h.deadline_hit);
            assert_eq!(h.deadline_ms, Some(10_000.0));
            assert!(!h.rung_ms.is_empty(), "per-rung timing not recorded");
        }
    }

    #[test]
    fn feasible_horizon_records_sentinel_verdicts_and_is_bit_identical_without_shedding() {
        // The sentinel is a pure pre-solve read: on a feasible horizon the
        // shedding-enabled build must produce exactly the allocations of
        // the shedding-disabled one, while recording a verdict per slot.
        let inst = Instance::fig1_example(2.1, true);
        let mut on = OnlineRegularized::with_defaults();
        let mut off = OnlineRegularized::with_defaults().without_shedding();
        let a = run_online(&inst, &mut on).unwrap();
        let b = run_online(&inst, &mut off).unwrap();
        for (t, (xa, xb)) in a.allocations.iter().zip(&b.allocations).enumerate() {
            assert_eq!(xa.as_flat(), xb.as_flat(), "slot {t} diverged");
        }
        for h in &a.health {
            assert_eq!(
                h.sentinel_verdict,
                Some(crate::sentinel::SentinelVerdict::Feasible)
            );
            assert_eq!(h.rung, FallbackRung::Primary);
            assert_eq!(h.shed_users, 0);
        }
        let s = a.health_summary();
        assert_eq!(s.overloaded_slots, 0);
        assert_eq!(s.shed_users, 0);
    }

    #[test]
    fn overloaded_slot_routes_through_the_shedding_rung() {
        use rand::SeedableRng;
        let net = mobility::rome_metro();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mob = mobility::random_walk::generate(&net, 12, 6, &mut rng);
        let mut inst = Instance::synthetic(&net, mob, &mut rng);
        // Slots 2..4 surge to 2× aggregate capacity (utilization 0.8 →
        // capacity = 1.25·Σλ, so a 2.5× surge lands at 2× capacity).
        inst.scale_demand(2, 2.5);
        inst.scale_demand(3, 2.5);
        let mut alg = OnlineRegularized::with_defaults();
        let traj = run_online(&inst, &mut alg).unwrap();
        assert_eq!(traj.allocations.len(), 6);
        for (t, h) in traj.health.iter().enumerate() {
            let surged = t == 2 || t == 3;
            if surged {
                assert_eq!(
                    h.sentinel_verdict,
                    Some(crate::sentinel::SentinelVerdict::Overloaded),
                    "slot {t}"
                );
                assert_eq!(h.rung, FallbackRung::Shedding, "slot {t}");
                assert!(h.shed_users > 0, "slot {t} shed nobody");
                assert_eq!(h.overflowed_users, h.shed_users, "slot {t}");
                assert!(h.shed_penalty > 0.0, "slot {t}");
            } else {
                assert_ne!(h.rung, FallbackRung::CarryForward, "slot {t} aborted");
                assert_eq!(h.shed_users, 0, "slot {t} shed on a feasible slot");
            }
            // Shed slots certify *exact* capacity feasibility via
            // project_exact; ordinary slots keep the repair's tolerance.
            let x = &traj.allocations[t];
            for i in 0..inst.num_clouds() {
                if surged {
                    assert!(
                        x.cloud_total(i) <= inst.system().capacity(i),
                        "slot {t} cloud {i} over capacity"
                    );
                }
            }
            assert!(
                x.capacity_excess(inst.system().capacities()) < 1e-5,
                "slot {t}"
            );
        }
        let s = traj.health_summary();
        assert_eq!(s.overloaded_slots, 2);
        assert_eq!(s.rungs.shedding, 2);
        assert!(s.shed_users > 0);
        assert!(s.shed_penalty > 0.0);
    }

    #[test]
    fn shedding_replays_bit_identically() {
        use rand::SeedableRng;
        let net = mobility::rome_metro();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mob = mobility::random_walk::generate(&net, 10, 5, &mut rng);
        let mut inst = Instance::synthetic(&net, mob, &mut rng);
        inst.scale_demand(1, 3.0);
        inst.scale_demand(2, 3.0);
        let mut a1 = OnlineRegularized::with_defaults();
        let mut a2 = OnlineRegularized::with_defaults();
        let t1 = run_online(&inst, &mut a1).unwrap();
        let t2 = run_online(&inst, &mut a2).unwrap();
        for (t, (xa, xb)) in t1.allocations.iter().zip(&t2.allocations).enumerate() {
            assert_eq!(xa.as_flat(), xb.as_flat(), "slot {t} not reproducible");
        }
    }

    #[test]
    fn without_fallback_degrades_to_carry_forward() {
        let inst = Instance::fig1_example(2.1, true);
        let crippled = BarrierOptions {
            max_outer: 1,
            ..BarrierOptions::default()
        };
        let mut alg = OnlineRegularized::with_defaults()
            .with_solver_options(crippled)
            .with_retry_policy(RetryPolicy::none())
            .without_fallback();
        let traj = run_online(&inst, &mut alg).unwrap();
        // Every decide fails outright, so the runner's final rung carries
        // the previous allocation forward — starting from all-zeros the
        // repair itself must build a demand-covering allocation.
        for (t, (x, h)) in traj.allocations.iter().zip(&traj.health).enumerate() {
            assert_eq!(h.rung, FallbackRung::CarryForward, "slot {t}");
            assert!(h.repaired, "slot {t}");
            assert!(x.demand_shortfall(inst.workloads()) < 1e-6, "slot {t}");
            assert!(
                x.capacity_excess(inst.system().capacities()) < 1e-6,
                "slot {t}"
            );
        }
    }
}
