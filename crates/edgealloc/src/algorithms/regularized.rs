//! `online-approx` — the paper's regularization-based online algorithm.

use crate::algorithms::{OnlineAlgorithm, SlotInput};
use crate::allocation::Allocation;
use crate::programs::p2::{self, CapacityMode, Epsilons};
use crate::Result;
use optim::convex::BarrierOptions;

/// The paper's online algorithm (§III-B): at every slot, optimally solve
/// the regularized convex program ℙ₂ built around the previous slot's
/// decision. Theorem 2 gives the competitive ratio `1 + γ|I|` with
///
/// ```text
/// γ = max_i { (C_i+ε₁)·ln(1+C_i/ε₁), (C_i+ε₂)·ln(1+C_i/ε₂) }.
/// ```
///
/// # Example
///
/// ```
/// use edgealloc::prelude::*;
///
/// # fn main() -> Result<(), edgealloc::Error> {
/// let inst = Instance::fig1_example(2.1, true);
/// let mut alg = OnlineRegularized::with_defaults();
/// let traj = run_online(&inst, &mut alg)?;
/// let cost = evaluate_trajectory(&inst, &traj.allocations);
/// assert!(cost.total() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnlineRegularized {
    eps: Epsilons,
    options: BarrierOptions,
    warm_start: bool,
    repair: bool,
    capacity_mode: CapacityMode,
    last_solution: Option<Vec<f64>>,
    /// Duals of the most recent slot, exposed for the analysis tests.
    last_duals: Option<(Vec<f64>, Vec<f64>)>,
}

impl OnlineRegularized {
    /// Creates the algorithm with explicit regularization parameters.
    pub fn new(eps: Epsilons) -> Self {
        OnlineRegularized {
            eps,
            options: BarrierOptions::default(),
            warm_start: true,
            repair: true,
            capacity_mode: CapacityMode::Paper10b,
            last_solution: None,
            last_duals: None,
        }
    }

    /// Default `ε₁ = ε₂ = 0.5` (see [`Epsilons::default`]).
    pub fn with_defaults() -> Self {
        Self::new(Epsilons::default())
    }

    /// Convenience constructor for the Figure-4 sweep: `ε₁ = ε₂ = ε`.
    pub fn with_epsilon(eps: f64) -> Self {
        Self::new(Epsilons {
            eps1: eps,
            eps2: eps,
        })
    }

    /// Disables warm-starting each ℙ₂ from the previous slot's solution
    /// (ablation knob; results are identical, only solve time changes).
    pub fn without_warm_start(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Disables the capacity-repair projection (see [`repair_capacity`]) —
    /// exposes the raw ℙ₂ solutions, which on tightly-capacitated
    /// instances can exceed capacity (the Theorem-1 erratum).
    pub fn without_repair(mut self) -> Self {
        self.repair = false;
        self
    }

    /// Switches ℙ₂ to explicit per-cloud capacity rows instead of the
    /// paper's constraint (10b) — the deployment-grade variant that makes
    /// the repair projection unnecessary (ablation knob; see
    /// [`CapacityMode`]).
    pub fn with_explicit_capacity(mut self) -> Self {
        self.capacity_mode = CapacityMode::Explicit;
        self
    }

    /// Overrides the barrier-solver options.
    pub fn with_solver_options(mut self, options: BarrierOptions) -> Self {
        self.options = options;
        self
    }

    /// The regularization parameters in use.
    pub fn epsilons(&self) -> Epsilons {
        self.eps
    }

    /// Duals `(θ', ρ')` of the most recent slot's ℙ₂ (for analysis tests).
    pub fn last_duals(&self) -> Option<&(Vec<f64>, Vec<f64>)> {
        self.last_duals.as_ref()
    }

    /// Theorem 2's parameter `γ` for a given system.
    pub fn gamma(&self, system: &crate::system::EdgeCloudSystem) -> f64 {
        let mut g = 0.0f64;
        for i in 0..system.num_clouds() {
            let c = system.capacity(i);
            g = g.max((c + self.eps.eps1) * (1.0 + c / self.eps.eps1).ln());
            g = g.max((c + self.eps.eps2) * (1.0 + c / self.eps.eps2).ln());
        }
        g
    }

    /// Theorem 2's competitive ratio `r = 1 + γ|I|`.
    pub fn theoretical_ratio(&self, system: &crate::system::EdgeCloudSystem) -> f64 {
        1.0 + self.gamma(system) * system.num_clouds() as f64
    }
}

impl OnlineAlgorithm for OnlineRegularized {
    fn name(&self) -> &str {
        "online-approx"
    }

    fn decide(&mut self, input: &SlotInput<'_>, prev: &Allocation) -> Result<Allocation> {
        let start = if self.warm_start {
            self.last_solution.as_deref()
        } else {
            None
        };
        let sol = p2::solve_with_mode(input, prev, self.eps, start, &self.options, self.capacity_mode)?;
        self.last_solution = Some(sol.allocation.as_flat().to_vec());
        self.last_duals = Some((sol.theta, sol.rho));
        let mut allocation = sol.allocation;
        if self.repair {
            repair_capacity(input, &mut allocation)?;
        }
        Ok(allocation)
    }

    fn reset(&mut self) {
        self.last_solution = None;
        self.last_duals = None;
    }
}

/// Restores per-cloud capacity feasibility of a ℙ₂ solution, preserving
/// demand coverage.
///
/// **Why this exists (erratum, see DESIGN.md):** Theorem 1 of the paper
/// argues that the ℙ₂ optimum never exceeds capacity by monotonicity of the
/// objective — but reducing an over-capacity cloud can violate constraint
/// (10b) of *other* clouds, and on tightly-capacitated instances
/// (`C_i < λ_j` for some clouds) the true ℙ₂ optimum does allocate
/// `x_{i,t} = C_i + δ` with several (10b) rows binding. This projection
/// scales over-capacity clouds down to `C_i` and refills any resulting
/// per-user demand deficit at the cheapest clouds with remaining slack
/// (which exist because `ΣC_i ≥ Σλ_j`).
///
/// # Errors
///
/// Returns [`crate::Error::Invalid`] if total capacity cannot absorb the
/// demand (impossible for validated instances).
pub fn repair_capacity(input: &SlotInput<'_>, x: &mut Allocation) -> Result<()> {
    let num_clouds = input.num_clouds();
    let num_users = input.num_users();
    // Trim per-user surpluses: ℙ₀ only requires Σ_i x_ij ≥ λ_j, and any
    // surplus pays operation and quality cost every slot, so scale each
    // over-served user down to exactly λ_j.
    for j in 0..num_users {
        let total = x.user_total(j);
        let lambda = input.workloads[j];
        if total > lambda {
            let factor = lambda / total;
            for i in 0..num_clouds {
                x.set(i, j, x.get(i, j) * factor);
            }
        }
    }
    // Scale down over-capacity clouds.
    for i in 0..num_clouds {
        let total = x.cloud_total(i);
        let cap = input.system.capacity(i);
        if total > cap {
            let factor = cap / total;
            for j in 0..num_users {
                x.set(i, j, x.get(i, j) * factor);
            }
        }
    }
    // Refill per-user deficits at the cheapest clouds with slack.
    let mut slack: Vec<f64> = (0..num_clouds)
        .map(|i| (input.system.capacity(i) - x.cloud_total(i)).max(0.0))
        .collect();
    for j in 0..num_users {
        let mut deficit = input.workloads[j] - x.user_total(j);
        if deficit <= 1e-12 {
            continue;
        }
        let l = input.attachment[j];
        let mut order: Vec<usize> = (0..num_clouds).collect();
        let unit_cost = |i: usize| {
            input.weights.operation * input.operation_prices[i]
                + input.weights.quality * input.system.delay(l, i) / input.workloads[j]
        };
        order.sort_by(|&a, &b| {
            unit_cost(a)
                .partial_cmp(&unit_cost(b))
                .expect("finite costs")
        });
        for i in order {
            if deficit <= 1e-12 {
                break;
            }
            let take = deficit.min(slack[i]);
            if take > 0.0 {
                x.set(i, j, x.get(i, j) + take);
                slack[i] -= take;
                deficit -= take;
            }
        }
        if deficit > 1e-9 {
            return Err(crate::Error::Invalid(format!(
                "capacity repair failed: user {j} left with deficit {deficit}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::run_online;
    use crate::cost::evaluate_trajectory;
    use crate::instance::Instance;

    #[test]
    fn produces_feasible_trajectory() {
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = OnlineRegularized::with_defaults();
        let traj = run_online(&inst, &mut alg).unwrap();
        assert_eq!(traj.allocations.len(), 3);
        for x in &traj.allocations {
            assert!(x.demand_shortfall(inst.workloads()) < 1e-5);
            assert!(x.capacity_excess(inst.system().capacities()) < 1e-5);
        }
    }

    #[test]
    fn warm_start_does_not_change_result_materially() {
        let inst = Instance::fig1_example(2.1, true);
        let mut warm = OnlineRegularized::with_defaults();
        let mut cold = OnlineRegularized::with_defaults().without_warm_start();
        let a = run_online(&inst, &mut warm).unwrap();
        let b = run_online(&inst, &mut cold).unwrap();
        let ca = evaluate_trajectory(&inst, &a.allocations).total();
        let cb = evaluate_trajectory(&inst, &b.allocations).total();
        assert!((ca - cb).abs() / cb < 1e-3, "warm {ca} vs cold {cb}");
    }

    #[test]
    fn gamma_monotone_decreasing_in_epsilon() {
        let inst = Instance::fig1_example(2.1, true);
        let small = OnlineRegularized::with_epsilon(0.01).gamma(inst.system());
        let large = OnlineRegularized::with_epsilon(10.0).gamma(inst.system());
        assert!(small > large, "γ(0.01)={small} vs γ(10)={large}");
    }

    #[test]
    fn theoretical_ratio_exceeds_one() {
        let inst = Instance::fig1_example(2.1, true);
        let alg = OnlineRegularized::with_defaults();
        assert!(alg.theoretical_ratio(inst.system()) > 1.0);
    }

    #[test]
    fn explicit_capacity_variant_is_feasible_without_repair() {
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = OnlineRegularized::with_defaults()
            .with_explicit_capacity()
            .without_repair();
        let traj = run_online(&inst, &mut alg).unwrap();
        for x in &traj.allocations {
            assert!(x.capacity_excess(inst.system().capacities()) < 1e-6);
            assert!(x.demand_shortfall(inst.workloads()) < 1e-5);
        }
    }

    #[test]
    fn reset_clears_state() {
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = OnlineRegularized::with_defaults();
        let _ = run_online(&inst, &mut alg).unwrap();
        assert!(alg.last_duals().is_some());
        alg.reset();
        assert!(alg.last_duals().is_none());
    }
}
