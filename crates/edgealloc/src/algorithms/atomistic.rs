//! The atomistic baselines: perf-opt, oper-opt, stat-opt (§V-B).
//!
//! All three ignore the dynamic costs entirely and optimize (parts of) the
//! static cost independently in every slot.

use crate::algorithms::{OnlineAlgorithm, SlotInput};
use crate::allocation::Allocation;
use crate::health::SlotHealth;
use crate::programs::per_slot_lp::{base_lp, solve_to_allocation_resilient, StaticTerms};
use crate::Result;
use optim::resilience::RetryPolicy;

macro_rules! atomistic {
    ($(#[$doc:meta])* $name:ident, $label:literal, $operation:literal, $quality:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Default)]
        pub struct $name {
            last_health: Option<SlotHealth>,
        }

        impl $name {
            /// Creates the baseline.
            pub fn new() -> Self {
                Self::default()
            }
        }

        impl OnlineAlgorithm for $name {
            fn name(&self) -> &str {
                $label
            }

            fn decide(&mut self, input: &SlotInput<'_>, _prev: &Allocation) -> Result<Allocation> {
                let lp = base_lp(
                    input,
                    StaticTerms {
                        operation: $operation,
                        quality: $quality,
                    },
                );
                let (result, report) =
                    solve_to_allocation_resilient(&lp, input, &RetryPolicy::default());
                self.last_health = Some(SlotHealth::from_lp_report(&report));
                result
            }

            fn take_health(&mut self) -> Option<SlotHealth> {
                self.last_health.take()
            }

            fn reset(&mut self) {
                self.last_health = None;
            }
        }
    };
}

atomistic!(
    /// `perf-opt`: minimizes only the service-quality cost in every slot,
    /// pinning workload as close to each user as capacity allows.
    PerfOpt,
    "perf-opt",
    false,
    true
);

atomistic!(
    /// `oper-opt`: minimizes only the operation cost in every slot, chasing
    /// the cheapest clouds regardless of delay or churn.
    OperOpt,
    "oper-opt",
    true,
    false
);

atomistic!(
    /// `stat-opt`: minimizes the total static cost (operation + quality) in
    /// every slot, still ignoring reconfiguration and migration.
    StatOpt,
    "stat-opt",
    true,
    true
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::run_online;
    use crate::cost::evaluate_trajectory;
    use crate::instance::Instance;
    use mobility::MobilityInput;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_instance() -> Instance {
        let net = mobility::rome_metro();
        let mut rng = StdRng::seed_from_u64(17);
        let mob = mobility::random_walk::generate(&net, 6, 6, &mut rng);
        Instance::synthetic(&net, mob, &mut rng)
    }

    #[test]
    fn all_atomistic_are_feasible() {
        let inst = small_instance();
        for alg in [
            &mut PerfOpt::new() as &mut dyn OnlineAlgorithm,
            &mut OperOpt::new(),
            &mut StatOpt::new(),
        ] {
            let traj = run_online(&inst, alg).unwrap();
            for x in &traj.allocations {
                assert!(
                    x.demand_shortfall(inst.workloads()) < 1e-5,
                    "{}",
                    alg.name()
                );
                assert!(
                    x.capacity_excess(inst.system().capacities()) < 1e-4,
                    "{}",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn perf_opt_keeps_workload_at_attached_cloud() {
        // With one user, ample capacity, and positive inter-cloud delays,
        // perf-opt must serve the user entirely from its attached cloud.
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = PerfOpt::new();
        let traj = run_online(&inst, &mut alg).unwrap();
        assert!(traj.allocations[0].get(0, 0) > 0.99);
        assert!(traj.allocations[1].get(1, 0) > 0.99);
        assert!(traj.allocations[2].get(0, 0) > 0.99);
    }

    #[test]
    fn stat_opt_dominates_components_on_static_cost() {
        // stat-opt's static cost is ≤ both single-component optimizers'
        // static costs... not in general, but its *objective* (static sum)
        // is minimal by construction. Verify against perf-opt and oper-opt.
        let inst = small_instance();
        let stat = run_online(&inst, &mut StatOpt::new()).unwrap();
        let perf = run_online(&inst, &mut PerfOpt::new()).unwrap();
        let oper = run_online(&inst, &mut OperOpt::new()).unwrap();
        let s = evaluate_trajectory(&inst, &stat.allocations).static_part();
        let p = evaluate_trajectory(&inst, &perf.allocations).static_part();
        let o = evaluate_trajectory(&inst, &oper.allocations).static_part();
        assert!(s <= p + 1e-6, "stat {s} vs perf {p}");
        assert!(s <= o + 1e-6, "stat {s} vs oper {o}");
    }

    #[test]
    fn oper_opt_ignores_quality() {
        // Make cloud B dirt cheap: oper-opt must move everything there even
        // though the user sits at A.
        let net = mobility::rome_metro();
        let mob = MobilityInput::new(15, vec![vec![0; 3]], vec![vec![0.0; 3]]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut inst = Instance::synthetic(&net, mob, &mut rng);
        // Rebuild with extreme prices: cloud 14 free, others expensive.
        let mut prices = vec![vec![10.0; 15]; 3];
        for row in &mut prices {
            row[14] = 0.0;
        }
        inst = Instance::new(
            inst.system().clone(),
            inst.workloads().to_vec(),
            inst.mobility().clone(),
            prices,
            inst.reconfig_prices_slice().to_vec(),
            inst.migration_out_slice().to_vec(),
            inst.migration_in_slice().to_vec(),
            inst.weights(),
        )
        .unwrap();
        let traj = run_online(&inst, &mut OperOpt::new()).unwrap();
        let lambda = inst.workload(0);
        // All workload lands on cloud 14 (capacity permitting).
        let c14 = inst.system().capacity(14);
        let expected = lambda.min(c14);
        assert!(
            traj.allocations[0].get(14, 0) >= expected - 1e-5,
            "{:?}",
            traj.allocations[0].get(14, 0)
        );
    }
}
