//! `online-greedy` — per-slot minimization of the full ℙ₀ objective.

use crate::algorithms::{OnlineAlgorithm, SlotInput};
use crate::allocation::Allocation;
use crate::health::SlotHealth;
use crate::programs::per_slot_lp::{
    add_dynamic_terms, base_lp, solve_to_allocation_resilient, StaticTerms,
};
use crate::Result;
use optim::resilience::RetryPolicy;

/// The natural greedy baseline (§II-E, §V-B): in every slot, minimize the
/// slot's full ℙ₀ cost — static costs plus the reconfiguration and
/// bidirectional migration costs of transitioning from the previous slot —
/// with no consideration of the future. The paper's Figure 1 shows it can
/// be both too aggressive and too conservative.
///
/// # Example
///
/// ```
/// use edgealloc::prelude::*;
///
/// # fn main() -> Result<(), edgealloc::Error> {
/// let inst = Instance::fig1_example(2.1, true);
/// let mut alg = OnlineGreedy::new();
/// let traj = run_online(&inst, &mut alg)?;
/// assert_eq!(traj.allocations.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineGreedy {
    last_health: Option<SlotHealth>,
}

impl OnlineGreedy {
    /// Creates the greedy baseline.
    pub fn new() -> Self {
        OnlineGreedy::default()
    }
}

impl OnlineAlgorithm for OnlineGreedy {
    fn name(&self) -> &str {
        "online-greedy"
    }

    fn decide(&mut self, input: &SlotInput<'_>, prev: &Allocation) -> Result<Allocation> {
        let mut lp = base_lp(
            input,
            StaticTerms {
                operation: true,
                quality: true,
            },
        );
        add_dynamic_terms(&mut lp, input, prev);
        let (result, report) = solve_to_allocation_resilient(&lp, input, &RetryPolicy::default());
        self.last_health = Some(SlotHealth::from_lp_report(&report));
        result
    }

    fn take_health(&mut self) -> Option<SlotHealth> {
        self.last_health.take()
    }

    fn reset(&mut self) {
        self.last_health = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::run_online;
    use crate::cost::evaluate_trajectory;
    use crate::instance::Instance;

    /// Evaluate a trajectory *excluding* the initial ramp-up transition, as
    /// the paper's Figure-1 tallies do (the ramp is identical across
    /// policies).
    fn cost_without_ramp(inst: &Instance, allocs: &[Allocation]) -> f64 {
        let full = evaluate_trajectory(inst, allocs).total();
        let ramp = crate::cost::transition_cost(
            inst,
            &Allocation::zeros(inst.num_clouds(), inst.num_users()),
            &allocs[0],
        )
        .total();
        full - ramp
    }

    #[test]
    fn fig1a_greedy_is_too_aggressive() {
        // Figure 1(a): greedy pays 11.5 while the optimum pays 9.6.
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = OnlineGreedy::new();
        let traj = run_online(&inst, &mut alg).unwrap();
        // Greedy migrates to B at t=1 and back to A at t=2.
        assert!(traj.allocations[0].get(0, 0) > 0.99);
        assert!(
            traj.allocations[1].get(1, 0) > 0.99,
            "{:?}",
            traj.allocations[1]
        );
        assert!(traj.allocations[2].get(0, 0) > 0.99);
        let total = cost_without_ramp(&inst, &traj.allocations);
        assert!(
            (total - 11.5).abs() < 1e-4,
            "greedy cost {total}, expected 11.5"
        );
    }

    #[test]
    fn fig1b_greedy_is_too_conservative() {
        // Figure 1(b): greedy pays 11.3 while the optimum pays 9.5.
        let inst = Instance::fig1_example(1.9, false);
        let mut alg = OnlineGreedy::new();
        let traj = run_online(&inst, &mut alg).unwrap();
        // Greedy never leaves A.
        for t in 0..3 {
            assert!(traj.allocations[t].get(0, 0) > 0.99, "slot {t}");
        }
        let total = cost_without_ramp(&inst, &traj.allocations);
        assert!(
            (total - 11.3).abs() < 1e-4,
            "greedy cost {total}, expected 11.3"
        );
    }
}
