//! Static allocation baselines — "the static approaches which are
//! typically employed in edge clouds" (§I, §V).
//!
//! A static policy fixes one allocation at the first slot and never adapts.
//! The paper reports up to 4× total-cost reduction of the online algorithm
//! over such approaches; since it does not pin down a single variant, three
//! natural ones are provided.

use crate::algorithms::{OnlineAlgorithm, SlotInput};
use crate::allocation::Allocation;
use crate::health::SlotHealth;
use crate::programs::per_slot_lp::{base_lp, solve_to_allocation_resilient, StaticTerms};
use crate::Result;
use optim::resilience::RetryPolicy;

/// Which static allocation is frozen at the first slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticVariant {
    /// Every user's workload spread over clouds proportionally to capacity.
    Proportional,
    /// The static-cost-optimal allocation of the *first* slot, frozen.
    FirstSlotOpt,
    /// Each user fully served by the cloud it is attached to at the first
    /// slot (capacity permitting — overflows spill proportionally).
    Local,
}

/// A static baseline: computes an allocation at `t = 0` and returns it for
/// every slot thereafter, paying no further reconfiguration or migration
/// but drifting away from users as they move.
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    variant: StaticVariant,
    frozen: Option<Allocation>,
    last_health: Option<SlotHealth>,
}

impl StaticPolicy {
    /// Creates a static policy of the given variant.
    pub fn new(variant: StaticVariant) -> Self {
        StaticPolicy {
            variant,
            frozen: None,
            last_health: None,
        }
    }

    fn initial(&mut self, input: &SlotInput<'_>) -> Result<Allocation> {
        let num_clouds = input.num_clouds();
        let num_users = input.num_users();
        let terms = match self.variant {
            StaticVariant::Proportional => {
                let total_cap = input.system.total_capacity();
                let mut x = Allocation::zeros(num_clouds, num_users);
                for i in 0..num_clouds {
                    let share = input.system.capacity(i) / total_cap;
                    for j in 0..num_users {
                        x.set(i, j, input.workloads[j] * share);
                    }
                }
                return Ok(x);
            }
            StaticVariant::FirstSlotOpt => StaticTerms {
                operation: true,
                quality: true,
            },
            // Serve locally; spill each cloud's excess over the others
            // proportionally to remaining capacity via a quality-only LP
            // (equivalent to the natural "nearest with spillover").
            StaticVariant::Local => StaticTerms {
                operation: false,
                quality: true,
            },
        };
        let lp = base_lp(input, terms);
        let (result, report) = solve_to_allocation_resilient(&lp, input, &RetryPolicy::default());
        self.last_health = Some(SlotHealth::from_lp_report(&report));
        result
    }
}

impl OnlineAlgorithm for StaticPolicy {
    fn name(&self) -> &str {
        match self.variant {
            StaticVariant::Proportional => "static-proportional",
            StaticVariant::FirstSlotOpt => "static-first-slot",
            StaticVariant::Local => "static-local",
        }
    }

    fn decide(&mut self, input: &SlotInput<'_>, _prev: &Allocation) -> Result<Allocation> {
        if self.frozen.is_none() {
            self.frozen = Some(self.initial(input)?);
        }
        Ok(self.frozen.clone().expect("frozen allocation just set"))
    }

    fn take_health(&mut self) -> Option<SlotHealth> {
        self.last_health.take()
    }

    fn reset(&mut self) {
        self.frozen = None;
        self.last_health = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::run_online;
    use crate::cost::{evaluate_trajectory, transition_cost};
    use crate::instance::Instance;

    #[test]
    fn allocation_is_frozen_across_slots() {
        let inst = Instance::fig1_example(2.1, true);
        for variant in [
            StaticVariant::Proportional,
            StaticVariant::FirstSlotOpt,
            StaticVariant::Local,
        ] {
            let mut alg = StaticPolicy::new(variant);
            let traj = run_online(&inst, &mut alg).unwrap();
            assert_eq!(traj.allocations[0], traj.allocations[1]);
            assert_eq!(traj.allocations[1], traj.allocations[2]);
        }
    }

    #[test]
    fn static_pays_no_dynamic_cost_after_ramp() {
        let inst = Instance::fig1_example(2.1, true);
        let mut alg = StaticPolicy::new(StaticVariant::Proportional);
        let traj = run_online(&inst, &mut alg).unwrap();
        let c = transition_cost(&inst, &traj.allocations[0], &traj.allocations[1]);
        assert_eq!(c.total(), 0.0);
    }

    #[test]
    fn static_is_feasible() {
        let inst = Instance::fig1_example(2.1, true);
        for variant in [
            StaticVariant::Proportional,
            StaticVariant::FirstSlotOpt,
            StaticVariant::Local,
        ] {
            let mut alg = StaticPolicy::new(variant);
            let traj = run_online(&inst, &mut alg).unwrap();
            for x in &traj.allocations {
                assert!(x.demand_shortfall(inst.workloads()) < 1e-5);
                assert!(x.capacity_excess(inst.system().capacities()) < 1e-5);
            }
        }
    }

    #[test]
    fn reset_allows_rerun_on_new_instance() {
        let a = Instance::fig1_example(2.1, true);
        let b = Instance::fig1_example(1.9, false);
        let mut alg = StaticPolicy::new(StaticVariant::FirstSlotOpt);
        let ta = run_online(&a, &mut alg).unwrap();
        let tb = run_online(&b, &mut alg).unwrap();
        // Both runs must be internally consistent (frozen per run).
        assert_eq!(ta.allocations[0], ta.allocations[2]);
        assert_eq!(tb.allocations[0], tb.allocations[2]);
        let _ = evaluate_trajectory(&a, &ta.allocations);
    }
}
