//! Projection onto *exact* floating-point feasibility.
//!
//! [`project_exact`] turns an approximately feasible allocation into a
//! decision that satisfies the slot's constraints **exactly under
//! floating-point evaluation**: `Σ_i x_ij ≥ λ_j` and `Σ_j x_ij ≤ C_i` hold
//! for the very sums [`Allocation::user_total`] and
//! [`Allocation::cloud_total`] compute — no `1e-9` overshoot allowance.
//!
//! Exactness matters downstream: health gates and feasibility assertions
//! compare these sums against the bounds directly, and a decision that is
//! "feasible up to tolerance" forces every consumer to thread that
//! tolerance through. The projection does the tolerance-free cleanup once,
//! at the only place that knows the slot data.
//!
//! The machinery originated in the shard crate's merge step (where shard
//! solutions are reassembled) and moved here so the shedding rung
//! (see [`crate::shed`]) can certify exact feasibility on survivor slots
//! without a dependency cycle; `shard::merge` re-exports it.

use crate::algorithms::{repair_capacity, SlotInput};
use crate::allocation::Allocation;
use crate::{Error, Result};

/// Projects an allocation onto the slot's feasible region with **exact**
/// floating-point feasibility: after return, `x.user_total(j) >= λ_j` and
/// `x.cloud_total(i) <= C_i` hold as written, for every user and cloud, and
/// all entries are non-negative and finite.
///
/// The bulk of the work is [`repair_capacity`] (trim user surplus, scale
/// over-capacity clouds, refill deficits at the cheapest slack); what
/// remains are rounding residues of at most a few ulps, removed by a short
/// fix-up loop: capacity overshoot is subtracted from the cloud's largest
/// entry, demand shortfall is topped up at the cloud with the most exact
/// slack using geometrically growing increments (so a sum stuck below `λ_j`
/// by less than one ulp of a large entry still crosses the bound in a few
/// steps).
///
/// # Errors
///
/// Returns [`Error::Invalid`] for non-finite entries, when total capacity
/// cannot absorb total demand, or if the fix-up fails to converge (not
/// observed for instances with strict capacity slack).
pub fn project_exact(input: &SlotInput<'_>, x: &mut Allocation) -> Result<()> {
    let num_clouds = input.num_clouds();
    let num_users = input.num_users();
    for i in 0..num_clouds {
        for j in 0..num_users {
            let v = x.get(i, j);
            if !v.is_finite() {
                return Err(Error::Invalid(format!(
                    "non-finite allocation entry ({i}, {j}) = {v}"
                )));
            }
            if v < 0.0 {
                x.set(i, j, 0.0);
            }
        }
    }
    repair_capacity(input, x)?;
    // The repair leaves residues of float-rounding size; alternate exact
    // capacity trims and exact demand top-ups until both checks pass as
    // written. Trims only touch saturated clouds and top-ups only clouds
    // with positive exact slack, so the passes cannot ping-pong.
    for _pass in 0..32 {
        let mut dirty = false;
        for i in 0..num_clouds {
            dirty |= trim_cloud_exact(input, x, i)?;
        }
        for j in 0..num_users {
            dirty |= fill_user_exact(input, x, j)?;
        }
        if !dirty {
            return Ok(());
        }
    }
    Err(Error::Invalid(
        "exact-feasibility projection failed to converge".into(),
    ))
}

/// Removes cloud `i`'s exact capacity overshoot by subtracting it from the
/// cloud's largest entry (repeatedly — the re-summed total can still sit an
/// ulp over). Returns whether anything changed.
fn trim_cloud_exact(input: &SlotInput<'_>, x: &mut Allocation, i: usize) -> Result<bool> {
    let cap = input.system.capacity(i);
    let num_users = input.num_users();
    let mut dirty = false;
    for _ in 0..64 {
        let total = x.cloud_total(i);
        if total <= cap {
            return Ok(dirty);
        }
        let excess = total - cap;
        let jmax = (0..num_users)
            .max_by(|&a, &b| {
                x.get(i, a)
                    .partial_cmp(&x.get(i, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one user");
        let before = x.get(i, jmax);
        let after = (before - excess).max(0.0);
        if after == before {
            // The excess is below the entry's ulp; step the entry down one
            // representable value instead.
            x.set(i, jmax, next_down(before).max(0.0));
        } else {
            x.set(i, jmax, after);
        }
        dirty = true;
    }
    Err(Error::Invalid(format!(
        "cloud {i} capacity trim failed to converge"
    )))
}

/// Tops user `j` up to its exact workload bound at the cloud with the most
/// exact slack, doubling the increment until the re-summed total crosses
/// `λ_j`. Returns whether anything changed.
fn fill_user_exact(input: &SlotInput<'_>, x: &mut Allocation, j: usize) -> Result<bool> {
    let lambda = input.workloads[j];
    let num_clouds = input.num_clouds();
    let mut dirty = false;
    let mut add = (lambda - x.user_total(j)).max(f64::MIN_POSITIVE);
    for _ in 0..64 {
        if x.user_total(j) >= lambda {
            return Ok(dirty);
        }
        let (imax, slack) = (0..num_clouds)
            .map(|i| (i, input.system.capacity(i) - x.cloud_total(i)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("at least one cloud");
        // Stay strictly inside the slack so the matching capacity check
        // cannot flip; residues are ulp-sized against macroscopic slack.
        if !(slack > 2.0 * add) {
            return Err(Error::Invalid(format!(
                "user {j} demand top-up of {add} exceeds the best slack {slack}"
            )));
        }
        let before = x.get(imax, j);
        let after = before + add;
        x.set(
            imax,
            j,
            if after > before {
                after
            } else {
                next_up(before)
            },
        );
        dirty = true;
        add *= 2.0;
    }
    Err(Error::Invalid(format!(
        "user {j} demand top-up failed to converge"
    )))
}

/// The next representable `f64` above `v` (for non-negative finite `v`).
fn next_up(v: f64) -> f64 {
    if v == 0.0 {
        f64::MIN_POSITIVE
    } else {
        f64::from_bits(v.to_bits() + 1)
    }
}

/// The next representable `f64` below `v` (for positive finite `v`).
fn next_down(v: f64) -> f64 {
    if v <= 0.0 {
        0.0
    } else {
        f64::from_bits(v.to_bits() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    #[test]
    fn next_up_and_down_step_one_ulp() {
        let v = 1.5;
        assert!(next_up(v) > v);
        assert!(next_down(v) < v);
        assert_eq!(next_down(next_up(v)), v);
        assert_eq!(next_down(0.0), 0.0);
        assert!(next_up(0.0) > 0.0);
    }

    #[test]
    fn projection_makes_a_sloppy_point_exactly_feasible() {
        let inst = Instance::fig1_example(2.1, true);
        let input = SlotInput::from_instance(&inst, 0);
        let mut x = Allocation::zeros(2, 1);
        // Under-serves demand and carries a tiny negative entry.
        x.set(0, 0, 0.3);
        x.set(1, 0, -1e-12);
        project_exact(&input, &mut x).unwrap();
        assert!(x.user_total(0) >= input.workloads[0]);
        for i in 0..2 {
            assert!(x.cloud_total(i) <= input.system.capacity(i));
            assert!(x.get(i, 0) >= 0.0);
        }
    }

    #[test]
    fn projection_rejects_non_finite_entries() {
        let inst = Instance::fig1_example(2.1, true);
        let input = SlotInput::from_instance(&inst, 0);
        let mut x = Allocation::zeros(2, 1);
        x.set(0, 0, f64::NAN);
        assert!(project_exact(&input, &mut x).is_err());
    }
}
