//! Per-slot allocation matrices `x_{i,j}`.

use serde::{Deserialize, Serialize};

/// The resource allocation of one time slot: `x_{i,j}` units of cloud `i`'s
/// resources serving user `j`'s workload.
///
/// # Example
///
/// ```
/// use edgealloc::Allocation;
///
/// let mut x = Allocation::zeros(2, 3);
/// x.set(1, 0, 4.0);
/// assert_eq!(x.get(1, 0), 4.0);
/// assert_eq!(x.cloud_total(1), 4.0);
/// assert_eq!(x.user_total(0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    num_clouds: usize,
    num_users: usize,
    /// Row-major by cloud: entry `(i, j)` at `x[i * num_users + j]`.
    x: Vec<f64>,
}

impl Allocation {
    /// The all-zero allocation (`x_{i,j,0} ≜ 0` in the paper).
    pub fn zeros(num_clouds: usize, num_users: usize) -> Self {
        Allocation {
            num_clouds,
            num_users,
            x: vec![0.0; num_clouds * num_users],
        }
    }

    /// Builds from a flat row-major (cloud-major) vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_clouds * num_users`.
    pub fn from_flat(num_clouds: usize, num_users: usize, x: Vec<f64>) -> Self {
        assert_eq!(x.len(), num_clouds * num_users, "flat length mismatch");
        Allocation {
            num_clouds,
            num_users,
            x,
        }
    }

    /// Number of clouds `I`.
    pub fn num_clouds(&self) -> usize {
        self.num_clouds
    }

    /// Number of users `J`.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// `x_{i,j}`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.x[i * self.num_users + j]
    }

    /// Sets `x_{i,j}`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.x[i * self.num_users + j] = v;
    }

    /// The flat storage (cloud-major).
    pub fn as_flat(&self) -> &[f64] {
        &self.x
    }

    /// Total allocated in cloud `i`: `x_{i,t} = Σ_j x_{i,j,t}`.
    pub fn cloud_total(&self, i: usize) -> f64 {
        self.x[i * self.num_users..(i + 1) * self.num_users]
            .iter()
            .sum()
    }

    /// Total allocated to user `j`: `Σ_i x_{i,j,t}`.
    pub fn user_total(&self, j: usize) -> f64 {
        (0..self.num_clouds).map(|i| self.get(i, j)).sum()
    }

    /// Sum of all entries.
    pub fn grand_total(&self) -> f64 {
        self.x.iter().sum()
    }

    /// Clamps tiny negative values (solver round-off) to zero.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a value is more negative than `-tol`.
    pub fn clamp_nonnegative(&mut self, tol: f64) {
        for v in &mut self.x {
            debug_assert!(*v >= -tol, "allocation entry {v} below -{tol}");
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Maximum demand shortfall `max_j (λ_j − Σ_i x_{i,j})⁺`.
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len() != num_users`.
    pub fn demand_shortfall(&self, workloads: &[f64]) -> f64 {
        assert_eq!(workloads.len(), self.num_users, "workload length mismatch");
        (0..self.num_users)
            .map(|j| (workloads[j] - self.user_total(j)).max(0.0))
            .fold(0.0, f64::max)
    }

    /// Maximum capacity excess `max_i (Σ_j x_{i,j} − C_i)⁺`.
    ///
    /// # Panics
    ///
    /// Panics if `capacities.len() != num_clouds`.
    pub fn capacity_excess(&self, capacities: &[f64]) -> f64 {
        assert_eq!(
            capacities.len(),
            self.num_clouds,
            "capacity length mismatch"
        );
        (0..self.num_clouds)
            .map(|i| (self.cloud_total(i) - capacities[i]).max(0.0))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let mut a = Allocation::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 3.0);
        assert_eq!(a.cloud_total(0), 3.0);
        assert_eq!(a.cloud_total(1), 3.0);
        assert_eq!(a.user_total(0), 4.0);
        assert_eq!(a.grand_total(), 6.0);
    }

    #[test]
    fn feasibility_metrics() {
        let mut a = Allocation::zeros(2, 1);
        a.set(0, 0, 1.0);
        a.set(1, 0, 1.0);
        assert_eq!(a.demand_shortfall(&[3.0]), 1.0);
        assert_eq!(a.demand_shortfall(&[2.0]), 0.0);
        assert_eq!(a.capacity_excess(&[0.5, 2.0]), 0.5);
    }

    #[test]
    fn clamp_zeroes_small_negatives() {
        let mut a = Allocation::from_flat(1, 2, vec![-1e-12, 5.0]);
        a.clamp_nonnegative(1e-9);
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(0, 1), 5.0);
    }
}
