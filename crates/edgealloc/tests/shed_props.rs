//! Property-based tests of the overload sentinel and the minimal-shedding
//! rung: on arbitrary (possibly overloaded) slots the shedding plan must
//! free enough capacity, the survivors must be *exactly* solvable, and the
//! plan must be monotone in the overload intensity.

use edgealloc::algorithms::SlotInput;
use edgealloc::allocation::Allocation;
use edgealloc::cost::CostWeights;
use edgealloc::exact::project_exact;
use edgealloc::instance::Instance;
use edgealloc::sentinel::{self, SentinelVerdict};
use edgealloc::shed::{plan_shedding, ShedConfig, SurvivorSlot};
use edgealloc::system::EdgeCloudSystem;
use mobility::MobilityInput;
use optim::budget::SolveBudget;
use proptest::prelude::*;

/// Strategy: a single-slot instance with 2–4 clouds and 1–6 users whose
/// *online-view* aggregate demand is `load` times the total capacity —
/// spanning feasible (`load < 1`) through heavily overloaded (`load` up to
/// 4). The instance itself is built feasible (1.5× slack, as
/// [`Instance::new`] requires) and then surged through
/// [`Instance::scale_demand`], the same path a hostile plan takes.
fn loaded_instance() -> impl Strategy<Value = (Instance, f64)> {
    (
        2usize..5,
        1usize..7,
        0.3f64..4.0,
        proptest::collection::vec(0.1f64..3.0, 64),
    )
        .prop_map(|(nc, nu, load, raw)| {
            let workloads: Vec<f64> = (0..nu)
                .map(|j| 1.0 + (raw[(j * 3) % raw.len()] * 2.0).round())
                .collect();
            let total_workload: f64 = workloads.iter().sum();
            let shares: Vec<f64> = (0..nc).map(|i| 0.2 + raw[i % raw.len()]).collect();
            let share_sum: f64 = shares.iter().sum();
            let capacities: Vec<f64> = shares
                .iter()
                .map(|s| 1.5 * total_workload * s / share_sum)
                .collect();
            let mut delay = vec![vec![0.0; nc]; nc];
            for i in 0..nc {
                for j in (i + 1)..nc {
                    let d = raw[(i * 5 + j) % raw.len()];
                    delay[i][j] = d;
                    delay[j][i] = d;
                }
            }
            let system = EdgeCloudSystem::new(capacities, delay).expect("valid system");
            let attachment: Vec<Vec<usize>> = (0..nu).map(|j| vec![(j * 7) % nc]).collect();
            let access: Vec<Vec<f64>> = (0..nu).map(|j| vec![raw[(j + 13) % raw.len()]]).collect();
            let mobility = MobilityInput::new(nc, attachment, access);
            let prices: Vec<Vec<f64>> = vec![(0..nc).map(|i| 0.2 + raw[i % raw.len()]).collect()];
            let reconfig: Vec<f64> = (0..nc).map(|i| raw[(i + 11) % raw.len()]).collect();
            let b_out: Vec<f64> = (0..nc).map(|i| raw[(i + 17) % raw.len()] * 0.5).collect();
            let b_in: Vec<f64> = (0..nc).map(|i| raw[(i + 23) % raw.len()] * 0.5).collect();
            let mut inst = Instance::new(
                system,
                workloads,
                mobility,
                prices,
                reconfig,
                b_out,
                b_in,
                CostWeights::default(),
            )
            .expect("valid instance");
            // ΣC = 1.5·Σλ, so a demand factor of 1.5·load makes the
            // online-view demand exactly load · ΣC.
            inst.scale_demand(0, 1.5 * load);
            (inst, load)
        })
}

/// The slot-0 online view of an instance with scaling factors installed.
macro_rules! online_input {
    ($inst:expr, $scaled:ident, $input:ident) => {
        let $scaled = $inst.scaled_slot(0);
        let $input = match &$scaled {
            Some(s) => s.as_input(&$inst, 0),
            None => SlotInput::from_instance(&$inst, 0),
        };
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The plan always frees at least the required workload, never sheds on
    /// slots the sentinel calls feasible, and its penalty is at least the
    /// LP relaxation's lower bound (it can never beat the relaxation).
    #[test]
    fn shedding_frees_enough_and_respects_the_lp_bound(
        (inst, _load) in loaded_instance(),
    ) {
        online_input!(inst, _scaled, input);
        let cfg = ShedConfig::default();
        let report = sentinel::assess(&input, cfg.headroom);
        let decision = plan_shedding(&input, &cfg, &SolveBudget::unlimited()).unwrap();
        if report.verdict != SentinelVerdict::Overloaded {
            // Headroom can require a small trim on Tight slots, but a
            // Feasible slot (slack ≥ headroom) must shed nothing.
            if report.verdict == SentinelVerdict::Feasible {
                prop_assert!(decision.is_empty(), "feasible slot shed: {decision:?}");
            }
        }
        if decision.required_shed > 0.0 {
            prop_assert!(
                decision.shed_workload >= decision.required_shed,
                "shed {} < required {}",
                decision.shed_workload,
                decision.required_shed
            );
        }
        prop_assert!(
            decision.penalty >= decision.penalty_lower_bound - 1e-9 * (1.0 + decision.penalty),
            "greedy penalty {} beat the LP bound {}",
            decision.penalty,
            decision.penalty_lower_bound
        );
        // Survivor demand (in the surged online view) fits total capacity.
        let surviving: f64 = decision.survivors.iter().map(|&j| input.workloads[j]).sum();
        let capacity: f64 = (0..inst.num_clouds()).map(|i| inst.system().capacity(i)).sum();
        prop_assert!(
            surviving <= capacity + 1e-9 * (1.0 + capacity),
            "survivors {surviving} exceed capacity {capacity}"
        );
    }

    /// Survivor slots are exactly solvable: projecting any nonnegative
    /// start onto the reduced slot yields exact capacity and demand
    /// feasibility under floating-point evaluation as written.
    #[test]
    fn survivors_are_exactly_feasible_after_projection(
        (inst, _load) in loaded_instance(),
    ) {
        online_input!(inst, _scaled, input);
        let cfg = ShedConfig::default();
        let decision = plan_shedding(&input, &cfg, &SolveBudget::unlimited()).unwrap();
        // Nothing survives (total capacity collapse): nothing to solve.
        if !decision.survivors.is_empty() {
        let slot = SurvivorSlot::new(&input, &decision);
        let rinput = slot.as_input(&input);
        let mut x = Allocation::zeros(input.num_clouds(), slot.len());
        project_exact(&rinput, &mut x).expect("survivors are projectable");
        for i in 0..rinput.num_clouds() {
            prop_assert!(
                x.cloud_total(i) <= rinput.system.capacity(i),
                "cloud {i} over capacity exactly"
            );
        }
        for (col, _) in decision.survivors.iter().enumerate() {
            prop_assert!(
                x.user_total(col) >= rinput.workloads[col],
                "survivor {col} under-served exactly"
            );
        }
        }
    }

    /// Scaling every workload up can only grow the shed set: the plan is
    /// monotone in overload intensity.
    #[test]
    fn shed_count_is_monotone_in_overload(
        (inst, _load) in loaded_instance(),
        bump in 1.1f64..2.5,
    ) {
        online_input!(inst, _scaled, input);
        let cfg = ShedConfig::default();
        let base = plan_shedding(&input, &cfg, &SolveBudget::unlimited()).unwrap();

        let mut surged = inst.clone();
        surged.scale_demand(0, bump);
        online_input!(surged, _sscaled, sinput);
        let more = plan_shedding(&sinput, &cfg, &SolveBudget::unlimited()).unwrap();
        prop_assert!(
            more.deferred.len() >= base.deferred.len(),
            "surge x{bump} shrank the shed set: {} -> {}",
            base.deferred.len(),
            more.deferred.len()
        );
        prop_assert!(more.required_shed >= base.required_shed - 1e-9);
    }
}
