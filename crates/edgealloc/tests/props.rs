//! Property-based tests of the cost model, allocations, and the capacity
//! repair projection.

use edgealloc::algorithms::{repair_capacity, SlotInput};
use edgealloc::allocation::Allocation;
use edgealloc::cost::{evaluate_trajectory, slot_static_cost, transition_cost, CostWeights};
use edgealloc::instance::Instance;
use edgealloc::system::EdgeCloudSystem;
use mobility::MobilityInput;
use proptest::prelude::*;

/// Strategy: a small random instance with 2–4 clouds, 1–4 users, 2–4 slots.
fn small_instance() -> impl Strategy<Value = Instance> {
    (
        2usize..5,
        1usize..5,
        2usize..5,
        proptest::collection::vec(0.1f64..3.0, 64),
        proptest::collection::vec(0usize..4, 32),
    )
        .prop_map(|(nc, nu, nt, raw, att)| {
            let workloads: Vec<f64> = (0..nu)
                .map(|j| 1.0 + (raw[(j * 3) % raw.len()] * 2.0).round())
                .collect();
            let total_workload: f64 = workloads.iter().sum();
            // Capacities proportional to random shares, totalling 1.5·Σλ so
            // every generated instance is feasible.
            let shares: Vec<f64> = (0..nc).map(|i| 0.2 + raw[i % raw.len()]).collect();
            let share_sum: f64 = shares.iter().sum();
            let capacities: Vec<f64> = shares
                .iter()
                .map(|s| 1.5 * total_workload * s / share_sum)
                .collect();
            let mut delay = vec![vec![0.0; nc]; nc];
            for i in 0..nc {
                for j in (i + 1)..nc {
                    let d = raw[(i * 5 + j) % raw.len()];
                    delay[i][j] = d;
                    delay[j][i] = d;
                }
            }
            let system = EdgeCloudSystem::new(capacities, delay).expect("valid system");
            let attachment: Vec<Vec<usize>> = (0..nu)
                .map(|j| {
                    (0..nt)
                        .map(|t| att[(j * nt + t) % att.len()] % nc)
                        .collect()
                })
                .collect();
            let access: Vec<Vec<f64>> = (0..nu)
                .map(|j| (0..nt).map(|t| raw[(j + t * 7) % raw.len()]).collect())
                .collect();
            let mobility = MobilityInput::new(nc, attachment, access);
            let prices: Vec<Vec<f64>> = (0..nt)
                .map(|t| {
                    (0..nc)
                        .map(|i| 0.2 + raw[(t * nc + i) % raw.len()])
                        .collect()
                })
                .collect();
            let reconfig: Vec<f64> = (0..nc).map(|i| raw[(i + 11) % raw.len()]).collect();
            let b_out: Vec<f64> = (0..nc).map(|i| raw[(i + 17) % raw.len()] * 0.5).collect();
            let b_in: Vec<f64> = (0..nc).map(|i| raw[(i + 23) % raw.len()] * 0.5).collect();
            Instance::new(
                system,
                workloads,
                mobility,
                prices,
                reconfig,
                b_out,
                b_in,
                CostWeights::default(),
            )
            .expect("valid instance")
        })
}

/// Strategy: a random allocation shaped for the instance (not necessarily
/// feasible).
fn allocation_for(inst: &Instance, raw: &[f64]) -> Allocation {
    let mut x = Allocation::zeros(inst.num_clouds(), inst.num_users());
    let mut k = 0usize;
    for i in 0..inst.num_clouds() {
        for j in 0..inst.num_users() {
            x.set(i, j, raw[k % raw.len()].abs());
            k += 1;
        }
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn costs_are_nonnegative_and_additive(
        inst in small_instance(),
        raw in proptest::collection::vec(0.0f64..2.0, 32),
    ) {
        let nt = inst.num_slots();
        let allocs: Vec<Allocation> = (0..nt)
            .map(|t| allocation_for(&inst, &raw[(t % 3)..]))
            .collect();
        let total = evaluate_trajectory(&inst, &allocs);
        prop_assert!(total.operation >= 0.0);
        prop_assert!(total.quality >= 0.0);
        prop_assert!(total.reconfig >= 0.0);
        prop_assert!(total.migration >= 0.0);
        // Sum of per-slot statics + per-transition dynamics equals the total.
        let mut acc = 0.0;
        let mut prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
        for (t, x) in allocs.iter().enumerate() {
            acc += slot_static_cost(&inst, t, x).total();
            acc += transition_cost(&inst, &prev, x).total();
            prev = x.clone();
        }
        prop_assert!((acc - total.total()).abs() < 1e-9 * (1.0 + acc.abs()));
    }

    #[test]
    fn identical_consecutive_slots_pay_no_dynamic_cost(
        inst in small_instance(),
        raw in proptest::collection::vec(0.0f64..2.0, 32),
    ) {
        let x = allocation_for(&inst, &raw);
        let c = transition_cost(&inst, &x, &x);
        prop_assert_eq!(c.total(), 0.0);
    }

    #[test]
    fn migration_cost_is_symmetric_in_magnitude(
        inst in small_instance(),
        raw in proptest::collection::vec(0.0f64..2.0, 32),
    ) {
        // Moving a→b then b→a costs the same in each direction when prices
        // are symmetric per cloud pair... in general: total out-volume
        // equals total in-volume for demand-preserving reshuffles.
        let a = allocation_for(&inst, &raw);
        let b = allocation_for(&inst, &raw[3..]);
        let _ = transition_cost(&inst, &a, &b);
        // Volume conservation: Σ z_in − Σ z_out = Δ grand total.
        let mut z_in = 0.0;
        let mut z_out = 0.0;
        for i in 0..inst.num_clouds() {
            for j in 0..inst.num_users() {
                let d = b.get(i, j) - a.get(i, j);
                if d > 0.0 { z_in += d } else { z_out -= d }
            }
        }
        let delta = b.grand_total() - a.grand_total();
        prop_assert!((z_in - z_out - delta).abs() < 1e-9);
    }

    #[test]
    fn scaling_dynamic_weights_scales_dynamic_costs(
        inst in small_instance(),
        raw in proptest::collection::vec(0.0f64..2.0, 32),
        mu in 0.1f64..10.0,
    ) {
        let a = allocation_for(&inst, &raw);
        let b = allocation_for(&inst, &raw[5..]);
        let base = transition_cost(&inst, &a, &b).total();
        let scaled_inst = inst.with_weights(CostWeights::with_dynamic_ratio(mu));
        let scaled = transition_cost(&scaled_inst, &a, &b).total();
        prop_assert!((scaled - mu * base).abs() < 1e-9 * (1.0 + scaled.abs()));
    }

    #[test]
    fn repair_always_restores_feasibility(
        inst in small_instance(),
        raw in proptest::collection::vec(0.0f64..4.0, 32),
    ) {
        let input = SlotInput::from_instance(&inst, 0);
        let mut x = allocation_for(&inst, &raw);
        repair_capacity(&input, &mut x).expect("repair succeeds when ΣC ≥ Σλ");
        prop_assert!(x.demand_shortfall(inst.workloads()) < 1e-6,
            "demand shortfall {}", x.demand_shortfall(inst.workloads()));
        prop_assert!(x.capacity_excess(inst.system().capacities()) < 1e-6,
            "capacity excess {}", x.capacity_excess(inst.system().capacities()));
    }

    #[test]
    fn repair_is_idempotent_on_feasible_allocations(
        inst in small_instance(),
        raw in proptest::collection::vec(0.0f64..4.0, 32),
    ) {
        let input = SlotInput::from_instance(&inst, 0);
        let mut x = allocation_for(&inst, &raw);
        repair_capacity(&input, &mut x).expect("first repair");
        let once = x.clone();
        repair_capacity(&input, &mut x).expect("second repair");
        for i in 0..inst.num_clouds() {
            for j in 0..inst.num_users() {
                prop_assert!((x.get(i, j) - once.get(i, j)).abs() < 1e-9);
            }
        }
    }
}
