//! Property tests of the shard merge path: merged shard solutions, once
//! projected, satisfy demand and capacity **exactly** under floating-point
//! summation — `Σ_i x_ij ≥ λ_j` and `Σ_j x_ij ≤ C_i` hold for the very sums
//! `Allocation::user_total` / `Allocation::cloud_total` compute, with no
//! `1e-9` overshoot allowance anywhere.

use edgealloc::algorithms::SlotInput;
use edgealloc::cost::CostWeights;
use edgealloc::instance::Instance;
use edgealloc::system::EdgeCloudSystem;
use mobility::MobilityInput;
use proptest::prelude::*;
use shard::{merge_shards, project_exact, restrict, ShardPlan};

/// Strategy: a small random instance with 2–4 clouds, 2–8 users, 2 slots
/// (the merge path only looks at one slot's data).
fn small_instance() -> impl Strategy<Value = Instance> {
    (
        2usize..5,
        2usize..9,
        proptest::collection::vec(0.1f64..3.0, 64),
        proptest::collection::vec(0usize..4, 32),
    )
        .prop_map(|(nc, nu, raw, att)| {
            let nt = 2;
            let workloads: Vec<f64> = (0..nu)
                .map(|j| 1.0 + (raw[(j * 3) % raw.len()] * 2.0).round())
                .collect();
            let total_workload: f64 = workloads.iter().sum();
            // Capacities proportional to random shares, totalling 1.5·Σλ so
            // every generated instance is feasible.
            let shares: Vec<f64> = (0..nc).map(|i| 0.2 + raw[i % raw.len()]).collect();
            let share_sum: f64 = shares.iter().sum();
            let capacities: Vec<f64> = shares
                .iter()
                .map(|s| 1.5 * total_workload * s / share_sum)
                .collect();
            let mut delay = vec![vec![0.0; nc]; nc];
            for i in 0..nc {
                for j in (i + 1)..nc {
                    let d = raw[(i * 5 + j) % raw.len()];
                    delay[i][j] = d;
                    delay[j][i] = d;
                }
            }
            let system = EdgeCloudSystem::new(capacities, delay).expect("valid system");
            let attachment: Vec<Vec<usize>> = (0..nu)
                .map(|j| {
                    (0..nt)
                        .map(|t| att[(j * nt + t) % att.len()] % nc)
                        .collect()
                })
                .collect();
            let access: Vec<Vec<f64>> = (0..nu)
                .map(|j| (0..nt).map(|t| raw[(j + t * 7) % raw.len()]).collect())
                .collect();
            let mobility = MobilityInput::new(nc, attachment, access);
            let prices: Vec<Vec<f64>> = (0..nt)
                .map(|t| {
                    (0..nc)
                        .map(|i| 0.2 + raw[(t * nc + i) % raw.len()])
                        .collect()
                })
                .collect();
            let reconfig: Vec<f64> = (0..nc).map(|i| raw[(i + 11) % raw.len()]).collect();
            let b_out: Vec<f64> = (0..nc).map(|i| raw[(i + 17) % raw.len()] * 0.5).collect();
            let b_in: Vec<f64> = (0..nc).map(|i| raw[(i + 23) % raw.len()] * 0.5).collect();
            Instance::new(
                system,
                workloads,
                mobility,
                prices,
                reconfig,
                b_out,
                b_in,
                CostWeights::default(),
            )
            .expect("valid instance")
        })
}

/// Fake per-shard "solutions": arbitrary non-negative flats of the right
/// shape, scaled so some are under-demand and some blow past capacity —
/// the projection has to fix both directions.
fn shard_parts(plan: &ShardPlan, num_clouds: usize, raw: &[f64], scale: f64) -> Vec<Vec<f64>> {
    let mut k = 0usize;
    (0..plan.num_shards())
        .map(|s| {
            let cols = plan.users(s).len();
            (0..num_clouds * cols)
                .map(|_| {
                    let v = raw[k % raw.len()] * scale;
                    k += 1;
                    v
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_projected_shards_are_exactly_feasible(
        inst in small_instance(),
        raw in proptest::collection::vec(0.0f64..2.0, 48),
        shards in 1usize..5,
        scale in 0.01f64..4.0,
    ) {
        let input = SlotInput::from_instance(&inst, 0);
        let plan = ShardPlan::balanced(inst.workloads(), shards);
        let parts = shard_parts(&plan, inst.num_clouds(), &raw, scale);
        let mut x = merge_shards(&plan, &parts, inst.num_clouds(), inst.num_users());
        project_exact(&input, &mut x).expect("projection succeeds with 1.5× slack");
        for j in 0..inst.num_users() {
            // Exact comparison on the summation the consumers run — not
            // `>= λ − 1e-9`.
            prop_assert!(
                x.user_total(j) >= inst.workloads()[j],
                "user {} total {} < λ {}",
                j, x.user_total(j), inst.workloads()[j]
            );
        }
        for i in 0..inst.num_clouds() {
            prop_assert!(
                x.cloud_total(i) <= inst.system().capacity(i),
                "cloud {} total {} > C {}",
                i, x.cloud_total(i), inst.system().capacity(i)
            );
        }
        for i in 0..inst.num_clouds() {
            for j in 0..inst.num_users() {
                let v = x.get(i, j);
                prop_assert!(v.is_finite() && v >= 0.0, "entry ({i},{j}) = {v}");
            }
        }
    }

    #[test]
    fn projection_survives_the_nonnegative_clamp(
        inst in small_instance(),
        raw in proptest::collection::vec(0.0f64..2.0, 48),
        shards in 1usize..4,
    ) {
        // `run_online` clamps tiny negatives after `decide`; the projection
        // must emit only non-negative entries so the clamp is a no-op and
        // exact feasibility survives to the trajectory.
        let input = SlotInput::from_instance(&inst, 0);
        let plan = ShardPlan::balanced(inst.workloads(), shards);
        let parts = shard_parts(&plan, inst.num_clouds(), &raw, 1.0);
        let mut x = merge_shards(&plan, &parts, inst.num_clouds(), inst.num_users());
        project_exact(&input, &mut x).expect("projection succeeds");
        let before = x.clone();
        x.clamp_nonnegative(1e-6);
        for i in 0..inst.num_clouds() {
            for j in 0..inst.num_users() {
                prop_assert_eq!(x.get(i, j), before.get(i, j));
            }
        }
    }

    #[test]
    fn stale_and_missing_shard_offers_still_project_exactly_feasible(
        inst in small_instance(),
        raw_fresh in proptest::collection::vec(0.0f64..2.0, 48),
        raw_stale in proptest::collection::vec(0.0f64..2.0, 48),
        shards in 2usize..5,
        stale_mask in 0u8..16,
        missing_mask in 0u8..16,
    ) {
        // Straggler carry-forward merges a mixture of this round's offers,
        // archived offers from an earlier round, and (for shards with no
        // archive) all-zero placeholders. Whatever the mixture, the merged
        // point must project to an exactly feasible decision — staleness
        // may cost optimality, never feasibility.
        let input = SlotInput::from_instance(&inst, 0);
        let plan = ShardPlan::balanced(inst.workloads(), shards);
        let fresh = shard_parts(&plan, inst.num_clouds(), &raw_fresh, 1.0);
        let stale = shard_parts(&plan, inst.num_clouds(), &raw_stale, 2.5);
        let parts: Vec<Vec<f64>> = (0..plan.num_shards())
            .map(|s| {
                if missing_mask & (1 << (s % 4)) != 0 {
                    vec![0.0; fresh[s].len()]
                } else if stale_mask & (1 << (s % 4)) != 0 {
                    stale[s].clone()
                } else {
                    fresh[s].clone()
                }
            })
            .collect();
        let mut x = merge_shards(&plan, &parts, inst.num_clouds(), inst.num_users());
        project_exact(&input, &mut x).expect("projection succeeds with 1.5× slack");
        for j in 0..inst.num_users() {
            prop_assert!(
                x.user_total(j) >= inst.workloads()[j],
                "user {} total {} < λ {}",
                j, x.user_total(j), inst.workloads()[j]
            );
        }
        for i in 0..inst.num_clouds() {
            prop_assert!(
                x.cloud_total(i) <= inst.system().capacity(i),
                "cloud {} total {} > C {}",
                i, x.cloud_total(i), inst.system().capacity(i)
            );
        }
        for i in 0..inst.num_clouds() {
            for j in 0..inst.num_users() {
                let v = x.get(i, j);
                prop_assert!(v.is_finite() && v >= 0.0, "entry ({i},{j}) = {v}");
            }
        }
    }

    #[test]
    fn merge_then_restrict_roundtrips_each_shard(
        inst in small_instance(),
        raw in proptest::collection::vec(0.0f64..2.0, 48),
        shards in 1usize..5,
    ) {
        let plan = ShardPlan::balanced(inst.workloads(), shards);
        let parts = shard_parts(&plan, inst.num_clouds(), &raw, 1.0);
        let x = merge_shards(&plan, &parts, inst.num_clouds(), inst.num_users());
        for s in 0..plan.num_shards() {
            let r = restrict(&x, plan.users(s));
            let cols = plan.users(s).len();
            for i in 0..inst.num_clouds() {
                for col in 0..cols {
                    prop_assert_eq!(r.get(i, col), parts[s][i * cols + col]);
                }
            }
        }
    }
}
