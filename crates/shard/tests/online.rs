//! End-to-end runs of `online-sharded` over small horizons: the sharded
//! decisions must be exactly feasible every slot, the telemetry must record
//! the decomposition, and degenerate shapes must fall back monolithically.

use edgealloc::algorithms::{run_online, OnlineAlgorithm, OnlineRegularized};
use edgealloc::cost::{evaluate_trajectory, CostWeights};
use edgealloc::instance::Instance;
use edgealloc::system::EdgeCloudSystem;
use mobility::MobilityInput;
use optim::convex::SchurKernel;
use shard::{ChaosConfig, OnlineSharded};

/// A deterministic multi-user instance (`fig1_example` has a single user,
/// which can never shard): `nu` users over 3 clouds and `nt` slots, with
/// 1.5× capacity slack and mildly varying prices/attachments.
fn multi_user_instance(nu: usize, nt: usize) -> Instance {
    let nc = 3;
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut rnd = move || {
        // xorshift64*: deterministic, dependency-free.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) as f64 / (1u64 << 24) as f64
    };
    let workloads: Vec<f64> = (0..nu).map(|_| 1.0 + (2.0 * rnd()).round()).collect();
    let total: f64 = workloads.iter().sum();
    let shares: Vec<f64> = (0..nc).map(|_| 0.5 + rnd()).collect();
    let share_sum: f64 = shares.iter().sum();
    let capacities: Vec<f64> = shares.iter().map(|s| 1.5 * total * s / share_sum).collect();
    let mut delay = vec![vec![0.0; nc]; nc];
    for i in 0..nc {
        for j in (i + 1)..nc {
            let d = 0.5 + 2.0 * rnd();
            delay[i][j] = d;
            delay[j][i] = d;
        }
    }
    let system = EdgeCloudSystem::new(capacities, delay).expect("valid system");
    let attachment: Vec<Vec<usize>> = (0..nu)
        .map(|_| (0..nt).map(|_| (rnd() * nc as f64) as usize % nc).collect())
        .collect();
    let access: Vec<Vec<f64>> = (0..nu)
        .map(|_| (0..nt).map(|_| 0.2 + rnd()).collect())
        .collect();
    let mobility = MobilityInput::new(nc, attachment, access);
    let prices: Vec<Vec<f64>> = (0..nt)
        .map(|_| (0..nc).map(|_| 0.5 + rnd()).collect())
        .collect();
    let reconfig: Vec<f64> = (0..nc).map(|_| 0.3 + rnd()).collect();
    let b_out: Vec<f64> = (0..nc).map(|_| 0.2 + 0.5 * rnd()).collect();
    let b_in: Vec<f64> = (0..nc).map(|_| 0.2 + 0.5 * rnd()).collect();
    Instance::new(
        system,
        workloads,
        mobility,
        prices,
        reconfig,
        b_out,
        b_in,
        CostWeights::default(),
    )
    .expect("valid instance")
}

fn assert_feasible(inst: &Instance, traj: &edgealloc::algorithms::Trajectory) {
    for (t, x) in traj.allocations.iter().enumerate() {
        for j in 0..inst.num_users() {
            assert!(
                x.user_total(j) >= inst.workloads()[j] - 1e-6,
                "slot {t}: user {j} under-served"
            );
        }
        for i in 0..inst.num_clouds() {
            assert!(
                x.cloud_total(i) <= inst.system().capacity(i) + 1e-6,
                "slot {t}: cloud {i} over capacity"
            );
        }
    }
}

#[test]
fn sharded_run_is_feasible_and_reports_telemetry() {
    let inst = multi_user_instance(8, 4);
    let mut alg = OnlineSharded::new(2);
    let traj = run_online(&inst, &mut alg).expect("horizon runs");
    assert_eq!(traj.allocations.len(), inst.num_slots());
    assert_feasible(&inst, &traj);
    // Sharded slots must be *exactly* feasible (projection, not repair).
    for (t, (x, h)) in traj.allocations.iter().zip(&traj.health).enumerate() {
        if h.shards >= 2 {
            for j in 0..inst.num_users() {
                assert!(
                    x.user_total(j) >= inst.workloads()[j],
                    "slot {t}: sharded decision not exactly demand-feasible"
                );
            }
            for i in 0..inst.num_clouds() {
                assert!(
                    x.cloud_total(i) <= inst.system().capacity(i),
                    "slot {t}: sharded decision not exactly capacity-feasible"
                );
            }
        }
    }
    let summary = traj.health_summary();
    assert!(
        summary.sharded_slots > 0,
        "no slot used the decomposition: {summary:?}"
    );
    assert!(summary.coord_rounds >= summary.sharded_slots);
}

#[test]
fn sharded_cost_matches_monolithic_closely() {
    let inst = multi_user_instance(10, 4);
    let mut mono = OnlineRegularized::with_defaults()
        .with_explicit_capacity()
        .with_schur_kernel(SchurKernel::Blocked);
    let mono_traj = run_online(&inst, &mut mono).expect("monolithic runs");
    let mono_cost = evaluate_trajectory(&inst, &mono_traj.allocations).total();

    let mut alg = OnlineSharded::new(2).with_schur_kernel(SchurKernel::Blocked);
    let traj = run_online(&inst, &mut alg).expect("sharded runs");
    let cost = evaluate_trajectory(&inst, &traj.allocations).total();

    let rel = (cost - mono_cost).abs() / mono_cost.abs().max(1.0);
    assert!(
        rel <= 1e-4,
        "sharded cost {cost} vs monolithic {mono_cost} (rel {rel:.2e})"
    );
}

#[test]
fn single_shard_falls_back_to_the_monolithic_path() {
    let inst = multi_user_instance(6, 3);
    let mut alg = OnlineSharded::new(1);
    let traj = run_online(&inst, &mut alg).expect("horizon runs");
    assert_feasible(&inst, &traj);
    for h in &traj.health {
        assert_eq!(h.shards, 1, "S = 1 must take the monolithic path");
        assert_eq!(h.coord_rounds, 0);
    }
    assert_eq!(traj.health_summary().sharded_slots, 0);
}

#[test]
fn reset_clears_cross_horizon_state() {
    let inst = multi_user_instance(8, 3);
    let mut alg = OnlineSharded::new(2);
    let a = run_online(&inst, &mut alg).expect("first horizon");
    let b = run_online(&inst, &mut alg).expect("second horizon");
    for (t, (xa, xb)) in a.allocations.iter().zip(&b.allocations).enumerate() {
        for i in 0..inst.num_clouds() {
            for j in 0..inst.num_users() {
                assert!(
                    (xa.get(i, j) - xb.get(i, j)).abs() < 1e-9,
                    "slot {t}: rerun diverged at ({i}, {j})"
                );
            }
        }
    }
}

#[test]
fn certain_panics_trip_the_breaker_and_the_run_still_completes() {
    // Every shard solve attempt panics: no round ever produces a fresh
    // offer, the breakers trip shard by shard, and every slot lands on the
    // monolithic fallback — feasible, with the carnage in the telemetry.
    let inst = multi_user_instance(8, 3);
    let chaos = ChaosConfig {
        seed: 5,
        panic_prob: 1.0,
        ..ChaosConfig::disabled()
    };
    let mut alg = OnlineSharded::new(2).with_chaos(chaos).with_retry_limit(1);
    let traj = run_online(&inst, &mut alg).expect("horizon survives certain panics");
    assert_eq!(traj.allocations.len(), inst.num_slots());
    assert_feasible(&inst, &traj);
    let summary = traj.health_summary();
    assert_eq!(summary.sharded_slots, 0, "no slot can complete sharded");
    assert!(
        summary.breaker_trips > 0,
        "breakers never tripped: {summary:?}"
    );
    assert!(summary.shard_retries > 0, "retries never ran: {summary:?}");
}

#[test]
fn certain_corruption_is_quarantined_and_the_run_still_completes() {
    // Every fresh offer arrives damaged: quarantine rejects them all, so
    // the coordinator can never adopt a round, but the horizon still
    // completes feasibly via the fallback.
    let inst = multi_user_instance(8, 3);
    let chaos = ChaosConfig {
        seed: 6,
        corrupt_prob: 1.0,
        ..ChaosConfig::disabled()
    };
    let mut alg = OnlineSharded::new(2).with_chaos(chaos).with_retry_limit(1);
    let traj = run_online(&inst, &mut alg).expect("horizon survives corruption");
    assert_feasible(&inst, &traj);
    let summary = traj.health_summary();
    assert!(
        summary.quarantined_offers > 0,
        "no offer was quarantined: {summary:?}"
    );
}

#[test]
fn transient_panics_are_retried_and_sharding_still_wins_slots() {
    // Moderate panic probability: the attempt-indexed fault rolls let
    // retries escape, so the decomposition still completes slots while the
    // retry counter records the recoveries.
    let inst = multi_user_instance(10, 4);
    let chaos = ChaosConfig {
        seed: 11,
        panic_prob: 0.4,
        ..ChaosConfig::disabled()
    };
    let mut alg = OnlineSharded::new(2).with_chaos(chaos).with_retry_limit(3);
    let traj = run_online(&inst, &mut alg).expect("horizon survives transient panics");
    assert_feasible(&inst, &traj);
    let summary = traj.health_summary();
    assert!(summary.shard_retries > 0, "no retry recorded: {summary:?}");
    assert!(
        summary.sharded_slots > 0,
        "sharding never completed a slot despite retries: {summary:?}"
    );
}

#[test]
fn inert_chaos_config_leaves_the_trajectory_bit_identical() {
    let inst = multi_user_instance(8, 3);
    let mut plain = OnlineSharded::new(2);
    let a = run_online(&inst, &mut plain).expect("plain run");
    let mut wired = OnlineSharded::new(2).with_chaos(ChaosConfig::disabled());
    let b = run_online(&inst, &mut wired).expect("chaos-disabled run");
    for (t, (xa, xb)) in a.allocations.iter().zip(&b.allocations).enumerate() {
        for i in 0..inst.num_clouds() {
            for j in 0..inst.num_users() {
                assert_eq!(
                    xa.get(i, j),
                    xb.get(i, j),
                    "slot {t}: inert chaos changed the decision at ({i}, {j})"
                );
            }
        }
    }
}

#[test]
fn overloaded_slot_sheds_before_sharding_and_survivors_are_exact() {
    use edgealloc::health::FallbackRung;
    use edgealloc::sentinel::SentinelVerdict;

    let mut inst = multi_user_instance(12, 4);
    // 1.5× slack → a 2.5× surge puts aggregate demand ~1.67× capacity.
    inst.scale_demand(2, 2.5);
    let mut alg = OnlineSharded::new(3);
    let traj = run_online(&inst, &mut alg).expect("overloaded horizon runs");
    assert_eq!(traj.allocations.len(), inst.num_slots());
    for (t, h) in traj.health.iter().enumerate() {
        if t == 2 {
            assert_eq!(h.sentinel_verdict, Some(SentinelVerdict::Overloaded));
            assert_eq!(h.rung, FallbackRung::Shedding, "slot {t}: {h:?}");
            assert!(h.shed_users > 0, "slot {t} shed nobody");
            assert!(h.shed_penalty > 0.0);
        } else {
            assert_ne!(h.rung, FallbackRung::CarryForward, "slot {t} aborted");
            assert_eq!(h.shed_users, 0, "slot {t} shed without overload");
        }
        // Every slot — shed or not — stays within capacity; the shed slot
        // must be *exactly* capacity-feasible (projection on survivors).
        let x = &traj.allocations[t];
        for i in 0..inst.num_clouds() {
            if t == 2 {
                assert!(
                    x.cloud_total(i) <= inst.system().capacity(i),
                    "slot {t}: cloud {i} exceeds capacity exactly"
                );
            } else {
                assert!(
                    x.capacity_excess(inst.system().capacities()) < 1e-5,
                    "slot {t}: cloud {i} over capacity"
                );
            }
        }
    }
    let summary = traj.health_summary();
    assert_eq!(summary.overloaded_slots, 1);
    assert_eq!(summary.rungs.shedding, 1);
    assert!(summary.shed_users > 0);
}

#[test]
fn feasible_horizon_is_bit_identical_with_the_sentinel_wired_in() {
    let inst = multi_user_instance(8, 3);
    let mut on = OnlineSharded::new(2);
    let a = run_online(&inst, &mut on).expect("sentinel-enabled run");
    let mut off = OnlineSharded::new(2).without_shedding();
    let b = run_online(&inst, &mut off).expect("shedding-disabled run");
    for (t, (xa, xb)) in a.allocations.iter().zip(&b.allocations).enumerate() {
        assert_eq!(
            xa.as_flat(),
            xb.as_flat(),
            "slot {t}: sentinel changed a feasible decision"
        );
    }
    for h in &a.health {
        assert_eq!(h.shed_users, 0);
        assert!(h.sentinel_verdict.is_some());
    }
}

#[test]
fn name_and_builders_round_trip() {
    let alg = OnlineSharded::new(4)
        .with_epsilon(0.25)
        .with_max_rounds(10)
        .with_tolerances(1e-4, 1e-6)
        .with_slot_deadline_ms(250.0);
    assert_eq!(alg.name(), "online-sharded");
    assert_eq!(alg.shards(), 4);
    assert_eq!(alg.slot_deadline_ms(), Some(250.0));
}
