//! Sharded per-slot solves: price-coordinated dual decomposition across
//! user shards.
//!
//! The paper's online algorithm solves one regularized convex program ℙ₂
//! per slot over all `I × J` allocation variables. The blocked Schur kernel
//! (see `optim::convex`) made the Newton *steps* near-linear in `J`, but
//! the whole-slot solve is still one monolithic Newton system, and its
//! superlinear growth in `J` eventually dominates. This crate decomposes
//! the slot across **users** instead:
//!
//! 1. [`ShardPlan`] partitions the `J` users into `S` workload-balanced
//!    shards.
//! 2. Each shard solves its own restricted ℙ₂ — its users only, full cloud
//!    set — with the existing `P2Workspace` machinery, warm across rounds
//!    and slots ([`coordinator`]).
//! 3. A capacity-price loop coordinates the shards: dual ascent on the
//!    coupling constraints `Σ_j x_{ij} ≤ C_i` plus a tangent linearization
//!    of the per-cloud aggregate reconfiguration regularizer, iterated
//!    until the merged solution's capacity violation and a rigorously
//!    certified duality gap fall below tolerance.
//! 4. [`merge::merge_shards`] reassembles the shard solutions and
//!    [`merge::project_exact`] turns the merged point into a decision that
//!    satisfies demand and capacity **exactly** under floating-point
//!    summation.
//!
//! [`OnlineSharded`] packages the loop as an `OnlineAlgorithm` drop-in
//! (name `online-sharded`) with a monolithic fallback for the cases
//! decomposition cannot handle.

pub mod chaos;
pub mod coordinator;
pub mod merge;
pub mod plan;
pub mod sharded;

pub use chaos::{ChaosConfig, CorruptKind, FaultRoll};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use merge::{merge_shards, project_exact, restrict};
pub use plan::ShardPlan;
pub use sharded::OnlineSharded;
