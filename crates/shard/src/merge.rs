//! Merging shard solutions and projecting them to *exact* feasibility.
//!
//! A coordination round produces one flat solution per shard (cloud-major
//! over the shard's own user columns). [`merge_shards`] scatters them back
//! into a full `I × J` [`Allocation`]; [`project_exact`] then turns the
//! merged point into a decision that satisfies the slot's constraints
//! **exactly under floating-point evaluation**: `Σ_i x_ij ≥ λ_j` and
//! `Σ_j x_ij ≤ C_i` hold for the very sums [`Allocation::user_total`] and
//! [`Allocation::cloud_total`] compute — no `1e-9` overshoot allowance.
//!
//! The projection itself lives in [`edgealloc::exact`] (the shedding rung
//! needs it on survivor slots too); this module re-exports it so shard
//! consumers keep their import path.

use edgealloc::allocation::Allocation;

/// Re-export of the exact-feasibility projection shared with the shedding
/// rung (see [`edgealloc::exact`]).
pub use edgealloc::exact::project_exact;

use crate::plan::ShardPlan;

/// Scatters per-shard flat solutions (cloud-major over each shard's user
/// columns, as produced by the restricted ℙ₂ solves) into a full
/// allocation.
///
/// # Panics
///
/// Panics when a part's length does not match its shard's `I × J_s` shape.
pub fn merge_shards(
    plan: &ShardPlan,
    parts: &[Vec<f64>],
    num_clouds: usize,
    num_users: usize,
) -> Allocation {
    assert_eq!(parts.len(), plan.num_shards(), "one part per shard");
    let mut x = Allocation::zeros(num_clouds, num_users);
    for (s, flat) in parts.iter().enumerate() {
        let users = plan.users(s);
        assert_eq!(
            flat.len(),
            num_clouds * users.len(),
            "shard {s} solution has the wrong shape"
        );
        for i in 0..num_clouds {
            for (col, &j) in users.iter().enumerate() {
                x.set(i, j, flat[i * users.len() + col]);
            }
        }
    }
    x
}

/// Extracts the columns of `users` from a full allocation — the restricted
/// previous-slot reference each shard's migration regularizers need.
pub fn restrict(x: &Allocation, users: &[usize]) -> Allocation {
    let num_clouds = x.num_clouds();
    let mut r = Allocation::zeros(num_clouds, users.len());
    for i in 0..num_clouds {
        for (col, &j) in users.iter().enumerate() {
            r.set(i, col, x.get(i, j));
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_scatters_columns_back_to_global_indices() {
        let plan = ShardPlan::balanced(&[1.0, 2.0, 3.0, 4.0], 2);
        let num_clouds = 2;
        let parts: Vec<Vec<f64>> = (0..plan.num_shards())
            .map(|s| {
                let us = plan.users(s);
                let mut flat = vec![0.0; num_clouds * us.len()];
                for i in 0..num_clouds {
                    for (col, &j) in us.iter().enumerate() {
                        flat[i * us.len() + col] = (10 * i + j) as f64;
                    }
                }
                flat
            })
            .collect();
        let x = merge_shards(&plan, &parts, num_clouds, 4);
        for i in 0..num_clouds {
            for j in 0..4 {
                assert_eq!(x.get(i, j), (10 * i + j) as f64, "entry ({i}, {j})");
            }
        }
    }

    #[test]
    fn restrict_extracts_the_requested_columns() {
        let mut x = Allocation::zeros(2, 4);
        for i in 0..2 {
            for j in 0..4 {
                x.set(i, j, (10 * i + j) as f64);
            }
        }
        let r = restrict(&x, &[1, 3]);
        assert_eq!(r.num_users(), 2);
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.get(1, 1), 13.0);
    }
}
