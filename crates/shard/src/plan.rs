//! User-shard partition planning.
//!
//! A shard plan splits the `J` users of an instance into `S` disjoint,
//! non-empty groups. The coordinator solves one restricted ℙ₂ per group, so
//! the quality of the plan decides how balanced the per-shard Newton work
//! is: the blocked kernel's per-slot cost grows superlinearly in the user
//! count, which makes the *largest* shard the round's critical path. The
//! default [`ShardPlan::balanced`] therefore packs users by workload with
//! the classical longest-processing-time greedy; [`ShardPlan::hashed`]
//! exists as the order-oblivious baseline (stable under user churn, at the
//! price of load skew).

/// A disjoint partition of users `0..J` into non-empty shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    users: Vec<Vec<usize>>,
    shard_of: Vec<usize>,
}

impl ShardPlan {
    /// Partitions users by a deterministic hash of their index: user `j`
    /// lands in shard `mix(j) % shards`. Any shard the hash left empty
    /// steals a user from the currently largest shard, so every shard is
    /// non-empty whenever `shards <= num_users`.
    ///
    /// # Panics
    ///
    /// Panics when `num_users == 0` or `shards == 0`.
    pub fn hashed(num_users: usize, shards: usize) -> Self {
        assert!(num_users > 0, "cannot shard zero users");
        assert!(shards > 0, "cannot plan zero shards");
        let shards = shards.min(num_users);
        let mut users: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for j in 0..num_users {
            users[mix(j as u64) as usize % shards].push(j);
        }
        // Re-home one user per empty shard from whichever shard is largest.
        for s in 0..shards {
            if users[s].is_empty() {
                let donor = (0..shards)
                    .max_by_key(|&d| users[d].len())
                    .expect("at least one shard");
                let moved = users[donor].pop().expect("donor shard is non-empty");
                users[s].push(moved);
            }
        }
        Self::from_groups(num_users, users)
    }

    /// Partitions users by workload with the longest-processing-time
    /// greedy: users sorted by descending `λ_j`, each assigned to the
    /// currently lightest shard. Shards come out within one user's workload
    /// of each other, and every shard is non-empty whenever
    /// `shards <= workloads.len()`.
    ///
    /// # Panics
    ///
    /// Panics when `workloads` is empty or `shards == 0`.
    pub fn balanced(workloads: &[f64], shards: usize) -> Self {
        assert!(!workloads.is_empty(), "cannot shard zero users");
        assert!(shards > 0, "cannot plan zero shards");
        let num_users = workloads.len();
        let shards = shards.min(num_users);
        let mut order: Vec<usize> = (0..num_users).collect();
        // Corrupted (NaN) workloads sort as equal instead of panicking; they
        // are sanitized upstream anyway.
        order.sort_by(|&a, &b| {
            workloads[b]
                .partial_cmp(&workloads[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut users: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut load = vec![0.0f64; shards];
        for j in order {
            let lightest = (0..shards)
                .min_by(|&a, &b| {
                    load[a]
                        .partial_cmp(&load[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least one shard");
            users[lightest].push(j);
            let w = workloads[j];
            load[lightest] += if w.is_finite() && w > 0.0 { w } else { 0.0 };
        }
        // Per-shard user lists in ascending order: shard-local columns then
        // scatter back predictably, and warm starts stay aligned per slot.
        for group in &mut users {
            group.sort_unstable();
        }
        Self::from_groups(num_users, users)
    }

    fn from_groups(num_users: usize, users: Vec<Vec<usize>>) -> Self {
        let mut shard_of = vec![usize::MAX; num_users];
        for (s, group) in users.iter().enumerate() {
            debug_assert!(!group.is_empty(), "shard {s} is empty");
            for &j in group {
                debug_assert_eq!(shard_of[j], usize::MAX, "user {j} assigned twice");
                shard_of[j] = s;
            }
        }
        debug_assert!(
            shard_of.iter().all(|&s| s != usize::MAX),
            "some user is unassigned"
        );
        ShardPlan { users, shard_of }
    }

    /// Number of shards (≥ 1, ≤ number of users).
    pub fn num_shards(&self) -> usize {
        self.users.len()
    }

    /// Total users across all shards.
    pub fn num_users(&self) -> usize {
        self.shard_of.len()
    }

    /// The global user indices of shard `s`, in ascending order.
    pub fn users(&self, s: usize) -> &[usize] {
        &self.users[s]
    }

    /// Which shard user `j` belongs to.
    pub fn shard_of(&self, j: usize) -> usize {
        self.shard_of[j]
    }

    /// Sum of `weights` over each shard (diagnostics; callers pass `λ`).
    pub fn loads(&self, weights: &[f64]) -> Vec<f64> {
        self.users
            .iter()
            .map(|group| group.iter().map(|&j| weights[j]).sum())
            .collect()
    }

    /// The circuit-breaker re-plan: a new partition with shard `sick`'s
    /// users merged into shard `into`, and `sick`'s slot removed (shards
    /// above `sick` shift down by one). The merged shard's user list stays
    /// in ascending order, so restriction/scatter and warm-start alignment
    /// behave exactly as for a freshly planned shard.
    ///
    /// # Panics
    ///
    /// Panics when `sick == into`, either index is out of range, or the
    /// plan has fewer than two shards.
    pub fn merged(&self, sick: usize, into: usize) -> ShardPlan {
        assert!(self.num_shards() >= 2, "cannot merge a single-shard plan");
        assert!(sick != into, "cannot merge a shard into itself");
        assert!(sick < self.num_shards(), "sick shard out of range");
        assert!(into < self.num_shards(), "target shard out of range");
        let mut groups = self.users.clone();
        let moved = std::mem::take(&mut groups[sick]);
        groups[into].extend(moved);
        groups[into].sort_unstable();
        groups.remove(sick);
        Self::from_groups(self.num_users(), groups)
    }
}

/// SplitMix64's finalizer: a cheap, well-mixed deterministic hash (also
/// the keyed-hash primitive behind `chaos`'s fault rolls).
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_is_partition(plan: &ShardPlan, num_users: usize) {
        let mut seen = vec![false; num_users];
        for s in 0..plan.num_shards() {
            assert!(!plan.users(s).is_empty(), "shard {s} is empty");
            for &j in plan.users(s) {
                assert!(!seen[j], "user {j} appears twice");
                seen[j] = true;
                assert_eq!(plan.shard_of(j), s);
            }
        }
        assert!(seen.iter().all(|&b| b), "some user is missing");
    }

    #[test]
    fn hashed_plan_is_a_partition_with_no_empty_shards() {
        for (num_users, shards) in [(1, 1), (3, 4), (7, 3), (100, 16), (5, 5)] {
            let plan = ShardPlan::hashed(num_users, shards);
            assert_eq!(plan.num_shards(), shards.min(num_users));
            assert_eq!(plan.num_users(), num_users);
            assert_is_partition(&plan, num_users);
        }
    }

    #[test]
    fn balanced_plan_is_a_partition_with_no_empty_shards() {
        let workloads: Vec<f64> = (0..23).map(|j| 1.0 + (j % 5) as f64).collect();
        for shards in [1, 2, 4, 23, 40] {
            let plan = ShardPlan::balanced(&workloads, shards);
            assert_eq!(plan.num_shards(), shards.min(workloads.len()));
            assert_is_partition(&plan, workloads.len());
        }
    }

    #[test]
    fn balanced_plan_balances_load_within_one_user() {
        let workloads: Vec<f64> = (0..64).map(|j| 1.0 + (j % 7) as f64).collect();
        let heaviest = workloads.iter().cloned().fold(0.0, f64::max);
        let plan = ShardPlan::balanced(&workloads, 4);
        let loads = plan.loads(&workloads);
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max - min <= heaviest + 1e-12,
            "loads {loads:?} spread more than one user apart"
        );
    }

    #[test]
    fn balanced_plan_survives_corrupt_workloads() {
        let workloads = [1.0, f64::NAN, 3.0, -2.0, f64::INFINITY, 2.0];
        let plan = ShardPlan::balanced(&workloads, 3);
        assert_is_partition(&plan, workloads.len());
    }

    #[test]
    fn merged_plan_is_a_partition_with_sorted_groups() {
        let workloads: Vec<f64> = (0..17).map(|j| 1.0 + (j % 4) as f64).collect();
        let plan = ShardPlan::balanced(&workloads, 4);
        let sick_users: Vec<usize> = plan.users(2).to_vec();
        let merged = plan.merged(2, 0);
        assert_eq!(merged.num_shards(), 3);
        assert_eq!(merged.num_users(), 17);
        assert_is_partition(&merged, 17);
        for &j in &sick_users {
            assert_eq!(merged.shard_of(j), 0, "user {j} did not land in shard 0");
        }
        for s in 0..merged.num_shards() {
            let us = merged.users(s);
            assert!(us.windows(2).all(|w| w[0] < w[1]), "shard {s}: {us:?}");
        }
        // Shards above the removed slot shift down: old shard 3 is new 2.
        assert_eq!(merged.users(2), plan.users(3));
    }

    #[test]
    fn merged_plan_handles_target_above_sick() {
        let workloads = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let plan = ShardPlan::balanced(&workloads, 3);
        let merged = plan.merged(0, 2);
        assert_eq!(merged.num_shards(), 2);
        assert_is_partition(&merged, workloads.len());
    }

    #[test]
    fn shard_user_lists_are_sorted() {
        let workloads: Vec<f64> = (0..31).map(|j| 1.0 + (j % 3) as f64).collect();
        let plan = ShardPlan::balanced(&workloads, 5);
        for s in 0..plan.num_shards() {
            let us = plan.users(s);
            assert!(us.windows(2).all(|w| w[0] < w[1]), "shard {s}: {us:?}");
        }
    }
}
