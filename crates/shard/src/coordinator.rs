//! The capacity-price coordination loop over user shards.
//!
//! One slot's ℙ₂ couples its users in exactly two places: the explicit
//! per-cloud capacity rows `Σ_j x_ij ≤ C_i`, and the per-cloud aggregate
//! reconfiguration regularizer `φ_i(Σ_j x_ij)`. Everything else — the
//! linear operation/quality costs and the per-(i,j) migration entropies —
//! is separable across users. The coordinator exploits that:
//!
//! 1. **Capacity** is priced by dual decomposition: multipliers `μ_i ≥ 0`
//!    on `Σ_j x_ij ≤ C_i`, updated by projected-subgradient ascent
//!    ([`optim::dual::DualAscent`]) on each round's violation.
//! 2. **The aggregate entropy** is linearized at a relaxed estimate `ŷ_i`
//!    of the cloud total: each round charges every shard the tangent price
//!    `g_i = φ_i'(ŷ_i)` and updates `ŷ ← (1−β)·ŷ + β·y` afterwards. At a
//!    fixed point (`ŷ = y`) the tangent slope equals the true gradient, so
//!    the decomposed KKT system coincides with the monolithic one.
//!
//! Both prices fold into the shard subproblems as an operation-price
//! adjustment `a'_i = a_i + (μ_i + g_i)/w_op` — the restricted programs are
//! then ordinary ℙ₂ instances (reconfiguration prices zeroed, capacities at
//! the full `C_i`) solved by the existing [`P2Workspace`] machinery, warm
//! across rounds *and* slots.
//!
//! Every round certifies a rigorous duality gap. The product of the shard
//! regions contains the original feasible region, and the tangent line
//! minorizes `φ_i`, so for round prices `(μ, g)` with shard minima bounded
//! below by `obj_s − gap_s` (the barrier's certified per-shard gap):
//!
//! ```text
//! D = Σ_s (obj_s − gap_s) + Σ_i [φ_i(ŷ_i) − g_i·ŷ_i] − Σ_i μ_i·C_i ≤ F*,
//! ```
//!
//! and `F(x_proj) − D` bounds the adopted decision's suboptimality. The
//! loop terminates when the merged point's relative capacity violation and
//! this relative gap both fall below tolerance; a deadline or round cap
//! instead adopts the best exactly-feasible projected round seen
//! ([`DualAscent::offer`]).
//!
//! # Fault tolerance
//!
//! The coordinator is only as reliable as its weakest shard worker unless
//! every failure mode is contained, so each per-shard solve runs behind
//! four layers of isolation (see `DESIGN.md` §14 for the full model):
//!
//! - **Panic isolation + retry ladder**: every solve attempt runs under
//!   `catch_unwind`; a panic, solver error, or quarantined offer triggers
//!   up to [`CoordinatorConfig::retry_limit`] deterministic retries with
//!   escalating state resets (drop the warm start, then the workspace),
//!   each on an even [`SolveBudget::slice`] of what remains of the round
//!   budget.
//! - **Offer quarantine**: a fresh offer must have the right shape, finite
//!   non-negative entries, a finite objective, and a valid gap before it
//!   may touch the merge or the carry-forward archive.
//! - **Straggler carry-forward**: a round completes with K-of-S fresh
//!   offers ([`CoordinatorConfig::min_fresh`]); a missing shard's last
//!   archived offer ([`optim::dual::OfferArchive`]) is merged instead,
//!   with its dual contribution re-priced by the staleness correction
//!   `m ≥ obj° − gap° − Σ_i (old_i − new_i)⁺·C_i` (valid because the
//!   explicit capacity rows bound the shard's cloud totals by `C_i`), so a
//!   stale offer can only *weaken* the certified bound `D`, never tighten
//!   it. Offers archived in an earlier slot price a different program and
//!   contribute no certificate at all.
//! - **Circuit breaker**: a shard that fails
//!   [`CoordinatorConfig::breaker_threshold`] consecutive rounds is merged
//!   into its smallest neighbor (re-plan via [`ShardPlan::merged`]); at
//!   two shards the slot is abandoned to the monolithic fallback instead.
//!
//! With no chaos configured and no failures occurring, every layer is
//! inert and the trajectory is bit-identical to the pre-fault-tolerance
//! coordinator.

use edgealloc::algorithms::SlotInput;
use edgealloc::allocation::Allocation;
use edgealloc::health::{FallbackRung, SlotHealth};
use edgealloc::programs::p2::{self, CapacityMode, Epsilons, P2Workspace};
use edgealloc::{Error, Result};
use optim::budget::SolveBudget;
use optim::convex::{BarrierOptions, SchurKernel};
use optim::dual::{ArchivedOffer, DualAscent, OfferArchive, StepSchedule};
use optim::parallel::{panic_message, try_parallel_map_budgeted, WorkerBudget};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Duration;

use crate::chaos::{corrupt_offer, ChaosConfig};
use crate::merge::{merge_shards, project_exact, restrict};
use crate::plan::ShardPlan;

/// Tuning of the coordination loop (see [`crate::OnlineSharded`] for the
/// algorithm-level builder that fills this in).
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Target shard count (effective count is capped at the user count).
    pub shards: usize,
    /// Coordination rounds per slot before adopting the best round.
    pub max_rounds: usize,
    /// Stop early after this many consecutive rounds without a new best
    /// projected objective (the dual has stalled short of tolerance; more
    /// rounds only burn the budget).
    pub stall_rounds: usize,
    /// Relative duality-gap tolerance for convergence. The gap is measured
    /// on the exactly-feasible projected point, so meeting it certifies the
    /// adopted decision within `tol_gap` of the slot optimum.
    pub tol_gap: f64,
    /// Relative capacity-violation tolerance (pre-projection) for
    /// convergence. The projection repairs any violation exactly, so this
    /// only bounds how far the dual iterate may sit from primal
    /// feasibility when the gap test passes — it guards against adopting a
    /// gap computed at a wildly infeasible merge, not decision quality.
    pub tol_violation: f64,
    /// Relaxation factor `β ∈ (0, 1]` of the aggregate estimate `ŷ`.
    pub relaxation: f64,
    /// Multiplier on the auto-scaled dual step `α₀`.
    pub step_scale: f64,
    /// Dual step decay `δ` (`α_k = α₀/(1 + δ·k)`).
    pub step_decay: f64,
    /// ℙ₂ regularization parameters.
    pub eps: Epsilons,
    /// Newton-step Schur kernel for the shard solves.
    pub kernel: SchurKernel,
    /// Worker-thread target per shard solve (leased from the global
    /// [`WorkerBudget`], like the monolithic solver's).
    pub solver_threads: usize,
    /// Barrier options for the shard solves.
    pub options: BarrierOptions,
    /// Retries per shard per round after a panic, solver error, or
    /// quarantined offer (0 = first attempt only). Retries escalate —
    /// attempt 1 drops the warm start, attempt 2 also rebuilds the
    /// workspace — and each runs on an even slice of what remains of the
    /// round budget.
    pub retry_limit: usize,
    /// Consecutive failed rounds (across slots) before a shard's circuit
    /// breaker trips: its users are merged into the smallest neighbor
    /// shard, or — at two shards — the slot is abandoned to the monolithic
    /// fallback.
    pub breaker_threshold: usize,
    /// Minimum *fresh* (this-round) shard offers a coordination round
    /// needs to complete; the remaining shards may be covered by archived
    /// carry-forward offers. Clamped to `[1, shards]`.
    pub min_fresh: usize,
    /// Deterministic fault injection for the chaos harness (`None` and
    /// inert configs leave the solve path bit-identical to a build
    /// without chaos).
    pub chaos: Option<ChaosConfig>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            shards: 4,
            max_rounds: 8,
            stall_rounds: 4,
            tol_gap: 2e-5,
            tol_violation: 1e-2,
            relaxation: 0.7,
            step_scale: 1.0,
            step_decay: 0.1,
            eps: Epsilons::default(),
            kernel: SchurKernel::Auto,
            solver_threads: 1,
            options: BarrierOptions::default(),
            retry_limit: 2,
            breaker_threshold: 3,
            min_fresh: 1,
            chaos: None,
        }
    }
}

/// One shard's persistent solve state: its user columns, a retained
/// [`P2Workspace`] (structure is stable across rounds and slots — zeroed
/// reconfiguration prices keep the group terms absent), and the latest
/// solution as the next warm start.
#[derive(Debug)]
struct ShardState {
    users: Vec<usize>,
    workloads: Vec<f64>,
    workspace: Option<P2Workspace>,
    warm: Option<Vec<f64>>,
    /// Terminal barrier parameter `t = (m+n)/gap` of the last clean solve,
    /// seeding the next warm solve's `t0` (the warm point sits next to the
    /// end of the previous central path; re-walking it from `t0 = 1` is
    /// what makes un-seeded coordination rounds expensive).
    last_t_final: Option<f64>,
    // Per-slot scratch, refreshed by `begin_slot`.
    attachment: Vec<usize>,
    access_delay: Vec<f64>,
    prev: Allocation,
}

impl ShardState {
    fn new(users: Vec<usize>, input: &SlotInput<'_>) -> Self {
        let workloads = users.iter().map(|&j| input.workloads[j]).collect();
        ShardState {
            users,
            workloads,
            workspace: None,
            warm: None,
            last_t_final: None,
            attachment: Vec::new(),
            access_delay: Vec::new(),
            prev: Allocation::zeros(0, 0),
        }
    }

    fn begin_slot(&mut self, input: &SlotInput<'_>, prev: &Allocation) {
        self.attachment = self.users.iter().map(|&j| input.attachment[j]).collect();
        self.access_delay = self.users.iter().map(|&j| input.access_delay[j]).collect();
        // Workloads can change under sanitization (a corrupted λ repaired
        // mid-horizon), so refresh them too.
        self.workloads = self.users.iter().map(|&j| input.workloads[j]).collect();
        self.prev = restrict(prev, &self.users);
    }
}

/// What one shard's round solve produced.
struct ShardSolve {
    x: Vec<f64>,
    objective: f64,
    /// Certified (absolute) duality gap of the shard solve; `INFINITY`
    /// marks a solution without a usable bound (salvaged iterate with a
    /// non-finite residual).
    gap: f64,
    newton_steps: usize,
    deadline_hit: bool,
}

/// What one shard contributed to a round after panic isolation, the retry
/// ladder, fault injection, and quarantine screening.
struct RoundShard {
    /// The accepted fresh offer (`None` = every attempt failed).
    fresh: Option<ShardSolve>,
    /// Retry attempts taken beyond the first.
    retries: usize,
    /// Offers rejected by the quarantine screen.
    quarantined: usize,
    /// Whether any attempt ran into the round budget.
    deadline_hit: bool,
    /// The last failure swallowed (panic, solver error, or quarantine);
    /// `None` when the first attempt succeeded cleanly.
    error: Option<String>,
}

/// A fully evaluated coordination round kept as the adoption candidate.
struct RoundCandidate {
    x: Allocation,
    max_violation: f64,
    rel_gap: f64,
    /// True ℙ₂ objective of the projected point — with `rel_gap` it bounds
    /// the absolute suboptimality, which seeds the polish solve's `t0`.
    objective: f64,
}

/// Per-horizon coordinator: the shard plan, per-shard solve states, and the
/// capacity prices `μ` carried across slots (consecutive slots price the
/// same clouds under similar load, so warm prices typically converge in one
/// or two rounds).
#[derive(Debug)]
pub struct Coordinator {
    cfg: CoordinatorConfig,
    plan: ShardPlan,
    /// The shard count this coordinator was asked for — the circuit
    /// breaker may merge the *plan* below it, and that re-plan must
    /// survive [`Coordinator::matches`] on the next slot.
    requested_shards: usize,
    states: Vec<ShardState>,
    prices: Vec<f64>,
    /// Per-shard archive of the most recent feasible offer — the
    /// carry-forward substitute when a shard fails or straggles.
    archive: OfferArchive,
    /// Per-shard consecutive failed-round counts (persisted across slots,
    /// reset by any fresh offer); the circuit breaker trips at
    /// [`CoordinatorConfig::breaker_threshold`].
    breaker: Vec<usize>,
    /// Lazily built monolithic workspace for the hybrid refinement
    /// ([`Coordinator::polish`]); retained across slots like the shard
    /// workspaces so repeated polishes pay no rebuild.
    mono: Option<P2Workspace>,
}

impl Coordinator {
    /// Plans shards for the instance shape seen in `input` (balanced by
    /// workload) and prepares per-shard states.
    pub fn new(cfg: CoordinatorConfig, input: &SlotInput<'_>) -> Self {
        let plan = ShardPlan::balanced(input.workloads, cfg.shards);
        let states = (0..plan.num_shards())
            .map(|s| ShardState::new(plan.users(s).to_vec(), input))
            .collect();
        let num_shards = plan.num_shards();
        Coordinator {
            requested_shards: cfg.shards,
            cfg,
            plan,
            states,
            prices: vec![0.0; input.num_clouds()],
            archive: OfferArchive::new(num_shards),
            breaker: vec![0; num_shards],
            mono: None,
        }
    }

    /// The plan this coordinator decomposes with.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Whether this coordinator still matches the instance shape. Compares
    /// the *requested* shard count, not the current plan's: a breaker
    /// re-plan deliberately runs below the requested count and must not be
    /// reverted (and its sick shard resurrected) on the next slot.
    pub fn matches(&self, input: &SlotInput<'_>, shards: usize) -> bool {
        self.plan.num_users() == input.num_users()
            && self.requested_shards == shards
            && self.prices.len() == input.num_clouds()
    }

    /// Decides one slot by price-coordinated shard solves. On success the
    /// returned allocation is **exactly** feasible (see
    /// [`project_exact`]); `health` receives the shard telemetry either
    /// way.
    ///
    /// # Errors
    ///
    /// Fails when no coordination round produced an adoptable decision —
    /// the caller (`OnlineSharded`) then falls back to its monolithic path.
    pub fn solve_slot(
        &mut self,
        input: &SlotInput<'_>,
        prev: &Allocation,
        budget: &SolveBudget,
        health: &mut SlotHealth,
    ) -> Result<Allocation> {
        let num_clouds = input.num_clouds();
        let num_users = input.num_users();
        let w_op = input.weights.operation;
        if !(w_op > 0.0) {
            return Err(Error::Invalid(
                "price coordination needs a positive operation weight".into(),
            ));
        }
        health.shards = self.plan.num_shards();
        health.schur_kernel = Some(kernel_label(self.cfg.kernel).to_string());
        for st in &mut self.states {
            st.begin_slot(input, prev);
        }
        let caps: Vec<f64> = (0..num_clouds).map(|i| input.system.capacity(i)).collect();
        let phi: Vec<Option<optim::convex::ScalarTerm>> = (0..num_clouds)
            .map(|i| p2::reconfig_term(input, prev, i, self.cfg.eps.eps1))
            .collect();
        let mut ascent = DualAscent::warm(
            self.prices.clone(),
            StepSchedule {
                alpha0: self.step_alpha0(input, &caps),
                decay: self.cfg.step_decay,
            },
        )
        .with_adaptive_steps();
        // Linearization point of the aggregate entropy: the previous slot's
        // totals, where the tangent slope is exactly zero — round 0 solves
        // the unregularized-aggregate problem and later rounds correct.
        let mut yhat: Vec<f64> = (0..num_clouds).map(|i| prev.cloud_total(i)).collect();
        let zero_reconfig = vec![0.0; num_clouds];

        let mut adopted: Option<RoundCandidate> = None;
        let mut best: Option<RoundCandidate> = None;
        let mut last_err: Option<Error> = None;
        let mut deadline_hit = false;
        let mut stalled_rounds = 0usize;
        let mut best_gap = f64::INFINITY;
        // Last round's (linearization point, aggregate response) — the
        // second sample the secant update on ŷ needs.
        let mut prev_response: Option<(Vec<f64>, Vec<f64>)> = None;
        for round in 0..self.cfg.max_rounds {
            if !budget.is_unlimited() && budget.exhausted(0) {
                deadline_hit = true;
                break;
            }
            let round_budget = ascent.round_budget(budget, self.cfg.max_rounds);
            let g: Vec<f64> = phi
                .iter()
                .zip(&yhat)
                .map(|(t, &y)| t.map_or(0.0, |t| t.deriv(y)))
                .collect();
            // Total per-cloud price each shard is charged this round; the
            // carry-forward archive keeps it per offer so a stale offer's
            // bound can be re-priced later.
            let tot: Vec<f64> = (0..num_clouds).map(|i| ascent.prices()[i] + g[i]).collect();
            let adjusted: Vec<f64> = (0..num_clouds)
                .map(|i| input.operation_prices[i] + tot[i] / w_op)
                .collect();
            if adjusted.iter().any(|a| !a.is_finite()) {
                last_err = Some(Error::Invalid(
                    "coordination produced non-finite shard prices".into(),
                ));
                break;
            }
            let outcomes = self.solve_round(input, &adjusted, &zero_reconfig, &round_budget, round);
            health.coord_rounds += 1;
            health.attempts += 1;

            // Fold the round's offers in: fresh offers are archived and
            // contribute their certified bound at the current prices; a
            // failed shard falls back to its archived offer with the
            // staleness-corrected (weaker, still valid) bound.
            let s_now = self.plan.num_shards();
            let mut parts: Vec<Option<Vec<f64>>> = Vec::with_capacity(s_now);
            let mut shard_bound = 0.0f64;
            let mut fresh_gap_sum = 0.0f64;
            let mut fresh_count = 0usize;
            let mut stale_used = 0usize;
            let mut round_err: Option<String> = None;
            for (s, out) in outcomes.into_iter().enumerate() {
                health.shard_retries += out.retries;
                health.quarantined_offers += out.quarantined;
                deadline_hit |= out.deadline_hit;
                if let Some(err) = out.error {
                    let msg = format!("shard {s}: {err}");
                    health.note_error(&msg);
                    round_err.get_or_insert(msg);
                }
                match out.fresh {
                    Some(sv) => {
                        fresh_count += 1;
                        self.breaker[s] = 0;
                        health.newton_steps += sv.newton_steps;
                        shard_bound += sv.objective - sv.gap;
                        fresh_gap_sum += sv.gap;
                        self.archive.record(
                            s,
                            ArchivedOffer {
                                x: sv.x.clone(),
                                objective: sv.objective,
                                gap: sv.gap,
                                prices: tot.clone(),
                                round,
                                epoch: input.t,
                            },
                        );
                        parts.push(Some(sv.x));
                    }
                    None => {
                        self.breaker[s] = self.breaker[s].saturating_add(1);
                        match self.archive.latest(s) {
                            Some(old) if old.x.len() == self.states[s].users.len() * num_clouds => {
                                stale_used += 1;
                                shard_bound += stale_bound(old, &tot, &caps, input.t);
                                parts.push(Some(old.x.clone()));
                            }
                            _ => parts.push(None),
                        }
                    }
                }
            }
            health.stale_offers += stale_used;
            if fresh_count < s_now {
                health.degraded_rounds += 1;
            }
            if fresh_count == 0 && stale_used == 0 {
                // Every shard failed and nothing usable is archived: the
                // slot cannot be coordinated at all (e.g. a fault stripped
                // the barrier's interior on every shard). Still run the
                // breaker so chronic failure re-plans for the next slot,
                // then surface the concrete shard error over the breaker's
                // generic message.
                self.breaker_round(input, prev, health, &mut last_err);
                last_err = Some(Error::Invalid(round_err.unwrap_or_else(|| {
                    "every shard failed and no offer is archived".into()
                })));
                break;
            }
            let min_fresh = self.cfg.min_fresh.clamp(1, s_now);
            if fresh_count < min_fresh || parts.iter().any(|p| p.is_none()) {
                // Too few offers to merge a round: count it as a stall and
                // re-roll at the same prices (the breaker below re-plans a
                // persistently sick shard).
                stalled_rounds += 1;
                if best.is_some() && stalled_rounds >= self.cfg.stall_rounds {
                    break;
                }
                if self.breaker_round(input, prev, health, &mut last_err) {
                    break;
                }
                continue;
            }
            let parts: Vec<Vec<f64>> = parts.into_iter().map(|p| p.expect("screened")).collect();
            let merged = merge_shards(&self.plan, &parts, num_clouds, num_users);
            let y: Vec<f64> = (0..num_clouds).map(|i| merged.cloud_total(i)).collect();
            let violation: Vec<f64> = (0..num_clouds).map(|i| y[i] - caps[i]).collect();
            let max_violation = (0..num_clouds)
                .map(|i| violation[i].max(0.0) / caps[i].max(1.0))
                .fold(0.0, f64::max);

            let mut projected = merged;
            let candidate = match project_exact(input, &mut projected) {
                Ok(()) => {
                    match p2::slot_objective(input, prev, &projected, self.cfg.eps) {
                        Ok(f_proj) => {
                            // Dual lower bound at this round's prices
                            // (stale offers enter `shard_bound` already
                            // weakened by their staleness correction).
                            let mut d: f64 = shard_bound;
                            for i in 0..num_clouds {
                                if let Some(t) = phi[i] {
                                    d += t.value(yhat[i]) - g[i] * yhat[i];
                                }
                                d -= ascent.prices()[i] * caps[i];
                            }
                            // A dual "bound" sitting meaningfully *above*
                            // the primal objective is numerically broken
                            // (cancellation at extreme price scales, e.g. a
                            // 1e9 fault spike) — treat it as no certificate
                            // at all rather than as a perfect gap of zero.
                            let rel = (f_proj - d) / f_proj.abs().max(1.0);
                            let rel_gap = if d.is_finite() && rel >= -1e-9 {
                                rel.max(0.0)
                            } else {
                                f64::INFINITY
                            };
                            if std::env::var_os("SHARD_DEBUG").is_some() {
                                let gap_sum = fresh_gap_sum;
                                let mu_slack: f64 = (0..num_clouds)
                                    .map(|i| ascent.prices()[i] * (caps[i] - y[i]))
                                    .sum();
                                let curv: f64 = (0..num_clouds)
                                    .filter_map(|i| {
                                        phi[i].map(|t| {
                                            t.value(y[i])
                                                - t.value(yhat[i])
                                                - g[i] * (y[i] - yhat[i])
                                        })
                                    })
                                    .sum();
                                eprintln!(
                                    "  round {}: relgap {rel_gap:.3e} shardgaps {gap_sum:.3e} \
                                     muslack {mu_slack:.3e} curv {curv:.3e} viol {max_violation:.3e}",
                                    ascent.round(),
                                );
                            }
                            Some(RoundCandidate {
                                x: projected,
                                max_violation,
                                rel_gap,
                                objective: f_proj,
                            })
                        }
                        Err(e) => {
                            health.note_error(&e);
                            None
                        }
                    }
                }
                Err(e) => {
                    health.note_error(&e);
                    None
                }
            };
            let mut meaningful = false;
            if let Some(c) = candidate {
                let converged =
                    c.max_violation <= self.cfg.tol_violation && c.rel_gap <= self.cfg.tol_gap;
                // The tangent fixed-point contracts linearly (factor
                // ~0.7–0.9 per round), so any strict improvement counts as
                // progress; only a window of rounds with *no* new best
                // reads as a genuine stall.
                meaningful = c.rel_gap < best_gap;
                if ascent.offer(c.rel_gap) || best.is_none() {
                    best_gap = best_gap.min(c.rel_gap);
                    best = Some(RoundCandidate {
                        x: c.x.clone(),
                        max_violation: c.max_violation,
                        rel_gap: c.rel_gap,
                        objective: c.objective,
                    });
                }
                if converged {
                    adopted = Some(c);
                    break;
                }
            }
            // A run of rounds that fail to tighten the best projected gap
            // means the dual has stalled short of tolerance — adopt what we
            // have rather than burning the remaining budget.
            if meaningful {
                stalled_rounds = 0;
            } else {
                stalled_rounds += 1;
                if best.is_some() && stalled_rounds >= self.cfg.stall_rounds {
                    break;
                }
            }
            // Advance the linearization point toward the fixed point
            // `y(ŷ) = ŷ`. Plain relaxed Picard contracts linearly (factor
            // up to ~0.9 when the subproblems are flat along the aggregate
            // direction), so with two samples of the response in hand we
            // take a safeguarded per-cloud secant step on the residual
            // `r(ŷ) = y(ŷ) − ŷ` instead, falling back to Picard when the
            // secant is degenerate or extrapolates wildly.
            let yhat_now = yhat.clone();
            for i in 0..num_clouds {
                let r = y[i] - yhat[i];
                let mut next = (1.0 - self.cfg.relaxation) * yhat[i] + self.cfg.relaxation * y[i];
                if let Some((ph, py)) = &prev_response {
                    let r_prev = py[i] - ph[i];
                    let denom = r - r_prev;
                    if denom.abs() > 1e-12 * r.abs().max(r_prev.abs()).max(1e-12) {
                        let cand = yhat[i] - r * (yhat[i] - ph[i]) / denom;
                        let lo = yhat[i].min(y[i]);
                        let hi = yhat[i].max(y[i]);
                        let span = (hi - lo).max(1e-9 * hi.max(1.0));
                        if cand.is_finite()
                            && cand >= 0.0
                            && (lo - 10.0 * span..=hi + 10.0 * span).contains(&cand)
                        {
                            next = cand;
                        }
                    }
                }
                if next.is_finite() && next >= 0.0 {
                    yhat[i] = next;
                }
            }
            prev_response = Some((yhat_now, y.clone()));
            ascent.ascend(&violation);
            if self.breaker_round(input, prev, health, &mut last_err) {
                break;
            }
        }
        self.prices = ascent.prices().to_vec();
        health.shards = self.plan.num_shards();
        health.deadline_hit |= deadline_hit;
        // Hybrid refinement: coordination stalled (or ran out of rounds)
        // short of the gap tolerance. The best projected round is within
        // `rel_gap` of the slot optimum, so one warm-started monolithic
        // solve only has to walk the short tail of the central path — far
        // cheaper than the cold solve the monolithic path would pay, and it
        // closes the certified gap exactly.
        if adopted.is_none() && (budget.is_unlimited() || !budget.exhausted(0)) {
            if let Some(b) = best.as_ref() {
                match self.polish(input, prev, budget, b, health) {
                    // Adopt the polish only when it actually improves on the
                    // warm round — a budget-starved or badly seeded polish
                    // must not replace a better decision we already hold.
                    Ok(c) if c.objective <= b.objective || !b.objective.is_finite() => {
                        health.polished = true;
                        adopted = Some(c);
                    }
                    Ok(_) => {}
                    Err(e) => health.note_error(format!("polish: {e}")),
                }
            }
        }
        let outcome = adopted.or_else(|| {
            best.take().inspect(|_| {
                // The tolerance was not met; record how the loop ended.
                health.rung = if deadline_hit {
                    FallbackRung::DeadlineSalvage
                } else {
                    FallbackRung::RelaxedTolerance
                };
            })
        });
        match outcome {
            Some(c) => {
                health.max_capacity_violation = Some(c.max_violation);
                // A round can be adoptable without a usable dual bound
                // (salvaged shard iterates); keep the JSON clean of ±inf.
                health.duality_gap = c.rel_gap.is_finite().then_some(c.rel_gap);
                health.final_residual = health.duality_gap;
                Ok(c.x)
            }
            None => Err(last_err.unwrap_or_else(|| {
                Error::Invalid("no coordination round produced a decision".into())
            })),
        }
    }

    /// The hybrid refinement solve: the full slot ℙ₂ (true reconfiguration
    /// prices, explicit capacity rows), warm-started from the best
    /// projected coordination round. The round's certified absolute gap
    /// `rel_gap · |F|` tells how close the warm point is to optimal, which
    /// places the barrier restart `t0 ≈ (m + n) / gap` — the solve resumes
    /// the central path where coordination left off instead of re-walking
    /// it from scratch.
    fn polish(
        &mut self,
        input: &SlotInput<'_>,
        prev: &Allocation,
        budget: &SolveBudget,
        warm: &RoundCandidate,
        health: &mut SlotHealth,
    ) -> Result<RoundCandidate> {
        let ws = match self.mono.take() {
            Some(mut ws) => {
                ws.refresh(input, prev)?;
                ws
            }
            None => P2Workspace::new_with_kernel(
                input,
                prev,
                self.cfg.eps,
                CapacityMode::Explicit,
                self.cfg.kernel,
            )?,
        };
        self.mono = Some(ws);
        let ws = self.mono.as_mut().expect("workspace was just stored");
        ws.set_schur_threads(self.cfg.solver_threads);
        let total_constraints = (ws.solver().num_rows() + ws.solver().num_vars()) as f64;
        let mut opts = self.cfg.options.clone();
        opts.budget = *budget;
        let cold_opts = opts.clone();
        // Seed `t0` from the warm candidate's own certified absolute gap:
        // a point within `gap` of optimal supports restarting the central
        // path around `t ≈ (m + n)/gap`. Never seed from a *previous*
        // slot's terminal `t` — a too-high `t0` makes the barrier's
        // analytic gap `(m + n)/t` look converged at the (uncentered) warm
        // point and rubber-stamps it with a bogus certificate.
        let abs_gap = warm.rel_gap * warm.objective.abs().max(1.0);
        if abs_gap.is_finite() && abs_gap > 0.0 {
            let t0 = 0.1 * total_constraints / abs_gap;
            if t0.is_finite() && t0 > 0.0 {
                opts.t0 = opts.t0.max(t0.min(1e8));
            }
        }
        // The projected round sits exactly on the capacity/demand
        // boundaries; a small blend toward the strictly-interior
        // proportional point gives the barrier an interior start while
        // keeping the warm point's near-optimality.
        let start: Option<Vec<f64>> = p2::proportional_start(input).map(|p| {
            warm.x
                .as_flat()
                .iter()
                .zip(&p)
                .map(|(&x, &q)| 0.99 * x + 0.01 * q)
                .collect()
        });
        let attempt = match ws.solve(start.as_deref(), &opts) {
            Err(Error::Solver(optim::Error::BadStartingPoint(_))) if start.is_some() => {
                ws.solve(None, &cold_opts)
            }
            other => other,
        };
        let sol = attempt?;
        health.attempts += 1;
        health.newton_steps += sol.stats.newton_steps;
        let num_clouds = input.num_clouds();
        let mut x = Allocation::from_flat(num_clouds, input.num_users(), sol.x);
        let max_violation = (0..num_clouds)
            .map(|i| {
                let cap = input.system.capacity(i);
                (x.cloud_total(i) - cap).max(0.0) / cap.max(1.0)
            })
            .fold(0.0, f64::max);
        project_exact(input, &mut x)?;
        let objective = p2::slot_objective(input, prev, &x, self.cfg.eps)?;
        let rel_gap = if sol.stats.gap.is_finite() {
            sol.stats.gap.max(0.0) / objective.abs().max(1.0)
        } else {
            f64::INFINITY
        };
        Ok(RoundCandidate {
            x,
            max_violation,
            rel_gap,
            objective,
        })
    }

    /// Auto-scale of the dual step: `μ` moves in cost-per-resource units,
    /// violations in resource units, so `α₀ ~ (mean priced cost per unit) /
    /// (mean capacity)` makes the first correction shift prices by the
    /// order of the operation prices when a cloud is ~100% over capacity.
    fn step_alpha0(&self, input: &SlotInput<'_>, caps: &[f64]) -> f64 {
        let finite_mean = |vals: &mut dyn Iterator<Item = f64>| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for v in vals {
                if v.is_finite() {
                    sum += v.abs();
                    n += 1;
                }
            }
            if n == 0 {
                0.0
            } else {
                sum / n as f64
            }
        };
        let mean_price = finite_mean(&mut input.operation_prices.iter().copied());
        let mean_cap = finite_mean(&mut caps.iter().copied()).max(1e-9);
        let alpha = self.cfg.step_scale * input.weights.operation * (mean_price + 1e-3) / mean_cap;
        if alpha.is_finite() && alpha > 0.0 {
            alpha
        } else {
            1e-3
        }
    }

    /// Fans the round's restricted ℙ₂ solves across the shards (extra
    /// workers leased from the global [`WorkerBudget`]; a drained pool runs
    /// them inline). All shards share the round's absolute deadline rather
    /// than pre-split slices, so sequential execution hands unused time
    /// forward and parallel execution gives each shard the full window.
    /// Every shard runs its own isolated retry ladder
    /// ([`solve_shard_isolated`]); a failed shard yields a `fresh: None`
    /// entry instead of aborting the round.
    fn solve_round(
        &mut self,
        input: &SlotInput<'_>,
        adjusted: &[f64],
        zero_reconfig: &[f64],
        round_budget: &SolveBudget,
        round: usize,
    ) -> Vec<RoundShard> {
        let cfg = &self.cfg;
        let chaos = cfg.chaos.filter(|c| c.is_active());
        let want = self.states.len();
        let items: Vec<Mutex<(usize, &mut ShardState)>> =
            self.states.iter_mut().enumerate().map(Mutex::new).collect();
        let results = try_parallel_map_budgeted(&items, want, WorkerBudget::global(), |cell| {
            let (s, st) = &mut *cell.lock().expect("shard state lock poisoned");
            solve_shard_isolated(
                *s,
                st,
                input,
                adjusted,
                zero_reconfig,
                cfg,
                round_budget,
                round,
                chaos.as_ref(),
            )
        });
        results
            .into_iter()
            .map(|r| match r {
                Ok(out) => out,
                // The retry ladder itself panicked (outside any attempt's
                // own isolation): the shard failed for the round.
                Err(panic_msg) => RoundShard {
                    fresh: None,
                    retries: 0,
                    quarantined: 0,
                    deadline_hit: false,
                    error: Some(format!("solver {panic_msg}")),
                },
            })
            .collect()
    }

    /// The end-of-round circuit-breaker check: any shard at
    /// [`CoordinatorConfig::breaker_threshold`] consecutive failures is
    /// merged into its smallest healthy neighbor. Returns `true` when
    /// coordination must stop instead — a trip with no third shard to
    /// absorb the users, which abandons the slot to the caller's
    /// monolithic fallback (or to the best round already in hand).
    fn breaker_round(
        &mut self,
        input: &SlotInput<'_>,
        prev: &Allocation,
        health: &mut SlotHealth,
        last_err: &mut Option<Error>,
    ) -> bool {
        let threshold = self.cfg.breaker_threshold.max(1);
        let Some(sick) = self.breaker.iter().position(|&c| c >= threshold) else {
            return false;
        };
        health.breaker_trips += 1;
        if self.plan.num_shards() <= 2 {
            *last_err = Some(Error::Invalid(format!(
                "shard {sick} failed {} consecutive rounds with only {} shards; \
                 abandoning coordination for this slot",
                self.breaker[sick],
                self.plan.num_shards()
            )));
            return true;
        }
        self.replan_without(sick, input, prev);
        false
    }

    /// The circuit-breaker re-plan: merge the sick shard's users into the
    /// shard with the fewest users (deterministic tie-break by index),
    /// rebuild the per-shard solve states for the current slot, and reset
    /// the archive and breaker counters — offers and failure counts are
    /// indexed by shard, and the re-plan reassigns users across shards.
    fn replan_without(&mut self, sick: usize, input: &SlotInput<'_>, prev: &Allocation) {
        let into = (0..self.plan.num_shards())
            .filter(|&s| s != sick)
            .min_by_key(|&s| (self.plan.users(s).len(), s))
            .expect("breaker re-plan needs at least two shards");
        self.plan = self.plan.merged(sick, into);
        self.states = (0..self.plan.num_shards())
            .map(|s| {
                let mut st = ShardState::new(self.plan.users(s).to_vec(), input);
                st.begin_slot(input, prev);
                st
            })
            .collect();
        self.archive.reset(self.plan.num_shards());
        self.breaker = vec![0; self.plan.num_shards()];
    }
}

/// One shard's full per-round solve chain: fault injection (when chaos is
/// configured), panic isolation, the bounded retry ladder, and the
/// quarantine screen. Never panics and never returns a corrupt offer.
///
/// The ladder escalates deterministically: attempt 0 runs exactly as a
/// pre-fault-tolerance round did (full round budget, warm start), so
/// fault-free trajectories stay bit-identical; attempt 1 drops the warm
/// start and its `t0` seed (the warm data may be what is breaking the
/// solve); attempt 2+ also rebuilds the workspace from scratch. Retries
/// run on an even [`SolveBudget::slice`] of whatever remains of the round
/// budget, so a crash-looping shard cannot starve its peers past the
/// round deadline.
#[allow(clippy::too_many_arguments)]
fn solve_shard_isolated(
    s: usize,
    st: &mut ShardState,
    parent: &SlotInput<'_>,
    adjusted: &[f64],
    zero_reconfig: &[f64],
    cfg: &CoordinatorConfig,
    round_budget: &SolveBudget,
    round: usize,
    chaos: Option<&ChaosConfig>,
) -> RoundShard {
    let expected = st.users.len() * parent.num_clouds();
    let max_attempts = 1 + cfg.retry_limit;
    let mut out = RoundShard {
        fresh: None,
        retries: 0,
        quarantined: 0,
        deadline_hit: false,
        error: None,
    };
    for attempt in 0..max_attempts {
        if attempt > 0 {
            if !round_budget.is_unlimited() && round_budget.exhausted(0) {
                out.deadline_hit = true;
                break;
            }
            out.retries += 1;
            st.warm = None;
            st.last_t_final = None;
            if attempt >= 2 {
                st.workspace = None;
            }
        }
        let attempt_budget = if attempt == 0 {
            *round_budget
        } else {
            round_budget.slice(max_attempts - attempt)
        };
        let roll = chaos
            .map(|c| c.roll(parent.t, round, s, attempt))
            .unwrap_or_default();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if roll.delay_ms > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(roll.delay_ms / 1e3));
            }
            if roll.panic {
                panic!(
                    "injected shard panic (slot {}, round {round}, shard {s})",
                    parent.t
                );
            }
            solve_shard(st, parent, adjusted, zero_reconfig, cfg, &attempt_budget).map(|mut sv| {
                if let Some(kind) = roll.corrupt {
                    corrupt_offer(&mut sv.x, kind, roll.entropy);
                }
                sv
            })
        }));
        match result {
            Ok(Ok(sv)) => {
                out.deadline_hit |= sv.deadline_hit;
                match screen_offer(&sv, expected) {
                    Ok(()) => {
                        st.warm = Some(sv.x.clone());
                        out.fresh = Some(sv);
                        return out;
                    }
                    Err(msg) => {
                        out.quarantined += 1;
                        out.error = Some(format!("quarantined offer: {msg}"));
                        // The solver state that produced a corrupt offer
                        // is suspect; never warm-start from it.
                        st.warm = None;
                        st.last_t_final = None;
                    }
                }
            }
            Ok(Err(e)) => {
                if matches!(e, Error::Solver(optim::Error::DeadlineExceeded { .. })) {
                    out.deadline_hit = true;
                }
                out.error = Some(e.to_string());
            }
            Err(payload) => {
                out.error = Some(format!("solver panicked: {}", panic_message(payload)));
                // A panic can leave the workspace mid-update; rebuild it
                // before the next attempt touches it.
                st.workspace = None;
                st.warm = None;
                st.last_t_final = None;
            }
        }
    }
    out
}

/// The quarantine screen a fresh offer must pass before it may reach the
/// merge or the carry-forward archive: the right shape, finite entries, no
/// genuinely negative allocation (float noise above `−10⁻⁹` passes — the
/// exact projection clamps it, as it always has), a finite objective, and
/// a non-NaN, non-negative gap (`+∞` = "no certificate" is honest and
/// allowed).
fn screen_offer(sv: &ShardSolve, expected_len: usize) -> std::result::Result<(), String> {
    if sv.x.len() != expected_len {
        return Err(format!("shape {} (expected {expected_len})", sv.x.len()));
    }
    if let Some(v) = sv.x.iter().find(|v| !v.is_finite()) {
        return Err(format!("non-finite entry {v}"));
    }
    if let Some(v) = sv.x.iter().find(|&&v| v < -1e-9) {
        return Err(format!("negative entry {v}"));
    }
    if !sv.objective.is_finite() {
        return Err(format!("non-finite objective {}", sv.objective));
    }
    if sv.gap.is_nan() || sv.gap < 0.0 {
        return Err(format!("invalid gap {}", sv.gap));
    }
    Ok(())
}

/// The staleness correction for a carried-forward offer's dual
/// contribution. The shard objective at total prices `p` is
/// `f_s(x) = base_s(x) + Σ_i p_i·y_si` with `0 ≤ y_si ≤ C_i` (explicit
/// capacity rows), so a bound `obj° − gap°` certified at old prices still
/// bounds the current-price shard minimum after paying
/// `Σ_i (old_i − new_i)⁺ · C_i` — price increases cost nothing (their
/// term is nonnegative), price *drops* are charged at the worst case
/// `y_si = C_i`. The correction is one-sided by construction: a stale
/// offer can only weaken the round's bound `D`. Offers from an earlier
/// slot (epoch mismatch) price a different program entirely and
/// contribute `−∞` — a usable warm decision, no certificate.
fn stale_bound(old: &ArchivedOffer, tot: &[f64], caps: &[f64], slot: usize) -> f64 {
    if old.epoch != slot || !old.gap.is_finite() {
        return f64::NEG_INFINITY;
    }
    let mut m = old.objective - old.gap;
    for (i, &cap) in caps.iter().enumerate() {
        let old_p = old.prices.get(i).copied().unwrap_or(0.0);
        m -= (old_p - tot[i]).max(0.0) * cap;
    }
    m
}

/// One shard's restricted ℙ₂ for the round: the shard's own users, the
/// round's adjusted operation prices, zeroed reconfiguration prices (the
/// aggregate term lives in the coordinator's tangent price), and the full
/// per-cloud capacities as explicit rows.
fn solve_shard(
    st: &mut ShardState,
    parent: &SlotInput<'_>,
    adjusted: &[f64],
    zero_reconfig: &[f64],
    cfg: &CoordinatorConfig,
    budget: &SolveBudget,
) -> Result<ShardSolve> {
    let shard_input = SlotInput {
        t: parent.t,
        system: parent.system,
        workloads: &st.workloads,
        operation_prices: adjusted,
        attachment: st.attachment.clone(),
        access_delay: st.access_delay.clone(),
        reconfig_prices: zero_reconfig,
        migration_out: parent.migration_out,
        migration_in: parent.migration_in,
        weights: parent.weights,
    };
    let ws = match st.workspace.take() {
        Some(mut ws) => {
            ws.refresh(&shard_input, &st.prev)?;
            ws
        }
        None => P2Workspace::new_with_kernel(
            &shard_input,
            &st.prev,
            cfg.eps,
            CapacityMode::Explicit,
            cfg.kernel,
        )?,
    };
    st.workspace = Some(ws);
    let ws = st.workspace.as_mut().expect("workspace was just stored");
    ws.set_schur_threads(cfg.solver_threads);
    let total_constraints = (ws.solver().num_rows() + ws.solver().num_vars()) as f64;
    let mut opts = cfg.options.clone();
    opts.budget = *budget;
    let cold_opts = opts.clone();
    // A warm iterate from the previous round sits near the end of that
    // round's central path; re-walking the path from `t0 = 1` would cost
    // dozens of Newton steps per round. Seed `t0` one decade below the
    // previous terminal `t` (prices moved, so a little backtracking is
    // due; `BadStartingPoint` below catches a seed the warm point cannot
    // actually support).
    // The cap keeps a freak terminal `t` (tiny certified gap on a badly
    // scaled round) from seeding solves that "converge" in one step.
    if st.warm.is_some() {
        if let Some(t_final) = st.last_t_final {
            opts.t0 = opts.t0.max((t_final * 1e-1).min(1e8));
        }
    }
    let proportional = p2::proportional_start(&shard_input);
    let start = st.warm.as_deref().or(proportional.as_deref());
    let attempt = match ws.solve(start, &opts) {
        // A warm start from the previous round can sit (numerically) on the
        // boundary after a price change; retry from phase-I at the cold t0.
        Err(Error::Solver(optim::Error::BadStartingPoint(_))) if start.is_some() => {
            ws.solve(None, &cold_opts)
        }
        other => other,
    };
    match attempt {
        Ok(sol) => {
            if sol.stats.gap.is_finite() && sol.stats.gap > 0.0 {
                st.last_t_final = Some(total_constraints / sol.stats.gap);
            }
            Ok(ShardSolve {
                objective: sol.objective,
                gap: if sol.stats.gap.is_finite() {
                    sol.stats.gap.max(0.0)
                } else {
                    f64::INFINITY
                },
                newton_steps: sol.stats.newton_steps,
                deadline_hit: false,
                x: sol.x,
            })
        }
        // The round's window closed mid-solve: the best interior iterate is
        // strictly feasible for the shard region, and its certified residual
        // still yields a valid (if loose) dual bound.
        Err(Error::Solver(optim::Error::DeadlineExceeded {
            best: Some(salvage),
            ..
        })) => Ok(ShardSolve {
            objective: salvage.objective,
            gap: if salvage.residual.is_finite() {
                salvage.residual.max(0.0)
            } else {
                f64::INFINITY
            },
            newton_steps: 0,
            deadline_hit: true,
            x: salvage.x,
        }),
        Err(e) => Err(e),
    }
}

fn kernel_label(kernel: SchurKernel) -> &'static str {
    match kernel {
        SchurKernel::Dense => "dense",
        SchurKernel::Blocked => "blocked",
        SchurKernel::Auto => "auto",
    }
}
