//! `online-sharded` — the sharded online algorithm.
//!
//! [`OnlineSharded`] decides each slot with the price-coordinated shard
//! decomposition of [`crate::coordinator`], and degrades to the monolithic
//! [`OnlineRegularized`] solve (explicit capacity rows, same kernel and
//! options) whenever sharding cannot apply or coordination fails:
//!
//! - fewer than two effective shards (`min(S, J) < 2`) — there is nothing
//!   to decompose, and the monolithic path skips the coordination overhead;
//! - a non-positive operation weight — the price adjustment `μ/w_op` is
//!   undefined, so the prices cannot be folded into the shard subproblems;
//! - the coordinator produced no adoptable round (e.g. a fault stripped the
//!   capacity interior) — the monolithic ladder gets the slot's remaining
//!   budget, and [`run_online`]'s carry-forward rung backstops *that*.
//!
//! [`run_online`]: edgealloc::algorithms::run_online

use edgealloc::algorithms::{OnlineAlgorithm, OnlineRegularized, SlotInput};
use edgealloc::allocation::Allocation;
use edgealloc::health::{FallbackRung, SlotHealth};
use edgealloc::programs::p2::Epsilons;
use edgealloc::shed::{self, ShedConfig, SurvivorSlot};
use edgealloc::{sentinel, Result};
use optim::budget::SolveBudget;
use optim::convex::{BarrierOptions, SchurKernel};
use std::time::Instant;

use crate::chaos::ChaosConfig;
use crate::coordinator::{Coordinator, CoordinatorConfig};

/// The sharded online algorithm (see the crate docs for the decomposition).
///
/// # Example
///
/// ```
/// use edgealloc::prelude::*;
/// use shard::OnlineSharded;
///
/// # fn main() -> Result<(), edgealloc::Error> {
/// let inst = Instance::fig1_example(2.1, true);
/// let mut alg = OnlineSharded::new(2);
/// let traj = run_online(&inst, &mut alg)?;
/// assert_eq!(traj.allocations.len(), inst.num_slots());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OnlineSharded {
    cfg: CoordinatorConfig,
    slot_deadline_ms: Option<f64>,
    coordinator: Option<Coordinator>,
    inner: OnlineRegularized,
    last_health: Option<SlotHealth>,
    shedding: bool,
    shed: ShedConfig,
}

impl OnlineSharded {
    /// Creates the algorithm with `shards` target shards and default
    /// regularization (`ε₁ = ε₂ = 0.5`).
    pub fn new(shards: usize) -> Self {
        let cfg = CoordinatorConfig {
            shards: shards.max(1),
            ..CoordinatorConfig::default()
        };
        let inner = build_inner(&cfg);
        OnlineSharded {
            cfg,
            slot_deadline_ms: None,
            coordinator: None,
            inner,
            last_health: None,
            shedding: true,
            shed: ShedConfig::default(),
        }
    }

    /// Disables the overload sentinel's shedding rung: overloaded slots run
    /// the coordination/fallback pipeline on the full user set, exactly the
    /// pre-sentinel behavior.
    pub fn without_shedding(mut self) -> Self {
        self.shedding = false;
        self
    }

    /// Sets the shedding configuration (headroom, overflow tier, outright
    /// penalty), spelled like [`OnlineRegularized::with_shed_config`].
    pub fn with_shed_config(mut self, shed: ShedConfig) -> Self {
        self.shed = shed;
        self
    }

    /// The active shedding configuration.
    pub fn shed_config(&self) -> &ShedConfig {
        &self.shed
    }

    /// Sets `ε₁ = ε₂ = ε` (the Figure-4 sweep's knob, spelled like
    /// [`OnlineRegularized::with_epsilon`]).
    pub fn with_epsilon(mut self, eps: f64) -> Self {
        self.cfg.eps = Epsilons {
            eps1: eps,
            eps2: eps,
        };
        self.rebuild();
        self
    }

    /// Sets both regularization parameters explicitly.
    pub fn with_epsilons(mut self, eps: Epsilons) -> Self {
        self.cfg.eps = eps;
        self.rebuild();
        self
    }

    /// Selects the Newton-step Schur kernel for both the shard solves and
    /// the monolithic fallback.
    pub fn with_schur_kernel(mut self, kernel: SchurKernel) -> Self {
        self.cfg.kernel = kernel;
        self.rebuild();
        self
    }

    /// Worker-thread target per shard solve (and for the fallback's
    /// coupling products), leased from the global worker budget.
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.cfg.solver_threads = threads.max(1);
        self.rebuild();
        self
    }

    /// Barrier options for the shard solves and the fallback.
    pub fn with_solver_options(mut self, options: BarrierOptions) -> Self {
        self.cfg.options = options;
        self.rebuild();
        self
    }

    /// Caps the coordination rounds per slot.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.cfg.max_rounds = rounds.max(1);
        self
    }

    /// Sets the convergence tolerances: relative duality gap and relative
    /// capacity violation.
    pub fn with_tolerances(mut self, tol_gap: f64, tol_violation: f64) -> Self {
        self.cfg.tol_gap = tol_gap;
        self.cfg.tol_violation = tol_violation;
        self
    }

    /// Installs deterministic shard fault injection (the chaos harness;
    /// see [`ChaosConfig`]). `None` — or a config whose probabilities are
    /// all zero — keeps the solve path bit-identical to a run without
    /// chaos wired in.
    pub fn with_chaos(mut self, chaos: impl Into<Option<ChaosConfig>>) -> Self {
        self.cfg.chaos = chaos.into();
        self.coordinator = None;
        self
    }

    /// Retries per shard per round after a panic, solver error, or
    /// quarantined offer (0 = first attempt only).
    pub fn with_retry_limit(mut self, retries: usize) -> Self {
        self.cfg.retry_limit = retries;
        self.coordinator = None;
        self
    }

    /// Consecutive failed rounds before a shard's circuit breaker trips
    /// (merging the sick shard into a neighbor, or abandoning the slot to
    /// the monolithic fallback at two shards).
    pub fn with_breaker_threshold(mut self, rounds: usize) -> Self {
        self.cfg.breaker_threshold = rounds.max(1);
        self.coordinator = None;
        self
    }

    /// Wall-clock budget per slot, in milliseconds (`None` = unlimited),
    /// spelled like [`OnlineRegularized::with_slot_deadline_ms`]. The
    /// coordination rounds and any monolithic fallback share the window.
    pub fn with_slot_deadline_ms(mut self, ms: impl Into<Option<f64>>) -> Self {
        self.slot_deadline_ms = ms.into();
        self
    }

    /// The per-slot wall-clock budget, if any.
    pub fn slot_deadline_ms(&self) -> Option<f64> {
        self.slot_deadline_ms
    }

    /// Target shard count (effective count is capped at the user count).
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    /// Kernel/eps/options changed: drop solve state built on the old ones.
    fn rebuild(&mut self) {
        self.coordinator = None;
        self.inner = build_inner(&self.cfg);
    }

    /// Decides the slot monolithically with whatever budget remains,
    /// folding the inner algorithm's health record into `health`.
    fn decide_monolithic(
        &mut self,
        input: &SlotInput<'_>,
        prev: &Allocation,
        budget: &SolveBudget,
        health: &mut SlotHealth,
    ) -> Result<Allocation> {
        let remaining_ms = budget.remaining().map(|d| d.as_secs_f64() * 1e3);
        // The deadline setter consumes self; swap through a throwaway so the
        // inner algorithm keeps its warm workspace across slots.
        let inner = std::mem::replace(&mut self.inner, build_inner(&self.cfg));
        self.inner = inner.with_slot_deadline_ms(remaining_ms);
        let result = self.inner.decide(input, prev);
        if let Some(ih) = self.inner.take_health() {
            health.rung = ih.rung;
            health.attempts += ih.attempts;
            health.final_residual = ih.final_residual;
            health.deadline_hit |= ih.deadline_hit;
            health.rung_ms.extend(ih.rung_ms);
            health.repaired |= ih.repaired;
            health.newton_steps += ih.newton_steps;
            health.outer_iterations = ih.outer_iterations;
            health.schur_kernel = ih.schur_kernel;
            health.newton_step_ms = ih.newton_step_ms;
            health.shed_users += ih.shed_users;
            health.overflowed_users += ih.overflowed_users;
            health.shed_penalty += ih.shed_penalty;
            if health.sentinel_verdict.is_none() {
                health.sentinel_verdict = ih.sentinel_verdict;
            }
            health.errors.extend(ih.errors);
        }
        result
    }

    /// The sentinel layer around the sharded pipeline, mirroring
    /// [`OnlineRegularized`]: classify the slot in O(I+J) and, when it is
    /// overloaded, shed the minimum-penalty user set *before* sharding — so
    /// the coordinator partitions only the survivors (its staleness check
    /// rebuilds the plan for the reduced user count). Non-overloaded slots
    /// run the ordinary pipeline untouched.
    fn decide_sentineled(
        &mut self,
        input: &SlotInput<'_>,
        prev: &Allocation,
        health: &mut SlotHealth,
        budget: &SolveBudget,
    ) -> Result<Allocation> {
        let report = sentinel::assess(input, self.shed.headroom);
        health.sentinel_verdict = Some(report.verdict);
        if !(self.shedding && report.overloaded()) {
            return self.decide_inner(input, prev, health, budget);
        }
        let decision = match shed::plan_shedding(input, &self.shed, budget) {
            Ok(d) => d,
            Err(err) => {
                // No shedding plan: run the full slot anyway — the
                // coordination/fallback pipeline serves what capacity
                // allows, exactly the pre-shedding behavior.
                health.note_error(&err);
                return self.decide_inner(input, prev, health, budget);
            }
        };
        health.rung = FallbackRung::Shedding;
        health.shed_users = decision.deferred.len();
        health.overflowed_users = if decision.overflowed {
            decision.deferred.len()
        } else {
            0
        };
        health.shed_penalty = decision.penalty;
        if decision.survivors.is_empty() {
            // Everything overflows: the edge decision is the zero
            // allocation, and stale solve state must not leak into the
            // next (differently-shaped) slot.
            self.coordinator = None;
            self.inner.reset();
            return Ok(Allocation::zeros(input.num_clouds(), input.num_users()));
        }
        let slot = SurvivorSlot::new(input, &decision);
        let rinput = slot.as_input(input);
        let rprev = slot.restrict(prev);
        let shed_rung = health.rung;
        let mut reduced = self.decide_inner(&rinput, &rprev, health, budget)?;
        // The inner pipeline reports whichever rung solved the reduced
        // program; the slot's identity stays Shedding.
        health.rung = shed_rung;
        // Certify *exact* feasibility on the survivors, matching the
        // coordinator's own guarantee on full slots.
        if let Err(err) = crate::merge::project_exact(&rinput, &mut reduced) {
            health.note_error(&err);
        }
        Ok(slot.scatter(&reduced, input.num_users()))
    }

    /// The pre-sentinel decision pipeline: price-coordinated shard solves
    /// with the monolithic ladder as fallback. Extracted from `decide` so
    /// the shedding rung can run it on a survivor-reduced slot.
    fn decide_inner(
        &mut self,
        input: &SlotInput<'_>,
        prev: &Allocation,
        health: &mut SlotHealth,
        budget: &SolveBudget,
    ) -> Result<Allocation> {
        let s_eff = self.cfg.shards.min(input.num_users());
        let shardable = s_eff >= 2 && input.weights.operation > 0.0;
        let mut decision: Option<Allocation> = None;
        if shardable {
            let stale = self
                .coordinator
                .as_ref()
                .is_none_or(|c| !c.matches(input, self.cfg.shards));
            if stale {
                self.coordinator = Some(Coordinator::new(self.cfg.clone(), input));
            }
            let coord = self.coordinator.as_mut().expect("coordinator was built");
            match coord.solve_slot(input, prev, budget, health) {
                Ok(x) => decision = Some(x),
                Err(e) => health.note_error(format!("shard coordination failed: {e}")),
            }
        }
        match decision {
            Some(x) => Ok(x),
            None => {
                health.shards = 1;
                self.decide_monolithic(input, prev, budget, health)
            }
        }
    }
}

fn build_inner(cfg: &CoordinatorConfig) -> OnlineRegularized {
    // The outer algorithm sheds once, pre-sharding; the inner monolithic
    // fallback must not shed a second time on the (already reduced) slot.
    OnlineRegularized::new(cfg.eps)
        .with_explicit_capacity()
        .with_schur_kernel(cfg.kernel)
        .with_solver_threads(cfg.solver_threads)
        .with_solver_options(cfg.options.clone())
        .without_shedding()
}

impl OnlineAlgorithm for OnlineSharded {
    fn name(&self) -> &str {
        "online-sharded"
    }

    fn decide(&mut self, input: &SlotInput<'_>, prev: &Allocation) -> Result<Allocation> {
        let clock = Instant::now();
        let mut health = SlotHealth::primary();
        health.deadline_ms = self.slot_deadline_ms;
        let budget = match self.slot_deadline_ms {
            Some(ms) => SolveBudget::from_millis(ms),
            None => SolveBudget::unlimited(),
        };
        let outcome = self.decide_sentineled(input, prev, &mut health, &budget);
        health.wall_time_ms = clock.elapsed().as_secs_f64() * 1e3;
        self.last_health = Some(health);
        outcome
    }

    fn take_health(&mut self) -> Option<SlotHealth> {
        self.last_health.take()
    }

    fn reset(&mut self) {
        self.coordinator = None;
        self.inner.reset();
        self.last_health = None;
    }
}
