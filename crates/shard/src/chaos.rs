//! Deterministic fault injection for the shard coordination loop.
//!
//! The chaos harness exercises the coordinator's fault-tolerance machinery
//! — retry ladders, straggler carry-forward, offer quarantine, circuit
//! breakers — without any real hardware failing. Three fault classes mirror
//! what a distributed deployment of the per-shard ℙ₂ solvers would hit:
//!
//! - **panic**: the shard worker dies mid-solve (process crash, OOM kill);
//! - **delay**: the shard worker straggles (network partition, noisy
//!   neighbor) and blows through its round budget;
//! - **corrupt**: the shard's offer arrives damaged (truncated transfer,
//!   bit flip) carrying NaN/Inf/negative entries.
//!
//! Every roll is a pure function of `(seed, slot, round, shard, attempt)`
//! through SplitMix64 finalizer chaining — *which* faults fire is
//! reproducible across runs and independent of thread scheduling. The
//! attempt index is part of the key on purpose: a panic on attempt 0 does
//! not doom attempt 1, so the retry ladder has something to recover.

use crate::plan::mix;

/// What kind of damage an injected corruption writes into an offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// One entry becomes NaN.
    Nan,
    /// One entry becomes +∞.
    Inf,
    /// One entry becomes a large negative value.
    Negative,
}

/// The faults one shard solve attempt draws (see [`ChaosConfig::roll`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRoll {
    /// Panic instead of solving.
    pub panic: bool,
    /// Sleep this long (milliseconds) before solving (0 = no delay).
    pub delay_ms: f64,
    /// Corrupt the produced offer, and how.
    pub corrupt: Option<CorruptKind>,
    /// Deterministic entropy for picking *which* entry to corrupt (the
    /// injector takes it modulo the offer length).
    pub entropy: u64,
}

/// Seeded fault-injection probabilities for the coordinator.
///
/// All probabilities are clamped to `[0, 1]` at roll time; a config with
/// every probability at zero is inert ([`ChaosConfig::is_active`] is
/// `false`) and the coordinator skips the injection path entirely, keeping
/// fault-free runs bit-identical to a build without chaos wired in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault rolls.
    pub seed: u64,
    /// Probability a shard solve attempt panics.
    pub panic_prob: f64,
    /// Probability a shard solve attempt is delayed.
    pub delay_prob: f64,
    /// Injected delay length in milliseconds (applies when the delay
    /// fires).
    pub delay_ms: f64,
    /// Probability a fresh offer is corrupted before quarantine screening.
    pub corrupt_prob: f64,
}

impl ChaosConfig {
    /// An inert config: nothing ever fires.
    pub fn disabled() -> Self {
        ChaosConfig {
            seed: 0,
            panic_prob: 0.0,
            delay_prob: 0.0,
            delay_ms: 0.0,
            corrupt_prob: 0.0,
        }
    }

    /// Whether any fault can fire at all.
    pub fn is_active(&self) -> bool {
        self.panic_prob > 0.0
            || (self.delay_prob > 0.0 && self.delay_ms > 0.0)
            || self.corrupt_prob > 0.0
    }

    /// The faults drawn for one `(slot, round, shard, attempt)` solve
    /// attempt. Pure and order-independent: the same key always rolls the
    /// same faults, whatever the thread interleaving.
    pub fn roll(&self, slot: usize, round: usize, shard: usize, attempt: usize) -> FaultRoll {
        let key = self.key(slot, round, shard, attempt);
        let panic = uniform(mix(key ^ 0x01)) < self.panic_prob.clamp(0.0, 1.0);
        let delayed = uniform(mix(key ^ 0x02)) < self.delay_prob.clamp(0.0, 1.0);
        let corrupt = if uniform(mix(key ^ 0x03)) < self.corrupt_prob.clamp(0.0, 1.0) {
            Some(match mix(key ^ 0x04) % 3 {
                0 => CorruptKind::Nan,
                1 => CorruptKind::Inf,
                _ => CorruptKind::Negative,
            })
        } else {
            None
        };
        FaultRoll {
            panic,
            delay_ms: if delayed { self.delay_ms.max(0.0) } else { 0.0 },
            corrupt,
            entropy: mix(key ^ 0x05),
        }
    }

    fn key(&self, slot: usize, round: usize, shard: usize, attempt: usize) -> u64 {
        let mut k = mix(self.seed);
        for part in [slot as u64, round as u64, shard as u64, attempt as u64] {
            k = mix(k ^ mix(part));
        }
        k
    }
}

/// Writes one fault of kind `kind` into `x` at a deterministic index.
/// No-op on an empty offer.
pub fn corrupt_offer(x: &mut [f64], kind: CorruptKind, entropy: u64) {
    if x.is_empty() {
        return;
    }
    let idx = (entropy % x.len() as u64) as usize;
    x[idx] = match kind {
        CorruptKind::Nan => f64::NAN,
        CorruptKind::Inf => f64::INFINITY,
        CorruptKind::Negative => -1e6,
    };
}

/// Maps a 64-bit hash to a uniform double in `[0, 1)` (53 mantissa bits).
fn uniform(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active() -> ChaosConfig {
        ChaosConfig {
            seed: 42,
            panic_prob: 0.5,
            delay_prob: 0.5,
            delay_ms: 10.0,
            corrupt_prob: 0.5,
        }
    }

    #[test]
    fn rolls_are_deterministic_per_key() {
        let c = active();
        for slot in 0..4 {
            for round in 0..3 {
                for shard in 0..3 {
                    for attempt in 0..2 {
                        let a = c.roll(slot, round, shard, attempt);
                        let b = c.roll(slot, round, shard, attempt);
                        assert_eq!(a, b, "roll({slot},{round},{shard},{attempt}) unstable");
                    }
                }
            }
        }
    }

    #[test]
    fn distinct_keys_draw_distinct_fates() {
        // Not all keys roll the same outcome: over a few hundred keys each
        // fault class both fires and spares at 0.5 probability.
        let c = active();
        let mut panics = 0;
        let mut delays = 0;
        let mut corrupts = 0;
        let n = 400;
        for slot in 0..n {
            let r = c.roll(slot, 0, 0, 0);
            panics += r.panic as usize;
            delays += (r.delay_ms > 0.0) as usize;
            corrupts += r.corrupt.is_some() as usize;
        }
        for (label, count) in [("panic", panics), ("delay", delays), ("corrupt", corrupts)] {
            assert!(
                count > n / 10 && count < n - n / 10,
                "{label} fired {count}/{n} times at p=0.5"
            );
        }
    }

    #[test]
    fn attempt_index_rerolls_the_fate() {
        // Retries must be able to escape an injected panic: across many
        // keys, some attempt-0 panic while attempt-1 does not.
        let c = ChaosConfig {
            panic_prob: 0.5,
            ..active()
        };
        let escaped = (0..200).any(|slot| {
            let first = c.roll(slot, 0, 0, 0);
            let second = c.roll(slot, 0, 0, 1);
            first.panic && !second.panic
        });
        assert!(escaped, "no retry ever escaped an injected panic");
    }

    #[test]
    fn disabled_config_is_inert() {
        let c = ChaosConfig::disabled();
        assert!(!c.is_active());
        for slot in 0..50 {
            let r = c.roll(slot, 0, 0, 0);
            assert!(!r.panic);
            assert_eq!(r.delay_ms, 0.0);
            assert!(r.corrupt.is_none());
        }
        // A delay probability without a delay length is also inert.
        let no_len = ChaosConfig {
            delay_prob: 1.0,
            ..ChaosConfig::disabled()
        };
        assert!(!no_len.is_active());
    }

    #[test]
    fn corrupt_offer_damages_exactly_one_entry() {
        let mut x = vec![1.0; 8];
        corrupt_offer(&mut x, CorruptKind::Nan, 13);
        assert_eq!(x.iter().filter(|v| v.is_nan()).count(), 1);
        let mut y = vec![1.0; 8];
        corrupt_offer(&mut y, CorruptKind::Inf, 13);
        assert_eq!(y.iter().filter(|v| v.is_infinite()).count(), 1);
        let mut z = vec![1.0; 8];
        corrupt_offer(&mut z, CorruptKind::Negative, 13);
        assert_eq!(z.iter().filter(|v| **v < 0.0).count(), 1);
        corrupt_offer(&mut [], CorruptKind::Nan, 13);
    }
}
