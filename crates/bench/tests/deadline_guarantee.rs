//! Deadline acceptance: on a fault-injected 30-user × 24-slot horizon with
//! a deliberately expensive primary solve, a 50 ms per-slot budget must
//! bound every slot's wall clock near the deadline, every slot must still
//! produce a decision, and the budget pressure must be visible in the
//! health telemetry (deadline hits on non-primary rungs).

use edgealloc::algorithms::run_online;
use edgealloc::health::FallbackRung;
use edgealloc::prelude::*;
use optim::convex::BarrierOptions;
use rand::SeedableRng;
use sim::faults::{FaultKind, FaultPlan};

#[test]
fn fifty_ms_slot_deadline_bounds_a_faulted_horizon() {
    let users = 30;
    let slots = 24;
    let net = mobility::rome_metro();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let cfg = mobility::taxi::TaxiConfig {
        num_users: users,
        num_slots: slots,
        ..Default::default()
    };
    let mob = mobility::taxi::generate(&net, &cfg, &mut rng);
    let mut inst = Instance::synthetic(&net, mob, &mut rng);
    FaultPlan {
        faults: vec![
            FaultKind::PriceNan { slot: 3, cloud: 0 },
            FaultKind::PriceSpike {
                slot: 11,
                cloud: 2,
                value: -75.0,
            },
            FaultKind::ZeroCapacity { cloud: 1 },
        ],
    }
    .apply(&mut inst);

    // Cripple the primary solve: a tolerance at the numerical floor with a
    // huge iteration allowance wants far more Newton steps than 50 ms
    // permits, so the budget — not convergence — ends each slot.
    let deadline_ms = 50.0;
    let mut alg = OnlineRegularized::with_defaults()
        .with_solver_options(BarrierOptions {
            tol: 1e-14,
            inner_tol: 1e-15,
            max_outer: 10_000,
            ..BarrierOptions::default()
        })
        .with_slot_deadline_ms(deadline_ms);

    let traj = run_online(&inst, &mut alg).expect("every slot must deliver a decision");
    assert_eq!(traj.allocations.len(), slots);
    assert_eq!(traj.health.len(), slots);

    let hits = traj.health.iter().filter(|h| h.deadline_hit).count();
    assert!(hits >= 1, "expected at least one deadline hit, got none");
    assert!(
        traj.health
            .iter()
            .any(|h| h.deadline_hit && h.rung != FallbackRung::Primary),
        "a deadline hit should land on a degraded rung"
    );

    // ~2× the deadline: one budget's worth of solving plus at most one
    // uncancellable Newton step / phase-I factorization of overshoot (plus
    // a little absolute grace for a loaded CI machine). The deadline is
    // checked between steps, so a debug build — whose individual steps run
    // 10–15× slower depending on the host — gets a proportionally slacker
    // bound (the debug run only checks the overshoot is bounded at all);
    // the CI chaos job enforces the tight one in release.
    let bound_ms = if cfg!(debug_assertions) {
        20.0 * deadline_ms
    } else {
        2.0 * deadline_ms + 25.0
    };
    for (t, h) in traj.health.iter().enumerate() {
        assert_eq!(h.deadline_ms, Some(deadline_ms), "slot {t}");
        assert!(
            h.wall_time_ms <= bound_ms,
            "slot {t} ran {:.1} ms against a {deadline_ms} ms budget (rung {:?})",
            h.wall_time_ms,
            h.rung
        );
        assert!(
            !h.rung_ms.is_empty(),
            "slot {t} should record per-rung timings"
        );
    }
}
