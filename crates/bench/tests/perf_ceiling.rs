//! Perf-smoke gate for the blocked nested-Schur kernel: a warm J=2000,
//! I=15 slot solve must finish under a generous wall-clock ceiling. The
//! ceiling is deliberately loose (shared CI runners are noisy) — it exists
//! to catch *complexity* regressions, e.g. the blocked kernel silently
//! falling back to the dense (J+2I)³ path, which at J=2000 is orders of
//! magnitude slower, not percent.
//!
//! Run in release only (`cargo test -p bench --release --test
//! perf_ceiling`); under a debug build the test is a no-op because debug
//! arithmetic is uniformly ~30× slower and would need a ceiling too loose
//! to gate anything.

use edgealloc::prelude::*;
use edgealloc::programs::p2::{self, CapacityMode, Epsilons, P2Workspace};
use edgealloc::SlotInput;
use optim::convex::{BarrierOptions, SchurKernel};
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Wall-clock ceiling for one warm blocked slot solve at J=2000, I=15.
/// Typical release time is a few hundred milliseconds; the dense kernel at
/// this shape takes minutes.
const WARM_SOLVE_CEILING: Duration = Duration::from_secs(60);

#[test]
fn warm_j2000_blocked_slot_solve_under_ceiling() {
    if cfg!(debug_assertions) {
        eprintln!("perf_ceiling: skipped (debug build)");
        return;
    }

    let net = mobility::rome_metro();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let cfg = mobility::taxi::TaxiConfig {
        num_users: 2000,
        num_slots: 2,
        ..Default::default()
    };
    let mob = mobility::taxi::generate(&net, &cfg, &mut rng);
    let inst = Instance::synthetic(&net, mob, &mut rng);

    let input0 = SlotInput::from_instance(&inst, 0);
    let zeros = Allocation::zeros(inst.num_clouds(), inst.num_users());
    let eps = Epsilons::default();
    let opts = BarrierOptions::default();
    let prev = p2::solve(&input0, &zeros, eps, None, &opts)
        .expect("slot 0 solve")
        .allocation;
    let prev_flat = prev.as_flat().to_vec();

    let input = SlotInput::from_instance(&inst, 1);
    let mut ws = P2Workspace::new_with_kernel(
        &input,
        &prev,
        eps,
        CapacityMode::Paper10b,
        SchurKernel::Blocked,
    )
    .expect("workspace build");
    let warm_opts = BarrierOptions {
        t0: 1e5,
        ..BarrierOptions::default()
    };

    // Warm-up: first solve grows workspace buffers to steady state.
    ws.refresh(&input, &prev).expect("refresh");
    ws.solve(Some(&prev_flat), &warm_opts)
        .or_else(|_| ws.solve(None, &opts))
        .expect("warm-up solve");

    let start = Instant::now();
    ws.refresh(&input, &prev).expect("refresh");
    let sol = ws
        .solve(Some(&prev_flat), &warm_opts)
        .or_else(|_| ws.solve(None, &opts))
        .expect("timed solve");
    let elapsed = start.elapsed();

    eprintln!(
        "perf_ceiling: warm J=2000 blocked solve took {:.1} ms \
         ({} Newton steps, objective {:.6e})",
        elapsed.as_secs_f64() * 1e3,
        sol.stats.newton_steps,
        sol.objective
    );
    assert!(
        elapsed <= WARM_SOLVE_CEILING,
        "warm J=2000 blocked slot solve took {elapsed:?} (ceiling \
         {WARM_SOLVE_CEILING:?}) — did the blocked kernel regress to a \
         superlinear path?"
    );
}
