//! Crash-safety acceptance: kill a checkpointed figure sweep mid-flight,
//! verify the surviving checkpoint is uncorrupted (whole header + whole
//! records, nothing torn), resume it, and require the final JSON *and* the
//! final checkpoint to be byte-identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Small-but-real fig2 sweep: 6 points, ~seconds each at this size.
const SWEEP: &[&str] = &[
    "--users",
    "5",
    "--slots",
    "3",
    "--reps",
    "1",
    "--threads",
    "2",
    "--seed",
    "99",
];

fn fig2(json: &Path, ckpt: &Path) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_fig2_competitive_ratio"));
    c.args(SWEEP)
        .arg("--json")
        .arg(json)
        .arg("--resume")
        .arg(ckpt)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    c
}

fn test_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chaos-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn killed_sweep_resumes_to_byte_identical_output() {
    let dir = test_dir();
    let baseline_json = dir.join("baseline.json");
    let baseline_ckpt = dir.join("baseline.ckpt");
    let chaos_json = dir.join("chaos.json");
    let chaos_ckpt = dir.join("chaos.ckpt");

    // Uninterrupted reference run.
    let status = fig2(&baseline_json, &baseline_ckpt).status().unwrap();
    assert!(status.success(), "baseline sweep failed");
    let want_json = std::fs::read_to_string(&baseline_json).unwrap();
    let want_ckpt = std::fs::read_to_string(&baseline_ckpt).unwrap();
    let total_lines = want_ckpt.lines().count();
    assert!(total_lines > 2, "checkpoint should hold header + records");

    // Chaos run: SIGKILL it once the checkpoint holds at least one record
    // but not yet all of them.
    let mut child = fig2(&chaos_json, &chaos_ckpt).spawn().unwrap();
    let poll_deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let lines = std::fs::read_to_string(&chaos_ckpt)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 2 && lines < total_lines {
            child.kill().unwrap();
            break;
        }
        if child.try_wait().unwrap().is_some() {
            break; // outran the kill — synthesized below
        }
        assert!(
            Instant::now() < poll_deadline,
            "chaos run made no checkpoint progress"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.wait();

    // If the sweep finished before the kill landed, synthesize the
    // mid-flight state deterministically: keep the header and first
    // record, drop the rest and the output JSON.
    let survived = std::fs::read_to_string(&chaos_ckpt).unwrap_or_default();
    if survived.lines().count() >= total_lines {
        let truncated: String = want_ckpt
            .lines()
            .take(2)
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&chaos_ckpt, truncated).unwrap();
        let _ = std::fs::remove_file(&chaos_json);
    }

    // Whatever survived must be uncorrupted: the reference header and a
    // subset of the reference's whole record lines — nothing torn, nothing
    // foreign (checkpoint writes are atomic full-file renames).
    let survived = std::fs::read_to_string(&chaos_ckpt).unwrap();
    let want_lines: Vec<&str> = want_ckpt.lines().collect();
    let mut lines = survived.lines();
    assert_eq!(lines.next(), Some(want_lines[0]), "header corrupted");
    for line in lines {
        assert!(
            want_lines[1..].contains(&line),
            "torn or foreign checkpoint line: {line}"
        );
    }

    // Resume with identical flags: the sweep completes and both artifacts
    // match the uninterrupted run bit for bit.
    let status = fig2(&chaos_json, &chaos_ckpt).status().unwrap();
    assert!(status.success(), "resumed sweep failed");
    assert_eq!(
        std::fs::read_to_string(&chaos_json).unwrap(),
        want_json,
        "resumed JSON differs from the uninterrupted run"
    );
    assert_eq!(
        std::fs::read_to_string(&chaos_ckpt).unwrap(),
        want_ckpt,
        "resumed checkpoint differs from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
