//! Criterion benchmarks and ablations of the allocation algorithms:
//! per-slot ℙ₂ solves (warm vs cold start — an ablation DESIGN.md calls
//! out), the greedy per-slot LP, and the capacity-repair projection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edgealloc::algorithms::{repair_capacity, SlotInput};
use edgealloc::allocation::Allocation;
use edgealloc::instance::Instance;
use edgealloc::prelude::*;
use edgealloc::programs::p2::{self, CapacityMode, Epsilons};
use edgealloc::programs::per_slot_lp::{add_dynamic_terms, base_lp, StaticTerms};
use optim::convex::BarrierOptions;
use rand::SeedableRng;

fn instance(users: usize, slots: usize, seed: u64) -> Instance {
    let net = mobility::rome_metro();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cfg = mobility::taxi::TaxiConfig {
        num_users: users,
        num_slots: slots,
        ..Default::default()
    };
    let mob = mobility::taxi::generate(&net, &cfg, &mut rng);
    Instance::synthetic(&net, mob, &mut rng)
}

fn bench_p2_single_slot(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_single_slot");
    group.sample_size(10);
    for users in [10usize, 30, 60] {
        let inst = instance(users, 2, 1);
        let input = SlotInput::from_instance(&inst, 0);
        let prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
        group.bench_with_input(BenchmarkId::from_parameter(users), &users, |b, _| {
            b.iter(|| {
                p2::solve(
                    &input,
                    &prev,
                    Epsilons::default(),
                    None,
                    &BarrierOptions::default(),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_warm_vs_cold(c: &mut Criterion) {
    // Ablation: warm-starting ℙ₂ from the previous slot's barrier solution
    // vs the capacity-proportional cold start, over a short horizon.
    let mut group = c.benchmark_group("p2_horizon_warm_vs_cold");
    group.sample_size(10);
    let inst = instance(20, 6, 2);
    group.bench_function("warm", |b| {
        b.iter(|| {
            let mut alg = OnlineRegularized::with_defaults();
            run_online(&inst, &mut alg).unwrap()
        })
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut alg = OnlineRegularized::with_defaults().without_warm_start();
            run_online(&inst, &mut alg).unwrap()
        })
    });
    group.finish();
}

fn bench_greedy_slot_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_slot_lp");
    group.sample_size(10);
    for users in [10usize, 30, 60] {
        let inst = instance(users, 2, 3);
        let input = SlotInput::from_instance(&inst, 0);
        let prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
        group.bench_with_input(BenchmarkId::from_parameter(users), &users, |b, _| {
            b.iter(|| {
                let mut lp = base_lp(
                    &input,
                    StaticTerms {
                        operation: true,
                        quality: true,
                    },
                );
                add_dynamic_terms(&mut lp, &input, &prev);
                lp.solve().unwrap()
            });
        });
    }
    group.finish();
}

fn bench_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacity_repair");
    group.sample_size(20);
    let inst = instance(60, 2, 4);
    let input = SlotInput::from_instance(&inst, 0);
    // An intentionally over-capacity allocation: everything piled on cloud 0.
    let mut x = Allocation::zeros(inst.num_clouds(), inst.num_users());
    for j in 0..inst.num_users() {
        x.set(0, j, inst.workload(j));
    }
    group.bench_function("pile_on_one_cloud", |b| {
        b.iter(|| {
            let mut y = x.clone();
            repair_capacity(&input, &mut y).unwrap();
            y
        })
    });
    group.finish();
}

fn bench_capacity_mode(c: &mut Criterion) {
    // Ablation: the paper's (10b) rows (dense, I·(I−1)·J coupling entries)
    // vs explicit per-cloud capacity rows (sparse).
    let mut group = c.benchmark_group("p2_capacity_mode");
    group.sample_size(10);
    let inst = instance(30, 2, 5);
    let input = SlotInput::from_instance(&inst, 0);
    let prev = Allocation::zeros(inst.num_clouds(), inst.num_users());
    group.bench_function("paper_10b", |b| {
        b.iter(|| {
            p2::solve_with_mode(
                &input,
                &prev,
                Epsilons::default(),
                None,
                &BarrierOptions::default(),
                CapacityMode::Paper10b,
            )
            .unwrap()
        })
    });
    group.bench_function("explicit", |b| {
        b.iter(|| {
            p2::solve_with_mode(
                &input,
                &prev,
                Epsilons::default(),
                None,
                &BarrierOptions::default(),
                CapacityMode::Explicit,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_p2_single_slot,
    bench_warm_vs_cold,
    bench_greedy_slot_lp,
    bench_repair,
    bench_capacity_mode
);
criterion_main!(benches);
