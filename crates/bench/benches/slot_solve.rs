//! Criterion benchmark isolating one online ℙ₂ slot solve: the cold path
//! (rebuild the `BarrierSolver` from scratch, solve from the proportional
//! start) versus the warm path (refresh a persistent [`P2Workspace`] in
//! place, solve from the previous slot's solution with an adaptively seeded
//! barrier parameter) — the two regimes `OnlineRegularized` alternates
//! between across a horizon.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use edgealloc::prelude::*;
use edgealloc::programs::p2::{self, CapacityMode, Epsilons, P2Workspace};
use edgealloc::SlotInput;
use optim::convex::{BarrierOptions, SchurKernel};
use rand::SeedableRng;

/// A taxi instance at the profiling shape (scaled down for bench runtime),
/// plus the slot-0 solution used as the previous allocation for slot 1.
fn fixture() -> (Instance, Allocation) {
    fixture_sized(15)
}

/// Same fixture at an arbitrary user count. Slot 0 is solved with the
/// default kernel ([`SchurKernel::Auto`] — blocked at this scale) just to
/// obtain a realistic previous allocation.
fn fixture_sized(num_users: usize) -> (Instance, Allocation) {
    let net = mobility::rome_metro();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let cfg = mobility::taxi::TaxiConfig {
        num_users,
        num_slots: 2,
        ..Default::default()
    };
    let mob = mobility::taxi::generate(&net, &cfg, &mut rng);
    let inst = Instance::synthetic(&net, mob, &mut rng);
    let input0 = SlotInput::from_instance(&inst, 0);
    let zeros = Allocation::zeros(inst.num_clouds(), inst.num_users());
    let sol0 = p2::solve(
        &input0,
        &zeros,
        Epsilons::default(),
        None,
        &BarrierOptions::default(),
    )
    .expect("slot 0 solve");
    (inst, sol0.allocation)
}

fn bench_slot_solve(c: &mut Criterion) {
    let (inst, prev) = fixture();
    let input = SlotInput::from_instance(&inst, 1);
    let eps = Epsilons::default();
    let opts = BarrierOptions::default();
    let prev_flat = prev.as_flat().to_vec();

    let mut group = c.benchmark_group("slot_solve");
    group.sample_size(10);

    // Cold: rebuild matrix, groups, and Schur coupling, then solve from the
    // proportional interior point (what every slot paid before PR 2).
    group.bench_function("cold_rebuild", |b| {
        b.iter(|| {
            let sol = p2::solve(black_box(&input), &prev, eps, None, &opts).expect("cold solve");
            black_box(sol.objective)
        });
    });

    // Warm: refresh values in the persistent workspace and solve from the
    // previous slot's solution with the adaptive barrier-parameter seed.
    let mut ws =
        P2Workspace::new(&input, &prev, eps, CapacityMode::Paper10b).expect("workspace build");
    let warm_opts = BarrierOptions {
        t0: 1e5,
        ..BarrierOptions::default()
    };
    group.bench_function("warm_refresh", |b| {
        b.iter(|| {
            ws.refresh(black_box(&input), &prev).expect("refresh");
            // A terminal solution can sit numerically on the boundary;
            // fall back to the proportional start like the ladder does.
            let sol = match ws.solve(Some(&prev_flat), &warm_opts) {
                Ok(sol) => sol,
                Err(_) => ws.solve(None, &opts).expect("warm solve"),
            };
            black_box(sol.objective)
        });
    });
    group.finish();
}

/// The large-J regime the blocked nested-Schur kernel exists for: a warm
/// J=2000 slot solve, where the dense Woodbury complement would pay a
/// (J+2I)³ factorization per Newton step and the blocked kernel pays
/// O(J·I²) plus one small Cholesky.
fn bench_slot_solve_j2000(c: &mut Criterion) {
    let (inst, prev) = fixture_sized(2000);
    let input = SlotInput::from_instance(&inst, 1);
    let eps = Epsilons::default();
    let opts = BarrierOptions::default();
    let prev_flat = prev.as_flat().to_vec();

    let mut group = c.benchmark_group("slot_solve_j2000");
    group.sample_size(10);

    let mut ws = P2Workspace::new_with_kernel(
        &input,
        &prev,
        eps,
        CapacityMode::Paper10b,
        SchurKernel::Blocked,
    )
    .expect("workspace build");
    let warm_opts = BarrierOptions {
        t0: 1e5,
        ..BarrierOptions::default()
    };
    group.bench_function("warm_refresh_blocked", |b| {
        b.iter(|| {
            ws.refresh(black_box(&input), &prev).expect("refresh");
            let sol = match ws.solve(Some(&prev_flat), &warm_opts) {
                Ok(sol) => sol,
                Err(_) => ws.solve(None, &opts).expect("warm solve"),
            };
            black_box(sol.objective)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_slot_solve, bench_slot_solve_j2000);
criterion_main!(benches);
