//! Criterion benchmarks of the `optim` solver substrate: sparse LDLᵀ
//! factorization, fill-reducing ordering, interior-point LP solves, and the
//! simplex cross-check, at the problem shapes the edge-cloud experiments
//! produce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optim::linalg::{min_degree_ordering, LdlSymbolic};
use optim::lp::{ConstraintSense, LpProblem};
use optim::sparse::Triplets;

/// A transportation-style LP: `nsrc` demand rows, `ndst` capacity rows.
fn transportation_lp(nsrc: usize, ndst: usize) -> LpProblem {
    let mut lp = LpProblem::new();
    let mut vars = vec![vec![0usize; ndst]; nsrc];
    for (i, row) in vars.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = lp.add_var(1.0 + ((i * 31 + j * 17) % 7) as f64);
        }
    }
    for (i, row) in vars.iter().enumerate() {
        let terms: Vec<(usize, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
        lp.add_row(ConstraintSense::Ge, 1.0 + (i % 3) as f64, &terms);
    }
    for j in 0..ndst {
        let terms: Vec<(usize, f64)> = (0..nsrc).map(|i| (vars[i][j], 1.0)).collect();
        lp.add_row(ConstraintSense::Le, 2.0 * nsrc as f64 / ndst as f64, &terms);
    }
    lp
}

/// Lower triangle of a 2-D grid Laplacian (+4I), `side²` unknowns.
fn grid_matrix(side: usize) -> optim::sparse::CscMatrix {
    let n = side * side;
    let mut t = Triplets::new(n, n);
    let idx = |r: usize, c: usize| r * side + c;
    for r in 0..side {
        for c in 0..side {
            t.push(idx(r, c), idx(r, c), 8.0);
            if r + 1 < side {
                t.push(idx(r + 1, c), idx(r, c), -1.0);
            }
            if c + 1 < side {
                t.push(idx(r, c + 1), idx(r, c), -1.0);
            }
        }
    }
    t.to_csc()
}

fn bench_ldl(c: &mut Criterion) {
    let mut group = c.benchmark_group("ldl_factor");
    group.sample_size(10);
    for side in [16usize, 32] {
        let a = grid_matrix(side);
        let perm = min_degree_ordering(&a);
        let sym = LdlSymbolic::new(&a, Some(perm));
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &side, |b, _| {
            b.iter(|| sym.factor(&a).unwrap());
        });
    }
    group.finish();
}

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_degree_ordering");
    group.sample_size(10);
    for side in [16usize, 32] {
        let a = grid_matrix(side);
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &side, |b, _| {
            b.iter(|| min_degree_ordering(&a));
        });
    }
    group.finish();
}

fn bench_ipm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipm_transportation");
    group.sample_size(10);
    for (nsrc, ndst) in [(15usize, 15usize), (40, 15), (100, 15)] {
        let lp = transportation_lp(nsrc, ndst);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nsrc}x{ndst}")),
            &lp,
            |b, lp| {
                b.iter(|| lp.solve().unwrap());
            },
        );
    }
    group.finish();
}

fn bench_simplex_vs_ipm(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_vs_ipm_10x10");
    group.sample_size(10);
    let lp = transportation_lp(10, 10);
    group.bench_function("ipm", |b| b.iter(|| lp.solve().unwrap()));
    group.bench_function("simplex", |b| b.iter(|| lp.solve_simplex().unwrap()));
    group.finish();
}

criterion_group!(
    benches,
    bench_ldl,
    bench_ordering,
    bench_ipm,
    bench_simplex_vs_ipm
);
criterion_main!(benches);
