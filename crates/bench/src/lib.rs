//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (see DESIGN.md's experiment index) and accepts the same
//! flags:
//!
//! ```text
//! --users N     number of users (default per figure)
//! --slots N     number of time slots (default per figure)
//! --reps N      repetitions per point (default 5, as in the paper)
//! --seed N      base RNG seed
//! --threads N   sweep points solved concurrently (default: all cores)
//! --json PATH   also write the raw series as JSON
//! ```
//!
//! Sweep points are independent scenarios (each seeds its own RNG), so the
//! figure binaries fan them out with [`parallel_map`]; results are
//! identical to a sequential sweep, point order included.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parsed command-line flags (`--key value` pairs only).
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `std::env::args`, ignoring the binary name.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on a flag without a value.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// Parses an explicit argument list.
    ///
    /// # Panics
    ///
    /// Panics on a dangling flag or a non-flag token.
    pub fn from_args(args: &[String]) -> Self {
        let mut values = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("unexpected argument {key:?}; flags are --key value"));
            let value = it
                .next()
                .unwrap_or_else(|| panic!("flag --{key} needs a value"));
            values.insert(key.to_string(), value.clone());
        }
        Flags { values }
    }

    /// A `usize` flag with default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer")))
            .unwrap_or(default)
    }

    /// A `u64` flag with default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer")))
            .unwrap_or(default)
    }

    /// An optional string flag.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }
}

/// Number of worker threads to default a sweep to: every available core.
///
/// Note that [`sim::run_scenario`] already fans a scenario's *repetitions*
/// across threads, so a sweep running `threads` points concurrently peaks
/// at `threads × repetitions` OS threads — each solving a small
/// independent problem, which the scheduler handles fine at figure scale.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads, pulling
/// work from a shared atomic queue (long points don't straggle behind a
/// static partition). Results come back in input order, so a parallel
/// sweep emits exactly the series a sequential one would.
///
/// With `threads <= 1` (or a single item) the map runs inline on the
/// calling thread.
///
/// # Panics
///
/// A panic in `f` propagates to the caller once the scope joins — the
/// figure binaries treat a failed sweep point as fatal anyway.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let cells: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *cells[i].lock().expect("result cell poisoned") = Some(r);
            });
        }
    });
    cells
        .into_iter()
        .map(|c| {
            c.into_inner()
                .expect("result cell poisoned")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

/// Writes `content` to `path` if `path` is `Some`, creating parent
/// directories; logs the destination.
///
/// # Panics
///
/// Panics on I/O failure (acceptable in an experiment binary).
pub fn maybe_write(path: Option<&str>, content: &str) {
    if let Some(p) = path {
        if let Some(parent) = std::path::Path::new(p).parent() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
        std::fs::write(p, content).expect("write output file");
        eprintln!("wrote {p}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(s: &[&str]) -> Flags {
        Flags::from_args(&s.iter().map(|v| v.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_key_value_pairs() {
        let f = flags(&["--users", "40", "--json", "/tmp/x.json"]);
        assert_eq!(f.usize("users", 10), 40);
        assert_eq!(f.usize("slots", 30), 30);
        assert_eq!(f.str("json"), Some("/tmp/x.json"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, 8, |&v| 2 * v);
        assert_eq!(doubled, items.iter().map(|v| 2 * v).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_more_threads_than_items() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&v| v + 1), vec![2, 3, 4]);
    }

    #[test]
    fn parallel_map_single_thread_runs_inline() {
        let items = vec![5, 6];
        assert_eq!(parallel_map(&items, 1, |&v| v * v), vec![25, 36]);
        assert_eq!(parallel_map(&items, 0, |&v| v * v), vec![25, 36]);
    }

    #[test]
    fn parallel_map_empty_input() {
        let items: Vec<u8> = Vec::new();
        assert!(parallel_map(&items, 4, |&v| v).is_empty());
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn dangling_flag_panics() {
        let _ = flags(&["--users"]);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let f = flags(&["--users", "many"]);
        let _ = f.usize("users", 1);
    }
}
