//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (see DESIGN.md's experiment index) and accepts the same
//! flags:
//!
//! ```text
//! --users N    number of users (default per figure)
//! --slots N    number of time slots (default per figure)
//! --reps N     repetitions per point (default 5, as in the paper)
//! --seed N     base RNG seed
//! --json PATH  also write the raw series as JSON
//! ```

use std::collections::HashMap;

/// Parsed command-line flags (`--key value` pairs only).
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `std::env::args`, ignoring the binary name.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on a flag without a value.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// Parses an explicit argument list.
    ///
    /// # Panics
    ///
    /// Panics on a dangling flag or a non-flag token.
    pub fn from_args(args: &[String]) -> Self {
        let mut values = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("unexpected argument {key:?}; flags are --key value"));
            let value = it
                .next()
                .unwrap_or_else(|| panic!("flag --{key} needs a value"));
            values.insert(key.to_string(), value.clone());
        }
        Flags { values }
    }

    /// A `usize` flag with default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer")))
            .unwrap_or(default)
    }

    /// A `u64` flag with default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer")))
            .unwrap_or(default)
    }

    /// An optional string flag.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }
}

/// Writes `content` to `path` if `path` is `Some`, creating parent
/// directories; logs the destination.
///
/// # Panics
///
/// Panics on I/O failure (acceptable in an experiment binary).
pub fn maybe_write(path: Option<&str>, content: &str) {
    if let Some(p) = path {
        if let Some(parent) = std::path::Path::new(p).parent() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
        std::fs::write(p, content).expect("write output file");
        eprintln!("wrote {p}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(s: &[&str]) -> Flags {
        Flags::from_args(&s.iter().map(|v| v.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_key_value_pairs() {
        let f = flags(&["--users", "40", "--json", "/tmp/x.json"]);
        assert_eq!(f.usize("users", 10), 40);
        assert_eq!(f.usize("slots", 30), 30);
        assert_eq!(f.str("json"), Some("/tmp/x.json"));
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn dangling_flag_panics() {
        let _ = flags(&["--users"]);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let f = flags(&["--users", "many"]);
        let _ = f.usize("users", 1);
    }
}
