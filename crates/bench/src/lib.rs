//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (see DESIGN.md's experiment index) and accepts the same
//! flags:
//!
//! ```text
//! --users N              number of users (default per figure)
//! --slots N              number of time slots (default per figure)
//! --reps N               repetitions per point (default 5, as in the paper)
//! --seed N               base RNG seed
//! --threads N            sweep points solved concurrently (default: all cores)
//! --json PATH            also write the raw series as JSON
//! --resume PATH          crash-safe sweep checkpoint (created if absent,
//!                        completed points skipped if present)
//! --slot-deadline-ms MS  per-slot wall-clock budget for the online solves
//! --shards LIST          user-shard counts for the sharded solver
//!                        (comma-separated, e.g. 1,4,16)
//! ```
//!
//! Sweep points are independent scenarios (each seeds its own RNG), so the
//! figure binaries fan them out with [`parallel_map`]; results are
//! identical to a sequential sweep, point order included. With `--resume`
//! the fan-out goes through [`checkpointed_map`], which appends each
//! completed point to an fsync'd JSONL checkpoint (full-file atomic
//! rewrite: tmp file + rename), so a killed sweep restarts where it left
//! off and reproduces the uninterrupted output bit for bit. (Checkpointed
//! points always replay exactly; a point *re-run* under a wall-clock
//! deadline can differ, since where the deadline fires is
//! timing-dependent.)

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Parsed command-line flags (`--key value` pairs only).
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `std::env::args`, ignoring the binary name.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on a flag without a value.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// Parses an explicit argument list. A flag followed by another flag
    /// (or by nothing) is a bare switch and stores `"true"` — so
    /// `--template` and `--template true` are equivalent (see
    /// [`Flags::bool`]).
    ///
    /// # Panics
    ///
    /// Panics on a non-flag token.
    pub fn from_args(args: &[String]) -> Self {
        let mut values = HashMap::new();
        let mut it = args.iter().peekable();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("unexpected argument {key:?}; flags are --key value"));
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().cloned().expect("peeked"),
                _ => "true".to_string(),
            };
            values.insert(key.to_string(), value);
        }
        Flags { values }
    }

    /// A `usize` flag with default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// A `u64` flag with default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// An `f64` flag with default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.opt_f64(key).unwrap_or(default)
    }

    /// An optional `f64` flag (`None` when absent).
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn opt_f64(&self, key: &str) -> Option<f64> {
        self.values.get(key).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{key} expects a number"))
        })
    }

    /// A boolean switch: `false` when absent, `true` when given bare
    /// (`--template`) or as `--template true`/`1`; `--template false`/`0`
    /// turns it back off.
    ///
    /// # Panics
    ///
    /// Panics if the value is not one of `true`/`false`/`1`/`0`.
    pub fn bool(&self, key: &str) -> bool {
        match self.values.get(key).map(String::as_str) {
            None => false,
            Some("true") | Some("1") => true,
            Some("false") | Some("0") => false,
            Some(_) => panic!("--{key} expects true or false"),
        }
    }

    /// A comma-separated `usize` list flag with default (e.g.
    /// `--shards 1,4,16`).
    ///
    /// # Panics
    ///
    /// Panics if any element does not parse or the list is empty.
    pub fn usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.values.get(key) {
            None => default.to_vec(),
            Some(v) => {
                let list: Vec<usize> = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("--{key} expects comma-separated integers"))
                    })
                    .collect();
                assert!(!list.is_empty(), "--{key} expects at least one value");
                list
            }
        }
    }

    /// An optional string flag.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }
}

/// Number of worker threads to default a sweep to: every available core.
///
/// Oversubscription is prevented one layer down: the sweep's point fan-out
/// and [`sim::run_scenario`]'s repetition fan-out both lease workers from
/// the process-global [`optim::parallel::WorkerBudget`], so whichever layer
/// starts first claims the spare cores and the nested layers run inline —
/// the process never has more runnable workers than cores, no matter how
/// `threads × repetitions` multiplies out.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Maps `f` over `items` on scoped worker threads (at most `threads`,
/// further capped by the process-global [`optim::parallel::WorkerBudget`]
/// so nested fan-outs never oversubscribe cores), pulling work from a
/// shared atomic queue (long points don't straggle behind a static
/// partition), and *isolating* each point: a panic inside `f` is caught and
/// returned as that point's `Err` while the other workers keep draining the
/// queue. Results come back in input order.
///
/// With `threads <= 1` (or a single item) the map runs inline on the
/// calling thread — with the same per-point isolation.
pub fn try_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    optim::parallel::try_parallel_map_budgeted(
        items,
        threads,
        optim::parallel::WorkerBudget::global(),
        f,
    )
}

/// [`try_parallel_map`] for sweeps where a failed point is fatal: the whole
/// sweep still drains (so the failure report covers every point), then the
/// first failure panics with its point index and message.
///
/// # Panics
///
/// Panics when any `f` invocation panicked.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map(items, threads, f)
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|e| panic!("sweep point {i} failed: {e}")))
        .collect()
}

/// Writes `content` to `path` atomically: parent directories are created,
/// the bytes go to a sibling `.tmp` file which is fsync'd and then renamed
/// over `path`, so a crash at any moment leaves either the old file or the
/// new one — never a torn half-write. The parent directory is fsync'd
/// best-effort to persist the rename itself.
///
/// # Errors
///
/// Returns the underlying I/O error (create, write, sync, or rename).
pub fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    use std::io::Write;
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = parent {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut fh = std::fs::File::create(&tmp)?;
        fh.write_all(content.as_bytes())?;
        fh.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = parent {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Writes `content` to `path` if `path` is `Some`, atomically (see
/// [`write_atomic`]); logs the destination. On I/O failure the process
/// exits with a message naming the path — no panic backtrace, the sweep
/// data printed so far is still on stdout.
pub fn maybe_write(path: Option<&str>, content: &str) {
    if let Some(p) = path {
        if let Err(err) = write_atomic(Path::new(p), content) {
            eprintln!("error: failed to write {p}: {err}");
            std::process::exit(1);
        }
        eprintln!("wrote {p}");
    }
}

/// Stable tag for an optional per-slot deadline, used in sweep labels so a
/// checkpoint written with one deadline is not resumed under another.
pub fn deadline_tag(ms: Option<f64>) -> String {
    ms.map_or_else(|| "none".to_string(), |v| v.to_string())
}

/// First line of a sweep checkpoint: identifies the sweep and its size so a
/// resume against the wrong figure or the wrong parameters fails loudly
/// instead of splicing foreign points into the series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct CheckpointHeader {
    /// Sweep label (figure name + the parameters that shape the point list).
    sweep: String,
    /// Number of sweep points.
    points: usize,
}

/// Parses checkpoint text: a header line, then one `[index, result]` record
/// line per completed point. Later records for the same index win. Empty
/// text is a fresh (zero-point) checkpoint.
fn parse_checkpoint<R>(text: &str, label: &str, points: usize) -> Result<Vec<Option<R>>, String>
where
    R: Deserialize,
{
    let mut done: Vec<Option<R>> = (0..points).map(|_| None).collect();
    let mut lines = text.lines().enumerate();
    let Some((_, header_line)) = lines.next() else {
        return Ok(done);
    };
    let header: CheckpointHeader =
        serde_json::from_str(header_line).map_err(|e| format!("line 1: bad header: {e}"))?;
    let expected = CheckpointHeader {
        sweep: label.to_string(),
        points,
    };
    if header != expected {
        return Err(format!(
            "written by sweep {:?} with {} points, but this run is {:?} with {} points \
             — delete it or pass a different --resume path",
            header.sweep, header.points, expected.sweep, expected.points
        ));
    }
    for (lineno, line) in lines {
        let (i, r): (usize, R) = serde_json::from_str(line)
            .map_err(|e| format!("line {}: bad record: {e}", lineno + 1))?;
        if i >= points {
            return Err(format!(
                "line {}: point index {i} out of range for {points} points",
                lineno + 1
            ));
        }
        done[i] = Some(r);
    }
    Ok(done)
}

/// Renders the checkpoint for the completed subset of `done`. Records are
/// emitted in index order, so the file a resumed sweep ends with is byte
/// for byte the file an uninterrupted sweep would have written.
fn render_checkpoint<R>(label: &str, done: &[Option<R>]) -> String
where
    R: Serialize,
{
    let header = CheckpointHeader {
        sweep: label.to_string(),
        points: done.len(),
    };
    let mut out = serde_json::to_string(&header).expect("serialize checkpoint header");
    out.push('\n');
    for (i, r) in done.iter().enumerate() {
        if let Some(r) = r {
            out.push_str(&serde_json::to_string(&(i, r)).expect("serialize checkpoint record"));
            out.push('\n');
        }
    }
    out
}

/// [`parallel_map`] with a crash-safe checkpoint. With `checkpoint = None`
/// this *is* [`parallel_map`]. With a path, completed points are loaded
/// from the checkpoint and skipped, pending points run through the
/// panic-isolated map, and after every completion the checkpoint is
/// rewritten atomically (see [`write_atomic`]) with all results so far —
/// kill the process at any moment and a rerun with the same flags resumes
/// where it left off and produces identical output.
///
/// `label` should encode the sweep identity (figure name plus the
/// parameters that shape the point list); a checkpoint written under a
/// different label or point count is rejected.
///
/// # Panics
///
/// Panics if any point failed (after the rest of the sweep drained —
/// completed points are already in the checkpoint, so the rerun only
/// retries the failures).
///
/// Exits the process on an unreadable, corrupt, or mismatched checkpoint,
/// or on checkpoint write failure.
pub fn checkpointed_map<T, R, F>(
    label: &str,
    items: &[T],
    threads: usize,
    checkpoint: Option<&str>,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send + Clone + Serialize + Deserialize,
    F: Fn(&T) -> R + Sync,
{
    let Some(path) = checkpoint else {
        return parallel_map(items, threads, f);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("error: failed to read checkpoint {path}: {e}");
            std::process::exit(1);
        }
    };
    let done: Vec<Option<R>> = match parse_checkpoint(&text, label, items.len()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: checkpoint {path}: {e}");
            std::process::exit(1);
        }
    };
    let pending: Vec<usize> = (0..items.len()).filter(|&i| done[i].is_none()).collect();
    let completed = items.len() - pending.len();
    if completed > 0 {
        eprintln!(
            "resuming from {path}: {completed}/{} points already done",
            items.len()
        );
    }
    let state = Mutex::new(done);
    let results = try_parallel_map(&pending, threads, |&i| {
        let r = f(&items[i]);
        // Record + rewrite under one lock so a later write can never clobber
        // the file with a stale snapshot missing an earlier point.
        let mut slots = state.lock().expect("checkpoint state poisoned");
        slots[i] = Some(r.clone());
        let content = render_checkpoint(label, &slots);
        if let Err(err) = write_atomic(Path::new(path), &content) {
            eprintln!("error: failed to write checkpoint {path}: {err}");
            std::process::exit(1);
        }
        drop(slots);
        r
    });
    let failures: Vec<String> = pending
        .iter()
        .zip(results)
        .filter_map(|(&i, r)| r.err().map(|e| format!("point {i}: {e}")))
        .collect();
    assert!(
        failures.is_empty(),
        "{} sweep point(s) failed (completed points are checkpointed in {path}; \
         rerun with the same flags to retry only the failures):\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    state
        .into_inner()
        .expect("checkpoint state poisoned")
        .into_iter()
        .map(|o| o.expect("every point completed or the map panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn flags(s: &[&str]) -> Flags {
        Flags::from_args(&s.iter().map(|v| v.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_key_value_pairs() {
        let f = flags(&["--users", "40", "--json", "/tmp/x.json"]);
        assert_eq!(f.usize("users", 10), 40);
        assert_eq!(f.usize("slots", 30), 30);
        assert_eq!(f.str("json"), Some("/tmp/x.json"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, 8, |&v| 2 * v);
        assert_eq!(doubled, items.iter().map(|v| 2 * v).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_more_threads_than_items() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&v| v + 1), vec![2, 3, 4]);
    }

    #[test]
    fn parallel_map_single_thread_runs_inline() {
        let items = vec![5, 6];
        assert_eq!(parallel_map(&items, 1, |&v| v * v), vec![25, 36]);
        assert_eq!(parallel_map(&items, 0, |&v| v * v), vec![25, 36]);
    }

    #[test]
    fn parallel_map_empty_input() {
        let items: Vec<u8> = Vec::new();
        assert!(parallel_map(&items, 4, |&v| v).is_empty());
    }

    #[test]
    fn try_parallel_map_isolates_a_panicking_point() {
        let items: Vec<usize> = (0..16).collect();
        let results = try_parallel_map(&items, 4, |&v| {
            assert!(v != 5, "boom at five");
            v * 10
        });
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                let e = r.as_ref().unwrap_err();
                assert!(e.contains("boom at five"), "unexpected error: {e}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 10, "point {i} should still run");
            }
        }
    }

    #[test]
    fn write_atomic_creates_parents_and_leaves_no_tmp() {
        let dir = test_dir("write_atomic");
        let path = dir.join("nested").join("out.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("out.json")]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_round_trips_and_rejects_mismatches() {
        let done = vec![Some(1.5_f64), None, Some(2.5_f64)];
        let text = render_checkpoint("fig9-u4-s2", &done);
        let back: Vec<Option<f64>> = parse_checkpoint(&text, "fig9-u4-s2", 3).unwrap();
        assert_eq!(back, done);
        assert_eq!(render_checkpoint("fig9-u4-s2", &back), text);

        let wrong_label = parse_checkpoint::<f64>(&text, "fig9-u8-s2", 3).unwrap_err();
        assert!(wrong_label.contains("fig9-u4-s2"), "{wrong_label}");
        let wrong_points = parse_checkpoint::<f64>(&text, "fig9-u4-s2", 4).unwrap_err();
        assert!(wrong_points.contains("3 points"), "{wrong_points}");
        let corrupt = format!("{text}not json\n");
        let err = parse_checkpoint::<f64>(&corrupt, "fig9-u4-s2", 3).unwrap_err();
        assert!(err.contains("line 4"), "{err}");
        let empty: Vec<Option<f64>> = parse_checkpoint("", "fig9-u4-s2", 3).unwrap();
        assert_eq!(empty, vec![None, None, None]);
    }

    #[test]
    fn checkpointed_map_resumes_without_recomputing() {
        let dir = test_dir("checkpointed_map");
        let ckpt = dir.join("sweep.jsonl");
        let ckpt = ckpt.to_str().unwrap();
        let items: Vec<usize> = (0..6).collect();
        let calls = AtomicUsize::new(0);
        let f = |&v: &usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            (v * v) as f64
        };

        let first = checkpointed_map("unit-sweep", &items, 3, Some(ckpt), f);
        assert_eq!(first, vec![0.0, 1.0, 4.0, 9.0, 16.0, 25.0]);
        assert_eq!(calls.swap(0, Ordering::Relaxed), 6);
        let full = std::fs::read_to_string(ckpt).unwrap();
        assert_eq!(full.lines().count(), 7, "header + one record per point");

        // A finished checkpoint resumes with zero work.
        let second = checkpointed_map("unit-sweep", &items, 3, Some(ckpt), f);
        assert_eq!(second, first);
        assert_eq!(calls.load(Ordering::Relaxed), 0);

        // Drop the last two records (a mid-sweep kill) and resume: only the
        // missing points rerun, and the file comes back byte-identical.
        let truncated: String = full.lines().take(5).map(|l| format!("{l}\n")).collect();
        std::fs::write(ckpt, &truncated).unwrap();
        let third = checkpointed_map("unit-sweep", &items, 3, Some(ckpt), f);
        assert_eq!(third, first);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(std::fs::read_to_string(ckpt).unwrap(), full);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn test_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bench-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bare_switches_and_lists_parse() {
        let f = flags(&["--template", "--shards", "1,4,16", "--users", "40"]);
        assert!(f.bool("template"));
        assert!(!f.bool("resume"));
        assert_eq!(f.usize_list("shards", &[1]), vec![1, 4, 16]);
        assert_eq!(f.usize_list("slots", &[2, 3]), vec![2, 3]);
        assert_eq!(f.usize("users", 10), 40);
        // A trailing bare flag is a switch too.
        let tail = flags(&["--users", "7", "--template"]);
        assert!(tail.bool("template"));
        assert_eq!(tail.usize("users", 10), 7);
    }

    #[test]
    #[should_panic(expected = "expects true or false")]
    fn bad_bool_panics() {
        let f = flags(&["--template", "maybe"]);
        let _ = f.bool("template");
    }

    #[test]
    #[should_panic(expected = "comma-separated integers")]
    fn bad_list_panics() {
        let f = flags(&["--shards", "1,two"]);
        let _ = f.usize_list("shards", &[1]);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let f = flags(&["--users", "many"]);
        let _ = f.usize("users", 1);
    }
}
