//! Overload sweep: cost vs shed fraction under a flash crowd of increasing
//! intensity (not a paper figure — the paper never drives demand past
//! provisioned capacity; this measures the PR-8 sentinel + minimal-shedding
//! rung against the shedding-LP lower bound).
//!
//! ```text
//! fig_overload [--users N] [--slots N] [--surges-x10 10,15,20,25,30]
//!              [--seed N] [--threads N] [--resume PATH] [--json PATH]
//! ```
//!
//! Each sweep point builds one seeded flash-crowd scenario (random-walk
//! mobility reshaped toward one station, demand surged over the window —
//! see [`sim::HostilePlan`]), runs both `online-approx` (explicit
//! capacity) and `online-sharded` over it, and then *independently*
//! recomputes every overloaded slot's shedding plan to compare the shed
//! workload and penalty against the LP relaxation's lower bound. The
//! sweep's headline acceptance numbers: zero carry-forward slots at any
//! surge, and penalty within 1.1× of the LP bound at the acceptance point
//! (≥ 2× aggregate capacity). Mild surges shed so few users per slot that
//! the one-boundary-user rounding overhead dominates the ratio — still
//! within the guarantee, but above 1.1. The JSON report defaults to
//! `results/BENCH_PR8.json`.

use bench::{checkpointed_map, maybe_write, Flags};
use edgealloc::algorithms::SlotInput;
use edgealloc::prelude::*;
use edgealloc::shed::{plan_shedding, ShedConfig};
use optim::budget::SolveBudget;
use serde::{Deserialize, Serialize};
use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};
use sim::{HostileKind, HostilePlan};
use std::time::Instant;

/// One (surge, algorithm) cell of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OverloadPoint {
    surge: f64,
    algorithm: String,
    users: usize,
    slots: usize,
    seed: u64,
    wall_clock_ms: f64,
    /// Total cost of the trajectory (edge-side; shed users are priced by
    /// the shed penalty, reported separately).
    cost: f64,
    /// Slots the sentinel classified Overloaded / Tight.
    overloaded_slots: usize,
    tight_slots: usize,
    /// Slot-records summed: users deferred, users sent to the overflow
    /// tier, and the total deferral penalty.
    shed_users: usize,
    overflowed_users: usize,
    shed_penalty: f64,
    /// Carry-forward slots (the acceptance gate requires 0: overload must
    /// be absorbed by shedding, never by aborting the slot).
    carry_forward_slots: usize,
    /// Independently recomputed per-slot shedding plans, summed over the
    /// overloaded slots: workload actually shed vs the minimum required,
    /// and greedy penalty vs the LP relaxation's lower bound.
    shed_workload: f64,
    required_shed: f64,
    penalty_lower_bound: f64,
    /// `shed_penalty / penalty_lower_bound` (1.0 = the greedy plan is
    /// LP-optimal; the acceptance bar is ≤ 1.1).
    penalty_ratio: f64,
}

fn flash_scenario(users: usize, slots: usize, surge: f64, seed: u64) -> Scenario {
    let window = slots / 2;
    Scenario {
        name: format!("overload-x{surge:.1}"),
        mobility: MobilityKind::RandomWalk { num_users: users },
        num_slots: slots,
        repetitions: 1,
        seed,
        hostile: HostilePlan {
            seed,
            events: vec![HostileKind::FlashCrowd {
                station: 0,
                start: slots / 4,
                duration: window,
                attraction: 0.8,
                surge,
            }],
        },
        ..Scenario::default()
    }
}

/// Recomputes the shedding plan of every overloaded slot (pure and
/// deterministic: same inputs, same plan the algorithms saw) and sums the
/// workload/penalty aggregates.
fn recompute_shed_bounds(inst: &Instance) -> (f64, f64, f64, f64) {
    let cfg = ShedConfig::default();
    let budget = SolveBudget::unlimited();
    let (mut shed_w, mut required, mut penalty, mut bound) = (0.0, 0.0, 0.0, 0.0);
    for t in 0..inst.num_slots() {
        let scaled = inst.scaled_slot(t);
        let input = match &scaled {
            Some(s) => s.as_input(inst, t),
            None => SlotInput::from_instance(inst, t),
        };
        let Ok(decision) = plan_shedding(&input, &cfg, &budget) else {
            continue;
        };
        if decision.is_empty() {
            continue;
        }
        shed_w += decision.shed_workload;
        required += decision.required_shed;
        penalty += decision.penalty;
        bound += decision.penalty_lower_bound;
    }
    (shed_w, required, penalty, bound)
}

fn run_point(users: usize, slots: usize, surge: f64, seed: u64) -> Vec<OverloadPoint> {
    let scenario = flash_scenario(users, slots, surge, seed);
    let inst = sim::runner::build_instance(&scenario, 0).expect("instance builds");
    let (shed_workload, required_shed, _greedy_penalty, penalty_lower_bound) =
        recompute_shed_bounds(&inst);
    let kinds = [
        ("online-approx", AlgorithmKind::ApproxExplicit { eps: 0.5 }),
        (
            "online-sharded",
            AlgorithmKind::Sharded {
                eps: 0.5,
                shards: 4,
            },
        ),
    ];
    kinds
        .iter()
        .map(|(label, kind)| {
            let mut alg = kind.build();
            let t0 = Instant::now();
            let traj = run_online(&inst, alg.as_mut()).expect("horizon");
            let wall_clock_ms = t0.elapsed().as_secs_f64() * 1e3;
            let cost = evaluate_trajectory(&inst, &traj.allocations).total();
            let summary = traj.health_summary();
            let penalty_ratio = if penalty_lower_bound > 0.0 {
                summary.shed_penalty / penalty_lower_bound
            } else {
                1.0
            };
            OverloadPoint {
                surge,
                algorithm: label.to_string(),
                users,
                slots,
                seed,
                wall_clock_ms,
                cost,
                overloaded_slots: summary.overloaded_slots,
                tight_slots: summary.tight_slots,
                shed_users: summary.shed_users,
                overflowed_users: summary.overflowed_users,
                shed_penalty: summary.shed_penalty,
                carry_forward_slots: summary.rungs.carry_forward,
                shed_workload,
                required_shed,
                penalty_lower_bound,
                penalty_ratio,
            }
        })
        .collect()
}

fn main() {
    let flags = Flags::from_env();
    let users = flags.usize("users", 30);
    let slots = flags.usize("slots", 24);
    // Surge factors ×10 (integer flag plumbing): 10 = no surge baseline.
    let surges_x10 = flags.usize_list("surges-x10", &[10, 15, 20, 25, 30]);
    let seed = flags.u64("seed", 8);
    let threads = flags.usize("threads", bench::default_threads());

    let label = format!("fig-overload-u{users}-t{slots}-s{surges_x10:?}-seed{seed}");
    let results: Vec<Vec<OverloadPoint>> =
        checkpointed_map(&label, &surges_x10, threads, flags.str("resume"), |&sx10| {
            let surge = sx10 as f64 / 10.0;
            eprintln!("running surge x{surge:.1} ...");
            let pts = run_point(users, slots, surge, seed);
            for p in &pts {
                eprintln!(
                    "  x{surge:.1} {}: cost {:.1}, {} overloaded slots, {} shed users, \
                     penalty ratio {:.3}",
                    p.algorithm, p.cost, p.overloaded_slots, p.shed_users, p.penalty_ratio
                );
            }
            pts
        });
    let points: Vec<OverloadPoint> = results.into_iter().flatten().collect();

    println!(
        "{:>6} {:>16} {:>12} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "surge", "algorithm", "cost", "overload", "shed", "penalty", "ratio", "cf"
    );
    for p in &points {
        println!(
            "{:>6.1} {:>16} {:>12.1} {:>10} {:>10} {:>12.1} {:>10.3} {:>8}",
            p.surge,
            p.algorithm,
            p.cost,
            p.overloaded_slots,
            p.shed_users,
            p.shed_penalty,
            p.penalty_ratio,
            p.carry_forward_slots
        );
    }

    #[derive(Serialize)]
    struct Report {
        what: String,
        machine: String,
        points: Vec<OverloadPoint>,
    }
    let report = Report {
        what: "Overload survival: cost vs shed fraction under a flash crowd of increasing \
               surge (x1.0 = benign baseline). online-approx (explicit capacity) and \
               online-sharded (4 shards) with the feasibility sentinel + minimal-shedding \
               rung; penalty_ratio compares the recorded shed penalty against the \
               shedding-LP relaxation's lower bound (acceptance bar <= 1.1 at >= 2x \
               aggregate capacity; mild surges shed so few users that the \
               one-boundary-user rounding overhead dominates the ratio), \
               carry_forward_slots must be 0. Command: fig_overload --users .. --slots .. \
               --surges-x10 .. --seed .."
            .to_string(),
        machine: format!(
            "{}-core container, release build, solver threads=1",
            bench::default_threads()
        ),
        points,
    };
    let json_path = flags.str("json").unwrap_or("results/BENCH_PR8.json");
    maybe_write(
        Some(json_path),
        &serde_json::to_string_pretty(&report).expect("serialize report"),
    );
}
