//! Figure 4 — the impact of the regularization parameter `ε` (with
//! `ε₁ = ε₂ = ε`) and of the dynamic/static weight ratio `μ` on the
//! empirical competitive ratio, both swept over `10⁻³ … 10³`.
//!
//! Expected shape: the ε curve dips slightly and then rises to a stable
//! level; the μ curve is ≈1 for small μ (static cost negligible → per-slot
//! optimization is optimal) and stabilizes at a reasonably good ratio for
//! large μ.

use bench::{checkpointed_map, deadline_tag, maybe_write, Flags};
use sim::metrics::Series;
use sim::report::{series_json, series_table};
use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};

fn main() {
    let flags = Flags::from_env();
    let users = flags.usize("users", 24);
    let slots = flags.usize("slots", 18);
    let reps = flags.usize("reps", 3);
    let seed = flags.u64("seed", 2017);
    let threads = flags.usize("threads", bench::default_threads());
    let deadline = flags.opt_f64("slot-deadline-ms");
    let resume = flags.str("resume");
    let grid: Vec<f64> = (-3..=3).map(|e| 10f64.powi(e)).collect();
    let tag = format!(
        "u{users}-s{slots}-r{reps}-seed{seed}-dl{}",
        deadline_tag(deadline)
    );

    // ---- ε sweep ----  (its own checkpoint file: `<resume>.eps`)
    let mut eps_series = Series::new("online-approx");
    let eps_ckpt = resume.map(|p| format!("{p}.eps"));
    let eps_label = format!("fig4-eps-{tag}");
    let eps_outcomes = checkpointed_map(&eps_label, &grid, threads, eps_ckpt.as_deref(), |&eps| {
        let scenario = Scenario {
            name: format!("fig4-eps-{eps}"),
            mobility: MobilityKind::Taxi { num_users: users },
            num_slots: slots,
            algorithms: vec![AlgorithmKind::Approx { eps }],
            repetitions: reps,
            seed,
            slot_deadline_ms: deadline,
            ..Scenario::default()
        };
        eprintln!("running {} ...", scenario.name);
        sim::run_scenario(&scenario).expect("scenario")
    });
    for (&eps, outcome) in grid.iter().zip(&eps_outcomes) {
        eps_series.push_from(eps, &outcome.algorithms[0].ratios);
    }
    println!("Figure 4 (left) — competitive ratio vs ε (= ε₁ = ε₂)");
    println!("{}", series_table("epsilon", &[eps_series.clone()]));

    // ---- μ sweep ----  (its own checkpoint file: `<resume>.mu`)
    let mut mu_series = Series::new("online-approx");
    let mu_ckpt = resume.map(|p| format!("{p}.mu"));
    let mu_label = format!("fig4-mu-{tag}");
    let mu_outcomes = checkpointed_map(&mu_label, &grid, threads, mu_ckpt.as_deref(), |&mu| {
        let scenario = Scenario {
            name: format!("fig4-mu-{mu}"),
            mobility: MobilityKind::Taxi { num_users: users },
            num_slots: slots,
            dynamic_weight: mu,
            algorithms: vec![AlgorithmKind::Approx { eps: 0.5 }],
            repetitions: reps,
            seed,
            slot_deadline_ms: deadline,
            ..Scenario::default()
        };
        eprintln!("running {} ...", scenario.name);
        sim::run_scenario(&scenario).expect("scenario")
    });
    for (&mu, outcome) in grid.iter().zip(&mu_outcomes) {
        mu_series.push_from(mu, &outcome.algorithms[0].ratios);
    }
    println!("Figure 4 (right) — competitive ratio vs μ (dynamic/static weight)");
    println!("{}", series_table("mu", &[mu_series.clone()]));

    let mut json = series_json(&[eps_series]);
    json.push('\n');
    json.push_str(&series_json(&[mu_series]));
    maybe_write(flags.str("json"), &json);
}
