//! Scale sweep: sharded vs monolithic slot solves, J ∈ {1k, 10k, 100k} ×
//! S ∈ {1, 4, 16} (not a paper figure — the paper stops at 300 users on a
//! 512 GB server; this measures how the price-coordinated decomposition
//! extends the blocked-kernel scaling of `results/BENCH_PR4.json`).
//!
//! ```text
//! fig_scale [--users 1000,10000,100000] [--shards 1,4,16] [--slots N]
//!           [--seed N] [--threads N] [--resume PATH] [--json PATH]
//!           [--slot-deadline-ms MS] [--shard-faults SPEC]
//! ```
//!
//! Each sweep point runs `OnlineSharded` (blocked Schur kernel) over one
//! synthetic taxi horizon; `S = 1` exercises the monolithic fallback path,
//! so the S-axis is sharded-vs-monolithic on identical instances. Slots
//! default to 2 per horizon up to 10k users and 1 above (the big cells are
//! minutes per slot on one core); `--slots` overrides for all points.
//! `--resume` makes the sweep crash-safe (see [`bench::checkpointed_map`]);
//! the JSON report defaults to `results/BENCH_PR5.json`.
//!
//! `--shard-faults` injects deterministic shard-worker faults (panics,
//! stragglers, offer corruption) into every sweep point's coordinator —
//! spec format `panic=0.1,delay=0.2:120,corrupt=0.05,seed=7`, see
//! [`sim::ShardFaultPlan::from_spec`]. The spec and its seed are recorded
//! in the JSON report so chaos measurements stay reproducible.

use bench::{checkpointed_map, deadline_tag, maybe_write, Flags};
use edgealloc::prelude::*;
use optim::convex::SchurKernel;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use shard::OnlineSharded;
use sim::metrics::percentile;
use std::time::Instant;

/// One (J, S) cell of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScalePoint {
    users: usize,
    shards: usize,
    slots: usize,
    seed: u64,
    wall_clock_ms: f64,
    slot_ms_p50: f64,
    slot_ms_p95: f64,
    cost: f64,
    /// Slots the coordinator actually decomposed (0 when S = 1: the
    /// monolithic fallback decided every slot).
    sharded_slots: usize,
    coord_rounds: usize,
    newton_steps: usize,
    degraded_slots: usize,
    /// Peak pre-projection relative capacity violation across slots
    /// (`None` when no slot went through the coordinator).
    max_capacity_violation: Option<f64>,
    /// Worst certified relative duality gap across sharded slots.
    duality_gap: Option<f64>,
    /// Seed of the injected shard-fault rolls (0 when no faults were
    /// injected; absent in pre-chaos checkpoints).
    #[serde(default)]
    fault_seed: u64,
    /// Fault-tolerance telemetry (all zero on fault-free runs; absent in
    /// pre-chaos checkpoints).
    #[serde(default)]
    shard_retries: usize,
    #[serde(default)]
    stale_offers: usize,
    #[serde(default)]
    quarantined_offers: usize,
    #[serde(default)]
    breaker_trips: usize,
}

fn run_point(
    users: usize,
    shards: usize,
    slots: usize,
    seed: u64,
    deadline: Option<f64>,
    faults: &sim::ShardFaultPlan,
) -> ScalePoint {
    let net = mobility::rome_metro();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cfg = mobility::taxi::TaxiConfig {
        num_users: users,
        num_slots: slots,
        ..Default::default()
    };
    let mob = mobility::taxi::generate(&net, &cfg, &mut rng);
    let inst = Instance::synthetic(&net, mob, &mut rng);

    let mut alg = OnlineSharded::new(shards)
        .with_schur_kernel(SchurKernel::Blocked)
        .with_chaos(faults.to_chaos())
        .with_slot_deadline_ms(deadline);
    let t0 = Instant::now();
    let traj = run_online(&inst, &mut alg).expect("horizon");
    let wall_clock_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cost = evaluate_trajectory(&inst, &traj.allocations).total();
    let slot_ms: Vec<f64> = traj.health.iter().map(|h| h.wall_time_ms).collect();
    let summary = traj.health_summary();
    let duality_gap = traj
        .health
        .iter()
        .filter_map(|h| h.duality_gap)
        .fold(None, |acc: Option<f64>, g| {
            Some(acc.map_or(g, |a| a.max(g)))
        });
    ScalePoint {
        users,
        shards,
        slots,
        seed,
        wall_clock_ms,
        slot_ms_p50: percentile(&slot_ms, 50.0),
        slot_ms_p95: percentile(&slot_ms, 95.0),
        cost,
        sharded_slots: summary.sharded_slots,
        coord_rounds: summary.coord_rounds,
        newton_steps: summary.newton_steps,
        degraded_slots: summary.degraded_slots,
        max_capacity_violation: (summary.sharded_slots > 0)
            .then_some(summary.peak_capacity_violation),
        duality_gap,
        fault_seed: faults.seed,
        shard_retries: summary.shard_retries,
        stale_offers: summary.stale_offers,
        quarantined_offers: summary.quarantined_offers,
        breaker_trips: summary.breaker_trips,
    }
}

fn main() {
    let flags = Flags::from_env();
    let users = flags.usize_list("users", &[1000, 10_000, 100_000]);
    let shards = flags.usize_list("shards", &[1, 4, 16]);
    let slots_override = flags.usize("slots", 0);
    let seed = flags.u64("seed", 1);
    let threads = flags.usize("threads", bench::default_threads());
    let deadline = flags.opt_f64("slot-deadline-ms");
    let fault_spec = flags.str("shard-faults").map(str::to_string);
    let faults = fault_spec
        .as_deref()
        .map(|spec| {
            sim::ShardFaultPlan::from_spec(spec)
                .unwrap_or_else(|e| panic!("bad --shard-faults: {e}"))
        })
        .unwrap_or_default();

    let points: Vec<(usize, usize, usize)> = users
        .iter()
        .flat_map(|&j| {
            let slots = if slots_override > 0 {
                slots_override
            } else if j > 10_000 {
                1
            } else {
                2
            };
            shards.iter().map(move |&s| (j, s, slots))
        })
        .collect();
    // The fault spec is part of the checkpoint identity: resuming a chaos
    // sweep from fault-free points (or vice versa) would silently mix
    // distributions.
    let label = format!(
        "fig-scale-u{users:?}-s{shards:?}-t{slots_override}-seed{seed}-d{}-f{}",
        deadline_tag(deadline),
        fault_spec.as_deref().unwrap_or("none")
    );

    let results = checkpointed_map(
        &label,
        &points,
        threads,
        flags.str("resume"),
        |&(j, s, t)| {
            eprintln!("running J={j} S={s} T={t} ...");
            let p = run_point(j, s, t, seed, deadline, &faults);
            eprintln!(
                "  J={j} S={s}: {:.1} ms total, slot p50 {:.1} ms, {} rounds, \
             {} Newton steps, gap {:?}",
                p.wall_clock_ms, p.slot_ms_p50, p.coord_rounds, p.newton_steps, p.duality_gap
            );
            p
        },
    );

    println!(
        "{:>8} {:>6} {:>5} {:>14} {:>12} {:>8} {:>10}",
        "users", "shards", "slots", "wall_ms", "slot_p50_ms", "rounds", "newtons"
    );
    for p in &results {
        println!(
            "{:>8} {:>6} {:>5} {:>14.1} {:>12.1} {:>8} {:>10}",
            p.users,
            p.shards,
            p.slots,
            p.wall_clock_ms,
            p.slot_ms_p50,
            p.coord_rounds,
            p.newton_steps
        );
    }

    #[derive(Serialize)]
    struct Report {
        what: String,
        machine: String,
        /// The `--shard-faults` spec this sweep ran under (`None` =
        /// fault-free); the per-point `fault_seed` pins the rolls.
        shard_fault_spec: Option<String>,
        points: Vec<ScalePoint>,
    }
    let report = Report {
        what: "Sharded (price-coordinated dual decomposition) vs monolithic slot solves: \
               wall-clock over synthetic taxi horizons, J x S sweep, blocked Schur kernel. \
               S=1 is the monolithic fallback path on the same instance. \
               Command: fig_scale --users .. --shards .. --seed .."
            .to_string(),
        machine: format!(
            "{}-core container, release build, solver threads=1",
            bench::default_threads()
        ),
        shard_fault_spec: fault_spec,
        points: results,
    };
    let json_path = flags.str("json").unwrap_or("results/BENCH_PR5.json");
    maybe_write(
        Some(json_path),
        &serde_json::to_string_pretty(&report).expect("serialize report"),
    );
}
