//! CLI driver: run a scenario described by a JSON file (or the default
//! scenario) and print the ratio table.
//!
//! ```bash
//! # Print the default scenario as a JSON template:
//! cargo run --release -p bench --bin run_scenario -- --template > my.json
//! # Edit my.json, then:
//! cargo run --release -p bench --bin run_scenario -- --config my.json
//! ```
//!
//! Flags (standard `bench::Flags` spelling):
//!
//! ```text
//! --template             print the default scenario JSON and exit
//! --config FILE          scenario JSON (default: the built-in scenario)
//! --json OUT             also write the outcome as JSON
//! --slot-deadline-ms MS  override the scenario's per-slot budget
//! --shards N             add the sharded solver (online-sharded, N user
//!                        shards) to the scenario's algorithm roster
//! ```

use bench::Flags;
use sim::report::{outcome_json, ratio_table};
use sim::scenario::{AlgorithmKind, Scenario};

fn main() {
    let flags = Flags::from_env();

    if flags.bool("template") {
        println!(
            "{}",
            serde_json::to_string_pretty(&Scenario::default()).expect("serialize template")
        );
        return;
    }

    let mut scenario: Scenario = match flags.str("config") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad config {path}: {e}"))
        }
        None => Scenario::default(),
    };
    if let Some(ms) = flags.opt_f64("slot-deadline-ms") {
        scenario.slot_deadline_ms = Some(ms);
    }
    let shards = flags.usize("shards", 0);
    if shards > 0 {
        scenario
            .algorithms
            .push(AlgorithmKind::Sharded { eps: 0.5, shards });
    }

    eprintln!(
        "running scenario {:?}: {} users, {} slots, {} repetitions",
        scenario.name,
        scenario.mobility.num_users(),
        scenario.num_slots,
        scenario.repetitions
    );
    let outcome = sim::run_scenario(&scenario).expect("scenario failed");
    println!("{}", ratio_table(&outcome));
    bench::maybe_write(flags.str("json"), &outcome_json(&outcome));
}
