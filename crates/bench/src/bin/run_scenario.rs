//! CLI driver: run a scenario described by a JSON file (or the default
//! scenario) and print the ratio table.
//!
//! ```bash
//! # Print the default scenario as a JSON template:
//! cargo run --release -p bench --bin run_scenario -- --template > my.json
//! # Edit my.json, then:
//! cargo run --release -p bench --bin run_scenario -- --config my.json
//! ```
//!
//! Flags (standard `bench::Flags` spelling):
//!
//! ```text
//! --template             print the default scenario JSON and exit
//! --config FILE          scenario JSON (default: the built-in scenario)
//! --json OUT             also write the outcome as JSON
//! --slot-deadline-ms MS  override the scenario's per-slot budget
//! --shards N             add the sharded solver (online-sharded, N user
//!                        shards) to the scenario's algorithm roster
//! --shard-faults SPEC    inject shard-worker faults into the sharded
//!                        solver, e.g. panic=0.1,delay=0.2:120,corrupt=0.05,seed=7
//!                        (see sim::ShardFaultPlan::from_spec)
//! ```
//!
//! With an active shard-fault plan the `--json` payload is wrapped as
//! `{"shard_fault_spec", "shard_faults", "outcome"}` so the injected mix
//! and its seed travel with the numbers; otherwise the payload is the
//! bare outcome, as before.

use bench::Flags;
use sim::report::{outcome_json, ratio_table};
use sim::scenario::{AlgorithmKind, Scenario};
use sim::ShardFaultPlan;

fn main() {
    let flags = Flags::from_env();

    if flags.bool("template") {
        println!(
            "{}",
            serde_json::to_string_pretty(&Scenario::default()).expect("serialize template")
        );
        return;
    }

    let mut scenario: Scenario = match flags.str("config") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad config {path}: {e}"))
        }
        None => Scenario::default(),
    };
    if let Some(ms) = flags.opt_f64("slot-deadline-ms") {
        scenario.slot_deadline_ms = Some(ms);
    }
    let shards = flags.usize("shards", 0);
    if shards > 0 {
        scenario
            .algorithms
            .push(AlgorithmKind::Sharded { eps: 0.5, shards });
    }
    let fault_spec = flags.str("shard-faults").map(str::to_string);
    if let Some(spec) = fault_spec.as_deref() {
        scenario.shard_faults =
            ShardFaultPlan::from_spec(spec).unwrap_or_else(|e| panic!("bad --shard-faults: {e}"));
    }

    eprintln!(
        "running scenario {:?}: {} users, {} slots, {} repetitions",
        scenario.name,
        scenario.mobility.num_users(),
        scenario.num_slots,
        scenario.repetitions
    );
    if !scenario.shard_faults.is_empty() {
        eprintln!(
            "injecting shard faults (seed {}): {:?}",
            scenario.shard_faults.seed, scenario.shard_faults.faults
        );
    }
    let outcome = sim::run_scenario(&scenario).expect("scenario failed");
    println!("{}", ratio_table(&outcome));
    let payload = if scenario.shard_faults.is_empty() {
        outcome_json(&outcome)
    } else {
        // Wrap so the fault mix and its seed are recorded next to the
        // numbers they produced — a chaos result without its seed is not
        // reproducible.
        #[derive(serde::Serialize)]
        struct ChaosReport {
            shard_fault_spec: Option<String>,
            shard_faults: ShardFaultPlan,
            outcome: sim::ScenarioOutcome,
        }
        serde_json::to_string_pretty(&ChaosReport {
            shard_fault_spec: fault_spec.clone(),
            shard_faults: scenario.shard_faults.clone(),
            outcome: outcome.clone(),
        })
        .expect("serialize outcome")
    };
    bench::maybe_write(flags.str("json"), &payload);
}
