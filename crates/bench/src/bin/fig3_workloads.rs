//! Figure 3 — empirical competitive ratios under uniformly and normally
//! distributed user workloads (same setup as Figure 2 otherwise).
//!
//! Expected shape: online-approx stays near-optimal (≈1.1, slightly better
//! under uniform workloads) with up to ~70% improvement over greedy.

use bench::{checkpointed_map, deadline_tag, maybe_write, Flags};
use mobility::workload::WorkloadDist;
use sim::metrics::Series;
use sim::report::{series_json, series_table};
use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};

fn main() {
    let flags = Flags::from_env();
    let users = flags.usize("users", 30);
    let slots = flags.usize("slots", 24);
    let reps = flags.usize("reps", 3);
    let seed = flags.u64("seed", 2017);
    let threads = flags.usize("threads", bench::default_threads());
    let deadline = flags.opt_f64("slot-deadline-ms");
    let resume = flags.str("resume");

    let roster = vec![
        AlgorithmKind::PerfOpt,
        AlgorithmKind::OperOpt,
        AlgorithmKind::StatOpt,
        AlgorithmKind::Greedy,
        AlgorithmKind::Approx { eps: 0.5 },
    ];

    let mut all_json = String::new();
    for (dist_name, dist) in [
        ("uniform", WorkloadDist::default_uniform()),
        ("normal", WorkloadDist::default_normal()),
    ] {
        let mut series: Vec<Series> = roster.iter().map(|k| Series::new(k.label())).collect();
        let cases: Vec<(usize, usize)> = (15..21).enumerate().collect();
        // Each workload gets its own checkpoint file (suffix on the
        // --resume path) so the two sweeps never clobber one another.
        let label = format!(
            "fig3-{dist_name}-u{users}-s{slots}-r{reps}-seed{seed}-dl{}",
            deadline_tag(deadline)
        );
        let ckpt = resume.map(|p| format!("{p}.{dist_name}"));
        let outcomes =
            checkpointed_map(&label, &cases, threads, ckpt.as_deref(), |&(case, hour)| {
                let scenario = Scenario {
                    name: format!("fig3-{dist_name}-hour-{hour}"),
                    mobility: MobilityKind::Taxi { num_users: users },
                    num_slots: slots,
                    workload: dist,
                    algorithms: roster.clone(),
                    repetitions: reps,
                    seed: seed + 1000 * case as u64,
                    slot_deadline_ms: deadline,
                    ..Scenario::default()
                };
                eprintln!("running {} ...", scenario.name);
                sim::run_scenario(&scenario).expect("scenario")
            });
        for (&(_, hour), outcome) in cases.iter().zip(&outcomes) {
            for (s, alg) in series.iter_mut().zip(&outcome.algorithms) {
                s.push_from(hour as f64, &alg.ratios);
            }
        }
        println!("Figure 3 — competitive ratio, {dist_name} workloads");
        println!("{}", series_table("hour", &series));
        let approx = series.last().expect("roster non-empty");
        println!(
            "online-approx mean ratio ({dist_name}): {:.3}",
            approx.points.iter().map(|p| p.mean).sum::<f64>() / approx.points.len() as f64
        );
        all_json.push_str(&series_json(&series));
        all_json.push('\n');
    }
    maybe_write(flags.str("json"), &all_json);
}
