//! Figure 5 — synthetic random-walk mobility with a growing number of
//! users: empirical competitive ratios of online-approx and online-greedy.
//!
//! Expected shape: online-approx stays flat around ≈1.1 regardless of the
//! number of users, while online-greedy reaches ratios up to ≈1.8.
//!
//! The paper sweeps 40→1000 users and so does the default grid here: with
//! the blocked nested-Schur kernel the per-slot solves are near-linear in
//! users, so the full sweep is laptop-sized (shrink with `--max-users 200`
//! for a quick pass).

use bench::{checkpointed_map, deadline_tag, maybe_write, Flags};
use sim::metrics::Series;
use sim::report::{series_json, series_table};
use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};

fn main() {
    let flags = Flags::from_env();
    let slots = flags.usize("slots", 12);
    let reps = flags.usize("reps", 2);
    let seed = flags.u64("seed", 2017);
    let threads = flags.usize("threads", bench::default_threads());
    let deadline = flags.opt_f64("slot-deadline-ms");
    let resume = flags.str("resume");
    let max_users = flags.usize("max-users", 1000);
    let grid: Vec<usize> = [40usize, 70, 100, 140, 200, 400, 700, 1000]
        .into_iter()
        .filter(|&u| u <= max_users)
        .collect();

    let roster = vec![AlgorithmKind::Greedy, AlgorithmKind::Approx { eps: 0.5 }];
    let mut series: Vec<Series> = roster.iter().map(|k| Series::new(k.label())).collect();
    // "fig5v2": the default sweep grew from 200 to the paper's full 1000
    // users. The checkpoint header pins the sweep label and point count, so
    // the version bump makes `--resume` reject pre-expansion checkpoints
    // loudly instead of silently grafting short-grid results onto the new
    // grid.
    let label = format!(
        "fig5v2-maxu{max_users}-s{slots}-r{reps}-seed{seed}-dl{}",
        deadline_tag(deadline)
    );
    let outcomes = checkpointed_map(&label, &grid, threads, resume, |&users| {
        let scenario = Scenario {
            name: format!("fig5-users-{users}"),
            mobility: MobilityKind::RandomWalk { num_users: users },
            num_slots: slots,
            algorithms: roster.clone(),
            repetitions: reps,
            seed,
            slot_deadline_ms: deadline,
            ..Scenario::default()
        };
        eprintln!("running {} ...", scenario.name);
        sim::run_scenario(&scenario).expect("scenario")
    });
    for (&users, outcome) in grid.iter().zip(&outcomes) {
        for (s, alg) in series.iter_mut().zip(&outcome.algorithms) {
            s.push_from(users as f64, &alg.ratios);
        }
    }
    println!("Figure 5 — competitive ratio vs number of users (random walk)");
    println!("{}", series_table("users", &series));
    let greedy = &series[0];
    let approx = &series[1];
    println!(
        "online-approx range [{:.3}, {:.3}] (paper: flat ≈1.1); greedy max {:.3} (paper: up to 1.8)",
        approx.min_mean(),
        approx.max_mean(),
        greedy.max_mean()
    );
    maybe_write(flags.str("json"), &series_json(&series));
}
