//! Profiling helper for the horizon LP (not part of the figure suite).
use edgealloc::prelude::*;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let users: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(40);
    let slots: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(36);
    let net = mobility::rome_metro();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let cfg = mobility::taxi::TaxiConfig { num_users: users, num_slots: slots, ..Default::default() };
    let mob = mobility::taxi::generate(&net, &cfg, &mut rng);
    let inst = Instance::synthetic(&net, mob, &mut rng);
    let t0 = Instant::now();
    let off = solve_offline(&inst).unwrap();
    println!("offline J={users} T={slots}: {:?}, cost {:.2}", t0.elapsed(), off.cost.total());
}
