//! Profiling harness for the offline horizon LP (not part of the figure
//! suite): builds one synthetic taxi horizon and times `solve_offline`.
//!
//! ```text
//! profile_offline [--users N] [--slots N] [--seed N] [--json PATH]
//! ```

use bench::{maybe_write, Flags};
use edgealloc::prelude::*;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

/// One timed offline solve.
#[derive(Debug, Clone, Serialize)]
struct OfflineProfile {
    users: usize,
    slots: usize,
    seed: u64,
    wall_clock_ms: f64,
    cost: f64,
}

fn main() {
    let flags = Flags::from_env();
    let users = flags.usize("users", 40);
    let slots = flags.usize("slots", 36);
    let seed = flags.u64("seed", 1);

    let net = mobility::rome_metro();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cfg = mobility::taxi::TaxiConfig {
        num_users: users,
        num_slots: slots,
        ..Default::default()
    };
    let mob = mobility::taxi::generate(&net, &cfg, &mut rng);
    let inst = Instance::synthetic(&net, mob, &mut rng);

    let t0 = Instant::now();
    let off = solve_offline(&inst).expect("offline solve");
    let profile = OfflineProfile {
        users,
        slots,
        seed,
        wall_clock_ms: t0.elapsed().as_secs_f64() * 1e3,
        cost: off.cost.total(),
    };
    println!(
        "offline J={users} T={slots}: {:.1} ms, cost {:.2}",
        profile.wall_clock_ms, profile.cost
    );
    maybe_write(
        flags.str("json"),
        &serde_json::to_string_pretty(&profile).expect("serialize profile"),
    );
}
