//! The §I/§V headline claim: "up to 4× reduction on the total cost can be
//! achieved compared to the static approaches which are typically employed
//! in edge clouds."
//!
//! Runs online-approx against three static baselines (capacity-
//! proportional, first-slot static optimum, locality-first) and reports the
//! cost multiple `static / online-approx` for each.

use bench::{maybe_write, Flags};
use sim::report::{outcome_json, ratio_table};
use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};

fn main() {
    let flags = Flags::from_env();
    let users = flags.usize("users", 30);
    let slots = flags.usize("slots", 24);
    let reps = flags.usize("reps", 3);
    let seed = flags.u64("seed", 2017);

    let scenario = Scenario {
        name: "static-vs-online".into(),
        mobility: MobilityKind::Taxi { num_users: users },
        num_slots: slots,
        algorithms: vec![
            AlgorithmKind::Approx { eps: 0.5 },
            AlgorithmKind::StaticProportional,
            AlgorithmKind::StaticFirstSlot,
            AlgorithmKind::StaticLocal,
        ],
        repetitions: reps,
        seed,
        ..Scenario::default()
    };
    eprintln!("running {} ...", scenario.name);
    let outcome = sim::run_scenario(&scenario).expect("scenario");
    println!("{}", ratio_table(&outcome));
    let approx_mean = outcome.algorithms[0].mean_ratio();
    println!("cost multiple vs online-approx (paper: up to 4×):");
    for alg in &outcome.algorithms[1..] {
        println!("  {:<22} {:.2}×", alg.name, alg.mean_ratio() / approx_mean);
    }
    maybe_write(flags.str("json"), &outcome_json(&outcome));
}
