//! Ablation: temporal correlation of the operation-price process.
//!
//! §V-A says per-slot prices are Gaussian with sd = base/2 but does not fix
//! their temporal structure. This ablation shows why it matters (DESIGN.md,
//! finding 2): with independent per-minute redraws the regularized
//! algorithm "chases noise" — its marginal dynamic cost at the previous
//! allocation is zero, so it pays real migration for transient gains —
//! while with correlated (AR(1)) prices it beats online-greedy as the
//! paper reports.

use bench::{maybe_write, Flags};
use sim::metrics::Series;
use sim::report::{series_json, series_table};
use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};

fn main() {
    let flags = Flags::from_env();
    let users = flags.usize("users", 20);
    let slots = flags.usize("slots", 20);
    let reps = flags.usize("reps", 3);
    let seed = flags.u64("seed", 2017);

    let roster = vec![AlgorithmKind::Greedy, AlgorithmKind::Approx { eps: 0.5 }];
    let mut series: Vec<Series> = roster.iter().map(|k| Series::new(k.label())).collect();
    for rho in [0.0, 0.5, 0.8, 0.95, 0.99] {
        let mut scenario = Scenario {
            name: format!("ablation-corr-{rho}"),
            mobility: MobilityKind::Taxi { num_users: users },
            num_slots: slots,
            algorithms: roster.clone(),
            repetitions: reps,
            seed,
            ..Scenario::default()
        };
        scenario.prices.operation_correlation = rho;
        eprintln!("running {} ...", scenario.name);
        let outcome = sim::run_scenario(&scenario).expect("scenario");
        for (s, alg) in series.iter_mut().zip(&outcome.algorithms) {
            s.push_from(rho, &alg.ratios);
        }
    }
    println!("Ablation — competitive ratio vs operation-price autocorrelation");
    println!("{}", series_table("correlation", &series));
    maybe_write(flags.str("json"), &series_json(&series));
}
