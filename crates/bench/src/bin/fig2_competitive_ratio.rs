//! Figure 2 — empirical competitive ratios of the atomistic group
//! (perf-opt / oper-opt / stat-opt) and the holistic group (online-greedy /
//! online-approx), normalized by offline-opt, across six hourly test cases
//! (3pm–8pm, Feb 12 2014 in the paper; six independently seeded taxi-trace
//! cases here), with power-law workloads and 5 repetitions per case.
//!
//! Expected shape: atomistic ≫ holistic; online-approx ≈ 1.1 and up to
//! ~60% below online-greedy.

use bench::{checkpointed_map, deadline_tag, maybe_write, Flags};
use sim::metrics::Series;
use sim::report::{series_json, series_table};
use sim::scenario::{AlgorithmKind, MobilityKind, Scenario};

fn main() {
    let flags = Flags::from_env();
    let users = flags.usize("users", 30);
    let slots = flags.usize("slots", 24);
    let reps = flags.usize("reps", 3);
    let seed = flags.u64("seed", 2017);
    let threads = flags.usize("threads", bench::default_threads());
    let deadline = flags.opt_f64("slot-deadline-ms");
    let resume = flags.str("resume");

    let roster = vec![
        AlgorithmKind::PerfOpt,
        AlgorithmKind::OperOpt,
        AlgorithmKind::StatOpt,
        AlgorithmKind::Greedy,
        AlgorithmKind::Approx { eps: 0.5 },
    ];
    let mut series: Vec<Series> = roster.iter().map(|k| Series::new(k.label())).collect();

    // Six hourly test cases: 3pm–8pm, fanned across worker threads.
    let cases: Vec<(usize, usize)> = (15..21).enumerate().collect();
    let label = format!(
        "fig2-u{users}-s{slots}-r{reps}-seed{seed}-dl{}",
        deadline_tag(deadline)
    );
    let outcomes = checkpointed_map(&label, &cases, threads, resume, |&(case, hour)| {
        let scenario = Scenario {
            name: format!("fig2-hour-{hour}"),
            mobility: MobilityKind::Taxi { num_users: users },
            num_slots: slots,
            algorithms: roster.clone(),
            repetitions: reps,
            seed: seed + 1000 * case as u64,
            slot_deadline_ms: deadline,
            ..Scenario::default()
        };
        eprintln!("running {} ...", scenario.name);
        sim::run_scenario(&scenario).expect("scenario")
    });
    for (&(_, hour), outcome) in cases.iter().zip(&outcomes) {
        for (s, alg) in series.iter_mut().zip(&outcome.algorithms) {
            s.push_from(hour as f64, &alg.ratios);
        }
    }

    println!("Figure 2 — empirical competitive ratio vs offline-opt (power workload)");
    println!("{}", series_table("hour", &series));
    let approx = series.last().expect("roster non-empty");
    let greedy = &series[3];
    let best_improvement = greedy
        .points
        .iter()
        .zip(&approx.points)
        .map(|(g, a)| sim::metrics::improvement(a.mean, g.mean))
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "online-approx mean ratio: {:.3} (paper: ≈1.1); max improvement over greedy: {:.0}% (paper: up to 60%)",
        approx.points.iter().map(|p| p.mean).sum::<f64>() / approx.points.len() as f64,
        100.0 * best_improvement
    );
    maybe_write(flags.str("json"), &series_json(&series));
}
