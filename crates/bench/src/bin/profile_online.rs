//! Profiling harness for the online algorithms (not part of the figure
//! suite): runs each algorithm over one synthetic taxi horizon and reports
//! wall-clock, per-slot latency percentiles, and barrier-solver effort.
//!
//! ```text
//! profile_online [--users N] [--slots N] [--seed N] [--json PATH]
//!                [--slot-deadline-ms MS] [--algs a,b,...]
//!                [--kernel auto|dense|blocked]
//! ```
//!
//! The text report prints one line per algorithm; `--json` additionally
//! writes the full profile (the record format stored under
//! `results/BENCH_PR2.json` and `results/BENCH_PR4.json`). Per-slot
//! latencies come from each trajectory's [`SlotHealth::wall_time_ms`]
//! records; Newton-step and outer-iteration counts from its
//! [`HealthSummary`] — both are zero for the non-barrier algorithms.
//!
//! `--algs` filters the roster (comma-separated names from {approx,
//! greedy, stat-opt, perf-opt}; default all). `--kernel` forces the
//! barrier Schur kernel for the `approx` algorithm — the knob behind the
//! dense-vs-blocked scaling measurements.

use bench::{maybe_write, Flags};
use edgealloc::prelude::*;
use optim::convex::SchurKernel;
use rand::SeedableRng;
use serde::Serialize;
use sim::metrics::percentile;
use std::time::Instant;

/// Everything measured for one algorithm over the horizon.
#[derive(Debug, Clone, Serialize)]
struct AlgorithmProfile {
    name: String,
    wall_clock_ms: f64,
    cost: f64,
    slot_ms_p50: f64,
    slot_ms_p95: f64,
    newton_steps: usize,
    peak_outer_iterations: usize,
    degraded_slots: usize,
    /// Slots whose accepted barrier solve used the blocked Schur kernel
    /// (zero for the non-barrier algorithms and for forced-dense runs).
    blocked_kernel_slots: usize,
}

/// The whole run: the workload point plus one profile per algorithm.
#[derive(Debug, Clone, Serialize)]
struct Profile {
    users: usize,
    slots: usize,
    seed: u64,
    /// The `--kernel` flag value this run was taken with.
    kernel: String,
    algorithms: Vec<AlgorithmProfile>,
}

fn main() {
    let flags = Flags::from_env();
    let users = flags.usize("users", 30);
    let slots = flags.usize("slots", 24);
    let seed = flags.u64("seed", 1);
    let deadline = flags.opt_f64("slot-deadline-ms");
    let kernel_name = flags.str("kernel").unwrap_or("auto").to_string();
    let kernel = match kernel_name.as_str() {
        "auto" => SchurKernel::Auto,
        "dense" => SchurKernel::Dense,
        "blocked" => SchurKernel::Blocked,
        other => panic!("--kernel {other}: expected auto, dense, or blocked"),
    };
    let algs: Option<Vec<String>> = flags
        .str("algs")
        .map(|s| s.split(',').map(|a| a.trim().to_string()).collect());

    let net = mobility::rome_metro();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cfg = mobility::taxi::TaxiConfig {
        num_users: users,
        num_slots: slots,
        ..Default::default()
    };
    let mob = mobility::taxi::generate(&net, &cfg, &mut rng);
    let inst = Instance::synthetic(&net, mob, &mut rng);

    let roster: Vec<(&str, Box<dyn OnlineAlgorithm>)> = vec![
        (
            "approx",
            Box::new(
                OnlineRegularized::with_defaults()
                    .with_slot_deadline_ms(deadline)
                    .with_schur_kernel(kernel),
            ),
        ),
        ("greedy", Box::new(OnlineGreedy::new())),
        ("stat-opt", Box::new(StatOpt::new())),
        ("perf-opt", Box::new(PerfOpt::new())),
    ];
    let roster: Vec<_> = roster
        .into_iter()
        .filter(|(name, _)| {
            algs.as_ref()
                .is_none_or(|keep| keep.iter().any(|a| a == name))
        })
        .collect();
    assert!(!roster.is_empty(), "--algs filtered out every algorithm");
    let mut profile = Profile {
        users,
        slots,
        seed,
        kernel: kernel_name,
        algorithms: Vec::new(),
    };
    for (name, mut alg) in roster {
        let t0 = Instant::now();
        let traj = run_online(&inst, alg.as_mut()).expect("horizon");
        let wall_clock_ms = t0.elapsed().as_secs_f64() * 1e3;
        let cost = evaluate_trajectory(&inst, &traj.allocations).total();
        let slot_ms: Vec<f64> = traj.health.iter().map(|h| h.wall_time_ms).collect();
        let summary = traj.health_summary();
        let p = AlgorithmProfile {
            name: name.to_string(),
            wall_clock_ms,
            cost,
            slot_ms_p50: percentile(&slot_ms, 50.0),
            slot_ms_p95: percentile(&slot_ms, 95.0),
            newton_steps: summary.newton_steps,
            peak_outer_iterations: summary.peak_outer_iterations,
            degraded_slots: summary.degraded_slots,
            blocked_kernel_slots: summary.blocked_kernel_slots,
        };
        println!(
            "{name}: {:.1} ms cost {:.2} | slot p50 {:.2} ms p95 {:.2} ms | \
             {} Newton steps, peak {} outer",
            p.wall_clock_ms,
            p.cost,
            p.slot_ms_p50,
            p.slot_ms_p95,
            p.newton_steps,
            p.peak_outer_iterations,
        );
        profile.algorithms.push(p);
    }
    maybe_write(
        flags.str("json"),
        &serde_json::to_string_pretty(&profile).expect("serialize profile"),
    );
}
