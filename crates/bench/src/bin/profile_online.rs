//! Profiling helper for the online algorithms (not part of the figure suite).
use edgealloc::prelude::*;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let users: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(30);
    let slots: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(24);
    let net = mobility::rome_metro();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let cfg = mobility::taxi::TaxiConfig { num_users: users, num_slots: slots, ..Default::default() };
    let mob = mobility::taxi::generate(&net, &cfg, &mut rng);
    let inst = Instance::synthetic(&net, mob, &mut rng);
    for (name, alg) in [
        ("approx", Box::new(OnlineRegularized::with_defaults()) as Box<dyn OnlineAlgorithm>),
        ("greedy", Box::new(OnlineGreedy::new())),
        ("stat-opt", Box::new(StatOpt::new())),
        ("perf-opt", Box::new(PerfOpt::new())),
    ] {
        let mut alg = alg;
        let t0 = Instant::now();
        let traj = run_online(&inst, alg.as_mut()).unwrap();
        let c = evaluate_trajectory(&inst, &traj.allocations).total();
        println!("{name}: {:?} cost {c:.2}", t0.elapsed());
    }
}
