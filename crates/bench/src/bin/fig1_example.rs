//! Figure 1 — the two toy examples showing that online-greedy is (a) too
//! aggressive and (b) too conservative.
//!
//! Reproduces the exact cost tallies from the paper: greedy 11.5 vs optimal
//! 9.6 in case (a), greedy 11.3 vs the paper's narrative optimum 9.5 in
//! case (b) (the true LP optimum is 9.4 — an erratum recorded in
//! DESIGN.md). Costs exclude the initial ramp-up transition, which is
//! identical for every policy, as the paper's tallies do.

use edgealloc::allocation::Allocation;
use edgealloc::cost::{evaluate_trajectory, transition_cost};
use edgealloc::prelude::*;

fn cost_without_ramp(inst: &Instance, allocs: &[Allocation]) -> f64 {
    let full = evaluate_trajectory(inst, allocs).total();
    let ramp = transition_cost(
        inst,
        &Allocation::zeros(inst.num_clouds(), inst.num_users()),
        &allocs[0],
    )
    .total();
    full - ramp
}

fn run_case(label: &str, inst: &Instance, paper_greedy: f64, paper_opt: f64) {
    let greedy = run_online(inst, &mut OnlineGreedy::new()).expect("greedy");
    let approx = run_online(inst, &mut OnlineRegularized::with_defaults()).expect("approx");
    let offline = solve_offline(inst).expect("offline");
    let g = cost_without_ramp(inst, &greedy.allocations);
    let a = cost_without_ramp(inst, &approx.allocations);
    let o = cost_without_ramp(inst, &offline.allocations);
    println!("Figure 1({label}):");
    println!("  online-greedy   {g:8.4}   (paper: {paper_greedy})");
    println!("  online-approx   {a:8.4}");
    println!("  offline-opt     {o:8.4}   (paper narrative: {paper_opt})");
    println!(
        "  greedy/offline ratio {:.4}, approx/offline ratio {:.4}",
        g / o,
        a / o
    );
}

fn main() {
    run_case("a", &Instance::fig1_example(2.1, true), 11.5, 9.6);
    run_case("b", &Instance::fig1_example(1.9, false), 11.3, 9.5);
}
