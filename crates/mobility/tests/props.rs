//! Property-based tests of the mobility substrates: the trace parser,
//! nearest-station attachment, and the statistical generators.

use mobility::geo::GeoPoint;
use mobility::trace::{parse_line, resample, TaxiRecord};
use mobility::workload::WorkloadDist;
use mobility::{rome_metro, MobilityInput};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn trace_parser_roundtrips_synthesized_lines(
        driver in 0u64..100_000,
        hh in 0u32..24,
        mm in 0u32..60,
        ss in 0u32..60,
        lat in 41.0f64..43.0,
        lon in 12.0f64..13.0,
    ) {
        let line = format!(
            "{driver};2014-02-12 {hh:02}:{mm:02}:{ss:02}+01;POINT({lat:.6} {lon:.6})"
        );
        let r = parse_line(&line).expect("well-formed line parses");
        prop_assert_eq!(r.driver, driver);
        prop_assert!((r.point.lat - lat).abs() < 1e-5);
        prop_assert!((r.point.lon - lon).abs() < 1e-5);
    }

    #[test]
    fn resample_positions_stay_within_fix_bounds(
        lat0 in 41.0f64..42.0,
        lat1 in 41.0f64..42.0,
        minutes in 1u32..30,
    ) {
        let t0 = 1_000_000.0;
        let recs = vec![
            TaxiRecord { driver: 1, timestamp: t0, point: GeoPoint::new(lat0, 12.5) },
            TaxiRecord { driver: 1, timestamp: t0 + minutes as f64 * 60.0, point: GeoPoint::new(lat1, 12.5) },
        ];
        let (ids, pos) = resample(&recs, t0, 60.0, minutes as usize + 1);
        prop_assert_eq!(ids, vec![1]);
        let (lo, hi) = if lat0 <= lat1 { (lat0, lat1) } else { (lat1, lat0) };
        for p in &pos[0] {
            prop_assert!(p.lat >= lo - 1e-9 && p.lat <= hi + 1e-9);
        }
    }

    #[test]
    fn nearest_station_is_truly_nearest(
        lat in 41.85f64..41.95,
        lon in 12.44f64..12.52,
    ) {
        let net = rome_metro();
        let p = GeoPoint::new(lat, lon);
        let chosen = net.nearest(&p);
        let chosen_d = net.station(chosen).position.distance_km(&p);
        for i in 0..net.len() {
            let d = net.station(i).position.distance_km(&p);
            prop_assert!(chosen_d <= d + 1e-12, "station {i} closer than {chosen}");
        }
    }

    #[test]
    fn workload_samples_respect_invariants(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for dist in [
            WorkloadDist::default_power(),
            WorkloadDist::default_uniform(),
            WorkloadDist::default_normal(),
        ] {
            let s = dist.sample_many(50, &mut rng);
            prop_assert!(s.iter().all(|&v| v >= 1));
        }
    }

    #[test]
    fn random_walk_attachments_are_valid_stations(
        seed in 0u64..500,
        users in 1usize..10,
        slots in 1usize..15,
    ) {
        let net = rome_metro();
        let mut rng = StdRng::seed_from_u64(seed);
        let input = mobility::random_walk::generate(&net, users, slots, &mut rng);
        prop_assert_eq!(input.num_users(), users);
        for j in 0..users {
            for t in 0..slots {
                prop_assert!(input.attached(j, t) < net.len());
            }
        }
    }

    #[test]
    fn handover_rate_is_a_rate(
        seed in 0u64..200,
        users in 1usize..8,
        slots in 2usize..12,
    ) {
        let net = rome_metro();
        let mut rng = StdRng::seed_from_u64(seed);
        let input = mobility::random_walk::generate(&net, users, slots, &mut rng);
        let r = input.handover_rate();
        prop_assert!((0.0..=1.0).contains(&r));
    }
}

#[test]
fn mobility_input_rejects_ragged_rows() {
    let result = std::panic::catch_unwind(|| {
        MobilityInput::new(2, vec![vec![0, 1], vec![0]], vec![vec![0.0; 2]; 2])
    });
    assert!(result.is_err());
}
