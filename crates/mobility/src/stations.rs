//! The 15-station central Rome metro network hosting the edge clouds.
//!
//! The paper deploys one edge cloud at each of 15 selected metro stations in
//! central Rome, with GPS positions collected manually from Google Maps. We
//! embed approximate public coordinates of 15 central stations on lines A
//! and B (interchange at Termini) together with the line adjacency used by
//! the §V-D random-walk mobility model.

use crate::geo::GeoPoint;
use serde::{Deserialize, Serialize};

/// A metro station hosting an edge cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Station {
    /// Station name.
    pub name: String,
    /// GPS position.
    pub position: GeoPoint,
}

/// A set of stations plus the metro-line adjacency between them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StationNetwork {
    stations: Vec<Station>,
    /// Adjacency lists: `neighbors[i]` are stations one metro hop from `i`.
    neighbors: Vec<Vec<usize>>,
}

impl StationNetwork {
    /// Builds a network from stations and undirected edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a station out of range.
    pub fn new(stations: Vec<Station>, edges: &[(usize, usize)]) -> Self {
        let n = stations.len();
        let mut neighbors = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            neighbors[a].push(b);
            neighbors[b].push(a);
        }
        for list in &mut neighbors {
            list.sort_unstable();
            list.dedup();
        }
        StationNetwork {
            stations,
            neighbors,
        }
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// Whether the network has no stations.
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// The stations.
    pub fn stations(&self) -> &[Station] {
        &self.stations
    }

    /// Station `i`.
    pub fn station(&self, i: usize) -> &Station {
        &self.stations[i]
    }

    /// Metro neighbors of station `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.neighbors[i]
    }

    /// Index of the station nearest to `p` (ties broken by lower index).
    ///
    /// # Panics
    ///
    /// Panics if the network is empty.
    pub fn nearest(&self, p: &GeoPoint) -> usize {
        assert!(!self.is_empty(), "no stations");
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, s) in self.stations.iter().enumerate() {
            let d = s.position.distance_km(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Pairwise great-circle distance matrix in kilometers
    /// (`d[i][i] = 0`, symmetric).
    pub fn distance_matrix_km(&self) -> Vec<Vec<f64>> {
        let n = self.len();
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dist = self.stations[i]
                    .position
                    .distance_km(&self.stations[j].position);
                d[i][j] = dist;
                d[j][i] = dist;
            }
        }
        d
    }

    /// Bounding box of the stations as `(min, max)` corner points.
    ///
    /// # Panics
    ///
    /// Panics if the network is empty.
    pub fn bounding_box(&self) -> (GeoPoint, GeoPoint) {
        assert!(!self.is_empty(), "no stations");
        let mut min = self.stations[0].position;
        let mut max = min;
        for s in &self.stations {
            min.lat = min.lat.min(s.position.lat);
            min.lon = min.lon.min(s.position.lon);
            max.lat = max.lat.max(s.position.lat);
            max.lon = max.lon.max(s.position.lon);
        }
        (min, max)
    }
}

/// The 15 central Rome metro stations used in the paper's evaluation, with
/// line-A/line-B adjacency (interchange at Termini).
///
/// # Example
///
/// ```
/// let net = mobility::rome_metro();
/// assert_eq!(net.len(), 15);
/// // Termini (index 7) interconnects lines A and B: 2 A-neighbors + Cavour.
/// assert_eq!(net.neighbors(7).len(), 3);
/// ```
pub fn rome_metro() -> StationNetwork {
    let mk = |name: &str, lat: f64, lon: f64| Station {
        name: name.to_string(),
        position: GeoPoint::new(lat, lon),
    };
    let stations = vec![
        // Line A, north-west to south-east (indices 0–10).
        mk("Cipro", 41.9074, 12.4476),
        mk("Ottaviano", 41.9098, 12.4585),
        mk("Lepanto", 41.9095, 12.4703),
        mk("Flaminio", 41.9124, 12.4760),
        mk("Spagna", 41.9066, 12.4822),
        mk("Barberini", 41.9038, 12.4887),
        mk("Repubblica", 41.9031, 12.4956),
        mk("Termini", 41.9009, 12.5019),
        mk("Vittorio Emanuele", 41.8945, 12.5065),
        mk("Manzoni", 41.8896, 12.5116),
        mk("San Giovanni", 41.8860, 12.5090),
        // Line B, from Termini south-west (indices 11–14).
        mk("Cavour", 41.8944, 12.4977),
        mk("Colosseo", 41.8902, 12.4924),
        mk("Circo Massimo", 41.8839, 12.4886),
        mk("Piramide", 41.8764, 12.4810),
    ];
    let mut edges: Vec<(usize, usize)> = (0..10).map(|i| (i, i + 1)).collect();
    edges.extend_from_slice(&[(7, 11), (11, 12), (12, 13), (13, 14)]);
    StationNetwork::new(stations, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rome_has_15_stations() {
        let net = rome_metro();
        assert_eq!(net.len(), 15);
    }

    #[test]
    fn network_is_connected() {
        let net = rome_metro();
        let mut seen = vec![false; net.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &u in net.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "metro graph must be connected");
    }

    #[test]
    fn stations_are_in_central_rome() {
        let net = rome_metro();
        for s in net.stations() {
            assert!(s.position.lat > 41.8 && s.position.lat < 42.0, "{}", s.name);
            assert!(s.position.lon > 12.4 && s.position.lon < 12.6, "{}", s.name);
        }
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let net = rome_metro();
        let d = net.distance_matrix_km();
        for i in 0..net.len() {
            assert_eq!(d[i][i], 0.0);
            for j in 0..net.len() {
                assert_eq!(d[i][j], d[j][i]);
                if i != j {
                    assert!(d[i][j] > 0.0);
                    assert!(d[i][j] < 10.0, "central Rome span <10km");
                }
            }
        }
    }

    #[test]
    fn nearest_station_of_station_position_is_itself() {
        let net = rome_metro();
        for i in 0..net.len() {
            assert_eq!(net.nearest(&net.station(i).position), i);
        }
    }

    #[test]
    fn termini_is_interchange() {
        let net = rome_metro();
        assert_eq!(net.station(7).name, "Termini");
        assert!(net.neighbors(7).contains(&11), "Termini adjacent to Cavour");
    }

    #[test]
    fn bounding_box_contains_all() {
        let net = rome_metro();
        let (min, max) = net.bounding_box();
        for s in net.stations() {
            assert!(s.position.lat >= min.lat && s.position.lat <= max.lat);
            assert!(s.position.lon >= min.lon && s.position.lon <= max.lon);
        }
    }
}
