//! User workload generators: power-law, uniform, and normal.
//!
//! §V-A of the paper evaluates three workload distributions; workloads are
//! positive integers (`λ_j ∈ ℤ⁺`, required by Lemma 6's `λ_j ≥ 1` step).

use crate::rand_util::{pareto, truncated_normal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution of per-user workloads `λ_j ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadDist {
    /// Power-law (Pareto) workload — "highly skewed, as in online social
    /// network services" (§V-A). `alpha` is the tail exponent, `scale` the
    /// minimum, `cap` an upper clamp to keep single users below capacity.
    Power {
        /// Tail exponent (> 1 for finite mean).
        alpha: f64,
        /// Minimum workload.
        scale: f64,
        /// Upper clamp.
        cap: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (≥ 1).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Normal with the negative tail cut at 1.
    Normal {
        /// Mean workload.
        mean: f64,
        /// Standard deviation.
        sd: f64,
    },
}

impl WorkloadDist {
    /// The paper-flavored default power-law workload.
    pub fn default_power() -> Self {
        WorkloadDist::Power {
            alpha: 1.8,
            scale: 1.0,
            cap: 50.0,
        }
    }

    /// The default uniform workload (mean 3).
    pub fn default_uniform() -> Self {
        WorkloadDist::Uniform { lo: 1.0, hi: 5.0 }
    }

    /// The default normal workload (mean 3, sd 1.5).
    pub fn default_normal() -> Self {
        WorkloadDist::Normal { mean: 3.0, sd: 1.5 }
    }

    /// Samples one integer workload `λ ≥ 1`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let v = match *self {
            WorkloadDist::Power { alpha, scale, cap } => pareto(rng, scale, alpha).min(cap),
            WorkloadDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            WorkloadDist::Normal { mean, sd } => truncated_normal(rng, mean, sd, 1.0),
        };
        (v.round().max(1.0)) as u32
    }

    /// Samples a vector of `n` workloads.
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u32> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_samples_are_at_least_one() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [
            WorkloadDist::default_power(),
            WorkloadDist::default_uniform(),
            WorkloadDist::default_normal(),
        ] {
            for _ in 0..5_000 {
                assert!(d.sample(&mut rng) >= 1);
            }
        }
    }

    #[test]
    fn power_is_more_skewed_than_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = WorkloadDist::default_power().sample_many(20_000, &mut rng);
        let u = WorkloadDist::default_uniform().sample_many(20_000, &mut rng);
        let max_p = *p.iter().max().unwrap();
        let max_u = *u.iter().max().unwrap();
        assert!(
            max_p > 2 * max_u,
            "power max {max_p} vs uniform max {max_u}"
        );
    }

    #[test]
    fn power_respects_cap() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = WorkloadDist::Power {
            alpha: 1.1,
            scale: 1.0,
            cap: 10.0,
        };
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) <= 10);
        }
    }

    #[test]
    fn normal_mean_is_preserved_approximately() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = WorkloadDist::Normal { mean: 6.0, sd: 1.0 };
        let s = d.sample_many(50_000, &mut rng);
        let mean: f64 = s.iter().map(|&v| v as f64).sum::<f64>() / s.len() as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
    }
}
