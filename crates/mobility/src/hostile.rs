//! Hostile mobility shapes for overload experiments.
//!
//! The robustness track needs mobility that *concentrates* demand instead
//! of spreading it: a flash crowd pulling everyone to one station, and
//! diurnal commute waves that slosh the whole population between home and
//! work stations. Both are deterministic under a seeded RNG and produce
//! ordinary [`MobilityInput`] tables, so every downstream consumer (the
//! attachment-driven quality costs, the allocator, the statistics) treats
//! them exactly like the benign substrates.

use crate::attach::MobilityInput;
use crate::stations::StationNetwork;
use rand::Rng;

/// Flash-crowd reshaping of an existing mobility trace.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlashCrowdConfig {
    /// Station (edge-cloud index) the crowd converges on.
    pub station: usize,
    /// First slot of the crowd window.
    pub start: usize,
    /// Window length in slots (0 = no reshaping).
    pub duration: usize,
    /// Probability that a user joins the crowd in a window slot; clamped
    /// to `[0, 1]` (non-finite values disable the pull).
    pub attraction: f64,
}

impl FlashCrowdConfig {
    fn attraction_prob(&self) -> f64 {
        if self.attraction.is_finite() {
            self.attraction.clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// Pulls users of an existing trace toward one station for a window of
/// slots: during `[start, start + duration)` each user independently
/// attaches to `cfg.station` with probability `cfg.attraction` (keeping
/// its own access delay), and follows its original trace otherwise.
///
/// The decision is rolled per user *and* slot, so the crowd churns the way
/// a real event does; outside the window the trace is returned unchanged.
///
/// # Panics
///
/// Panics if `net` is empty (there is no station to converge on).
pub fn flash_crowd<R: Rng + ?Sized>(
    net: &StationNetwork,
    base: &MobilityInput,
    cfg: &FlashCrowdConfig,
    rng: &mut R,
) -> MobilityInput {
    assert!(!net.is_empty(), "station network is empty");
    let station = cfg.station.min(net.len() - 1);
    let prob = cfg.attraction_prob();
    let end = cfg.start.saturating_add(cfg.duration);
    let num_users = base.num_users();
    let num_slots = base.num_slots();
    let mut attachment = Vec::with_capacity(num_users);
    let mut access_delay = Vec::with_capacity(num_users);
    for j in 0..num_users {
        let mut row = Vec::with_capacity(num_slots);
        let mut delays = Vec::with_capacity(num_slots);
        for t in 0..num_slots {
            let in_window = t >= cfg.start && t < end;
            if in_window && prob > 0.0 && rng.gen_bool(prob) {
                row.push(station);
            } else {
                row.push(base.attached(j, t));
            }
            delays.push(base.delay(j, t));
        }
        attachment.push(row);
        access_delay.push(delays);
    }
    MobilityInput::new(base.num_clouds(), attachment, access_delay)
}

/// Diurnal commute-wave mobility.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CommuteConfig {
    /// Number of commuters.
    pub num_users: usize,
    /// Horizon length in slots.
    pub num_slots: usize,
    /// Slot of the morning wave (everyone heads to work).
    pub morning: usize,
    /// Slot of the evening wave (everyone heads home); waves collapse to
    /// one when `evening <= morning`.
    pub evening: usize,
    /// Per-user departure jitter in slots (uniform in `±jitter`), so the
    /// waves have realistic shoulders instead of a single step.
    pub jitter: usize,
}

impl Default for CommuteConfig {
    fn default() -> Self {
        CommuteConfig {
            num_users: 40,
            num_slots: 30,
            morning: 8,
            evening: 20,
            jitter: 2,
        }
    }
}

/// Generates commute-wave mobility: each user picks a home and a work
/// station (work stations are drawn from a small set of hubs, which is
/// what makes the morning wave hostile — most of the city lands on a few
/// clouds at once), sits at home before the jittered morning slot, at work
/// until the jittered evening slot, and back home afterwards.
///
/// Access delay is zero, matching the at-station idiom of
/// [`crate::random_walk`].
///
/// # Panics
///
/// Panics if `net` is empty.
pub fn commute_waves<R: Rng + ?Sized>(
    net: &StationNetwork,
    cfg: &CommuteConfig,
    rng: &mut R,
) -> MobilityInput {
    assert!(!net.is_empty(), "station network is empty");
    let num_stations = net.len();
    // A handful of work hubs concentrates the morning wave.
    let num_hubs = num_stations.div_ceil(5).max(1);
    let hubs: Vec<usize> = (0..num_hubs)
        .map(|_| rng.gen_range(0..num_stations))
        .collect();
    let jitter = |rng: &mut R, base: usize, j: usize| -> usize {
        if j == 0 {
            base
        } else {
            let offset = rng.gen_range(0..=(2 * j)) as isize - j as isize;
            base.saturating_add_signed(offset)
        }
    };
    let mut attachment = Vec::with_capacity(cfg.num_users);
    for _ in 0..cfg.num_users {
        let home = rng.gen_range(0..num_stations);
        let work = hubs[rng.gen_range(0..hubs.len())];
        let leave = jitter(rng, cfg.morning, cfg.jitter);
        let ret = jitter(rng, cfg.evening.max(cfg.morning), cfg.jitter).max(leave);
        let row: Vec<usize> = (0..cfg.num_slots)
            .map(|t| if t >= leave && t < ret { work } else { home })
            .collect();
        attachment.push(row);
    }
    let access_delay = vec![vec![0.0; cfg.num_slots]; cfg.num_users];
    MobilityInput::new(num_stations, attachment, access_delay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_walk;
    use crate::stations::rome_metro;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flash_crowd_concentrates_the_window_and_leaves_the_rest() {
        let net = rome_metro();
        let base = random_walk::generate(&net, 30, 20, &mut StdRng::seed_from_u64(7));
        let cfg = FlashCrowdConfig {
            station: 3,
            start: 5,
            duration: 8,
            attraction: 1.0,
        };
        let crowd = flash_crowd(&net, &base, &cfg, &mut StdRng::seed_from_u64(8));
        for j in 0..30 {
            for t in 0..20 {
                if (5..13).contains(&t) {
                    assert_eq!(crowd.attached(j, t), 3, "user {j} slot {t} not in crowd");
                } else {
                    assert_eq!(crowd.attached(j, t), base.attached(j, t));
                }
                assert_eq!(crowd.delay(j, t), base.delay(j, t));
            }
        }
    }

    #[test]
    fn flash_crowd_is_deterministic_and_partial_at_half_attraction() {
        let net = rome_metro();
        let base = random_walk::generate(&net, 40, 16, &mut StdRng::seed_from_u64(1));
        let cfg = FlashCrowdConfig {
            station: 0,
            start: 4,
            duration: 6,
            attraction: 0.5,
        };
        let a = flash_crowd(&net, &base, &cfg, &mut StdRng::seed_from_u64(2));
        let b = flash_crowd(&net, &base, &cfg, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        // Roughly half the window attachments sit at the crowd station.
        let mut at_crowd = 0usize;
        let mut total = 0usize;
        for j in 0..40 {
            for t in 4..10 {
                total += 1;
                if a.attached(j, t) == 0 {
                    at_crowd += 1;
                }
            }
        }
        let frac = at_crowd as f64 / total as f64;
        assert!(frac > 0.3 && frac < 0.8, "crowd fraction {frac}");
    }

    #[test]
    fn bad_attraction_and_station_are_clamped() {
        let net = rome_metro();
        let base = random_walk::generate(&net, 5, 8, &mut StdRng::seed_from_u64(3));
        let cfg = FlashCrowdConfig {
            station: 10_000,
            start: 0,
            duration: 8,
            attraction: f64::NAN,
        };
        // NaN attraction disables the pull entirely.
        let out = flash_crowd(&net, &base, &cfg, &mut StdRng::seed_from_u64(4));
        assert_eq!(out, base);
        // An out-of-range station clamps instead of panicking downstream.
        let cfg = FlashCrowdConfig {
            attraction: 1.0,
            ..cfg
        };
        let out = flash_crowd(&net, &base, &cfg, &mut StdRng::seed_from_u64(4));
        assert_eq!(out.attached(0, 0), net.len() - 1);
    }

    #[test]
    fn commute_waves_put_everyone_at_work_midday_and_home_at_night() {
        let net = rome_metro();
        let cfg = CommuteConfig {
            num_users: 25,
            num_slots: 30,
            morning: 8,
            evening: 20,
            jitter: 2,
        };
        let mob = commute_waves(&net, &cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(mob.num_users(), 25);
        assert_eq!(mob.num_slots(), 30);
        for j in 0..25 {
            let home = mob.attached(j, 0);
            let work = mob.attached(j, 14); // inside both jitter shoulders
            assert_eq!(mob.attached(j, 29), home, "user {j} did not return home");
            // Midday the user is at its (fixed) work station.
            for t in 11..17 {
                assert_eq!(mob.attached(j, t), work, "user {j} wandered at slot {t}");
            }
            assert_eq!(mob.delay(j, 0), 0.0);
        }
        // The hub draw concentrates work stations on a small set.
        let mut works: Vec<usize> = (0..25).map(|j| mob.attached(j, 14)).collect();
        works.sort_unstable();
        works.dedup();
        assert!(works.len() <= 3, "work hubs too spread: {works:?}");
    }

    #[test]
    fn commute_waves_are_deterministic() {
        let net = rome_metro();
        let cfg = CommuteConfig::default();
        let a = commute_waves(&net, &cfg, &mut StdRng::seed_from_u64(9));
        let b = commute_waves(&net, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
