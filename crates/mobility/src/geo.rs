//! GPS points and great-circle distances.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometers.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A WGS-84 latitude/longitude point in degrees.
///
/// # Example
///
/// ```
/// use mobility::geo::GeoPoint;
///
/// let termini = GeoPoint::new(41.9009, 12.5019);
/// let colosseo = GeoPoint::new(41.8902, 12.4924);
/// let d = termini.distance_km(&colosseo);
/// assert!(d > 1.0 && d < 2.0, "about 1.4 km, got {d}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude/longitude in degrees.
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle (haversine) distance to `other`, in kilometers.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (phi1, phi2) = (self.lat.to_radians(), other.lat.to_radians());
        let dphi = (other.lat - self.lat).to_radians();
        let dlambda = (other.lon - self.lon).to_radians();
        let a =
            (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Linear interpolation toward `target` by fraction `f ∈ [0, 1]`
    /// (adequate over the few-kilometer scales of a city).
    pub fn lerp(&self, target: &GeoPoint, f: f64) -> GeoPoint {
        GeoPoint {
            lat: self.lat + (target.lat - self.lat) * f,
            lon: self.lon + (target.lon - self.lon) * f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(41.9, 12.5);
        assert_eq!(p.distance_km(&p), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(41.9, 12.5);
        let b = GeoPoint::new(41.88, 12.47);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-12);
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let a = GeoPoint::new(41.0, 12.5);
        let b = GeoPoint::new(42.0, 12.5);
        let d = a.distance_km(&b);
        assert!((d - 111.2).abs() < 0.5, "got {d}");
    }

    #[test]
    fn lerp_endpoints() {
        let a = GeoPoint::new(41.0, 12.0);
        let b = GeoPoint::new(42.0, 13.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.lat - 41.5).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_holds() {
        let a = GeoPoint::new(41.90, 12.45);
        let b = GeoPoint::new(41.88, 12.50);
        let c = GeoPoint::new(41.92, 12.48);
        assert!(a.distance_km(&b) <= a.distance_km(&c) + c.distance_km(&b) + 1e-12);
    }
}
