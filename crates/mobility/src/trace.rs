//! Parser and resampler for the CRAWDAD `roma/taxi` trace format.
//!
//! The real dataset (gated download) is a `;`-separated text file:
//!
//! ```text
//! 156;2014-02-01 15:00:00.739166+01;POINT(41.88367 12.48777)
//! ```
//!
//! [`parse_line`] reads one record and [`resample`] turns a set of records
//! into the per-slot positions used by
//! [`MobilityInput::from_positions`](crate::attach::MobilityInput::from_positions),
//! so experiments can switch from the synthetic taxi generator to the real
//! data without further code changes.

use crate::geo::GeoPoint;
use std::fmt;

/// One GPS fix from the trace file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaxiRecord {
    /// Driver (user) identifier.
    pub driver: u64,
    /// Seconds since the Unix epoch (timezone offset ignored — the dataset
    /// is uniform, only differences matter).
    pub timestamp: f64,
    /// GPS position.
    pub point: GeoPoint,
}

/// Error produced when a trace line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse trace line: {}", self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

fn err(reason: impl Into<String>) -> ParseTraceError {
    ParseTraceError {
        reason: reason.into(),
    }
}

/// Days from civil date (Howard Hinnant's algorithm), days since 1970-01-01.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let doy = (153 * u64::from(if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + u64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i64 - 719_468
}

/// Parses a timestamp of the form `YYYY-MM-DD HH:MM:SS[.frac][+TZ]`.
fn parse_timestamp(s: &str) -> Result<f64, ParseTraceError> {
    let s = s.trim();
    let (date, rest) = s.split_once(' ').ok_or_else(|| err("missing time part"))?;
    let mut dp = date.split('-');
    let y: i64 = dp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("bad year"))?;
    let m: u32 = dp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("bad month"))?;
    let d: u32 = dp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("bad day"))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(err("month/day out of range"));
    }
    // Strip timezone suffix (+01, +01:00, Z).
    let time = rest
        .split(['+', 'Z'])
        .next()
        .unwrap_or(rest)
        .trim_end_matches(' ');
    let mut tp = time.split(':');
    let hh: u32 = tp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("bad hour"))?;
    let mm: u32 = tp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("bad minute"))?;
    let ss: f64 = tp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("bad second"))?;
    if hh >= 24 || mm >= 60 || !(0.0..60.0).contains(&ss) {
        return Err(err("time out of range"));
    }
    Ok(days_from_civil(y, m, d) as f64 * 86_400.0 + hh as f64 * 3600.0 + mm as f64 * 60.0 + ss)
}

/// Parses one line of the CRAWDAD `roma/taxi` file.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed input.
///
/// # Example
///
/// ```
/// use mobility::trace::parse_line;
///
/// let r = parse_line("156;2014-02-12 15:00:01.73+01;POINT(41.8837 12.4878)").unwrap();
/// assert_eq!(r.driver, 156);
/// assert!((r.point.lat - 41.8837).abs() < 1e-9);
/// ```
pub fn parse_line(line: &str) -> Result<TaxiRecord, ParseTraceError> {
    let mut parts = line.trim().splitn(3, ';');
    let driver: u64 = parts
        .next()
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| err("bad driver id"))?;
    let ts = parse_timestamp(parts.next().ok_or_else(|| err("missing timestamp"))?)?;
    let point_str = parts.next().ok_or_else(|| err("missing POINT"))?.trim();
    let inner = point_str
        .strip_prefix("POINT(")
        .and_then(|v| v.strip_suffix(')'))
        .ok_or_else(|| err("POINT(...) expected"))?;
    let mut coords = inner.split_whitespace();
    let lat: f64 = coords
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("bad latitude"))?;
    let lon: f64 = coords
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("bad longitude"))?;
    Ok(TaxiRecord {
        driver,
        timestamp: ts,
        point: GeoPoint::new(lat, lon),
    })
}

/// Parses a whole file's worth of lines, skipping empty ones.
///
/// # Errors
///
/// Returns the first parse error with its line number attached.
pub fn parse_lines(content: &str) -> Result<Vec<TaxiRecord>, ParseTraceError> {
    let mut out = Vec::new();
    for (no, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| err(format!("line {}: {}", no + 1, e.reason)))?);
    }
    Ok(out)
}

/// Resamples raw GPS records into per-driver per-slot positions.
///
/// The window starts at `start_ts` and spans `num_slots` slots of
/// `slot_seconds` each. A driver is included only if it has at least one fix
/// before (or at) every slot boundary and one after the window start —
/// positions are linearly interpolated between surrounding fixes and held
/// constant beyond the last fix.
///
/// Returns `(driver_ids, positions)` where `positions[u][t]` is the
/// position of driver `driver_ids[u]` at slot `t`.
pub fn resample(
    records: &[TaxiRecord],
    start_ts: f64,
    slot_seconds: f64,
    num_slots: usize,
) -> (Vec<u64>, Vec<Vec<GeoPoint>>) {
    use std::collections::BTreeMap;
    let mut by_driver: BTreeMap<u64, Vec<(f64, GeoPoint)>> = BTreeMap::new();
    for r in records {
        by_driver
            .entry(r.driver)
            .or_default()
            .push((r.timestamp, r.point));
    }
    let mut ids = Vec::new();
    let mut out = Vec::new();
    for (driver, mut fixes) in by_driver {
        fixes.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Coverage: need a fix at or before the window start.
        if fixes.first().is_none_or(|f| f.0 > start_ts) {
            continue;
        }
        let mut row = Vec::with_capacity(num_slots);
        for t in 0..num_slots {
            let when = start_ts + t as f64 * slot_seconds;
            // Find surrounding fixes.
            let after = fixes.partition_point(|f| f.0 <= when);
            let pos = if after == 0 {
                fixes[0].1
            } else if after >= fixes.len() {
                fixes[fixes.len() - 1].1
            } else {
                let (t0, p0) = fixes[after - 1];
                let (t1, p1) = fixes[after];
                let f = if t1 > t0 {
                    (when - t0) / (t1 - t0)
                } else {
                    0.0
                };
                p0.lerp(&p1, f)
            };
            row.push(pos);
        }
        ids.push(driver);
        out.push(row);
    }
    (ids, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_line() {
        let r = parse_line("7;2014-02-12 15:30:45.5+01;POINT(41.9 12.5)").unwrap();
        assert_eq!(r.driver, 7);
        assert_eq!(r.point, GeoPoint::new(41.9, 12.5));
    }

    #[test]
    fn timestamp_differences_are_exact() {
        let a = parse_line("1;2014-02-12 15:00:00+01;POINT(41.9 12.5)").unwrap();
        let b = parse_line("1;2014-02-12 15:01:30+01;POINT(41.9 12.5)").unwrap();
        assert!((b.timestamp - a.timestamp - 90.0).abs() < 1e-9);
    }

    #[test]
    fn midnight_rollover() {
        let a = parse_line("1;2014-02-12 23:59:00+01;POINT(41.9 12.5)").unwrap();
        let b = parse_line("1;2014-02-13 00:01:00+01;POINT(41.9 12.5)").unwrap();
        assert!((b.timestamp - a.timestamp - 120.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_line("not a line").is_err());
        assert!(parse_line("1;2014-02-12 15:00:00;CIRCLE(1 2)").is_err());
        assert!(parse_line("x;2014-02-12 15:00:00;POINT(1 2)").is_err());
        assert!(parse_line("1;2014-13-40 15:00:00;POINT(1 2)").is_err());
    }

    #[test]
    fn parse_lines_reports_line_numbers() {
        let e = parse_lines("1;2014-02-12 15:00:00;POINT(1 2)\nbroken").unwrap_err();
        assert!(e.reason.contains("line 2"), "{e}");
    }

    #[test]
    fn resample_interpolates_between_fixes() {
        let recs = vec![
            parse_line("5;2014-02-12 15:00:00+01;POINT(41.0 12.0)").unwrap(),
            parse_line("5;2014-02-12 15:02:00+01;POINT(41.2 12.2)").unwrap(),
        ];
        let start = recs[0].timestamp;
        let (ids, pos) = resample(&recs, start, 60.0, 3);
        assert_eq!(ids, vec![5]);
        assert!((pos[0][1].lat - 41.1).abs() < 1e-9); // halfway
        assert!((pos[0][2].lat - 41.2).abs() < 1e-9); // at second fix
    }

    #[test]
    fn resample_drops_uncovered_drivers() {
        let recs = vec![parse_line("9;2014-02-12 16:00:00+01;POINT(41.0 12.0)").unwrap()];
        // Window starts an hour before the driver's first fix.
        let start = recs[0].timestamp - 3600.0;
        let (ids, _) = resample(&recs, start, 60.0, 5);
        assert!(ids.is_empty());
    }

    #[test]
    fn resample_holds_last_position() {
        let recs = vec![parse_line("3;2014-02-12 15:00:00+01;POINT(41.5 12.5)").unwrap()];
        let (ids, pos) = resample(&recs, recs[0].timestamp, 60.0, 4);
        assert_eq!(ids, vec![3]);
        for t in 0..4 {
            assert_eq!(pos[0][t], GeoPoint::new(41.5, 12.5));
        }
    }
}
