//! Mobility-trace statistics.
//!
//! Used to sanity-check that the synthetic taxi generator plays the same
//! statistical role as the real CRAWDAD trace (DESIGN.md substitution
//! note): handover behaviour, dwell times, and station-visit concentration
//! are the features the allocation algorithm actually reacts to.

use crate::attach::MobilityInput;

/// Summary statistics of a [`MobilityInput`].
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityStats {
    /// Fraction of consecutive-slot pairs with a station change.
    pub handover_rate: f64,
    /// Mean number of consecutive slots spent at one station.
    pub mean_dwell_slots: f64,
    /// Longest dwell observed (slots).
    pub max_dwell_slots: usize,
    /// Station-visit concentration: a normalized Herfindahl index in
    /// `[0, 1]`, 0 = perfectly uniform visits, 1 = all visits at one
    /// station.
    pub visit_concentration: f64,
    /// Mean access delay (same distance units as the input).
    pub mean_access_delay: f64,
}

/// Computes summary statistics of a mobility input.
///
/// # Panics
///
/// Panics if the input has no users or no slots.
pub fn analyze(input: &MobilityInput) -> MobilityStats {
    let users = input.num_users();
    let slots = input.num_slots();
    assert!(users > 0 && slots > 0, "empty mobility input");

    // Dwell times.
    let mut dwell_sum = 0usize;
    let mut dwell_count = 0usize;
    let mut max_dwell = 0usize;
    for j in 0..users {
        let mut run = 1usize;
        for t in 1..slots {
            if input.attached(j, t) == input.attached(j, t - 1) {
                run += 1;
            } else {
                dwell_sum += run;
                dwell_count += 1;
                max_dwell = max_dwell.max(run);
                run = 1;
            }
        }
        dwell_sum += run;
        dwell_count += 1;
        max_dwell = max_dwell.max(run);
    }

    // Visit concentration (normalized Herfindahl).
    let freq = input.attachment_frequency();
    let total: f64 = freq.iter().map(|&f| f as f64).sum();
    let hhi: f64 = freq
        .iter()
        .map(|&f| {
            let share = f as f64 / total;
            share * share
        })
        .sum();
    let n = input.num_clouds() as f64;
    let concentration = if n > 1.0 {
        ((hhi - 1.0 / n) / (1.0 - 1.0 / n)).clamp(0.0, 1.0)
    } else {
        1.0
    };

    let mut delay_sum = 0.0;
    for j in 0..users {
        for t in 0..slots {
            delay_sum += input.delay(j, t);
        }
    }

    MobilityStats {
        handover_rate: input.handover_rate(),
        mean_dwell_slots: dwell_sum as f64 / dwell_count as f64,
        max_dwell_slots: max_dwell,
        visit_concentration: concentration,
        mean_access_delay: delay_sum / (users * slots) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_user_has_zero_handover_and_full_dwell() {
        let input = MobilityInput::new(3, vec![vec![1; 6]], vec![vec![0.5; 6]]);
        let s = analyze(&input);
        assert_eq!(s.handover_rate, 0.0);
        assert_eq!(s.mean_dwell_slots, 6.0);
        assert_eq!(s.max_dwell_slots, 6);
        assert_eq!(s.visit_concentration, 1.0);
        assert!((s.mean_access_delay - 0.5).abs() < 1e-12);
    }

    #[test]
    fn oscillating_user_has_unit_dwell() {
        let input = MobilityInput::new(2, vec![vec![0, 1, 0, 1]], vec![vec![0.0; 4]]);
        let s = analyze(&input);
        assert_eq!(s.handover_rate, 1.0);
        assert_eq!(s.mean_dwell_slots, 1.0);
        // Perfectly balanced between two of... two stations → concentration 0.
        assert_eq!(s.visit_concentration, 0.0);
    }

    #[test]
    fn taxi_trace_is_stickier_than_random_walk() {
        // The key statistical property preserved by the substitution:
        // taxi-like motion dwells far longer at a station than a uniform
        // per-slot random walk.
        let net = crate::rome_metro();
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = crate::taxi::TaxiConfig {
            num_users: 25,
            num_slots: 40,
            ..Default::default()
        };
        let taxi = analyze(&crate::taxi::generate(&net, &cfg, &mut rng));
        let walk = analyze(&crate::random_walk::generate(&net, 25, 40, &mut rng));
        assert!(
            taxi.mean_dwell_slots > 1.5 * walk.mean_dwell_slots,
            "taxi dwell {} vs walk dwell {}",
            taxi.mean_dwell_slots,
            walk.mean_dwell_slots
        );
        assert!(taxi.handover_rate < walk.handover_rate);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_input() {
        let input = MobilityInput::new(2, vec![], vec![]);
        let _ = analyze(&input);
    }
}
