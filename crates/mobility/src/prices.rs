//! Price processes for operation, reconfiguration, and bandwidth costs,
//! following §V-A of the paper.

use crate::rand_util::{normal, truncated_normal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Flat-rate prices (euro/month for 1 Mbps) of the three Rome ISPs the paper
/// assigns edge clouds to: Tiscali Italia, Vodafone Italia, Infostrada-Wind.
/// Only the ratios matter.
pub const ISP_RATES: [f64; 3] = [2.49, 4.86, 1.25];

/// Configuration of all price generators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PriceConfig {
    /// Mean of the per-cloud base operation prices (bases are set inversely
    /// proportional to capacity, then normalized to this mean).
    pub operation_mean: f64,
    /// Floor of the per-slot operation price, as a fraction of the base
    /// (the Gaussian's negative tail is cut here).
    pub operation_floor_frac: f64,
    /// Mean of the static per-cloud reconfiguration price.
    pub reconfig_mean: f64,
    /// Standard deviation of the reconfiguration price.
    pub reconfig_sd: f64,
    /// Scale applied to the ISP rate ratios to obtain per-unit migration
    /// prices.
    pub bandwidth_scale: f64,
    /// Lag-1 autocorrelation of the per-slot operation price (AR(1) with
    /// the §V-A Gaussian as its stationary marginal). `0` reproduces fully
    /// independent per-slot redraws; electricity-style prices over
    /// one-minute slots are strongly correlated, so the default is high.
    pub operation_correlation: f64,
}

impl Default for PriceConfig {
    fn default() -> Self {
        PriceConfig {
            operation_mean: 1.0,
            operation_floor_frac: 0.05,
            reconfig_mean: 1.0,
            reconfig_sd: 0.4,
            bandwidth_scale: 0.4,
            operation_correlation: 0.95,
        }
    }
}

/// Base operation prices, inversely proportional to capacity (economy of
/// scale) and normalized so their mean equals `mean`.
///
/// # Panics
///
/// Panics if any capacity is non-positive.
pub fn operation_base_prices(capacities: &[f64], mean: f64) -> Vec<f64> {
    assert!(
        capacities.iter().all(|&c| c > 0.0),
        "capacities must be positive"
    );
    let inv: Vec<f64> = capacities.iter().map(|&c| 1.0 / c).collect();
    let avg: f64 = inv.iter().sum::<f64>() / inv.len() as f64;
    inv.into_iter().map(|v| mean * v / avg).collect()
}

/// Per-slot operation prices: `price[t][i] ~ N(base_i, (base_i/2)²)`,
/// truncated below at `floor_frac · base_i` (§V-A sets the std-dev to half
/// the base price). Independent across slots; see
/// [`operation_price_series_ar1`] for the temporally correlated variant.
pub fn operation_price_series<R: Rng + ?Sized>(
    base: &[f64],
    num_slots: usize,
    floor_frac: f64,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    (0..num_slots)
        .map(|_| {
            base.iter()
                .map(|&b| truncated_normal(rng, b, b / 2.0, floor_frac * b))
                .collect()
        })
        .collect()
}

/// Per-slot operation prices as a stationary AR(1) process whose marginal
/// is the §V-A Gaussian `N(base_i, (base_i/2)²)`:
///
/// ```text
/// a_{i,t} = base_i + ρ·(a_{i,t−1} − base_i) + √(1−ρ²)·(base_i/2)·ξ_t
/// ```
///
/// truncated below at `floor_frac · base_i` after the recursion. `rho = 0`
/// reduces to independent redraws; one-minute slots call for high `rho`.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)`.
pub fn operation_price_series_ar1<R: Rng + ?Sized>(
    base: &[f64],
    num_slots: usize,
    floor_frac: f64,
    rho: f64,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
    let n = base.len();
    let mut state: Vec<f64> = base.iter().map(|&b| normal(rng, 0.0, b / 2.0)).collect();
    let mut out = Vec::with_capacity(num_slots);
    for _ in 0..num_slots {
        let mut row = Vec::with_capacity(n);
        for i in 0..n {
            let b = base[i];
            row.push((b + state[i]).max(floor_frac * b));
            state[i] = rho * state[i] + (1.0 - rho * rho).sqrt() * normal(rng, 0.0, b / 2.0);
        }
        out.push(row);
    }
    out
}

/// Static per-cloud reconfiguration prices: Gaussian with the negative tail
/// cut (§V-A), floored at 5% of the mean to stay strictly positive.
pub fn reconfig_prices<R: Rng + ?Sized>(
    num_clouds: usize,
    mean: f64,
    sd: f64,
    rng: &mut R,
) -> Vec<f64> {
    (0..num_clouds)
        .map(|_| truncated_normal(rng, mean, sd, 0.05 * mean))
        .collect()
}

/// Per-cloud migration prices `(b_out, b_in)`: clouds are assigned
/// round-robin to the three ISP clusters and inherit the cluster's rate
/// ratio scaled by `scale`, split evenly between the outgoing and incoming
/// direction, with a small per-cloud jitter.
pub fn bandwidth_prices<R: Rng + ?Sized>(
    num_clouds: usize,
    scale: f64,
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    let mut out = Vec::with_capacity(num_clouds);
    let mut inn = Vec::with_capacity(num_clouds);
    for i in 0..num_clouds {
        let rate = ISP_RATES[i % ISP_RATES.len()] * scale;
        let jitter = (1.0 + 0.05 * normal(rng, 0.0, 1.0)).clamp(0.8, 1.2);
        out.push(0.5 * rate * jitter);
        inn.push(0.5 * rate * jitter);
    }
    (out, inn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn base_prices_inverse_to_capacity() {
        let base = operation_base_prices(&[10.0, 20.0, 40.0], 1.0);
        assert!(base[0] > base[1] && base[1] > base[2]);
        let mean: f64 = base.iter().sum::<f64>() / 3.0;
        assert!((mean - 1.0).abs() < 1e-12);
        // Exact inverse proportionality.
        assert!((base[0] / base[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn operation_series_is_positive_and_volatile() {
        let mut rng = StdRng::seed_from_u64(6);
        let base = vec![1.0, 2.0];
        let series = operation_price_series(&base, 500, 0.05, &mut rng);
        assert_eq!(series.len(), 500);
        let mut distinct = std::collections::BTreeSet::new();
        for row in &series {
            assert_eq!(row.len(), 2);
            for (&p, &b) in row.iter().zip(&base) {
                assert!(p >= 0.05 * b);
            }
            distinct.insert((row[0] * 1e9) as i64);
        }
        assert!(distinct.len() > 400, "prices vary across slots");
    }

    #[test]
    fn operation_series_mean_tracks_base() {
        let mut rng = StdRng::seed_from_u64(16);
        let base = vec![2.0];
        let series = operation_price_series(&base, 50_000, 0.01, &mut rng);
        let mean: f64 = series.iter().map(|r| r[0]).sum::<f64>() / series.len() as f64;
        // Truncation at 1% of base biases the mean upward slightly.
        assert!((mean - 2.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn ar1_marginals_match_iid_statistics() {
        let mut rng = StdRng::seed_from_u64(21);
        let base = vec![2.0];
        let series = operation_price_series_ar1(&base, 60_000, 0.01, 0.95, &mut rng);
        let vals: Vec<f64> = series.iter().map(|r| r[0]).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        // Lag-1 autocorrelation near rho.
        let var: f64 =
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        let cov: f64 = vals
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (vals.len() - 1) as f64;
        let rho = cov / var;
        assert!((rho - 0.95).abs() < 0.05, "autocorrelation {rho}");
    }

    #[test]
    fn ar1_with_zero_rho_is_volatile() {
        let mut rng = StdRng::seed_from_u64(22);
        let series = operation_price_series_ar1(&[1.0], 1000, 0.05, 0.0, &mut rng);
        let mut changes = 0;
        for w in series.windows(2) {
            if (w[0][0] - w[1][0]).abs() > 0.1 {
                changes += 1;
            }
        }
        assert!(changes > 500, "independent redraws should jump often");
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn ar1_rejects_bad_rho() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = operation_price_series_ar1(&[1.0], 5, 1.5, 1.0, &mut rng);
    }

    #[test]
    fn reconfig_prices_positive() {
        let mut rng = StdRng::seed_from_u64(8);
        let prices = reconfig_prices(100, 1.0, 0.8, &mut rng);
        assert!(prices.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn bandwidth_clusters_follow_isp_ratios() {
        let mut rng = StdRng::seed_from_u64(9);
        let (out, inn) = bandwidth_prices(6, 1.0, &mut rng);
        // Clouds 0 and 3 share a cluster, as do 1/4 and 2/5.
        for i in 0..3 {
            let r1 = (out[i] + inn[i]) / ISP_RATES[i];
            let r2 = (out[i + 3] + inn[i + 3]) / ISP_RATES[i];
            assert!((r1 - 1.0).abs() < 0.25 && (r2 - 1.0).abs() < 0.25);
        }
        // Vodafone cluster (index 1) is the most expensive on average.
        assert!(out[1] > out[0] && out[1] > out[2]);
    }
}
