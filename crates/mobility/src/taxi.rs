//! Synthetic taxi-like mobility traces.
//!
//! **Substitution note (see DESIGN.md):** the paper replays the CRAWDAD
//! `roma/taxi` GPS dataset, which requires a gated download. The allocation
//! algorithm only observes the per-slot nearest-station attachment and the
//! user-to-station distance, so what must be preserved is *arbitrary,
//! temporally correlated, non-Markov motion at street speeds with moderate
//! handover frequency*. This generator produces exactly that: taxis run
//! trips between "hotspots" scattered around the metro stations, moving at
//! noisy street speeds with idle pauses between fares. The real dataset can
//! be dropped in through [`crate::trace`].

use crate::attach::MobilityInput;
use crate::geo::GeoPoint;
use crate::rand_util::{normal, truncated_normal};
use crate::stations::StationNetwork;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Kilometers per degree of latitude.
const KM_PER_DEG_LAT: f64 = 111.2;

/// Parameters of the synthetic taxi generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaxiConfig {
    /// Number of taxis (users).
    pub num_users: usize,
    /// Number of time slots.
    pub num_slots: usize,
    /// Slot length in seconds (the paper uses one-minute slots).
    pub slot_seconds: f64,
    /// Mean street speed in km/h.
    pub speed_kmh_mean: f64,
    /// Street-speed standard deviation in km/h.
    pub speed_kmh_sd: f64,
    /// Maximum idle pause between fares, in slots.
    pub pause_slots_max: usize,
    /// Spread (km std-dev) of trip endpoints around metro stations.
    pub hotspot_sd_km: f64,
}

impl Default for TaxiConfig {
    fn default() -> Self {
        TaxiConfig {
            num_users: 60,
            num_slots: 60,
            slot_seconds: 60.0,
            speed_kmh_mean: 30.0,
            speed_kmh_sd: 10.0,
            pause_slots_max: 4,
            hotspot_sd_km: 0.35,
        }
    }
}

/// Draws a hotspot: a point near a uniformly chosen station, jittered by a
/// 2-D Gaussian of `sd_km`.
fn hotspot<R: Rng + ?Sized>(net: &StationNetwork, sd_km: f64, rng: &mut R) -> GeoPoint {
    let s = net.station(rng.gen_range(0..net.len())).position;
    let km_per_deg_lon = KM_PER_DEG_LAT * s.lat.to_radians().cos();
    GeoPoint {
        lat: s.lat + normal(rng, 0.0, sd_km) / KM_PER_DEG_LAT,
        lon: s.lon + normal(rng, 0.0, sd_km) / km_per_deg_lon,
    }
}

/// Generates per-slot GPS positions for every taxi.
///
/// # Panics
///
/// Panics if `net` is empty.
pub fn generate_positions<R: Rng + ?Sized>(
    net: &StationNetwork,
    cfg: &TaxiConfig,
    rng: &mut R,
) -> Vec<Vec<GeoPoint>> {
    assert!(!net.is_empty(), "station network is empty");
    let mut all = Vec::with_capacity(cfg.num_users);
    for _ in 0..cfg.num_users {
        let mut pos = hotspot(net, cfg.hotspot_sd_km, rng);
        let mut dest = hotspot(net, cfg.hotspot_sd_km, rng);
        let mut speed_kmh = truncated_normal(rng, cfg.speed_kmh_mean, cfg.speed_kmh_sd, 5.0);
        let mut pause = 0usize;
        let mut row = Vec::with_capacity(cfg.num_slots);
        for _ in 0..cfg.num_slots {
            row.push(pos);
            if pause > 0 {
                pause -= 1;
                continue;
            }
            let step_km = speed_kmh * cfg.slot_seconds / 3600.0;
            let remaining = pos.distance_km(&dest);
            if remaining <= step_km {
                // Fare completed: idle, then a new trip at a new speed.
                pos = dest;
                pause = rng.gen_range(0..=cfg.pause_slots_max);
                dest = hotspot(net, cfg.hotspot_sd_km, rng);
                speed_kmh = truncated_normal(rng, cfg.speed_kmh_mean, cfg.speed_kmh_sd, 5.0);
            } else {
                // Advance along the straight line with lateral street noise.
                let f = step_km / remaining;
                let mut next = pos.lerp(&dest, f);
                let km_per_deg_lon = KM_PER_DEG_LAT * next.lat.to_radians().cos();
                next.lat += normal(rng, 0.0, 0.03) / KM_PER_DEG_LAT;
                next.lon += normal(rng, 0.0, 0.03) / km_per_deg_lon;
                pos = next;
            }
        }
        all.push(row);
    }
    all
}

/// Generates a full [`MobilityInput`] (positions attached to the nearest
/// stations of `net`).
///
/// # Panics
///
/// Panics if `net` is empty.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use mobility::taxi::{generate, TaxiConfig};
///
/// let net = mobility::rome_metro();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let input = generate(&net, &TaxiConfig::default(), &mut rng);
/// assert_eq!(input.num_users(), 60);
/// ```
pub fn generate<R: Rng + ?Sized>(
    net: &StationNetwork,
    cfg: &TaxiConfig,
    rng: &mut R,
) -> MobilityInput {
    let positions = generate_positions(net, cfg, rng);
    MobilityInput::from_positions(net, &positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stations::rome_metro;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> TaxiConfig {
        TaxiConfig {
            num_users: 30,
            num_slots: 60,
            ..TaxiConfig::default()
        }
    }

    #[test]
    fn speeds_are_physically_plausible() {
        let net = rome_metro();
        let mut rng = StdRng::seed_from_u64(8);
        let pos = generate_positions(&net, &cfg(), &mut rng);
        for row in &pos {
            for w in row.windows(2) {
                let km = w[0].distance_km(&w[1]);
                // One minute at <= ~80 km/h incl. jitter.
                assert!(km < 1.5, "taxi teleported {km} km in one slot");
            }
        }
    }

    #[test]
    fn taxis_stay_near_the_city() {
        let net = rome_metro();
        let (min, max) = net.bounding_box();
        let mut rng = StdRng::seed_from_u64(8);
        let pos = generate_positions(&net, &cfg(), &mut rng);
        for row in &pos {
            for p in row {
                assert!(p.lat > min.lat - 0.05 && p.lat < max.lat + 0.05);
                assert!(p.lon > min.lon - 0.05 && p.lon < max.lon + 0.05);
            }
        }
    }

    #[test]
    fn mobility_is_moderate_not_frantic() {
        // The paper notes "moderate mobility" in the Roma dataset: users
        // should switch stations sometimes, but far less than every slot.
        let net = rome_metro();
        let mut rng = StdRng::seed_from_u64(13);
        let input = generate(&net, &cfg(), &mut rng);
        let rate = input.handover_rate();
        assert!(rate > 0.01, "taxis should move between cells: {rate}");
        assert!(rate < 0.5, "taxis should not thrash: {rate}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let net = rome_metro();
        let a = generate(&net, &cfg(), &mut StdRng::seed_from_u64(21));
        let b = generate(&net, &cfg(), &mut StdRng::seed_from_u64(21));
        assert_eq!(a, b);
    }

    #[test]
    fn access_delay_is_bounded_by_city_scale() {
        let net = rome_metro();
        let mut rng = StdRng::seed_from_u64(4);
        let input = generate(&net, &cfg(), &mut rng);
        for j in 0..input.num_users() {
            for t in 0..input.num_slots() {
                assert!(input.delay(j, t) < 5.0, "delay {}", input.delay(j, t));
            }
        }
    }
}
