//! The paper's §V-D synthetic mobility: a uniform random walk on the metro
//! graph.
//!
//! Each user starts at an arbitrary station and, at every slot, moves to one
//! of the neighboring stations or stays, each with equal probability (e.g.
//! with three neighbors each of the four options has probability 25%).

use crate::attach::MobilityInput;
use crate::stations::StationNetwork;
use rand::Rng;

/// Generates random-walk mobility for `num_users` users over `num_slots`
/// slots on the station graph `net`.
///
/// Users attached to a station have zero access delay (they are *at* the
/// station), matching the synthetic experiment where only inter-cloud
/// distances matter.
///
/// # Panics
///
/// Panics if `net` is empty.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let net = mobility::rome_metro();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let input = mobility::random_walk::generate(&net, 40, 60, &mut rng);
/// assert_eq!(input.num_users(), 40);
/// assert_eq!(input.num_slots(), 60);
/// ```
pub fn generate<R: Rng + ?Sized>(
    net: &StationNetwork,
    num_users: usize,
    num_slots: usize,
    rng: &mut R,
) -> MobilityInput {
    assert!(!net.is_empty(), "station network is empty");
    let mut attachment = Vec::with_capacity(num_users);
    for _ in 0..num_users {
        let mut row = Vec::with_capacity(num_slots);
        let mut here = rng.gen_range(0..net.len());
        for _ in 0..num_slots {
            row.push(here);
            let nbrs = net.neighbors(here);
            // Options: stay here, or move to one of the neighbors.
            let pick = rng.gen_range(0..=nbrs.len());
            if pick > 0 {
                here = nbrs[pick - 1];
            }
        }
        attachment.push(row);
    }
    let access_delay = vec![vec![0.0; num_slots]; num_users];
    MobilityInput::new(net.len(), attachment, access_delay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stations::rome_metro;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moves_only_along_edges() {
        let net = rome_metro();
        let mut rng = StdRng::seed_from_u64(99);
        let input = generate(&net, 20, 50, &mut rng);
        for j in 0..20 {
            for t in 1..50 {
                let (prev, cur) = (input.attached(j, t - 1), input.attached(j, t));
                assert!(
                    prev == cur || net.neighbors(prev).contains(&cur),
                    "user {j} jumped {prev}→{cur}"
                );
            }
        }
    }

    #[test]
    fn stay_probability_is_roughly_uniform() {
        // On a path-graph interior node (2 neighbors), stay ≈ 1/3 of slots.
        let net = rome_metro();
        let mut rng = StdRng::seed_from_u64(5);
        let input = generate(&net, 400, 100, &mut rng);
        let rate = input.handover_rate();
        // Stations have 1–3 neighbors so the move probability is between
        // 1/2 and 3/4; handover rate must land in that band.
        assert!(rate > 0.45 && rate < 0.8, "handover rate {rate}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let net = rome_metro();
        let a = generate(&net, 5, 20, &mut StdRng::seed_from_u64(42));
        let b = generate(&net, 5, 20, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_access_delay() {
        let net = rome_metro();
        let input = generate(&net, 3, 10, &mut StdRng::seed_from_u64(1));
        for j in 0..3 {
            for t in 0..10 {
                assert_eq!(input.delay(j, t), 0.0);
            }
        }
    }
}
