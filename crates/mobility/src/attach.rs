//! Nearest-station attachment: turning raw positions into the per-slot
//! `(l_{j,t}, d(j, l_{j,t}))` pairs the allocator consumes.

use crate::geo::GeoPoint;
use crate::stations::StationNetwork;
use serde::{Deserialize, Serialize};

/// The mobility-derived inputs of the allocation problem: for each user `j`
/// and slot `t`, the attached edge cloud `l_{j,t}` and the access delay
/// `d(j, l_{j,t})` (expressed in kilometers; the service-quality price is
/// proportional to distance, per §V-A of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityInput {
    num_clouds: usize,
    num_slots: usize,
    /// `attachment[j][t]` = index of the edge cloud user `j` connects to.
    attachment: Vec<Vec<usize>>,
    /// `access_delay[j][t]` = distance between user `j` and its cloud.
    access_delay: Vec<Vec<f64>>,
}

impl MobilityInput {
    /// Builds an input from explicit attachment and delay tables.
    ///
    /// # Panics
    ///
    /// Panics if the tables are ragged, reference clouds out of range, or
    /// contain negative delays.
    pub fn new(
        num_clouds: usize,
        attachment: Vec<Vec<usize>>,
        access_delay: Vec<Vec<f64>>,
    ) -> Self {
        assert_eq!(
            attachment.len(),
            access_delay.len(),
            "attachment/delay user-count mismatch"
        );
        let num_slots = attachment.first().map_or(0, Vec::len);
        for (j, (a, d)) in attachment.iter().zip(&access_delay).enumerate() {
            assert_eq!(a.len(), num_slots, "user {j}: ragged attachment row");
            assert_eq!(d.len(), num_slots, "user {j}: ragged delay row");
            assert!(
                a.iter().all(|&i| i < num_clouds),
                "user {j}: cloud index out of range"
            );
            assert!(
                d.iter().all(|&v| v >= 0.0 && v.is_finite()),
                "user {j}: invalid delay"
            );
        }
        MobilityInput {
            num_clouds,
            num_slots,
            attachment,
            access_delay,
        }
    }

    /// Builds an input by attaching every per-slot position to its nearest
    /// station in `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is empty or position rows are ragged.
    pub fn from_positions(net: &StationNetwork, positions: &[Vec<GeoPoint>]) -> Self {
        let num_slots = positions.first().map_or(0, Vec::len);
        let mut attachment = Vec::with_capacity(positions.len());
        let mut access_delay = Vec::with_capacity(positions.len());
        for row in positions {
            assert_eq!(row.len(), num_slots, "ragged position row");
            let mut att = Vec::with_capacity(num_slots);
            let mut del = Vec::with_capacity(num_slots);
            for p in row {
                let s = net.nearest(p);
                att.push(s);
                del.push(net.station(s).position.distance_km(p));
            }
            attachment.push(att);
            access_delay.push(del);
        }
        MobilityInput {
            num_clouds: net.len(),
            num_slots,
            attachment,
            access_delay,
        }
    }

    /// Number of edge clouds.
    pub fn num_clouds(&self) -> usize {
        self.num_clouds
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.attachment.len()
    }

    /// Number of time slots.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// The cloud user `j` is attached to at slot `t`.
    pub fn attached(&self, j: usize, t: usize) -> usize {
        self.attachment[j][t]
    }

    /// The access delay of user `j` at slot `t`.
    pub fn delay(&self, j: usize, t: usize) -> f64 {
        self.access_delay[j][t]
    }

    /// How often each cloud is the attachment target, over all users and
    /// slots (the paper sizes capacities proportionally to this frequency).
    pub fn attachment_frequency(&self) -> Vec<usize> {
        let mut freq = vec![0usize; self.num_clouds];
        for row in &self.attachment {
            for &i in row {
                freq[i] += 1;
            }
        }
        freq
    }

    /// Fraction of consecutive-slot pairs in which a user switches clouds —
    /// a simple mobility-intensity metric.
    pub fn handover_rate(&self) -> f64 {
        let mut switches = 0usize;
        let mut pairs = 0usize;
        for row in &self.attachment {
            for w in row.windows(2) {
                pairs += 1;
                if w[0] != w[1] {
                    switches += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            switches as f64 / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stations::rome_metro;

    #[test]
    fn from_positions_attaches_to_nearest() {
        let net = rome_metro();
        // A user sitting exactly on each of two stations across two slots.
        let positions = vec![vec![net.station(0).position, net.station(3).position]];
        let input = MobilityInput::from_positions(&net, &positions);
        assert_eq!(input.num_users(), 1);
        assert_eq!(input.num_slots(), 2);
        assert_eq!(input.attached(0, 0), 0);
        assert_eq!(input.attached(0, 1), 3);
        assert!(input.delay(0, 0) < 1e-9);
    }

    #[test]
    fn handover_rate_counts_switches() {
        let input = MobilityInput::new(
            3,
            vec![vec![0, 0, 1, 1], vec![2, 2, 2, 2]],
            vec![vec![0.0; 4], vec![0.0; 4]],
        );
        // User 0 switches once in 3 pairs, user 1 never: 1/6.
        assert!((input.handover_rate() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn attachment_frequency_sums_to_users_times_slots() {
        let input = MobilityInput::new(
            2,
            vec![vec![0, 1, 1], vec![0, 0, 0]],
            vec![vec![0.0; 3], vec![0.0; 3]],
        );
        let f = input.attachment_frequency();
        assert_eq!(f, vec![4, 2]);
        assert_eq!(f.iter().sum::<usize>(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_cloud_index() {
        MobilityInput::new(2, vec![vec![5]], vec![vec![0.0]]);
    }
}
