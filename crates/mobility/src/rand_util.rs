//! The handful of random distributions the generators need, implemented on
//! top of `rand` alone (the crate deliberately avoids `rand_distr`).

use rand::Rng;

/// Samples a standard normal variate by the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 (log of zero).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, sd²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Samples `N(mean, sd²)` truncated below at `floor` by resampling (with a
/// clamp fallback after 64 rejections, so the call always terminates).
pub fn truncated_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, floor: f64) -> f64 {
    for _ in 0..64 {
        let v = normal(rng, mean, sd);
        if v >= floor {
            return v;
        }
    }
    floor
}

/// Samples a Pareto variate with scale `xm > 0` and shape `alpha > 0`
/// (density `∝ x^{-(alpha+1)}` for `x ≥ xm`) — the "power" workload
/// distribution of the paper.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, xm: f64, alpha: f64) -> f64 {
    let u: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    xm / u.powf(1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_about_right() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let v = normal(&mut rng, 5.0, 2.0);
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(truncated_normal(&mut rng, 0.0, 1.0, 0.5) >= 0.5);
        }
    }

    #[test]
    fn pareto_respects_scale_and_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut max = 0.0f64;
        for _ in 0..100_000 {
            let v = pareto(&mut rng, 1.0, 2.0);
            assert!(v >= 1.0);
            max = max.max(v);
        }
        assert!(max > 20.0, "tail should reach far, max {max}");
    }

    #[test]
    fn pareto_mean_matches_theory() {
        // E[X] = alpha·xm/(alpha−1) for alpha > 1; alpha=3, xm=2 → 3.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 300_000;
        let mean: f64 = (0..n).map(|_| pareto(&mut rng, 2.0, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }
}
