//! `mobility` — input-data substrates for edge-cloud experiments.
//!
//! The ICDCS 2017 paper's evaluation drives its online resource-allocation
//! algorithm with (a) the CRAWDAD Roma taxi GPS traces attached to 15 Rome
//! metro stations hosting edge clouds, and (b) synthetic random-walk
//! mobility on the metro graph. The taxi dataset is a gated download, so
//! this crate ships a statistically equivalent **synthetic taxi-trip
//! generator** ([`taxi`]) alongside a parser for the real CRAWDAD text
//! format ([`trace`]) so the original data can be dropped in.
//!
//! Components:
//!
//! * [`geo`] — GPS points and haversine distances.
//! * [`stations`] — the 15-station central Rome metro network (embedded
//!   coordinates, line adjacency).
//! * [`taxi`] — synthetic taxi-like trips (hotspot-to-hotspot waypoint
//!   motion with street-speed noise and pauses).
//! * [`random_walk`] — the paper's §V-D metro-graph random walk.
//! * [`hostile`] — overload-inducing mobility (flash crowds, commute
//!   waves) for the robustness experiments.
//! * [`attach`] — nearest-station attachment, producing the per-slot
//!   `(l_{j,t}, d(j, l_{j,t}))` inputs the allocator consumes.
//! * [`workload`] — power-law / uniform / normal user workloads.
//! * [`prices`] — operation, reconfiguration, and bandwidth price processes
//!   exactly as described in §V-A.
//! * [`stats`] — trace statistics (dwell times, handover rates) used to
//!   validate the CRAWDAD substitution.
//! * [`rand_util`] — the few distributions needed, built on `rand` alone.

pub mod attach;
pub mod geo;
pub mod hostile;
pub mod prices;
pub mod rand_util;
pub mod random_walk;
pub mod stations;
pub mod stats;
pub mod taxi;
pub mod trace;
pub mod workload;

pub use attach::MobilityInput;
pub use geo::GeoPoint;
pub use stations::{rome_metro, Station, StationNetwork};
