//! Deterministic fault injection for resilience experiments.
//!
//! A [`FaultPlan`] is part of the [`crate::scenario::Scenario`] description:
//! after the repetition's instance is generated (seeded, as usual), the
//! plan corrupts it in place. The online pipeline then has to survive the
//! corruption — sanitization and the degradation ladder (see
//! `edgealloc::health`) decide each slot, and the damage shows up in the
//! outcome's health summaries instead of as a crash.
//!
//! The fault classes mirror what real telemetry feeds produce:
//!
//! * [`FaultKind::PriceNan`] / [`FaultKind::PriceSpike`] — a market feed
//!   emitting garbage or a flash spike for one cloud in one slot;
//! * [`FaultKind::ZeroCapacity`] — a cloud going dark for the whole
//!   horizon;
//! * [`FaultKind::DemandSurge`] — workloads multiplied beyond what the
//!   system was provisioned for (possibly infeasible);
//! * [`FaultKind::DegenerateDelays`] — a delay matrix collapsing to
//!   non-finite entries, as when a topology probe times out.

use edgealloc::instance::Instance;
use serde::{Deserialize, Serialize};

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Operation price of `cloud` at `slot` becomes NaN.
    PriceNan {
        /// Slot index (out-of-range slots are ignored).
        slot: usize,
        /// Cloud index (out-of-range clouds are ignored).
        cloud: usize,
    },
    /// Operation price of `cloud` at `slot` becomes `value` (may be
    /// negative or infinite — that is the point).
    PriceSpike {
        /// Slot index.
        slot: usize,
        /// Cloud index.
        cloud: usize,
        /// The injected price.
        value: f64,
    },
    /// Capacity of `cloud` becomes zero for the whole horizon.
    ZeroCapacity {
        /// Cloud index.
        cloud: usize,
    },
    /// Every workload is multiplied by `factor` (a factor above
    /// `1/utilization` makes the instance structurally infeasible).
    DemandSurge {
        /// Workload multiplier.
        factor: f64,
    },
    /// Every off-diagonal inter-cloud delay becomes infinite.
    DegenerateDelays,
}

impl FaultKind {
    /// Applies this fault to the instance. Out-of-range indices are
    /// ignored: a plan written for a large scenario may be reused on a
    /// smaller one.
    pub fn apply(&self, inst: &mut Instance) {
        match *self {
            FaultKind::PriceNan { slot, cloud } => {
                if slot < inst.num_slots() && cloud < inst.num_clouds() {
                    inst.inject_operation_price(slot, cloud, f64::NAN);
                }
            }
            FaultKind::PriceSpike { slot, cloud, value } => {
                if slot < inst.num_slots() && cloud < inst.num_clouds() {
                    inst.inject_operation_price(slot, cloud, value);
                }
            }
            FaultKind::ZeroCapacity { cloud } => {
                if cloud < inst.num_clouds() {
                    inst.system_mut().inject_capacity(cloud, 0.0);
                }
            }
            FaultKind::DemandSurge { factor } => {
                for j in 0..inst.num_users() {
                    let surged = inst.workload(j) * factor;
                    inst.inject_workload(j, surged);
                }
            }
            FaultKind::DegenerateDelays => {
                let n = inst.num_clouds();
                for i in 0..n {
                    for k in 0..n {
                        if i != k {
                            inst.system_mut().inject_delay(i, k, f64::INFINITY);
                        }
                    }
                }
            }
        }
    }
}

/// One injected *shard-worker* fault class (see [`ShardFaultPlan`]).
///
/// Unlike [`FaultKind`], which corrupts the generated instance before the
/// run, these faults attack the sharded solver *while it runs*: they map
/// onto [`shard::ChaosConfig`] and fire inside the coordinator's per-shard
/// solve attempts, exercising the retry ladder, straggler carry-forward,
/// offer quarantine, and circuit breakers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShardFaultKind {
    /// Each shard solve attempt panics with probability `prob`.
    PanicWithProbability {
        /// Panic probability per attempt, clamped to `[0, 1]` at roll time.
        prob: f64,
    },
    /// Each shard solve attempt straggles for `millis` with probability
    /// `prob` before solving.
    InjectedDelay {
        /// Delay probability per attempt.
        prob: f64,
        /// Injected delay length in milliseconds.
        millis: f64,
    },
    /// Each fresh shard offer is corrupted (NaN/Inf/negative entry) with
    /// probability `prob` before quarantine screening sees it.
    OfferCorruption {
        /// Corruption probability per offer.
        prob: f64,
    },
}

/// The shard-worker faults injected into every repetition of a scenario.
///
/// An empty plan is inert and keeps the sharded algorithm's trajectory
/// bit-identical to a run without fault injection wired in. Faults are
/// deterministic given `seed` (see [`shard::ChaosConfig::roll`]), so a
/// chaos run is exactly reproducible.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardFaultPlan {
    /// Seed for the deterministic fault rolls.
    #[serde(default)]
    pub seed: u64,
    /// Fault classes, merged into one [`shard::ChaosConfig`]. Listing the
    /// same class twice keeps the last occurrence.
    #[serde(default)]
    pub faults: Vec<ShardFaultKind>,
}

impl ShardFaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        ShardFaultPlan::default()
    }

    /// Whether the plan injects anything.
    pub fn is_empty(&self) -> bool {
        self.to_chaos().is_none()
    }

    /// The [`shard::ChaosConfig`] this plan describes, or `None` when the
    /// plan cannot fire anything (no faults, or all probabilities zero).
    pub fn to_chaos(&self) -> Option<shard::ChaosConfig> {
        let mut chaos = shard::ChaosConfig {
            seed: self.seed,
            ..shard::ChaosConfig::disabled()
        };
        for fault in &self.faults {
            match *fault {
                ShardFaultKind::PanicWithProbability { prob } => chaos.panic_prob = prob,
                ShardFaultKind::InjectedDelay { prob, millis } => {
                    chaos.delay_prob = prob;
                    chaos.delay_ms = millis;
                }
                ShardFaultKind::OfferCorruption { prob } => chaos.corrupt_prob = prob,
            }
        }
        chaos.is_active().then_some(chaos)
    }

    /// Parses the CLI spec format used by the bench binaries'
    /// `--shard-faults` flag: comma-separated `key=value` entries, e.g.
    /// `panic=0.1,delay=0.2:120,corrupt=0.05,seed=7`.
    ///
    /// - `panic=P` — panic probability;
    /// - `delay=P:MS` — delay probability and length in milliseconds;
    /// - `corrupt=P` — offer-corruption probability;
    /// - `seed=N` — fault-roll seed (default 0).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed entry. Besides the
    /// shape, values are validated: probabilities must be finite and in
    /// `[0, 1]` (so `panic=7` is rejected, not silently clamped at roll
    /// time), and delay lengths must be finite and non-negative.
    pub fn from_spec(spec: &str) -> std::result::Result<Self, String> {
        let mut plan = ShardFaultPlan::none();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("shard-fault entry `{entry}` is not `key=value`"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |v: &str| {
                let p = v
                    .parse::<f64>()
                    .map_err(|_| format!("shard-fault `{key}` has non-numeric value `{v}`"))?;
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(format!(
                        "shard-fault `{key}` probability `{v}` must be in [0, 1]"
                    ));
                }
                Ok(p)
            };
            let millis = |v: &str| {
                let ms = v
                    .parse::<f64>()
                    .map_err(|_| format!("shard-fault `{key}` has non-numeric millis `{v}`"))?;
                if !ms.is_finite() || ms < 0.0 {
                    return Err(format!(
                        "shard-fault `{key}` millis `{v}` must be finite and non-negative"
                    ));
                }
                Ok(ms)
            };
            match key {
                "panic" => plan
                    .faults
                    .push(ShardFaultKind::PanicWithProbability { prob: prob(value)? }),
                "delay" => {
                    let (p, ms) = value.split_once(':').ok_or_else(|| {
                        format!("shard-fault `delay` needs `prob:millis`, got `{value}`")
                    })?;
                    plan.faults.push(ShardFaultKind::InjectedDelay {
                        prob: prob(p)?,
                        millis: millis(ms)?,
                    });
                }
                "corrupt" => plan
                    .faults
                    .push(ShardFaultKind::OfferCorruption { prob: prob(value)? }),
                "seed" => {
                    plan.seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("shard-fault seed `{value}` is not a u64"))?;
                }
                other => return Err(format!("unknown shard-fault key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// The set of faults injected into every repetition of a scenario.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Faults, applied in order.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies every fault, in order, to the instance.
    pub fn apply(&self, inst: &mut Instance) {
        for fault in &self.faults {
            fault.apply(inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> Instance {
        Instance::fig1_example(2.1, true)
    }

    #[test]
    fn price_nan_corrupts_exactly_one_entry() {
        let mut inst = instance();
        FaultKind::PriceNan { slot: 1, cloud: 0 }.apply(&mut inst);
        assert!(inst.operation_prices_at(1)[0].is_nan());
        assert!(inst.operation_prices_at(0)[0].is_finite());
        assert!(inst.operation_prices_at(1)[1].is_finite());
    }

    #[test]
    fn out_of_range_faults_are_ignored() {
        let mut inst = instance();
        let reference = instance();
        FaultKind::PriceNan { slot: 99, cloud: 0 }.apply(&mut inst);
        FaultKind::ZeroCapacity { cloud: 99 }.apply(&mut inst);
        for t in 0..inst.num_slots() {
            assert_eq!(
                inst.operation_prices_at(t),
                reference.operation_prices_at(t)
            );
        }
        assert_eq!(inst.system().capacities(), reference.system().capacities());
    }

    #[test]
    fn demand_surge_scales_workloads() {
        let mut inst = instance();
        let before = inst.workload(0);
        FaultKind::DemandSurge { factor: 3.0 }.apply(&mut inst);
        assert!((inst.workload(0) - 3.0 * before).abs() < 1e-12);
    }

    #[test]
    fn degenerate_delays_spare_the_diagonal() {
        let mut inst = instance();
        FaultKind::DegenerateDelays.apply(&mut inst);
        let n = inst.num_clouds();
        for i in 0..n {
            assert_eq!(inst.system().delay(i, i), 0.0);
            for k in 0..n {
                if i != k {
                    assert!(inst.system().delay(i, k).is_infinite());
                }
            }
        }
    }

    #[test]
    fn shard_fault_plan_round_trips_through_json() {
        let plan = ShardFaultPlan {
            seed: 7,
            faults: vec![
                ShardFaultKind::PanicWithProbability { prob: 0.1 },
                ShardFaultKind::InjectedDelay {
                    prob: 0.2,
                    millis: 120.0,
                },
                ShardFaultKind::OfferCorruption { prob: 0.05 },
            ],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: ShardFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert!(!back.is_empty());
        assert!(ShardFaultPlan::none().is_empty());
    }

    #[test]
    fn shard_fault_plan_maps_onto_chaos_config() {
        let plan = ShardFaultPlan {
            seed: 9,
            faults: vec![
                ShardFaultKind::PanicWithProbability { prob: 0.15 },
                ShardFaultKind::InjectedDelay {
                    prob: 0.25,
                    millis: 80.0,
                },
                ShardFaultKind::OfferCorruption { prob: 0.1 },
            ],
        };
        let chaos = plan.to_chaos().expect("active plan");
        assert_eq!(chaos.seed, 9);
        assert_eq!(chaos.panic_prob, 0.15);
        assert_eq!(chaos.delay_prob, 0.25);
        assert_eq!(chaos.delay_ms, 80.0);
        assert_eq!(chaos.corrupt_prob, 0.1);
        // All-zero probabilities are inert even with entries present.
        let zeroed = ShardFaultPlan {
            seed: 1,
            faults: vec![ShardFaultKind::PanicWithProbability { prob: 0.0 }],
        };
        assert!(zeroed.to_chaos().is_none());
        assert!(zeroed.is_empty());
    }

    #[test]
    fn shard_fault_spec_parses_the_documented_format() {
        let plan =
            ShardFaultPlan::from_spec("panic=0.1,delay=0.2:120,corrupt=0.05,seed=7").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.faults.len(), 3);
        let chaos = plan.to_chaos().expect("active plan");
        assert_eq!(chaos.panic_prob, 0.1);
        assert_eq!(chaos.delay_prob, 0.2);
        assert_eq!(chaos.delay_ms, 120.0);
        assert_eq!(chaos.corrupt_prob, 0.05);
        assert!(ShardFaultPlan::from_spec("").unwrap().is_empty());
        assert!(ShardFaultPlan::from_spec("panic=0.5")
            .unwrap()
            .to_chaos()
            .is_some());
    }

    #[test]
    fn malformed_shard_fault_specs_report_the_entry() {
        for bad in [
            "panic",
            "panic=x",
            "delay=0.5",
            "delay=0.5:abc",
            "bogus=1",
            "seed=-1",
            // Out-of-range or non-finite values are rejected with a
            // descriptive message, not clamped at roll time.
            "panic=7",
            "panic=-0.1",
            "panic=inf",
            "panic=NaN",
            "delay=1.5:10",
            "delay=0.5:inf",
            "delay=0.5:-3",
            "corrupt=-0.1",
            "corrupt=2",
        ] {
            let err = ShardFaultPlan::from_spec(bad).unwrap_err();
            assert!(!err.is_empty(), "spec `{bad}` produced an empty error");
        }
        // Boundary probabilities are legal.
        assert!(ShardFaultPlan::from_spec("panic=0,corrupt=1,delay=1:0").is_ok());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan {
            faults: vec![
                FaultKind::PriceSpike {
                    slot: 2,
                    cloud: 1,
                    value: 1e12,
                },
                FaultKind::ZeroCapacity { cloud: 0 },
                FaultKind::DemandSurge { factor: 2.5 },
            ],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert!(!back.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
