//! Deterministic fault injection for resilience experiments.
//!
//! A [`FaultPlan`] is part of the [`crate::scenario::Scenario`] description:
//! after the repetition's instance is generated (seeded, as usual), the
//! plan corrupts it in place. The online pipeline then has to survive the
//! corruption — sanitization and the degradation ladder (see
//! `edgealloc::health`) decide each slot, and the damage shows up in the
//! outcome's health summaries instead of as a crash.
//!
//! The fault classes mirror what real telemetry feeds produce:
//!
//! * [`FaultKind::PriceNan`] / [`FaultKind::PriceSpike`] — a market feed
//!   emitting garbage or a flash spike for one cloud in one slot;
//! * [`FaultKind::ZeroCapacity`] — a cloud going dark for the whole
//!   horizon;
//! * [`FaultKind::DemandSurge`] — workloads multiplied beyond what the
//!   system was provisioned for (possibly infeasible);
//! * [`FaultKind::DegenerateDelays`] — a delay matrix collapsing to
//!   non-finite entries, as when a topology probe times out.

use edgealloc::instance::Instance;
use serde::{Deserialize, Serialize};

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Operation price of `cloud` at `slot` becomes NaN.
    PriceNan {
        /// Slot index (out-of-range slots are ignored).
        slot: usize,
        /// Cloud index (out-of-range clouds are ignored).
        cloud: usize,
    },
    /// Operation price of `cloud` at `slot` becomes `value` (may be
    /// negative or infinite — that is the point).
    PriceSpike {
        /// Slot index.
        slot: usize,
        /// Cloud index.
        cloud: usize,
        /// The injected price.
        value: f64,
    },
    /// Capacity of `cloud` becomes zero for the whole horizon.
    ZeroCapacity {
        /// Cloud index.
        cloud: usize,
    },
    /// Every workload is multiplied by `factor` (a factor above
    /// `1/utilization` makes the instance structurally infeasible).
    DemandSurge {
        /// Workload multiplier.
        factor: f64,
    },
    /// Every off-diagonal inter-cloud delay becomes infinite.
    DegenerateDelays,
}

impl FaultKind {
    /// Applies this fault to the instance. Out-of-range indices are
    /// ignored: a plan written for a large scenario may be reused on a
    /// smaller one.
    pub fn apply(&self, inst: &mut Instance) {
        match *self {
            FaultKind::PriceNan { slot, cloud } => {
                if slot < inst.num_slots() && cloud < inst.num_clouds() {
                    inst.inject_operation_price(slot, cloud, f64::NAN);
                }
            }
            FaultKind::PriceSpike { slot, cloud, value } => {
                if slot < inst.num_slots() && cloud < inst.num_clouds() {
                    inst.inject_operation_price(slot, cloud, value);
                }
            }
            FaultKind::ZeroCapacity { cloud } => {
                if cloud < inst.num_clouds() {
                    inst.system_mut().inject_capacity(cloud, 0.0);
                }
            }
            FaultKind::DemandSurge { factor } => {
                for j in 0..inst.num_users() {
                    let surged = inst.workload(j) * factor;
                    inst.inject_workload(j, surged);
                }
            }
            FaultKind::DegenerateDelays => {
                let n = inst.num_clouds();
                for i in 0..n {
                    for k in 0..n {
                        if i != k {
                            inst.system_mut().inject_delay(i, k, f64::INFINITY);
                        }
                    }
                }
            }
        }
    }
}

/// The set of faults injected into every repetition of a scenario.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Faults, applied in order.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies every fault, in order, to the instance.
    pub fn apply(&self, inst: &mut Instance) {
        for fault in &self.faults {
            fault.apply(inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> Instance {
        Instance::fig1_example(2.1, true)
    }

    #[test]
    fn price_nan_corrupts_exactly_one_entry() {
        let mut inst = instance();
        FaultKind::PriceNan { slot: 1, cloud: 0 }.apply(&mut inst);
        assert!(inst.operation_prices_at(1)[0].is_nan());
        assert!(inst.operation_prices_at(0)[0].is_finite());
        assert!(inst.operation_prices_at(1)[1].is_finite());
    }

    #[test]
    fn out_of_range_faults_are_ignored() {
        let mut inst = instance();
        let reference = instance();
        FaultKind::PriceNan { slot: 99, cloud: 0 }.apply(&mut inst);
        FaultKind::ZeroCapacity { cloud: 99 }.apply(&mut inst);
        for t in 0..inst.num_slots() {
            assert_eq!(
                inst.operation_prices_at(t),
                reference.operation_prices_at(t)
            );
        }
        assert_eq!(inst.system().capacities(), reference.system().capacities());
    }

    #[test]
    fn demand_surge_scales_workloads() {
        let mut inst = instance();
        let before = inst.workload(0);
        FaultKind::DemandSurge { factor: 3.0 }.apply(&mut inst);
        assert!((inst.workload(0) - 3.0 * before).abs() < 1e-12);
    }

    #[test]
    fn degenerate_delays_spare_the_diagonal() {
        let mut inst = instance();
        FaultKind::DegenerateDelays.apply(&mut inst);
        let n = inst.num_clouds();
        for i in 0..n {
            assert_eq!(inst.system().delay(i, i), 0.0);
            for k in 0..n {
                if i != k {
                    assert!(inst.system().delay(i, k).is_infinite());
                }
            }
        }
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan {
            faults: vec![
                FaultKind::PriceSpike {
                    slot: 2,
                    cloud: 1,
                    value: 1e12,
                },
                FaultKind::ZeroCapacity { cloud: 0 },
                FaultKind::DemandSurge { factor: 2.5 },
            ],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert!(!back.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
