//! Scenario execution: instance generation, algorithm runs, aggregation.

use crate::scenario::{MobilityKind, Scenario};
use edgealloc::algorithms::solve_offline_with;
use edgealloc::cost::{evaluate_trajectory, CostBreakdown};
use edgealloc::instance::{Instance, SyntheticConfig};
use edgealloc::ratio::{competitive_ratio, mean_sd};
use edgealloc::Result;
use mobility::taxi::TaxiConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Results of one algorithm across all repetitions of a scenario.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AlgorithmOutcome {
    /// Algorithm label.
    pub name: String,
    /// Empirical competitive ratio per repetition.
    pub ratios: Vec<f64>,
    /// Total cost per repetition.
    pub totals: Vec<f64>,
    /// Cost breakdown per repetition.
    pub breakdowns: Vec<CostBreakdown>,
}

impl AlgorithmOutcome {
    /// Mean empirical competitive ratio.
    pub fn mean_ratio(&self) -> f64 {
        mean_sd(&self.ratios).0
    }

    /// Standard deviation of the ratio across repetitions.
    pub fn sd_ratio(&self) -> f64 {
        mean_sd(&self.ratios).1
    }
}

/// Results of a whole scenario.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Offline-opt totals per repetition (the normalizer).
    pub offline_totals: Vec<f64>,
    /// Per-algorithm results, in roster order.
    pub algorithms: Vec<AlgorithmOutcome>,
}

/// Builds the instance of one repetition.
///
/// # Errors
///
/// Propagates instance validation failures.
pub fn build_instance(scenario: &Scenario, repetition: usize) -> Result<Instance> {
    let net = mobility::rome_metro();
    let mut rng = StdRng::seed_from_u64(scenario.seed.wrapping_add(repetition as u64));
    let mob = match scenario.mobility {
        MobilityKind::Taxi { num_users } => {
            let cfg = TaxiConfig {
                num_users,
                num_slots: scenario.num_slots,
                ..scenario.taxi.clone()
            };
            mobility::taxi::generate(&net, &cfg, &mut rng)
        }
        MobilityKind::RandomWalk { num_users } => {
            mobility::random_walk::generate(&net, num_users, scenario.num_slots, &mut rng)
        }
    };
    let cfg = SyntheticConfig {
        workload: scenario.workload,
        weights: scenario.weights(),
        prices: scenario.prices.clone(),
        delay_per_km: scenario.delay_per_km,
        utilization: scenario.utilization,
    };
    Instance::synthetic_with(&net, mob, &cfg, &mut rng)
}

/// One repetition's raw outcome: offline total plus per-algorithm costs.
type RepetitionOutcome = (f64, Vec<CostBreakdown>);

/// One repetition: offline total plus each algorithm's cost.
fn run_repetition(scenario: &Scenario, repetition: usize) -> Result<RepetitionOutcome> {
    let inst = build_instance(scenario, repetition)?;
    // 1e-6 relative accuracy is ample for ratio reporting and saves a few
    // interior-point iterations on every (large) horizon LP.
    let offline = solve_offline_with(
        &inst,
        &::optim::lp::IpmOptions {
            tol: 1e-6,
            ..::optim::lp::IpmOptions::default()
        },
    )?;
    let mut results = Vec::with_capacity(scenario.algorithms.len());
    for kind in &scenario.algorithms {
        let mut alg = kind.build();
        let traj = edgealloc::algorithms::run_online(&inst, alg.as_mut())?;
        results.push(evaluate_trajectory(&inst, &traj.allocations));
    }
    Ok((offline.cost.total(), results))
}

/// Runs every repetition of a scenario, in parallel across repetitions, and
/// aggregates the outcomes.
///
/// # Errors
///
/// Propagates the first failure from any repetition.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioOutcome> {
    let reps = scenario.repetitions.max(1);
    let mut per_rep: Vec<Option<Result<RepetitionOutcome>>> = (0..reps).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (r, slot) in per_rep.iter_mut().enumerate() {
            handles.push(scope.spawn(move |_| {
                *slot = Some(run_repetition(scenario, r));
            }));
        }
        for h in handles {
            h.join().expect("repetition thread panicked");
        }
    })
    .expect("crossbeam scope");

    let mut offline_totals = Vec::with_capacity(reps);
    let mut algorithms: Vec<AlgorithmOutcome> = scenario
        .algorithms
        .iter()
        .map(|k| AlgorithmOutcome {
            name: k.label(),
            ratios: Vec::with_capacity(reps),
            totals: Vec::with_capacity(reps),
            breakdowns: Vec::with_capacity(reps),
        })
        .collect();
    for slot in per_rep {
        let (offline_total, breakdowns) = slot.expect("repetition ran")?;
        offline_totals.push(offline_total);
        for (a, bd) in algorithms.iter_mut().zip(breakdowns) {
            a.ratios.push(competitive_ratio(bd.total(), offline_total));
            a.totals.push(bd.total());
            a.breakdowns.push(bd);
        }
    }
    Ok(ScenarioOutcome {
        name: scenario.name.clone(),
        offline_totals,
        algorithms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AlgorithmKind;

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "tiny".into(),
            mobility: MobilityKind::RandomWalk { num_users: 5 },
            num_slots: 5,
            algorithms: vec![AlgorithmKind::Greedy, AlgorithmKind::Approx { eps: 0.5 }],
            repetitions: 2,
            seed: 11,
            ..Scenario::default()
        }
    }

    #[test]
    fn run_scenario_produces_ratios_at_least_one() {
        let outcome = run_scenario(&tiny_scenario()).unwrap();
        assert_eq!(outcome.offline_totals.len(), 2);
        for alg in &outcome.algorithms {
            assert_eq!(alg.ratios.len(), 2);
            for &r in &alg.ratios {
                assert!(r >= 1.0 - 1e-4, "{}: ratio {r} below 1", alg.name);
            }
        }
    }

    #[test]
    fn repetitions_are_deterministic_given_seed() {
        let a = run_scenario(&tiny_scenario()).unwrap();
        let b = run_scenario(&tiny_scenario()).unwrap();
        for (x, y) in a.algorithms.iter().zip(&b.algorithms) {
            for (rx, ry) in x.ratios.iter().zip(&y.ratios) {
                assert!((rx - ry).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn build_instance_respects_user_count() {
        let inst = build_instance(&tiny_scenario(), 0).unwrap();
        assert_eq!(inst.num_users(), 5);
        assert_eq!(inst.num_slots(), 5);
    }
}
