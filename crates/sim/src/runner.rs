//! Scenario execution: instance generation, algorithm runs, aggregation.
//!
//! Repetitions run in parallel and are *isolated*: a panic or error inside
//! one repetition is captured as a [`RepFailure`] instead of tearing down
//! the whole scenario. [`run_scenario`] errors only when every repetition
//! failed — partial data with recorded failures beats no data.
//!
//! Parallelism is sized by the process-global
//! [`optim::parallel::WorkerBudget`]: when a sweep harness already fans
//! scenario *points* across every core, the repetition fan-out inside each
//! point finds the budget drained and runs inline instead of piling
//! `points × repetitions` runnable threads onto the scheduler.

use crate::scenario::{MobilityKind, Scenario};
use edgealloc::algorithms::solve_offline_with;
use edgealloc::cost::{evaluate_trajectory, CostBreakdown};
use edgealloc::health::{HealthSummary, RungCounts};
use edgealloc::instance::{Instance, SyntheticConfig};
use edgealloc::ratio::{competitive_ratio, mean_sd};
use edgealloc::Result;
use mobility::taxi::TaxiConfig;
use optim::parallel::{try_parallel_map_budgeted, WorkerBudget};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Results of one algorithm across all repetitions of a scenario.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AlgorithmOutcome {
    /// Algorithm label.
    pub name: String,
    /// Empirical competitive ratio per repetition.
    pub ratios: Vec<f64>,
    /// Total cost per repetition.
    pub totals: Vec<f64>,
    /// Cost breakdown per repetition.
    pub breakdowns: Vec<CostBreakdown>,
    /// Degradation-ladder summary per repetition (same indexing as
    /// `ratios`).
    pub health: Vec<HealthSummary>,
}

impl AlgorithmOutcome {
    /// Ratios of the repetitions whose normalizer existed: a repetition
    /// whose offline solve failed has a NaN ratio, which must not poison
    /// the scenario aggregate.
    fn defined_ratios(&self) -> Vec<f64> {
        self.ratios
            .iter()
            .copied()
            .filter(|r| r.is_finite())
            .collect()
    }

    /// Mean empirical competitive ratio over repetitions with a defined
    /// ratio (NaN when there are none).
    pub fn mean_ratio(&self) -> f64 {
        let defined = self.defined_ratios();
        if defined.is_empty() {
            f64::NAN
        } else {
            mean_sd(&defined).0
        }
    }

    /// Standard deviation of the ratio across repetitions with a defined
    /// ratio (NaN when there are none).
    pub fn sd_ratio(&self) -> f64 {
        let defined = self.defined_ratios();
        if defined.is_empty() {
            f64::NAN
        } else {
            mean_sd(&defined).1
        }
    }

    /// All repetitions' health merged into one summary.
    pub fn merged_health(&self) -> HealthSummary {
        let mut merged = HealthSummary::default();
        for h in &self.health {
            merged.merge(h);
        }
        merged
    }

    /// Fraction of slots (across all repetitions) that degraded.
    pub fn degraded_slot_fraction(&self) -> f64 {
        self.merged_health().degraded_fraction()
    }

    /// Per-rung slot counts across all repetitions.
    pub fn fallback_totals(&self) -> RungCounts {
        self.merged_health().rungs
    }
}

/// One repetition that produced no data, and why.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RepFailure {
    /// Repetition index.
    pub repetition: usize,
    /// Whether the repetition produced no data at all (`true`), or ran to
    /// completion with a degraded normalizer / sanitized inputs (`false`).
    pub fatal: bool,
    /// What happened.
    pub message: String,
}

/// Results of a whole scenario.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Offline-opt totals per surviving repetition (the normalizer); NaN
    /// when the offline solve itself failed (see `failures`).
    pub offline_totals: Vec<f64>,
    /// Per-algorithm results, in roster order.
    pub algorithms: Vec<AlgorithmOutcome>,
    /// Repetitions that failed or degraded, with messages. Empty on a
    /// fully healthy run.
    pub failures: Vec<RepFailure>,
}

impl ScenarioOutcome {
    /// Whether every repetition completed on the clean primary path.
    pub fn fully_healthy(&self) -> bool {
        self.failures.is_empty()
            && self
                .algorithms
                .iter()
                .all(|a| a.merged_health().degraded_slots == 0)
    }
}

/// Builds the instance of one repetition, with the scenario's faults (if
/// any) injected.
///
/// # Errors
///
/// Propagates instance validation failures.
pub fn build_instance(scenario: &Scenario, repetition: usize) -> Result<Instance> {
    let net = mobility::rome_metro();
    let mut rng = StdRng::seed_from_u64(scenario.seed.wrapping_add(repetition as u64));
    let mob = match scenario.mobility {
        MobilityKind::Taxi { num_users } => {
            let cfg = TaxiConfig {
                num_users,
                num_slots: scenario.num_slots,
                ..scenario.taxi.clone()
            };
            mobility::taxi::generate(&net, &cfg, &mut rng)
        }
        MobilityKind::RandomWalk { num_users } => {
            mobility::random_walk::generate(&net, num_users, scenario.num_slots, &mut rng)
        }
        MobilityKind::Commute { num_users } => {
            let cfg = mobility::hostile::CommuteConfig {
                num_users,
                num_slots: scenario.num_slots,
                morning: scenario.num_slots / 4,
                evening: (3 * scenario.num_slots) / 4,
                jitter: (scenario.num_slots / 15).max(1),
            };
            mobility::hostile::commute_waves(&net, &cfg, &mut rng)
        }
    };
    // Hostile mobility shaping (flash crowds) happens before the instance
    // is synthesized so capacities are provisioned against the *benign*
    // utilization target — the crowd then genuinely overloads them.
    let mob = scenario.hostile.shape_mobility(&net, mob, &mut rng);
    let cfg = SyntheticConfig {
        workload: scenario.workload,
        weights: scenario.weights(),
        prices: scenario.prices.clone(),
        delay_per_km: scenario.delay_per_km,
        utilization: scenario.utilization,
    };
    let mut inst = Instance::synthetic_with(&net, mob, &cfg, &mut rng)?;
    scenario.hostile.apply(&mut inst);
    scenario.faults.apply(&mut inst);
    Ok(inst)
}

/// One repetition's raw outcome.
struct RepetitionReport {
    /// Offline-opt total (NaN when the offline solve failed).
    offline_total: f64,
    /// Per-algorithm cost and health, in roster order.
    per_algorithm: Vec<(CostBreakdown, HealthSummary)>,
    /// Non-fatal degradations (offline failure, sanitized evaluation).
    notes: Vec<String>,
}

/// One repetition: offline total plus each algorithm's cost and health.
///
/// The online algorithms run on the instance *as faulted* — surviving the
/// corruption is their job. The offline normalizer and the cost evaluation
/// use a sanitized copy, so reported costs stay finite and comparable even
/// when prices were corrupted to NaN.
fn run_repetition(scenario: &Scenario, repetition: usize) -> Result<RepetitionReport> {
    let inst = build_instance(scenario, repetition)?;
    let mut notes = Vec::new();
    let eval_inst = if scenario.faults.is_empty() {
        None
    } else {
        let (clean, sanitize_notes) = inst.sanitized();
        if !sanitize_notes.is_empty() {
            notes.push(format!(
                "evaluation on sanitized instance ({} repairs)",
                sanitize_notes.len()
            ));
        }
        Some(clean)
    };
    let eval = eval_inst.as_ref().unwrap_or(&inst);
    // 1e-6 relative accuracy is ample for ratio reporting and saves a few
    // interior-point iterations on every (large) horizon LP.
    let offline_total = match solve_offline_with(
        eval,
        &::optim::lp::IpmOptions {
            tol: 1e-6,
            ..::optim::lp::IpmOptions::default()
        },
    ) {
        Ok(offline) => offline.cost.total(),
        Err(err) => {
            // A faulted instance may be structurally infeasible (e.g. a
            // demand surge beyond total capacity): the normalizer is then
            // undefined, but the online runs below still produce costs.
            notes.push(format!("offline solve failed: {err}"));
            f64::NAN
        }
    };
    let mut per_algorithm = Vec::with_capacity(scenario.algorithms.len());
    for kind in &scenario.algorithms {
        let mut alg = kind.build_full(scenario.slot_deadline_ms, &scenario.shard_faults);
        let traj = edgealloc::algorithms::run_online(&inst, alg.as_mut())?;
        per_algorithm.push((
            evaluate_trajectory(eval, &traj.allocations),
            traj.health_summary(),
        ));
    }
    Ok(RepetitionReport {
        offline_total,
        per_algorithm,
        notes,
    })
}

/// Runs every repetition of a scenario, in parallel across repetitions, and
/// aggregates the outcomes. Panics and errors inside a repetition are
/// captured as [`RepFailure`]s; surviving repetitions still report.
///
/// Worker threads are leased from the process-global [`WorkerBudget`]: the
/// fan-out uses at most as many extra workers as the machine has spare
/// cores *right now*, so nesting under a sweep harness cannot oversubscribe
/// (a drained budget degrades to an inline loop with identical results).
///
/// # Errors
///
/// Returns an error only when *every* repetition failed.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioOutcome> {
    let reps = scenario.repetitions.max(1);
    type RepSlot = std::result::Result<RepetitionReport, String>;
    let rep_ids: Vec<usize> = (0..reps).collect();
    // The budgeted map's own Err layer captures panics; the inner Result
    // carries a repetition's solver error. Flatten both into one message so
    // failure accounting below stays uniform.
    let per_rep: Vec<RepSlot> =
        try_parallel_map_budgeted(&rep_ids, reps, WorkerBudget::global(), |&r| {
            run_repetition(scenario, r).map_err(|err| err.to_string())
        })
        .into_iter()
        .map(|outcome| match outcome {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(message)) => Err(message),
            Err(panic_message) => Err(panic_message),
        })
        .collect();

    let mut offline_totals = Vec::with_capacity(reps);
    let mut failures = Vec::new();
    let mut algorithms: Vec<AlgorithmOutcome> = scenario
        .algorithms
        .iter()
        .map(|k| AlgorithmOutcome {
            name: k.label(),
            ratios: Vec::with_capacity(reps),
            totals: Vec::with_capacity(reps),
            breakdowns: Vec::with_capacity(reps),
            health: Vec::with_capacity(reps),
        })
        .collect();
    for (r, slot) in per_rep.into_iter().enumerate() {
        let report = match slot {
            Ok(report) => report,
            Err(message) => {
                failures.push(RepFailure {
                    repetition: r,
                    fatal: true,
                    message,
                });
                continue;
            }
        };
        for note in report.notes {
            failures.push(RepFailure {
                repetition: r,
                fatal: false,
                message: note,
            });
        }
        offline_totals.push(report.offline_total);
        for (a, (bd, health)) in algorithms.iter_mut().zip(report.per_algorithm) {
            // No normalizer (offline solve failed on an infeasible faulted
            // instance) → the ratio is undefined, not a panic.
            let ratio = if report.offline_total.is_finite() && report.offline_total > 0.0 {
                competitive_ratio(bd.total(), report.offline_total)
            } else {
                f64::NAN
            };
            a.ratios.push(ratio);
            a.totals.push(bd.total());
            a.breakdowns.push(bd);
            a.health.push(health);
        }
    }
    if offline_totals.is_empty() {
        let detail = failures
            .iter()
            .map(|f| format!("rep {}: {}", f.repetition, f.message))
            .collect::<Vec<_>>()
            .join("; ");
        return Err(edgealloc::Error::Invalid(format!(
            "all {reps} repetitions failed: {detail}"
        )));
    }
    Ok(ScenarioOutcome {
        name: scenario.name.clone(),
        offline_totals,
        algorithms,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlan};
    use crate::scenario::AlgorithmKind;

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "tiny".into(),
            mobility: MobilityKind::RandomWalk { num_users: 5 },
            num_slots: 5,
            algorithms: vec![AlgorithmKind::Greedy, AlgorithmKind::Approx { eps: 0.5 }],
            repetitions: 2,
            seed: 11,
            ..Scenario::default()
        }
    }

    #[test]
    fn run_scenario_produces_ratios_at_least_one() {
        let outcome = run_scenario(&tiny_scenario()).unwrap();
        assert_eq!(outcome.offline_totals.len(), 2);
        for alg in &outcome.algorithms {
            assert_eq!(alg.ratios.len(), 2);
            for &r in &alg.ratios {
                assert!(r >= 1.0 - 1e-4, "{}: ratio {r} below 1", alg.name);
            }
        }
    }

    #[test]
    fn healthy_scenario_reports_no_failures_or_degradation() {
        let outcome = run_scenario(&tiny_scenario()).unwrap();
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        assert!(outcome.fully_healthy());
        for alg in &outcome.algorithms {
            assert_eq!(alg.health.len(), 2);
            assert_eq!(alg.degraded_slot_fraction(), 0.0, "{}", alg.name);
            assert_eq!(alg.fallback_totals().primary, 2 * 5, "{}", alg.name);
        }
    }

    #[test]
    fn repetitions_are_deterministic_given_seed() {
        let a = run_scenario(&tiny_scenario()).unwrap();
        let b = run_scenario(&tiny_scenario()).unwrap();
        for (x, y) in a.algorithms.iter().zip(&b.algorithms) {
            for (rx, ry) in x.ratios.iter().zip(&y.ratios) {
                assert!((rx - ry).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn outcome_round_trips_through_serde() {
        // Checkpoint resume re-reads completed sweep points from disk, so
        // outcomes must deserialize back to the same payload.
        let outcome = run_scenario(&tiny_scenario()).unwrap();
        let json = serde_json::to_string(&outcome).unwrap();
        let back: ScenarioOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, outcome.name);
        assert_eq!(back.offline_totals, outcome.offline_totals);
        assert_eq!(back.algorithms.len(), outcome.algorithms.len());
        for (a, b) in outcome.algorithms.iter().zip(&back.algorithms) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ratios, b.ratios);
            assert_eq!(a.totals, b.totals);
        }
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            json,
            "re-serialization must be byte-identical"
        );
    }

    #[test]
    fn generous_scenario_deadline_stays_healthy() {
        let scenario = Scenario {
            slot_deadline_ms: Some(30_000.0),
            ..tiny_scenario()
        };
        let outcome = run_scenario(&scenario).unwrap();
        assert!(outcome.fully_healthy(), "{:?}", outcome.failures);
        for alg in &outcome.algorithms {
            assert_eq!(alg.merged_health().deadline_hits, 0, "{}", alg.name);
        }
    }

    #[test]
    fn build_instance_respects_user_count() {
        let inst = build_instance(&tiny_scenario(), 0).unwrap();
        assert_eq!(inst.num_users(), 5);
        assert_eq!(inst.num_slots(), 5);
    }

    #[test]
    fn faulted_scenario_survives_and_flags_degradation() {
        let scenario = Scenario {
            faults: FaultPlan {
                faults: vec![FaultKind::PriceNan { slot: 2, cloud: 1 }],
            },
            ..tiny_scenario()
        };
        let outcome = run_scenario(&scenario).unwrap();
        assert!(!outcome.fully_healthy());
        for alg in &outcome.algorithms {
            for &t in &alg.totals {
                assert!(t.is_finite(), "{}: non-finite cost {t}", alg.name);
            }
            assert!(
                alg.merged_health().sanitized_slots > 0,
                "{}: no slot flagged as sanitized",
                alg.name
            );
        }
    }
}
