//! CLI driver: run a scenario described by a JSON file (or the default
//! scenario) and print the ratio table.
//!
//! ```bash
//! # Print the default scenario as a JSON template:
//! cargo run --release -p sim --bin run_scenario -- --template > my.json
//! # Edit my.json, then:
//! cargo run --release -p sim --bin run_scenario -- --config my.json
//! ```

use sim::report::{outcome_json, ratio_table};
use sim::scenario::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut template = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--template" => template = true,
            "--config" => config = it.next().cloned(),
            "--json" => json_out = it.next().cloned(),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: run_scenario [--template] [--config FILE] [--json OUT]");
                std::process::exit(2);
            }
        }
    }

    if template {
        println!(
            "{}",
            serde_json::to_string_pretty(&Scenario::default()).expect("serialize template")
        );
        return;
    }

    let scenario: Scenario = match config {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad config {path}: {e}"))
        }
        None => Scenario::default(),
    };

    eprintln!(
        "running scenario {:?}: {} users, {} slots, {} repetitions",
        scenario.name,
        scenario.mobility.num_users(),
        scenario.num_slots,
        scenario.repetitions
    );
    let outcome = sim::run_scenario(&scenario).expect("scenario failed");
    println!("{}", ratio_table(&outcome));
    if let Some(path) = json_out {
        std::fs::write(&path, outcome_json(&outcome)).expect("write json");
        eprintln!("wrote {path}");
    }
}
